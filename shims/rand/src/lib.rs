//! Offline stand-in for `rand` 0.8.
//!
//! Mirrors the small slice of the `rand` API that the ADOR serving
//! simulator uses — `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! float and integer ranges, and `rngs::StdRng` — backed by the SplitMix64
//! generator (Steele, Lea & Flood, OOPSLA'14). SplitMix64 passes BigCrush
//! and is fully deterministic from its 64-bit seed, which is all the
//! Poisson/log-normal trace generators require. The workspace
//! `[patch.crates-io]` table is the switch point for the real crate.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Identical seeds produce
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;

    /// True when the range contains no values.
    fn is_empty_range(&self) -> bool;
}

/// User-facing convenience methods, blanket-implemented for every core
/// generator (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        assert!(!range.is_empty_range(), "cannot sample empty range");
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng) * (self.end - self.start)
    }

    fn is_empty_range(&self) -> bool {
        // `partial_cmp` keeps NaN endpoints classified as empty.
        self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Sampling the closed interval via the half-open one loses only the
        // single point `hi`, which has measure zero for f64 test purposes.
        lo + unit_f64(rng) * (hi - lo)
    }

    fn is_empty_range(&self) -> bool {
        self.start() > self.end()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }

            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let draw = if span == 0 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() as u128) % span
                };
                (lo as u128).wrapping_add(draw) as $t
            }

            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Not the ChaCha12 generator the real `rand` uses, but the ADOR
    /// simulator only requires determinism-under-seed and good uniformity,
    /// both of which SplitMix64 provides.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
            let y = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn unit_interval_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let k = rng.gen_range(0usize..8);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
