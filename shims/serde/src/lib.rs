//! Offline stand-in for `serde`.
//!
//! The workspace builds in a sandbox with no crates.io access, so the real
//! `serde` cannot be fetched. ADOR currently uses `Serialize` /
//! `Deserialize` purely as derive markers on config/report types — nothing
//! serializes at runtime — so this shim provides the two traits with
//! blanket impls plus the no-op derives from `serde_derive`. The
//! `[patch.crates-io]` table in the workspace root is the single switch
//! point for swapping in the real crate.

/// Marker trait mirroring `serde::Serialize`.
///
/// Blanket-implemented for every type so that `T: Serialize` bounds hold;
/// the no-op derive therefore does not need to emit an impl.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
///
/// Blanket-implemented for every type, matching the no-op derive.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
