//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The ADOR workspace builds without network access, so the real
//! `serde_derive` cannot be fetched. ADOR only uses `Serialize` /
//! `Deserialize` as inert markers on config and report types (nothing in
//! the workspace serializes at runtime yet), so these derives expand to
//! nothing; the traits in the sibling `serde` shim carry blanket impls.
//! Swapping in the real serde is a one-line change in the workspace
//! `[patch.crates-io]` table.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
