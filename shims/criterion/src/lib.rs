//! Offline stand-in for `criterion`.
//!
//! Provides the measurement surface `benches/micro.rs` uses —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the `criterion_group!` / `criterion_main!`
//! macros — with a simple median-of-samples timer instead of criterion's
//! full statistical pipeline (no warm-up tuning, outlier analysis, or
//! HTML reports). Output is one `name ... median time` line per benchmark,
//! which keeps `cargo bench` runnable and diffable in the sandbox. The
//! workspace `[patch.crates-io]` table is the switch point for the real
//! crate.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers compile; `std::hint` is the
/// canonical home since Rust 1.66.
pub use std::hint::black_box;

/// Drives one benchmark closure (mirrors `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `routine`, collecting one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        iters_per_sample: 1,
    };
    f(&mut b);
    println!("bench: {label:<40} median {:>12.3?}", b.median());
}

/// Top-level benchmark registry (mirrors `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark named `{group}/{id}`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut counter = 0u64;
        let mut c = Criterion::default();
        c.sample_size(3)
            .bench_function("noop", |b| b.iter(|| counter += 1));
        assert!(counter >= 3);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut hits = 0u32;
        group
            .sample_size(2)
            .bench_function("inner", |b| b.iter(|| hits += 1));
        group.finish();
        assert!(hits >= 2);
    }
}
