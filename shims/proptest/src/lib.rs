//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the ADOR test suites use:
//! the `proptest!` block macro (with `#![proptest_config(...)]` and
//! doc-commented `#[test]` functions), `prop_assert!` / `prop_assert_eq!`,
//! `ProptestConfig::with_cases`, and range strategies (`lo..hi`,
//! `lo..=hi`) over integers and floats. Inputs are drawn from a SplitMix64
//! stream seeded by the test name and case index, so every run of a given
//! test binary sees the same cases (no flakes, no persistence files).
//!
//! Deliberately omitted relative to the real crate: shrinking (failures
//! report the raw inputs instead), `any::<T>()`, combinators, and
//! collection strategies — none are used in-tree. The workspace
//! `[patch.crates-io]` table is the switch point for the real crate.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than the real proptest's 256, since the shim
    /// does not shrink and ADOR's properties are CPU-heavy analytical
    /// evaluations.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property-test case (mirrors `proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic input stream for one property (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream seeded from the property name and case index, so case `i` of
    /// a given test is identical on every run.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type (mirrors `proptest::strategy::Strategy`
/// far enough for range-literal strategies).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let draw = if span == 0 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() as u128) % span
                };
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use std::ops::{Range, RangeInclusive};

    use super::{Strategy, TestRng};

    /// Half-open length window for collection strategies (mirrors
    /// `proptest::collection::SizeRange`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    /// Strategy producing `Vec`s with sampled length and elements.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A `Vec` strategy: length drawn from `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = Strategy::sample(&(self.len.lo..self.len.hi), rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over `cases` sampled inputs.
///
/// Failures panic with the offending inputs (no shrinking in this shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr); ) => {};
    (@munch ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs:{}",
                        stringify!($name),
                        case,
                        config.cases,
                        err,
                        ::std::string::String::new()
                            $(+ &format!(" {} = {:?}", stringify!($arg), $arg))*,
                    );
                }
            }
        }
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts inside a `proptest!` body; failure aborts only the current case
/// with a formatted reason.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// One-stop imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.5f64..=2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..=2.5).contains(&y), "y out of range: {y}");
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = Strategy::sample(&(0u64..1000), &mut TestRng::for_case("t", 3));
        let b = Strategy::sample(&(0u64..1000), &mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }

    use crate::TestRng;
}
