//! Cross-validation between the analytical model and the instruction-level
//! executor, plus property-based invariants spanning crates.

use ador::baselines;
use ador::model::workload::StepSummary;
use ador::model::{presets, Phase};
use ador::perf::{lower, CycleExecutor, Deployment, Evaluator};
use proptest::prelude::*;

fn cross_validate(
    arch: &ador::hw::Architecture,
    model: &ador::model::ModelConfig,
    phase: Phase,
    deployment: Deployment,
) -> (f64, f64) {
    let program = lower(arch, model, phase, deployment);
    let step_flops = StepSummary::compute(model, phase).flops * (1.0 / deployment.devices as f64);
    let exec = CycleExecutor::new(arch, deployment, phase, step_flops).run(&program);
    let analytical = Evaluator::new(arch, model, deployment)
        .unwrap()
        .step(phase)
        .unwrap();
    (exec.total.get(), analytical.total.get())
}

/// The compiler-stack executor agrees with the analytical evaluator across
/// the architecture zoo and both phases (Fig. 14a consistency).
#[test]
fn executor_agrees_across_the_zoo() {
    let model = presets::llama3_8b();
    let phases = [
        Phase::decode(16, 512),
        Phase::decode(96, 2048),
        Phase::prefill(2, 1024),
    ];
    for arch in [
        baselines::ador_table3(),
        baselines::a100(),
        baselines::llmcompass_l(),
        baselines::llmcompass_t(),
    ] {
        for phase in phases {
            let (exec, analytical) =
                cross_validate(&arch, &model, phase, Deployment::single_device());
            let rel = (exec - analytical).abs() / analytical;
            assert!(
                rel < 0.05,
                "{} {phase}: {exec:.5} vs {analytical:.5}",
                arch.name
            );
        }
    }
}

/// Same agreement under tensor parallelism (sync bundles included).
#[test]
fn executor_agrees_multi_device() {
    let model = presets::llama3_70b();
    let arch = baselines::ador_table3();
    for phase in [Phase::decode(32, 1024), Phase::prefill(1, 512)] {
        let (exec, analytical) =
            cross_validate(&arch, &model, phase, Deployment::tensor_parallel(8));
        let rel = (exec - analytical).abs() / analytical;
        assert!(
            rel < 0.05,
            "{phase}: {exec:.5} vs {analytical:.5} (rel {rel:.3})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decode latency is monotone in batch for every baseline — above the
    /// effective-bandwidth law's saturation point (below it, bigger steps
    /// legitimately stream *faster* per Fig. 10, so tiny batches can beat
    /// batch 1).
    #[test]
    fn decode_monotone_in_batch(batch in 8usize..96, arch_idx in 0usize..4) {
        let archs = [
            baselines::ador_table3(),
            baselines::a100(),
            baselines::llmcompass_l(),
            baselines::llmcompass_t(),
        ];
        let arch = &archs[arch_idx];
        let model = presets::llama3_8b();
        let eval = Evaluator::new(arch, &model, Deployment::single_device()).unwrap();
        let small = eval.decode_interval(batch, 1024).unwrap();
        let large = eval.decode_interval(batch + 8, 1024).unwrap();
        prop_assert!(large >= small * 0.999, "{}: {} vs {}", arch.name, small, large);
    }

    /// Decode latency is monotone in context length (more KV to stream).
    #[test]
    fn decode_monotone_in_context(ctx in 128usize..4096) {
        let arch = baselines::ador_table3();
        let model = presets::llama3_8b();
        let eval = Evaluator::new(&arch, &model, Deployment::single_device()).unwrap();
        let small = eval.decode_interval(32, ctx).unwrap();
        let large = eval.decode_interval(32, ctx + 512).unwrap();
        prop_assert!(large >= small * 0.999);
    }

    /// Prefill of n tokens always costs more than one decode step at the
    /// same batch (n ≥ 2 tokens of compute vs 1).
    #[test]
    fn prefill_dominates_decode(batch in 1usize..32, seq in 64usize..2048) {
        let arch = baselines::ador_table3();
        let model = presets::llama3_8b();
        let eval = Evaluator::new(&arch, &model, Deployment::single_device()).unwrap();
        let prefill = eval.ttft(batch, seq).unwrap();
        let decode = eval.decode_interval(batch, seq).unwrap();
        prop_assert!(prefill > decode);
    }

    /// Tensor parallelism never makes a step slower than 1.05x the
    /// single-device time (sync can eat gains but not reverse them at
    /// these scales).
    #[test]
    fn tp_never_pathological(devices in 2usize..9, batch in 8usize..64) {
        let arch = baselines::ador_table3();
        let model = presets::llama3_8b();
        let single = Evaluator::new(&arch, &model, Deployment::single_device())
            .unwrap()
            .decode_interval(batch, 1024)
            .unwrap();
        let multi = Evaluator::new(&arch, &model, Deployment::tensor_parallel(devices))
            .unwrap()
            .decode_interval(batch, 1024)
            .unwrap();
        prop_assert!(multi <= single * 1.05, "TP{devices}: {multi} vs {single}");
    }

    /// The lowered program's dynamic instruction count scales with layers
    /// and never comes out empty.
    #[test]
    fn lowering_covers_the_model(batch in 1usize..64) {
        let arch = baselines::ador_table3();
        let model = presets::llama3_8b();
        let program = lower(&arch, &model, Phase::decode(batch, 256), Deployment::single_device());
        prop_assert!(program.dynamic_instruction_count() >= model.layers * 10);
    }
}
