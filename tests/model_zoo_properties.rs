//! Grid and property tests across the whole model zoo and baseline
//! registry — the "does every combination behave" safety net.

use ador::baselines;
use ador::hw::{OperatingPoint, PowerModel, Roofline, RooflineBound};
use ador::model::workload::StepSummary;
use ador::model::{presets, DataType, Phase};
use ador::perf::{Deployment, Evaluator};
use proptest::prelude::*;

/// Every preset model evaluates on every baseline that can hold it, for
/// both phases, with sane outputs.
#[test]
fn zoo_times_registry_grid() {
    let mut evaluated = 0;
    for model in presets::all() {
        for arch in baselines::registry() {
            let devices = if arch.dram.capacity < model.weight_bytes() {
                let per = (model.weight_bytes().get() as f64 / arch.dram.capacity.get() as f64)
                    .ceil() as usize;
                per.next_power_of_two()
            } else {
                1
            };
            if devices > 1024 {
                continue;
            }
            let deployment = if devices == 1 {
                Deployment::single_device()
            } else {
                Deployment::tensor_parallel(devices)
            };
            let Ok(eval) = Evaluator::new(&arch, &model, deployment) else {
                continue;
            };
            let Ok(decode) = eval.decode_interval(4, 256) else {
                continue;
            };
            // A long-enough prompt always out-costs one decode step; short
            // prompts can legitimately undercut a full weight stream on
            // compute-rich GPUs.
            let Ok(prefill) = eval.ttft(1, 2048.min(model.max_seq_len)) else {
                continue;
            };
            assert!(
                decode.get() > 0.0 && decode.get() < 10.0,
                "{}/{}: {decode}",
                arch.name,
                model.name
            );
            assert!(prefill > decode, "{}/{}", arch.name, model.name);
            evaluated += 1;
        }
    }
    // 15 models × 7 baselines, minus the combinations that genuinely don't
    // fit — the grid must still be broadly covered.
    assert!(evaluated >= 70, "only {evaluated} combinations evaluated");
}

/// Quantizing weights to int8 halves weight bytes and the decode weight
/// stream everywhere.
#[test]
fn int8_halves_weight_traffic() {
    for mut model in [
        presets::llama3_8b(),
        presets::falcon_7b(),
        presets::qwen2_7b(),
    ] {
        let fp16 = model.weight_bytes();
        let fp16_stream = StepSummary::compute(&model, Phase::decode(8, 512)).weight_bytes;
        model.dtype = DataType::I8;
        let int8 = model.weight_bytes();
        let int8_stream = StepSummary::compute(&model, Phase::decode(8, 512)).weight_bytes;
        assert_eq!(int8.get() * 2, fp16.get(), "{}", model.name);
        assert_eq!(int8_stream.get() * 2, fp16_stream.get(), "{}", model.name);
    }
}

/// Roofline classification agrees with the evaluator's memory/compute
/// balance: decode (low intensity) is bandwidth-bound on every baseline.
#[test]
fn decode_sits_left_of_the_ridge() {
    let model = presets::llama3_8b();
    let summary = StepSummary::compute(&model, Phase::decode(1, 512));
    let intensity = summary.arithmetic_intensity();
    for arch in baselines::registry() {
        if arch.dram.capacity < model.weight_bytes() {
            continue; // TSP-style SRAM parts have a very different roofline
        }
        let roofline = Roofline::of(&arch);
        assert_eq!(
            roofline.bound(intensity),
            RooflineBound::Bandwidth,
            "{}: intensity {intensity:.1} vs ridge {:.1}",
            arch.name,
            roofline.ridge()
        );
    }
}

/// Power model: every synthesized design stays within a 2x A100 envelope at
/// peak, and decode points draw less than prefill points.
#[test]
fn power_envelopes_hold_across_designs() {
    let model = PowerModel::default();
    for arch in [
        baselines::ador_table3(),
        baselines::llmcompass_l(),
        baselines::llmcompass_t(),
    ] {
        let peak = model.estimate(&arch, OperatingPoint::peak()).total();
        assert!(peak.as_watts() < 800.0, "{}: {peak}", arch.name);
        let decode = model
            .estimate(&arch, OperatingPoint::decode_typical())
            .total();
        let prefill = model
            .estimate(&arch, OperatingPoint::prefill_typical())
            .total();
        assert!(decode < prefill, "{}", arch.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// KV-cache sizing is exactly linear in batch and context for every
    /// preset.
    #[test]
    fn kv_cache_linear(idx in 0usize..15, b in 1usize..64, ctx in 1usize..4096) {
        let model = &presets::all()[idx];
        let one = model.kv_cache_bytes(1, 1).get();
        prop_assert_eq!(model.kv_cache_bytes(b, ctx).get(), one * (b * ctx) as u64);
    }

    /// Decode step FLOPs grow linearly-ish in batch (within 2 % after the
    /// shared-weight terms are accounted).
    #[test]
    fn decode_flops_scale_with_batch(idx in 0usize..15, b in 1usize..64) {
        let model = &presets::all()[idx];
        let f1 = StepSummary::compute(model, Phase::decode(b, 256)).flops.get();
        let f2 = StepSummary::compute(model, Phase::decode(2 * b, 256)).flops.get();
        let ratio = f2 / f1;
        prop_assert!((1.9..2.1).contains(&ratio), "{}: {ratio}", model.name);
    }

    /// The attention share of any model at any context stays a valid
    /// fraction, and MQA models have the lowest KV read share.
    #[test]
    fn workload_fractions_valid(idx in 0usize..15, ctx in 64usize..16384) {
        let model = &presets::all()[idx];
        let share = ador::model::workload::attention_op_share(model, ctx);
        prop_assert!((0.0..=1.0).contains(&share));
        let kv = ador::model::workload::kv_read_share(model, 16, ctx);
        prop_assert!((0.0..=1.0).contains(&kv));
    }
}
