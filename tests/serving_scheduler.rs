//! Scheduler-rework regression tests: chunked prefill bounds TBT
//! interference, KV accounting is token-granular and never overflows, and
//! preemption-triggering workloads stay deterministic.

use ador::baselines;
use ador::model::presets;
use ador::perf::{Deployment, Evaluator};
use ador::serving::{
    Request, RequestOutcome, SchedulerPolicy, ServingSim, SimConfig, TraceProfile,
};
use ador::units::Seconds;
use proptest::prelude::*;

fn sim<'a>(
    arch: &'a ador::hw::Architecture,
    model: &'a ador::model::ModelConfig,
    cfg: SimConfig,
) -> ServingSim<'a> {
    ServingSim::new(arch, model, Deployment::single_device(), cfg).unwrap()
}

/// Six short requests decode while one 8×chunk prompt arrives mid-stream.
fn long_prompt_scenario(prefill_chunk: usize) -> (ador::serving::QosReport, Vec<RequestOutcome>) {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let cfg = SimConfig::new(1.0, 16).with_prefill_chunk(prefill_chunk);
    let mut requests: Vec<Request> = (0..6)
        .map(|i| Request::new(i, Seconds::ZERO, 64, 400))
        .collect();
    // 4096 = 8 × 512 tokens, arriving once the shorts are decoding.
    requests.push(Request::new(6, Seconds::new(0.5), 4096, 4));
    sim(&arch, &model, cfg).run_requests(requests).unwrap()
}

/// The tentpole regression: with 512-token chunks, a 4096-token prompt
/// admitted mid-stream adds at most one chunk's prefill time to any running
/// request's worst inter-token gap — instead of one monolithic 4096-token
/// prefill stall.
#[test]
fn chunked_prefill_bounds_decode_interference() {
    let (_, outcomes) = long_prompt_scenario(512);
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let eval = Evaluator::new(&arch, &model, Deployment::single_device()).unwrap();
    // Worst fused iteration a short request can see: its own decode step
    // (batch ≤ 7, context ≤ 64+400 bucketed) plus one 512-token chunk.
    let decode_bound = eval.decode_interval(7, 512).unwrap();
    let chunk_bound = eval.ttft(1, 512).unwrap();
    let bound = (decode_bound + chunk_bound) * 1.2;
    for o in outcomes.iter().filter(|o| o.request.input_tokens == 64) {
        assert!(
            o.max_tbt <= bound,
            "short request {} saw a {}-stall (bound {})",
            o.request.id,
            o.max_tbt,
            bound
        );
    }

    // And chunking is what achieves it: an unchunked (one-shot) prefill of
    // the same prompt stalls the running decoders for strictly longer.
    let (_, unchunked) = long_prompt_scenario(8192);
    let worst_chunked = outcomes
        .iter()
        .filter(|o| o.request.input_tokens == 64)
        .map(|o| o.max_tbt)
        .fold(Seconds::ZERO, Seconds::max);
    let worst_unchunked = unchunked
        .iter()
        .filter(|o| o.request.input_tokens == 64)
        .map(|o| o.max_tbt)
        .fold(Seconds::ZERO, Seconds::max);
    assert!(
        worst_chunked < worst_unchunked,
        "chunked {worst_chunked} vs unchunked {worst_unchunked}"
    );
}

/// Decode-prioritized interleaving pays less prefill interference into the
/// running decoders than fused scheduling, at the cost of admission speed.
#[test]
fn decode_prioritized_smooths_tbt() {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let run = |policy| {
        let cfg = SimConfig::new(1.0, 16)
            .with_prefill_chunk(512)
            .with_policy(policy);
        let mut requests: Vec<Request> = (0..6)
            .map(|i| Request::new(i, Seconds::ZERO, 64, 400))
            .collect();
        requests.push(Request::new(6, Seconds::new(0.5), 4096, 4));
        sim(&arch, &model, cfg).run_requests(requests).unwrap()
    };
    let (_, fused) = run(SchedulerPolicy::Fused);
    let (_, prio) = run(SchedulerPolicy::DecodePrioritized);
    let mean_short_tbt = |outs: &[RequestOutcome]| -> f64 {
        outs.iter()
            .filter(|o| o.request.input_tokens == 64)
            .map(|o| o.mean_tbt.get())
            .sum()
    };
    assert!(mean_short_tbt(&prio) <= mean_short_tbt(&fused));
    let long_ttft = |outs: &[RequestOutcome]| {
        outs.iter()
            .find(|o| o.request.input_tokens == 4096)
            .unwrap()
            .ttft
    };
    assert!(long_ttft(&prio) >= long_ttft(&fused));
}

/// A workload that forces KV-pressure preemption replays identically under
/// a fixed seed, and the engine actually preempts rather than deadlocking.
#[test]
fn preemption_is_deterministic() {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let run = || {
        let cfg = SimConfig::new(30.0, 64)
            .with_requests(60)
            .with_seed(17)
            .with_kv_memory_fraction(0.02);
        sim(&arch, &model, cfg)
            .run(TraceProfile::ultrachat_like())
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert!(a.preemptions > 0, "scenario must trigger preemption");
    assert_eq!(a.completed, 60, "preemption must not drop requests");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The KV invariant across seeds, load and chunk sizes: the resident
    /// token count never exceeds the budget (the per-step ledger equality
    /// with the sum of live contexts is a debug assertion inside the
    /// engine, exercised by these same runs), and every request completes.
    #[test]
    fn kv_never_exceeds_budget(
        seed in 0u64..1000,
        rate in 2.0f64..40.0,
        chunk in 256usize..4096,
        kv_fraction in 0.02f64..0.08,
    ) {
        let arch = baselines::ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(rate, 48)
            .with_requests(40)
            .with_seed(seed)
            .with_prefill_chunk(chunk)
            .with_kv_memory_fraction(kv_fraction);
        let sim = ServingSim::new(&arch, &model, Deployment::single_device(), cfg).unwrap();
        let budget = sim.kv_budget_tokens();
        let report = sim.run(TraceProfile::ultrachat_like()).unwrap();
        prop_assert!(
            report.peak_kv_tokens <= budget,
            "peak {} over budget {}",
            report.peak_kv_tokens,
            budget
        );
        prop_assert!(report.peak_kv_tokens > 0);
        prop_assert_eq!(report.completed, 40);
    }
}
