//! Integration tests for the paper's headline claims, exercised through
//! the public umbrella API only.

use ador::baselines;
use ador::hw::AreaModel;
use ador::model::{presets, workload, Phase};
use ador::perf::{Deployment, Evaluator};
use ador::prelude::Ador;

/// Fig. 15a: TBT ordering at batch 150, LLaMA3-8B, one device.
#[test]
fn fig15a_tbt_ordering() {
    let model = presets::llama3_8b();
    let tbt = |arch: &ador::hw::Architecture| {
        Evaluator::new(arch, &model, Deployment::single_device())
            .unwrap()
            .decode_interval(150, 1024)
            .unwrap()
    };
    let ador_design = tbt(&baselines::ador_table3());
    let a100 = tbt(&baselines::a100());
    let l = tbt(&baselines::llmcompass_l());
    let t = tbt(&baselines::llmcompass_t());
    assert!(
        ador_design < l && l < a100 && a100 < t,
        "{ador_design} {l} {a100} {t}"
    );
}

/// Fig. 15 headline: ADOR's TBT advantage over the A100 at batch 150 with
/// the paper-reported area-efficiency multiplier.
#[test]
fn headline_tbt_and_area_efficiency() {
    let model = presets::llama3_8b();
    let session = Ador::new(model).batch(150).seq_len(1024);
    let cmp = session
        .compare(&baselines::ador_table3(), &baselines::a100())
        .unwrap();
    // Paper: 2.36x TBT at batch 150 — we assert the right regime.
    assert!(
        (1.4..3.5).contains(&cmp.tbt_ratio),
        "TBT ratio {:.2}",
        cmp.tbt_ratio
    );

    // Paper: 3.78x area efficiency for TBT (826 mm2 vs 516 mm2 dies).
    let area_model = AreaModel::default();
    let a100_area = area_model.estimate(&baselines::a100()).total();
    let ador_area = area_model.estimate(&baselines::ador_table3()).total();
    let area_eff = cmp.tbt_ratio * (a100_area / ador_area);
    assert!(
        (2.2..5.5).contains(&area_eff),
        "area efficiency {area_eff:.2}"
    );
}

/// Table III: the cost model reproduces all three synthesized die areas.
#[test]
fn table3_die_areas() {
    let model = AreaModel::default();
    for (arch, expect) in [
        (baselines::llmcompass_l(), 478.0),
        (baselines::llmcompass_t(), 787.0),
        (baselines::ador_table3(), 516.0),
    ] {
        let got = model.estimate(&arch).total().as_mm2();
        assert!(
            (got - expect).abs() / expect < 0.01,
            "{}: {got:.1} vs {expect}",
            arch.name
        );
    }
}

/// Fig. 3a: KV cache dominates decode DRAM reads at large batch, growing
/// monotonically with batch.
#[test]
fn fig3a_kv_dominance() {
    let m = presets::llama3_8b();
    let shares: Vec<f64> = [1usize, 16, 64, 128]
        .iter()
        .map(|&b| workload::kv_read_share(&m, b, 8192))
        .collect();
    assert!(shares.windows(2).all(|w| w[0] < w[1]), "{shares:?}");
    assert!(shares[3] > 0.85, "batch-128 share {:.3}", shares[3]);
}

/// Fig. 3b: attention's share of decode operations grows with context.
#[test]
fn fig3b_attention_share() {
    let m = presets::llama3_8b();
    let s4 = workload::attention_op_share(&m, 4096);
    let s64 = workload::attention_op_share(&m, 65536);
    assert!(s4 < s64);
    assert!(s64 > 0.6, "{s64:.2}");
}

/// §III-A: the A100's effective decode bandwidth stays under 60 % of spec,
/// while the ADOR design exceeds it (Fig. 4b vs Fig. 10).
#[test]
fn effective_bandwidth_gap() {
    let model = presets::llama3_8b();
    let util = |arch: &ador::hw::Architecture| {
        let eval = Evaluator::new(arch, &model, Deployment::single_device()).unwrap();
        let step = eval.step(Phase::decode(64, 1024)).unwrap();
        step.dram_utilization(arch.dram.bandwidth).get()
    };
    let gpu = util(&baselines::a100());
    let ador_design = util(&baselines::ador_table3());
    assert!(gpu < 0.60, "A100 utilization {gpu:.2}");
    assert!(ador_design > gpu, "ADOR {ador_design:.2} vs A100 {gpu:.2}");
}

/// The search proposes an HDA that meets the chatbot SLA under A100-class
/// constraints and beats the A100 at the operating point (Fig. 9 + §VI).
#[test]
fn search_end_to_end() {
    let session = Ador::new(presets::llama3_8b()).batch(128).seq_len(1024);
    let outcome = session.explore().unwrap();
    assert!(outcome.satisfied);
    assert!(outcome.architecture.is_hda());
    assert!(outcome.area.total().as_mm2() <= 826.0);
    let cmp = session
        .compare(&outcome.architecture, &baselines::a100())
        .unwrap();
    assert!(cmp.tbt_ratio > 1.0 && cmp.ttft_ratio > 1.0, "{cmp:?}");
}

/// Fig. 15b: the 70B multi-device case preserves ADOR's TBT win.
#[test]
fn fig15b_multi_device_tbt() {
    let model = presets::llama3_70b();
    let tbt = |arch: &ador::hw::Architecture| {
        Evaluator::new(arch, &model, Deployment::tensor_parallel(8))
            .unwrap()
            .decode_interval(150, 1024)
            .unwrap()
    };
    let gap = tbt(&baselines::a100()).get() / tbt(&baselines::ador_table3()).get();
    assert!(
        gap > 1.3,
        "paper reports 2.51x; structural win required, got {gap:.2}"
    );
}
