//! Integration tests of the serving pipeline: explore → deploy → serve →
//! SLO, plus the Fig. 16 / Fig. 17 behaviours.

use ador::baselines;
use ador::model::presets;
use ador::perf::Deployment;
use ador::serving::{max_capacity, ServingSim, SimConfig, Slo, TraceProfile};
use ador::units::Seconds;

fn sim(rate: f64, requests: usize) -> ador::serving::QosReport {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    ServingSim::new(
        &arch,
        &model,
        Deployment::single_device(),
        SimConfig::new(rate, 128)
            .with_requests(requests)
            .with_seed(3),
    )
    .unwrap()
    .run(TraceProfile::ultrachat_like())
    .unwrap()
}

/// Conservation: every generated request completes, and per-request
/// latencies are self-consistent.
#[test]
fn conservation_and_ordering() {
    let report = sim(5.0, 80);
    assert_eq!(report.completed, 80);
    assert!(report.ttft.mean <= report.e2e.mean);
    assert!(report.ttft.p50 <= report.ttft.p95);
    assert!(report.tbt.p50 <= report.tbt.p99);
}

/// Fig. 16: capacity under a relaxed SLO is at least the strict-SLO
/// capacity, and the ADOR design sustains double-digit req/s on one device
/// (the paper reports 23.3 req/s for LLaMA3-8B).
#[test]
fn fig16_capacity_regimes() {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let base = SimConfig::new(1.0, 128).with_requests(100).with_seed(5);
    let cap = |slo| {
        max_capacity(
            &arch,
            &model,
            Deployment::single_device(),
            base,
            TraceProfile::ultrachat_like(),
            slo,
            (0.5, 60.0),
            6,
        )
        .unwrap()
    };
    let strict = cap(Slo::strict());
    let relaxed = cap(Slo::relaxed());
    assert!(relaxed.rate >= strict.rate);
    assert!(
        relaxed.rate > 8.0,
        "paper-scale capacity expected, got {:.1}",
        relaxed.rate
    );
}

/// Fig. 16: Yi-34B on two devices sustains less than LLaMA3-8B on one.
#[test]
fn fig16_bigger_model_lower_capacity() {
    let arch = baselines::ador_table3();
    // Fig. 16 separates the models only once queueing shows up in the p95
    // tail: with a 60-request horizon both configs sustain the whole
    // (0.25, 60) bracket and bisection returns the bracket top for each.
    // 200 requests is the shortest horizon where the relaxed SLO binds
    // (LLaMA3-8B ≈ 39 req/s on one device, Yi-34B ≈ 5 req/s on two).
    let base = SimConfig::new(1.0, 128).with_requests(200).with_seed(6);
    let cap = |model: &ador::model::ModelConfig, deployment| {
        max_capacity(
            &arch,
            model,
            deployment,
            base,
            TraceProfile::ultrachat_like(),
            Slo::relaxed(),
            (0.25, 60.0),
            6,
        )
        .unwrap()
        .rate
    };
    let small = cap(&presets::llama3_8b(), Deployment::single_device());
    let large = cap(&presets::yi_34b(), Deployment::tensor_parallel(2));
    assert!(large < small, "34B {large:.1} vs 8B {small:.1}");
    assert!(large > 0.0);
}

/// Fig. 17: TTFT grows with input length; TBT degrades as more decode
/// traffic shares the engine (larger outputs, more overlap).
#[test]
fn fig17_sequence_length_grid() {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let run = |input: usize, output: usize| {
        ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(6.0, 64).with_requests(40).with_seed(8),
        )
        .unwrap()
        .run(TraceProfile::fixed(input, output))
        .unwrap()
    };
    let short_in = run(128, 64);
    let long_in = run(1024, 64);
    assert!(long_in.ttft.p50 > short_in.ttft.p50);

    let short_out = run(256, 16);
    let long_out = run(256, 512);
    // Longer generations keep more requests resident, deepening batches.
    assert!(long_out.mean_batch >= short_out.mean_batch);
}

/// Saturation: past the capacity knee, raising the arrival rate stops
/// improving token throughput (the engine is full).
#[test]
fn throughput_saturates_past_capacity() {
    let moderate = sim(6.0, 60);
    let heavy = sim(60.0, 60);
    let gain = heavy.tokens_per_sec / moderate.tokens_per_sec;
    assert!(gain < 3.0, "tokens/s should saturate, gain {gain:.2}");
    assert!(
        heavy.ttft.p95 > moderate.ttft.p95 * 2.0,
        "queueing must show up in TTFT"
    );
}

/// The simulator is deterministic end-to-end under a fixed seed.
#[test]
fn determinism() {
    let a = sim(4.0, 50);
    let b = sim(4.0, 50);
    assert_eq!(a, b);
}

/// A TBT SLO tighter than the hardware's best step time yields zero
/// capacity instead of a bogus positive rate.
#[test]
fn impossible_slo_is_zero_capacity() {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let cap = max_capacity(
        &arch,
        &model,
        Deployment::single_device(),
        SimConfig::new(1.0, 40).with_seed(9),
        TraceProfile::ultrachat_like(),
        Slo::tbt_only(Seconds::from_micros(10.0)),
        (0.5, 20.0),
        4,
    )
    .unwrap();
    assert_eq!(cap.rate, 0.0);
}
