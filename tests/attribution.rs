//! Conservation contract of SLO-miss attribution: across seeds, routing
//! policies, topologies (aggregated and prefill/decode-disaggregated),
//! speculation, and both fleet drivers, every attributed request's
//! component ledger sums *exactly* (integer nanoseconds, no epsilon) to
//! its end-to-end latency; the fleet ledger is the exact merge of the
//! per-tenant ledgers and of the per-request components; and switching
//! attribution on never perturbs the rest of the report.

use ador::cluster::scenarios::{disagg_cluster, disagg_engine, disagg_mix, DISAGG_RATE};
use ador::cluster::{ClusterSim, DriveMode, FleetReport, FleetSpec, ReplicaSpec, RouterPolicy};
use ador::model::presets;
use ador::perf::Deployment;
use ador::serving::{SpeculationConfig, SpeculationPolicy};
use ador::telemetry::{attribute_events, AttributionReport, Components, TelemetryConfig};
use proptest::prelude::*;

const POLICIES: [RouterPolicy; 3] = [
    RouterPolicy::RoundRobin,
    RouterPolicy::JoinShortestQueue,
    RouterPolicy::LeastKvLoad,
];
const REQUESTS: usize = 60;

/// One traced cluster run. Aggregated fleets go through the homogeneous
/// `ClusterSim::new` path (telemetry on the cluster's engine config);
/// disaggregated fleets go through `ClusterSim::new_fleet`, where each
/// replica's own `SimConfig` carries the telemetry — the fleet path
/// reads it off the `ReplicaSpec`s, not the cluster config.
fn run(
    seed: u64,
    policy: RouterPolicy,
    disaggregated: bool,
    speculate: bool,
    drive: DriveMode,
    telemetry: TelemetryConfig,
) -> FleetReport {
    let model = presets::llama3_8b();
    let mut engine = disagg_engine().with_telemetry(telemetry);
    if speculate {
        engine = engine.with_speculation(SpeculationConfig::new(SpeculationPolicy::Fixed(2)));
    }
    let mut cfg = disagg_cluster(disaggregated).with_drive_mode(drive);
    cfg.policy = policy;
    // `disagg_cluster` pins replicas = 0 (the fleet path overrides it
    // with the fleet's length); the homogeneous path needs a real count.
    cfg.replicas = 2;
    cfg = cfg.with_engine(engine);
    let mix = disagg_mix(DISAGG_RATE);
    let fleet = FleetSpec::prefill_decode(
        &ReplicaSpec::new(ador::baselines::prefill_optimized(), engine),
        1,
        &ReplicaSpec::new(ador::baselines::decode_optimized(), engine),
        1,
    );
    let arch = ador::baselines::ador_table3();
    let sim = if disaggregated {
        ClusterSim::new_fleet(&fleet, &model, Deployment::single_device(), cfg)
    } else {
        ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
    };
    sim.expect("fleet builds")
        .run(&mix, REQUESTS, seed)
        .expect("fleet runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant: components are a *partition* of each
    /// request's end-to-end latency (sum == e2e in integer ns), the
    /// fleet ledger is the exact merge of per-tenant ledgers, and both
    /// equal the field-wise sum over per-request components.
    #[test]
    fn attribution_conserves_and_merges_exactly(
        seed in 0u64..64,
        policy_idx in 0usize..3,
        disagg in 0u8..2,
        speculate in 0u8..2,
        lockstep in 0u8..2,
    ) {
        let drive = if lockstep == 1 { DriveMode::Lockstep } else { DriveMode::EventDriven };
        let report = run(
            seed,
            POLICIES[policy_idx],
            disagg == 1,
            speculate == 1,
            drive,
            TelemetryConfig::trace().with_attribution(),
        );
        let telemetry = report.telemetry.as_ref().expect("traced");
        let attrs = attribute_events(&telemetry.events);
        prop_assert!(!attrs.is_empty(), "a completed run attributes requests");
        for attr in &attrs {
            prop_assert!(
                attr.conserved(),
                "request {}: components sum {} != e2e {} ({:?}, drive {drive:?})",
                attr.request,
                attr.components.total_ns(),
                attr.e2e_ns,
                attr.components
            );
        }

        let fa = report.attribution.as_ref().expect("attribution opted in");
        let mut merged = AttributionReport::default();
        for tenant in &fa.per_tenant {
            merged.merge(tenant);
        }
        prop_assert_eq!(&merged, &fa.fleet, "fleet ledger is the exact per-tenant merge");

        let mut summed = Components::default();
        let mut e2e_total = 0u64;
        for attr in &attrs {
            summed.add(&attr.components);
            e2e_total += attr.e2e_ns;
        }
        prop_assert_eq!(fa.fleet.requests, attrs.len() as u64);
        prop_assert_eq!(&fa.fleet.totals, &summed, "fleet totals are the per-request sum");
        prop_assert_eq!(fa.fleet.totals.total_ns(), e2e_total, "conservation survives the merge");
    }

    /// Attribution observes, never perturbs: an attribution-on run is
    /// bit-identical to a trace-only run once its `attribution` field is
    /// stripped — same QoS, same events, same series.
    #[test]
    fn attribution_never_perturbs_the_traced_report(
        seed in 0u64..64,
        disagg in 0u8..2,
        lockstep in 0u8..2,
    ) {
        let drive = if lockstep == 1 { DriveMode::Lockstep } else { DriveMode::EventDriven };
        let policy = RouterPolicy::JoinShortestQueue;
        let plain = run(seed, policy, disagg == 1, false, drive, TelemetryConfig::trace());
        prop_assert!(plain.attribution.is_none(), "trace-only runs carry no attribution");
        let mut on = run(
            seed,
            policy,
            disagg == 1,
            false,
            drive,
            TelemetryConfig::trace().with_attribution(),
        );
        prop_assert!(on.attribution.take().is_some());
        prop_assert_eq!(on, plain, "attribution must observe, never perturb");
    }
}

/// Deterministic anchor alongside the property: the pinned disaggregated
/// scenario's shed requests are ledgered (counted, zero time-loss) and
/// every miss is blamed on exactly one cause.
#[test]
fn miss_blame_partitions_the_misses() {
    let report = run(
        29,
        RouterPolicy::JoinShortestQueue,
        true,
        false,
        DriveMode::EventDriven,
        TelemetryConfig::trace().with_attribution(),
    );
    let fleet = &report.attribution.as_ref().expect("attribution on").fleet;
    assert_eq!(
        fleet.miss_causes.iter().sum::<u64>(),
        fleet.misses,
        "every miss carries exactly one dominant cause"
    );
    assert!(fleet.misses <= fleet.requests);
}
