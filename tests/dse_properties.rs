//! Property-based tests of the design-space search through the public API.

use ador::model::presets;
use ador::prelude::*;
use ador::units::{Area, Seconds};
use proptest::prelude::*;

fn base_input() -> SearchInput {
    SearchInput {
        vendor: VendorConstraints::a100_class(),
        user: UserRequirements::chatbot(),
        workload: Workload::new(presets::llama3_8b(), 128, 1024),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Whatever the budget, a successful search result respects it.
    #[test]
    fn results_respect_area_budget(budget in 420.0f64..900.0) {
        let mut input = base_input();
        input.vendor.area_budget = Area::from_mm2(budget);
        match ador::search::search(&input) {
            Ok(outcome) => prop_assert!(
                outcome.area.total().as_mm2() <= budget + 1e-6,
                "{} > {budget}", outcome.area.total()
            ),
            Err(ador::search::SearchError::NoFeasibleCandidate { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Relaxing the TBT requirement never forces a larger die.
    #[test]
    fn relaxing_sla_never_grows_the_die(tbt_ms in 20.0f64..60.0) {
        let mut strict_in = base_input();
        strict_in.user.tbt_max = Seconds::from_millis(tbt_ms);
        let mut relaxed_in = base_input();
        relaxed_in.user.tbt_max = Seconds::from_millis(tbt_ms * 1.5);
        let (Ok(strict), Ok(relaxed)) =
            (ador::search::search(&strict_in), ador::search::search(&relaxed_in))
        else {
            return Ok(());
        };
        if strict.satisfied && relaxed.satisfied {
            prop_assert!(relaxed.area.total() <= strict.area.total());
        }
    }

    /// Every reported candidate step stayed within the budget.
    #[test]
    fn candidate_log_is_feasible(budget in 500.0f64..850.0) {
        let mut input = base_input();
        input.vendor.area_budget = Area::from_mm2(budget);
        if let Ok(outcome) = ador::search::search(&input) {
            for step in &outcome.steps {
                prop_assert!(step.area.as_mm2() <= budget + 1e-6);
            }
        }
    }
}

/// Shrinking the budget below any feasible configuration yields the typed
/// error, not a bogus design.
#[test]
fn hopeless_budget_is_an_error() {
    let mut input = base_input();
    input.vendor.area_budget = Area::from_mm2(250.0); // below system+PHY floor
    let err = ador::search::search(&input).unwrap_err();
    assert!(matches!(
        err,
        ador::search::SearchError::NoFeasibleCandidate { .. }
    ));
}

/// An unsatisfiable SLA still returns the best effort plus feedback notes
/// (the paper's "propose along with the additional specs needed" path).
#[test]
fn feedback_path_engages() {
    let mut input = base_input();
    input.user.ttft_max = Seconds::from_micros(50.0);
    let outcome = ador::search::search(&input).unwrap();
    assert!(!outcome.satisfied);
    assert!(
        outcome.notes.iter().any(|n| n.contains("TTFT")),
        "{:?}",
        outcome.notes
    );
}

/// The search outcome is reproducible (pure function of its input).
#[test]
fn search_is_deterministic() {
    let input = base_input();
    let a = ador::search::search(&input).unwrap();
    let b = ador::search::search(&input).unwrap();
    assert_eq!(a.architecture, b.architecture);
    assert_eq!(a.ttft, b.ttft);
    assert_eq!(a.tbt, b.tbt);
}
