//! Speculative-decoding regression tests: the pinned fixed-depth TBT win,
//! the pinned SLO-adaptive fleet-goodput win, bit-identity of the
//! speculation-off path, seeded determinism of the acceptance process,
//! and property tests for token conservation and the stop-boundary clamp.

use ador::cluster::scenarios::{
    spec_engine_config, spec_fleet, spec_mix, SPEC_RATE, SPEC_REPLICAS, SPEC_REQUESTS, SPEC_SEED,
};
use ador::cluster::{ClusterSim, FleetReport};
use ador::model::presets;
use ador::perf::Deployment;
use ador::serving::{
    QosReport, Request, RequestGenerator, ServingSim, SimConfig, Slo, SpeculationConfig,
    SpeculationPolicy, TraceProfile,
};
use ador::units::Seconds;
use proptest::prelude::*;

fn engine_report(policy: SpeculationPolicy, acceptance: f64) -> QosReport {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    ServingSim::new(
        &arch,
        &model,
        Deployment::single_device(),
        spec_engine_config(policy, acceptance),
    )
    .unwrap()
    .run(TraceProfile::ultrachat_like())
    .unwrap()
}

fn fleet_report(policy: SpeculationPolicy) -> FleetReport {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    ClusterSim::new(
        &arch,
        &model,
        Deployment::single_device(),
        spec_fleet(SPEC_REPLICAS, policy),
    )
    .unwrap()
    .run(&spec_mix(SPEC_RATE), SPEC_REQUESTS, SPEC_SEED)
    .unwrap()
}

/// The acceptance pin, engine half: on the weight-bound single-engine
/// scenario, every positive fixed depth strictly improves mean TBT over
/// `Off` once draft acceptance reaches 0.7 — multi-token commits divide
/// the inter-token gap faster than the verify pass grows it.
#[test]
fn fixed_depth_improves_mean_tbt_over_off_at_acceptance_070_and_up() {
    for acceptance in [0.7, 0.9] {
        let off = engine_report(SpeculationPolicy::Off, acceptance);
        assert_eq!(off.drafted_tokens, 0);
        for k in [1usize, 2, 4] {
            let fixed = engine_report(SpeculationPolicy::Fixed(k), acceptance);
            assert!(
                fixed.tbt.mean < off.tbt.mean,
                "Fixed({k}) at acceptance {acceptance} must beat Off on mean TBT: \
                 {} vs {}",
                fixed.tbt.mean,
                off.tbt.mean
            );
            assert!(fixed.drafted_tokens > 0);
            // The committed-run mechanism, not a timing accident: the
            // realized acceptance tracks the leading-run expectation.
            assert!(fixed.acceptance_rate() > 0.0);
            assert!(fixed.acceptance_rate() <= acceptance + 0.05);
        }
    }
}

/// The acceptance pin, fleet half: on the pinned compute-bound
/// mixed-tenant fleet, `SloAdaptive` strictly beats `Off` and every swept
/// fixed depth on goodput (generated tokens from SLO-met requests per
/// second) — and the mechanism is visible: it drafts *fewer* tokens than
/// the mid fixed depths while converting far more chatbot requests to
/// SLO-met.
#[test]
fn slo_adaptive_tops_fleet_goodput_on_the_mixed_tenant_scenario() {
    let adaptive = fleet_report(SpeculationPolicy::SloAdaptive);
    let ada_fleet = adaptive.fleet.as_ref().unwrap();
    let fixed: Vec<(String, FleetReport)> = [
        SpeculationPolicy::Off,
        SpeculationPolicy::Fixed(1),
        SpeculationPolicy::Fixed(2),
        SpeculationPolicy::Fixed(4),
    ]
    .into_iter()
    .map(|p| (p.to_string(), fleet_report(p)))
    .collect();

    for (name, report) in &fixed {
        let rival = report.fleet.as_ref().unwrap();
        assert!(
            ada_fleet.goodput_tokens_per_sec > rival.goodput_tokens_per_sec,
            "slo-adaptive goodput {:.0} must strictly beat {name} at {:.0}",
            ada_fleet.goodput_tokens_per_sec,
            rival.goodput_tokens_per_sec
        );
        assert!(
            adaptive.tenants[0].attainment > report.tenants[0].attainment,
            "the goodput win must come from the latency tenant: \
             slo-adaptive chatbot attainment {:.3} vs {name} {:.3}",
            adaptive.tenants[0].attainment,
            report.tenants[0].attainment
        );
    }
    // Budgeted targeting, not brute force: strictly fewer drafted tokens
    // than every speculating fixed depth.
    for (name, report) in &fixed[1..] {
        let rival = report.fleet.as_ref().unwrap();
        assert!(
            ada_fleet.drafted_tokens < rival.drafted_tokens,
            "slo-adaptive must draft less than {name}: {} vs {}",
            ada_fleet.drafted_tokens,
            rival.drafted_tokens
        );
    }
    // Targeting the 0.85-acceptance tenant shows up as a realized
    // acceptance above every all-tenant fixed depth's.
    for (name, report) in &fixed[1..] {
        let rival = report.fleet.as_ref().unwrap();
        assert!(
            ada_fleet.acceptance_rate() > rival.acceptance_rate(),
            "slo-adaptive realized acceptance {:.2} must beat {name}'s {:.2}",
            ada_fleet.acceptance_rate(),
            rival.acceptance_rate()
        );
    }
    // Goodput never exceeds raw throughput, and the throughput sacrifice
    // against Off stays modest (the budget cap at work).
    let off = fixed[0].1.fleet.as_ref().unwrap();
    assert!(ada_fleet.goodput_tokens_per_sec <= ada_fleet.tokens_per_sec);
    assert!(
        ada_fleet.tokens_per_sec > 0.9 * off.tokens_per_sec,
        "the verify budget must bound the throughput cost: {:.0} vs {:.0}",
        ada_fleet.tokens_per_sec,
        off.tokens_per_sec
    );
}

/// `SpeculationPolicy::Off` reproduces the pre-speculation engine
/// bit-identically, whatever the other speculation knobs say, and SLO /
/// acceptance tags on requests change nothing while speculation is off.
#[test]
fn speculation_off_is_bit_identical_to_the_baseline_engine() {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let base_cfg = SimConfig::new(6.0, 24).with_requests(80).with_seed(5);
    let requests = RequestGenerator::new(6.0, TraceProfile::ultrachat_like(), 5).take(80);

    let run = |cfg: SimConfig, requests: Vec<Request>| {
        ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run_requests(requests)
            .unwrap()
    };

    // Exotic-but-off speculation config: bit-identical outcomes.
    let off_cfg = base_cfg.with_speculation(
        SpeculationConfig::off()
            .with_seed(99)
            .with_max_depth(7)
            .with_default_acceptance(0.99),
    );
    let (baseline_report, baseline_outcomes) = run(base_cfg, requests.clone());
    let (off_report, off_outcomes) = run(off_cfg, requests.clone());
    assert_eq!(baseline_report, off_report);
    assert_eq!(baseline_outcomes, off_outcomes);
    assert_eq!(off_report.drafted_tokens, 0);
    assert_eq!(off_report.rejected_tokens, 0);

    // Tagged requests under Off: identical timing for every request (the
    // embedded request differs by its tags, so compare the measurements).
    let tagged: Vec<Request> = requests
        .iter()
        .map(|r| r.with_slo(Slo::strict()).with_accept_rate(0.9))
        .collect();
    let (_, tagged_outcomes) = run(base_cfg, tagged);
    for (plain, tagged) in baseline_outcomes.iter().zip(&tagged_outcomes) {
        assert_eq!(plain.request.id, tagged.request.id);
        assert_eq!(plain.ttft, tagged.ttft);
        assert_eq!(plain.mean_tbt, tagged.mean_tbt);
        assert_eq!(plain.max_tbt, tagged.max_tbt);
        assert_eq!(plain.e2e, tagged.e2e);
    }
}

/// The acceptance process is seeded and deterministic: the same
/// speculation seed reproduces the run exactly, a different seed moves
/// the accepted runs (and therefore the report) while conserving tokens.
#[test]
fn acceptance_process_is_seeded_and_deterministic() {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let run = |spec_seed: u64| {
        let cfg = SimConfig::new(8.0, 16)
            .with_requests(60)
            .with_seed(3)
            .with_speculation(
                SpeculationConfig::new(SpeculationPolicy::Fixed(3))
                    .with_seed(spec_seed)
                    .with_default_acceptance(0.5),
            );
        ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run(TraceProfile::short_chat())
            .unwrap()
    };
    let a = run(11);
    let b = run(11);
    let c = run(12);
    assert_eq!(a, b, "same speculation seed, same run");
    assert_ne!(a, c, "the speculation seed must reach the verify draws");
    for r in [&a, &c] {
        assert_eq!(r.drafted_tokens, r.accepted_tokens + r.rejected_tokens);
    }
}

/// Regression for the stop-boundary clamp: a request finishing mid-verify
/// never commits past its declared response length, even at full
/// acceptance and a depth far beyond the remaining tokens.
#[test]
fn verify_never_commits_past_max_new_tokens() {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    for output_tokens in [1usize, 2, 3, 5, 8] {
        let cfg = SimConfig::new(1.0, 8).with_speculation(
            SpeculationConfig::new(SpeculationPolicy::Fixed(8))
                .with_max_depth(8)
                .with_default_acceptance(1.0),
        );
        let (report, outcomes) = ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run_requests(vec![Request::new(0, Seconds::ZERO, 64, output_tokens)])
            .unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(
            report.generated_tokens, output_tokens,
            "a {output_tokens}-token response must commit exactly \
             {output_tokens} tokens"
        );
        assert_eq!(
            report.drafted_tokens,
            report.accepted_tokens + report.rejected_tokens
        );
        // Full acceptance and depth clamping: every draft inside the stop
        // boundary is accepted, so commits are drafted + verify tokens.
        assert_eq!(report.rejected_tokens, 0);
        assert!(report.accepted_tokens < output_tokens);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Token conservation under speculation, across seeds, rates,
    /// policies and acceptance rates: every drafted token is either
    /// accepted or rejected, committed output matches the declared
    /// response lengths exactly, every request completes, and the engine
    /// drains clean.
    #[test]
    fn speculation_conserves_tokens(
        seed in 0u64..500,
        rate in 2.0f64..12.0,
        policy_pick in 0usize..6,
        acceptance in 0.3f64..0.95,
    ) {
        let arch = ador::baselines::ador_table3();
        let model = presets::llama3_8b();
        // 0..=4 → Fixed(k) (0 being the off-equivalent), 5 → SloAdaptive.
        let adaptive = policy_pick == 5;
        let policy = if adaptive {
            SpeculationPolicy::SloAdaptive
        } else {
            SpeculationPolicy::Fixed(policy_pick)
        };
        let cfg = SimConfig::new(rate, 16).with_speculation(
            SpeculationConfig::new(policy)
                .with_seed(seed)
                .with_default_acceptance(acceptance),
        );
        // Half the stream carries a strict SLO (so SloAdaptive has
        // latency tenants to target), half carries no contract.
        let requests: Vec<Request> = RequestGenerator::new(
            rate,
            TraceProfile::short_chat(),
            seed,
        )
        .take(40)
        .into_iter()
        .map(|r| {
            if r.id % 2 == 0 {
                r.with_slo(Slo::strict()).with_accept_rate(acceptance)
            } else {
                r
            }
        })
        .collect();
        let declared: usize = requests.iter().map(|r| r.output_tokens).sum();

        let (report, outcomes) =
            ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run_requests(requests)
                .unwrap();
        prop_assert_eq!(outcomes.len(), 40);
        prop_assert_eq!(report.generated_tokens, declared);
        prop_assert_eq!(
            report.drafted_tokens,
            report.accepted_tokens + report.rejected_tokens
        );
        prop_assert!(report.accepted_tokens <= report.drafted_tokens);
        if !adaptive && !matches!(policy, SpeculationPolicy::Fixed(0)) {
            // Every Fixed(k ≥ 1) run decodes multi-token responses, so
            // the sampler must actually be exercised. (SloAdaptive may
            // legitimately draft nothing when no request is urgent.)
            prop_assert!(report.drafted_tokens > 0);
        }
    }

    /// The speculation-off path stays bit-identical to the baseline
    /// engine across workloads — the guard that the whole subsystem is
    /// inert unless asked for.
    #[test]
    fn off_path_matches_baseline_across_seeds(
        seed in 0u64..1000,
        rate in 1.0f64..10.0,
    ) {
        let arch = ador::baselines::ador_table3();
        let model = presets::llama3_8b();
        let base = SimConfig::new(rate, 12).with_requests(30).with_seed(seed);
        let off = base.with_speculation(SpeculationConfig::off().with_seed(seed));
        let run = |cfg: SimConfig| {
            ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run(TraceProfile::short_chat())
                .unwrap()
        };
        prop_assert_eq!(run(base), run(off));
    }
}
