//! Span-scoped allocation audit of the engine hot path, behind the
//! `profile` feature (`cargo test --features profile --test alloc_audit`).
//!
//! The self-profiler (`ador::serving::profile`) keeps two contracts this
//! test pins end-to-end with a real counting allocator installed:
//!
//! * every `Engine::step` stage is metered (calls advance with steps),
//!   and steady-state decode — full batch, no arrivals, no completions —
//!   stays within the same allocations-per-step budget the featureless
//!   `bench_attribution` artifact enforces;
//! * profiling is deterministic: same-seed runs produce the same stage
//!   `calls` layout (allocation *counts* are a pure function of the
//!   deterministic work, so replays agree).
//!
//! The counting `GlobalAlloc` lives here, not in the library: the
//! workspace crates are `forbid(unsafe_code)`, so the harness owns the
//! one unavoidable `unsafe impl` and hands the engine a safe
//! `fn() -> u64` probe via `install_alloc_probe`.
#![cfg(feature = "profile")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ador::model::presets;
use ador::perf::Deployment;
use ador::serving::profile::{self, StepProfile, STAGES};
use ador::serving::{Engine, Request, ServingSim, SimConfig};
use ador::units::Seconds;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter
// bump is a side effect that never touches the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn probe() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const BATCH: usize = 32;
const MEASURED_STEPS: u64 = 256;

/// Builds one engine, saturates it with long decodes, and warms it past
/// prefill and admission into pure decode.
fn steady_engine<'a>(
    arch: &'a ador::hw::Architecture,
    model: &'a ador::model::ModelConfig,
) -> Engine<'a> {
    let mut engine = ServingSim::new(
        arch,
        model,
        Deployment::single_device(),
        SimConfig::new(1.0, BATCH),
    )
    .expect("engine builds")
    .engine();
    for id in 0..BATCH as u64 {
        engine
            .submit(Request::new(id, Seconds::ZERO, 64, 4_096))
            .expect("submit");
    }
    while engine.queue_depth() > 0 {
        engine.step().expect("warmup step");
    }
    for _ in 0..8 {
        engine.step().expect("warmup step");
    }
    engine
}

fn run_measured(engine: &mut Engine<'_>) -> (StepProfile, StepProfile) {
    let before = *engine.step_profile();
    for _ in 0..MEASURED_STEPS {
        engine.step().expect("measured step");
    }
    (before, *engine.step_profile())
}

#[test]
fn steady_decode_stage_profile_is_metered_bounded_and_deterministic() {
    // First install wins process-wide; a second call is a no-op, so this
    // holds whichever test in the binary runs first.
    profile::install_alloc_probe(probe);

    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let mut engine = steady_engine(&arch, &model);
    let (before, after) = run_measured(&mut engine);

    // Every stage is metered: steps and per-stage calls advance together.
    let steps = after.steps - before.steps;
    assert_eq!(steps, MEASURED_STEPS, "every measured step is profiled");
    for stage in STAGES {
        let calls = after.stage(stage).calls - before.stage(stage).calls;
        assert!(
            calls >= MEASURED_STEPS,
            "stage {} recorded {calls} calls over {MEASURED_STEPS} steps",
            stage.label()
        );
    }

    // The steady-decode loop stays within the same allocations-per-step
    // budget the committed BENCH_attribution.json artifact enforces.
    let allocs = after.total_allocs() - before.total_allocs();
    let per_step = allocs as f64 / MEASURED_STEPS as f64;
    assert!(
        per_step <= ador_bench::schema::STEADY_DECODE_ALLOCS_PER_STEP_CAP,
        "steady decode allocates {per_step:.2}/step (cap {})",
        ador_bench::schema::STEADY_DECODE_ALLOCS_PER_STEP_CAP
    );
    assert!(allocs > 0, "the probe is live: decode steps do allocate");

    // Deterministic replay: a second same-seed engine walks the same
    // stage-call layout (alloc counts can differ across process states;
    // the call structure cannot).
    let mut replay = steady_engine(&arch, &model);
    let (replay_before, replay_after) = run_measured(&mut replay);
    for stage in STAGES {
        assert_eq!(
            replay_after.stage(stage).calls - replay_before.stage(stage).calls,
            after.stage(stage).calls - before.stage(stage).calls,
            "stage {} call count must replay exactly",
            stage.label()
        );
    }
}
