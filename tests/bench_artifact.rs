//! Committed perf-artifact checks: the machine-readable baselines at the
//! workspace root must exist and satisfy their schema, so CI fails when
//! an artifact goes missing, a bench's emitter drifts from the schema, or
//! a hand edit corrupts the file.

/// `BENCH_cluster.json` — the fleet-driver wall-clock grid emitted by
/// `cargo bench -p ador-bench --bench bench_cluster`. Schema-only (cell
/// structure, positive wall-clocks, drivers-agree flags): a `--quick`
/// smoke run and the full committed grid both pass, so re-running the
/// bench locally never breaks the suite.
#[test]
fn committed_bench_cluster_grid_is_valid() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_cluster.json");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "BENCH_cluster.json must be committed at the workspace root \
             (regenerate with `cargo bench -p ador-bench --bench bench_cluster`): {e}"
        )
    });
    ador_bench::schema::validate_bench_cluster(&text)
        .unwrap_or_else(|e| panic!("BENCH_cluster.json failed its schema: {e}"));
}

/// `BENCH_telemetry.json` — the telemetry-overhead grid emitted by
/// `cargo bench -p ador-bench --bench bench_telemetry`. Beyond cell
/// structure, the schema enforces the observability budget: at the
/// 100k-request scale, tracing-on wall-clock stays within 10 % of
/// tracing-off, and every measured cell re-verified that telemetry did
/// not perturb the fleet report.
#[test]
fn committed_bench_telemetry_grid_is_valid() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_telemetry.json");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "BENCH_telemetry.json must be committed at the workspace root \
             (regenerate with `cargo bench -p ador-bench --bench bench_telemetry`): {e}"
        )
    });
    ador_bench::schema::validate_bench_telemetry(&text)
        .unwrap_or_else(|e| panic!("BENCH_telemetry.json failed its schema: {e}"));
}

/// `BENCH_disagg.json` — the disaggregation co-exploration emitted by
/// `cargo bench -p ador-bench --bench exp_disagg`. Beyond candidate
/// structure (iso-count pools, attainment in [0, 1], finite latency and
/// goodput figures), the schema enforces the headline result on full
/// runs: the committed artifact must carry the disaggregated-beats-
/// best-homogeneous win. A `--quick` smoke artifact is structurally
/// valid but exempt from the win requirement.
#[test]
fn committed_bench_disagg_is_valid() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_disagg.json");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "BENCH_disagg.json must be committed at the workspace root \
             (regenerate with `cargo bench -p ador-bench --bench exp_disagg`): {e}"
        )
    });
    ador_bench::schema::validate_bench_disagg(&text)
        .unwrap_or_else(|e| panic!("BENCH_disagg.json failed its schema: {e}"));
}

/// `BENCH_attribution.json` — the SLO-miss attribution artifact emitted
/// by `cargo bench -p ador-bench --bench bench_attribution`. Beyond cell
/// structure, the schema enforces the attribution contracts on full
/// runs: attribution-on wall-clock stays within 10 % of tracing-only at
/// the 100k-request scale, steady-decode allocations per step stay
/// under the self-profiler budget, and the blame comparison carries the
/// pinned topology shift (aggregated fleets blame prefill-interference,
/// disaggregated fleets blame something else). A `--quick` smoke
/// artifact is structurally valid but exempt from the pins.
#[test]
fn committed_bench_attribution_is_valid() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_attribution.json");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "BENCH_attribution.json must be committed at the workspace root \
             (regenerate with `cargo bench -p ador-bench --bench bench_attribution`): {e}"
        )
    });
    ador_bench::schema::validate_bench_attribution(&text)
        .unwrap_or_else(|e| panic!("BENCH_attribution.json failed its schema: {e}"));
}
