//! Prefix-cache regression tests: the pinned cache-on-vs-off win on the
//! session workload, the pinned cache-affinity-vs-scatter routing win,
//! and property tests for the refcounted shared-block bookkeeping and the
//! KV-budget invariant under caching.

use std::collections::HashMap;

use ador::cluster::scenarios::{
    session_fleet, session_workload, SESSION_ENGINE_RATE, SESSION_RATE, SESSION_REQUESTS,
    SESSION_SEED,
};
use ador::cluster::{ClusterSim, FleetReport, RouterPolicy, TenantClass, TenantMix};
use ador::model::presets;
use ador::perf::Deployment;
use ador::serving::{PrefixCache, ServingSim, SimConfig, StepEvent, PREFIX_BLOCK_TOKENS};
use proptest::prelude::*;

fn run_fleet(replicas: usize, policy: RouterPolicy, caching: bool, rate: f64) -> FleetReport {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let cfg = session_fleet(replicas, policy).with_prefix_caching(caching);
    ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
        .unwrap()
        .run(
            &session_workload(rate),
            if replicas == 1 {
                SESSION_REQUESTS / 2
            } else {
                SESSION_REQUESTS
            },
            SESSION_SEED,
        )
        .unwrap()
}

/// The acceptance pin, engine half: on the seeded multi-turn session
/// scenario with identical arrivals, turning the prefix cache on strictly
/// reduces both the total prefilled tokens and the mean TTFT — follow-up
/// turns skip re-prefilling the conversation history.
#[test]
fn cache_on_strictly_reduces_prefill_and_ttft_on_sessions() {
    let off = run_fleet(1, RouterPolicy::RoundRobin, false, SESSION_ENGINE_RATE);
    let on = run_fleet(1, RouterPolicy::RoundRobin, true, SESSION_ENGINE_RATE);
    let (off, on) = (off.fleet.unwrap(), on.fleet.unwrap());

    assert!(
        on.prefilled_tokens < off.prefilled_tokens,
        "cache on must prefill strictly less: {} vs {}",
        on.prefilled_tokens,
        off.prefilled_tokens
    );
    assert!(
        on.ttft.mean < off.ttft.mean,
        "cache on must lower mean TTFT: {} vs {}",
        on.ttft.mean,
        off.ttft.mean
    );
    // The mechanism: a healthy block hit rate, with hits + misses +
    // unshareable tails accounting for every prompt token.
    assert!(
        on.prefix_hit_rate() > 0.5,
        "session turns should mostly hit ({:.2})",
        on.prefix_hit_rate()
    );
    assert_eq!(
        on.prefilled_tokens + on.prefix_hit_tokens,
        off.prefilled_tokens,
        "hits must exactly cover the prefill the cache skipped"
    );
    // Cache off is byte-identical to the pre-cache engine: no cache
    // metrics leak in.
    assert_eq!(off.prefix_hit_tokens + off.prefix_miss_tokens, 0);
}

/// The acceptance pin, fleet half: at the pinned overload rate, sticky
/// cache-affinity routing converts per-replica prefix reuse into strictly
/// higher SLO attainment than join-shortest-queue scatter — and the
/// mechanism (a higher fleet hit rate, fewer prefilled tokens) is
/// visible, not incidental.
#[test]
fn cache_affinity_beats_jsq_on_session_slo_attainment() {
    let affinity = run_fleet(4, RouterPolicy::CacheAffinity, true, SESSION_RATE);
    let jsq = run_fleet(4, RouterPolicy::JoinShortestQueue, true, SESSION_RATE);

    assert!(
        affinity.fleet_attainment() > jsq.fleet_attainment(),
        "CacheAffinity {:.3} must strictly beat JSQ {:.3}",
        affinity.fleet_attainment(),
        jsq.fleet_attainment()
    );
    let (aff_fleet, jsq_fleet) = (affinity.fleet.unwrap(), jsq.fleet.unwrap());
    assert!(
        aff_fleet.prefix_hit_rate() > 2.0 * jsq_fleet.prefix_hit_rate(),
        "locality must show in the hit rate: {:.2} vs {:.2}",
        aff_fleet.prefix_hit_rate(),
        jsq_fleet.prefix_hit_rate()
    );
    assert!(
        aff_fleet.prefilled_tokens < jsq_fleet.prefilled_tokens,
        "saved prefill is where the attainment comes from"
    );
    // Both fleets served the full pinned stream.
    assert_eq!(affinity.completed, SESSION_REQUESTS);
    assert_eq!(jsq.completed, SESSION_REQUESTS);
}

/// Routing determinism extends to the new policy: same seed, same
/// assignment trace and report; the pin table actually reacts to the
/// workload (a different seed moves sessions).
#[test]
fn cache_affinity_routing_is_deterministic() {
    let a = run_fleet(4, RouterPolicy::CacheAffinity, true, SESSION_RATE);
    let b = run_fleet(4, RouterPolicy::CacheAffinity, true, SESSION_RATE);
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a, b);

    // All turns of one session land on one replica unless spilled; with
    // a healthy spill threshold most sessions never move.
    let mix = session_workload(SESSION_RATE);
    let stream = mix.generate(SESSION_REQUESTS, SESSION_SEED);
    let mut replicas_of: HashMap<u64, Vec<usize>> = HashMap::new();
    for (cr, (id, replica)) in stream.iter().zip(&a.assignments) {
        assert_eq!(cr.request.id, *id);
        replicas_of
            .entry(cr.request.prefix_group.expect("session traffic"))
            .or_default()
            .push(replica.expect("no admission control"));
    }
    let pinned_whole_run = replicas_of
        .values()
        .filter(|r| r.iter().all(|&x| x == r[0]))
        .count();
    assert!(
        pinned_whole_run * 3 >= replicas_of.len() * 2,
        "most sessions must stay pinned: {} of {}",
        pinned_whole_run,
        replicas_of.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shared-block bookkeeping: blocks are charged once no matter how
    /// many holders; `resident == Σ unique live blocks`; releasing every
    /// holder makes everything evictable and eviction drains the cache
    /// to exactly zero (`free == budget − sum(live unique blocks)` at
    /// both extremes of the refcount lifecycle).
    #[test]
    fn shared_blocks_are_charged_once_and_drain_clean(
        groups in proptest::collection::vec(0u64..6, 12),
        lengths in proptest::collection::vec(1usize..40, 12),
    ) {
        let b = PREFIX_BLOCK_TOKENS;
        let mut cache = PrefixCache::new();
        let mut deepest: HashMap<u64, usize> = HashMap::new(); // group -> blocks
        let mut holders: Vec<usize> = Vec::new();
        for (&group, &blocks) in groups.iter().zip(&lengths) {
            let want = blocks * b;
            let (matched, node) = cache.acquire(group, want + b - 1);
            prop_assert_eq!(
                matched,
                deepest.get(&group).copied().unwrap_or(0).min(blocks) * b,
                "a chain must match exactly its already-inserted prefix"
            );
            let (leaf, fresh) = cache.extend(group, node, matched, want);
            let known = deepest.entry(group).or_insert(0);
            let expect_fresh = blocks.saturating_sub(*known) * b;
            prop_assert_eq!(fresh, expect_fresh, "only unseen blocks are fresh");
            *known = (*known).max(blocks);
            holders.push(leaf);

            // The cardinal invariant: resident tokens == Σ unique live
            // blocks across groups, regardless of holder multiplicity.
            let unique: usize = deepest.values().sum();
            prop_assert_eq!(cache.resident_tokens(), unique * b);
        }

        // While held, nothing may be evicted.
        prop_assert_eq!(cache.evict(usize::MAX / 2), 0);

        // Release every holder: all blocks become evictable, and evicting
        // them reclaims exactly the resident population.
        for node in holders {
            cache.release(node);
        }
        let resident = cache.resident_tokens();
        prop_assert_eq!(cache.evictable_tokens(), resident);
        prop_assert_eq!(cache.evict(resident), resident);
        prop_assert_eq!(cache.resident_tokens(), 0);
        prop_assert_eq!(cache.evictable_tokens(), 0);
    }

    /// The KV-budget invariant under caching: across seeds, loads and KV
    /// scarcity, the resident token count (private contexts plus shared
    /// blocks, shared blocks counted once) never exceeds the budget at
    /// any step, every session turn completes, and after drain the only
    /// residue is retained cache blocks — `free == budget − resident
    /// cache tokens` with no private stragglers.
    #[test]
    fn kv_budget_holds_under_prefix_caching(
        seed in 0u64..1000,
        rate in 2.0f64..30.0,
        kv_fraction in 0.02f64..0.08,
        count in 20usize..60,
    ) {
        let arch = ador::baselines::ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(rate, 24)
            .with_kv_memory_fraction(kv_fraction)
            .with_prefix_caching(true);
        let sim = ServingSim::new(&arch, &model, Deployment::single_device(), cfg).unwrap();
        let budget = sim.kv_budget_tokens();
        let mut engine = sim.engine();

        let mix = TenantMix::new(vec![TenantClass::chat_sessions(1.0)])
            .with_aggregate_rate(rate);
        for cr in mix.generate(count, seed) {
            engine.submit(cr.request).unwrap();
        }
        loop {
            // The internal debug assertion (exercised by this debug-build
            // test) pins kv_in_use == Σ private + resident cache tokens;
            // here we pin the budget bound and the ledger's visible half.
            prop_assert!(
                engine.kv_in_use() <= budget,
                "kv_in_use {} over budget {}",
                engine.kv_in_use(),
                budget
            );
            prop_assert!(engine.prefix_resident_tokens() <= engine.kv_in_use());
            if engine.step().unwrap() == StepEvent::Idle {
                break;
            }
        }
        prop_assert_eq!(engine.completed(), count);
        prop_assert_eq!(
            engine.kv_in_use(),
            engine.prefix_resident_tokens(),
            "after drain, free == budget − retained cache blocks"
        );
    }
}
