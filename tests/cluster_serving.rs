//! Cluster-serving integration tests: the pinned router-policy ordering,
//! routing determinism, SLO-aware partition isolation, the event-core /
//! lockstep-oracle equivalence pins, and the fleet-wide conservation
//! invariant.

use ador::cluster::scenarios::{
    disagg_cluster, disagg_fleet, disagg_mix, scarce_kv_fleet, skewed_two_tenant, DISAGG_RATE,
    DISAGG_REQUESTS, DISAGG_SEED, SKEWED_MIX_RATE, SKEWED_MIX_REQUESTS,
};
use ador::cluster::{
    ClusterConfig, ClusterRequest, ClusterSim, DriveMode, FleetSpec, ReplicaSpec, RouterPolicy,
    TenantClass, TenantMix,
};
use ador::model::presets;
use ador::perf::Deployment;
use ador::serving::{
    LatencyStats, QosReport, Request, RequestOutcome, SimConfig, SpeculationConfig,
    SpeculationPolicy,
};
use ador::units::Seconds;
use proptest::prelude::*;

/// The pinned scenario (shared with `exp_cluster` and `fleet_serving`
/// via `ador::cluster::scenarios`): a skewed two-tenant mix — 70 %
/// steady strict-SLO chat, 30 % bursty MMPP summarization with heavy
/// prompts — on four 16-slot replicas whose KV memory is scarce (5 %
/// fraction), at a fixed 7 req/s aggregate. Scarce KV makes placement
/// quality visible: stacking KV-heavy work on one replica triggers
/// preemption storms there.
fn skewed_mix() -> TenantMix {
    skewed_two_tenant(SKEWED_MIX_RATE)
}

fn run_policy(policy: RouterPolicy, seed: u64) -> ador::cluster::FleetReport {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    ClusterSim::new(
        &arch,
        &model,
        Deployment::single_device(),
        scarce_kv_fleet(4, policy),
    )
    .unwrap()
    .run(&skewed_mix(), SKEWED_MIX_REQUESTS, seed)
    .unwrap()
}

/// The acceptance pin: on the skewed two-tenant mix at a fixed aggregate
/// rate, both adaptive policies achieve strictly higher fleet SLO
/// attainment than round-robin — and the KV-demand-aware policy, which
/// balances the binding resource directly, beats count-balancing too.
#[test]
fn adaptive_policies_beat_round_robin_on_skewed_mix() {
    use ador::cluster::scenarios::SKEWED_MIX_SEED;
    let rr = run_policy(RouterPolicy::RoundRobin, SKEWED_MIX_SEED);
    let jsq = run_policy(RouterPolicy::JoinShortestQueue, SKEWED_MIX_SEED);
    let kv = run_policy(RouterPolicy::LeastKvLoad, SKEWED_MIX_SEED);

    let attain = |r: &ador::cluster::FleetReport| r.fleet_attainment();
    assert!(
        attain(&jsq) > attain(&rr),
        "JSQ {:.4} must strictly beat RR {:.4}",
        attain(&jsq),
        attain(&rr)
    );
    assert!(
        attain(&kv) > attain(&rr),
        "LeastKvLoad {:.4} must strictly beat RR {:.4}",
        attain(&kv),
        attain(&rr)
    );

    // The mechanism, not just the outcome: round-robin blindly stacks
    // KV-heavy work, so it pays far more KV-pressure preemptions than the
    // KV-demand-aware router.
    let preemptions = |r: &ador::cluster::FleetReport| r.fleet.as_ref().unwrap().preemptions;
    assert!(
        preemptions(&kv) < preemptions(&rr) / 2,
        "LeastKvLoad preemptions {} vs RR {}",
        preemptions(&kv),
        preemptions(&rr)
    );

    // Every policy served the whole offered stream (no admission control
    // here): attainment differences come from QoS, not completion count.
    for r in [&rr, &jsq, &kv] {
        assert_eq!(r.completed, SKEWED_MIX_REQUESTS);
        assert_eq!(r.rejected, 0);
    }
}

/// Same seed ⇒ identical per-replica assignment trace (and identical
/// report); a different seed must change the trace. Routing has no hidden
/// nondeterminism: ties break by replica index, and the tenant streams
/// are pure functions of the seed.
#[test]
fn router_assignment_is_deterministic_under_seed() {
    for policy in [
        RouterPolicy::RoundRobin,
        RouterPolicy::JoinShortestQueue,
        RouterPolicy::LeastKvLoad,
        RouterPolicy::SloAware,
    ] {
        let a = run_policy(policy, 11);
        let b = run_policy(policy, 11);
        assert_eq!(
            a.assignments, b.assignments,
            "{policy}: same seed must reproduce the assignment trace"
        );
        assert_eq!(a, b, "{policy}: full fleet reports must match");
        // A different seed draws a different workload, so the report must
        // change. (The round-robin *trace* is seed-independent by design —
        // it cycles regardless of load — so the trace inequality is only
        // checked for the load-aware policies.)
        let c = run_policy(policy, 12);
        assert_ne!(a, c, "{policy}: the seed must actually reach the workload");
        if policy != RouterPolicy::RoundRobin {
            assert_ne!(
                a.assignments, c.assignments,
                "{policy}: load-aware routing must see the new workload"
            );
        }
    }
}

/// SLO-aware routing really partitions: with two classes on four
/// replicas, chat (class 0) only ever lands on replicas {0, 2} and
/// summarization (class 1) on {1, 3}.
#[test]
fn slo_aware_isolates_classes_onto_their_partition() {
    let report = run_policy(RouterPolicy::SloAware, 5);
    let mix = skewed_mix();
    let stream = mix.generate(SKEWED_MIX_REQUESTS, 5);
    for (cr, (id, replica)) in stream.iter().zip(&report.assignments) {
        assert_eq!(cr.request.id, *id);
        let replica = replica.expect("no admission control, nothing shed");
        assert_eq!(
            replica % 2,
            cr.tenant % 2,
            "request {id} of class {} routed off-partition to replica {replica}",
            cr.tenant
        );
    }
}

/// Drives one fleet over an explicit stream in the given mode and
/// returns (global clock at drain, per-replica completed outcomes, full
/// report).
fn drive(
    cfg: ClusterConfig,
    mix: &TenantMix,
    stream: Vec<ClusterRequest>,
) -> (
    Seconds,
    Vec<Vec<ador::serving::RequestOutcome>>,
    ador::cluster::FleetReport,
) {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let mut sim = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg).unwrap();
    sim.submit_stream(mix, stream);
    while sim.advance().unwrap() {}
    let now = sim.now();
    let outcomes = sim
        .replica_outcomes()
        .into_iter()
        .map(<[_]>::to_vec)
        .collect();
    (now, outcomes, sim.finish())
}

/// The tentpole pin: on the pinned scarce-KV scenario, the discrete-event
/// core reproduces the lockstep oracle *exactly* — per-request outcomes
/// replica by replica (completion order included), the routing trace, and
/// the full fleet report. The event core is a driver refactor, not a
/// semantic change.
#[test]
fn event_core_matches_the_lockstep_oracle_on_the_pinned_scenario() {
    use ador::cluster::scenarios::SKEWED_MIX_SEED;
    let mix = skewed_mix();
    let stream = mix.generate(SKEWED_MIX_REQUESTS, SKEWED_MIX_SEED);
    let base = scarce_kv_fleet(4, RouterPolicy::JoinShortestQueue);

    let (event_now, event_outcomes, event_report) = drive(
        base.with_drive_mode(DriveMode::EventDriven),
        &mix,
        stream.clone(),
    );
    let (lock_now, lock_outcomes, lock_report) =
        drive(base.with_drive_mode(DriveMode::Lockstep), &mix, stream);

    assert_eq!(
        event_outcomes, lock_outcomes,
        "per-replica, per-request outcomes must be identical"
    );
    assert_eq!(event_now, lock_now, "drained fleets end on the same clock");
    // The reports differ only in the recorded drive mode's absence — the
    // report carries no mode field, so full equality must hold.
    assert_eq!(event_report, lock_report);
}

/// The drain-phase clock-drift fix, pinned: the merged fleet makespan is
/// exactly the latest per-replica makespan on the shared global clock —
/// not a mix of per-replica timelines — and the fleet clock agrees.
#[test]
fn fleet_makespan_is_the_max_replica_makespan_on_the_shared_clock() {
    let mix = skewed_mix();
    let stream = mix.generate(200, 13);
    let (now, _, report) = drive(scarce_kv_fleet(3, RouterPolicy::RoundRobin), &mix, stream);
    let fleet = report.fleet.as_ref().expect("requests completed");
    let max_replica = report
        .per_replica
        .iter()
        .flatten()
        .map(|r| r.makespan)
        .fold(Seconds::ZERO, Seconds::max);
    assert_eq!(
        fleet.makespan, max_replica,
        "fleet makespan must be the shared-clock max, not a per-replica mix"
    );
    // Nothing was shed, so the global clock ends exactly at the last
    // replica's finish instant.
    assert_eq!(now, max_replica);
    // Throughput is measured over that shared makespan.
    let expected_rps = fleet.completed as f64 * fleet.makespan.recip_rate();
    assert!((fleet.requests_per_sec - expected_rps).abs() < 1e-9);
}

/// A zero queue cap sheds every request: the report must come out clean —
/// no NaN imbalance, no fleet QoS, every tenant fully rejected — rather
/// than dividing by an all-zero token spread.
#[test]
fn all_shed_fleet_reports_a_finite_imbalance() {
    let mix = skewed_mix();
    let stream = mix.generate(40, 7);
    let cfg = scarce_kv_fleet(2, RouterPolicy::JoinShortestQueue).with_queue_cap(0);
    let (_, outcomes, report) = drive(cfg, &mix, stream);

    assert_eq!(report.completed, 0);
    assert_eq!(report.rejected, 40);
    assert!(report.fleet.is_none(), "nothing completed, no fleet QoS");
    assert!(outcomes.iter().all(Vec::is_empty));
    assert!(
        report.imbalance.is_finite(),
        "all-shed imbalance must not be NaN"
    );
    assert_eq!(report.imbalance, 0.0);
    assert_eq!(report.fleet_attainment(), 0.0);
    let rejected: usize = report.tenants.iter().map(|t| t.rejected).sum();
    assert_eq!(rejected, 40);
}

/// Requests that arrive at the *same instant* are routed in generation
/// order: `submit_stream`'s sort is stable, so equal arrival timestamps
/// keep their original order and round-robin cycles replicas in exactly
/// that order. Pinned so the tie-break never silently becomes
/// unstable (which would scramble every same-seed trace).
#[test]
fn equal_arrival_ties_are_routed_in_generation_order() {
    let mix = TenantMix::new(vec![TenantClass::chatbot(1.0)]);
    // Nine requests, three per instant, ids in generation order.
    let stream: Vec<ClusterRequest> = (0..9)
        .map(|i| ClusterRequest {
            request: Request::new(i, Seconds::from_millis(250.0 * (i / 3) as f64), 64, 16),
            tenant: 0,
        })
        .collect();
    let cfg = ClusterConfig::new(3, RouterPolicy::RoundRobin);
    let (_, _, report) = drive(cfg, &mix, stream);

    let ids: Vec<u64> = report.assignments.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, (0..9).collect::<Vec<_>>(), "stable tie-break");
    let replicas: Vec<usize> = report
        .assignments
        .iter()
        .map(|(_, r)| r.expect("nothing shed"))
        .collect();
    assert_eq!(replicas, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
}

/// Like [`drive`], but over an explicit heterogeneous [`FleetSpec`]
/// (per-replica architectures and engine configs) instead of
/// `cfg.replicas` homogeneous copies.
fn drive_fleet(
    fleet: &FleetSpec,
    cfg: ClusterConfig,
    mix: &TenantMix,
    stream: Vec<ClusterRequest>,
) -> (
    Seconds,
    Vec<Vec<RequestOutcome>>,
    ador::cluster::FleetReport,
) {
    let model = presets::llama3_8b();
    let mut sim = ClusterSim::new_fleet(fleet, &model, Deployment::single_device(), cfg).unwrap();
    sim.submit_stream(mix, stream);
    while sim.advance().unwrap() {}
    let now = sim.now();
    let outcomes = sim
        .replica_outcomes()
        .into_iter()
        .map(<[_]>::to_vec)
        .collect();
    (now, outcomes, sim.finish())
}

/// The equivalence pin extended to a heterogeneous two-pool fleet: on
/// the pinned disaggregation scenario (2 prefill-optimized + 2
/// decode-optimized replicas over the pinned KV link, interactive +
/// bursty-ingest mix), the discrete-event core reproduces the lockstep
/// oracle exactly — stitched per-request outcomes, the routing trace,
/// the global clock and the full fleet report, KV-transfer accounting
/// included.
#[test]
fn disaggregated_event_core_matches_lockstep_on_the_heterogeneous_pin() {
    let mix = disagg_mix(DISAGG_RATE);
    let fleet = disagg_fleet(
        &ador::baselines::prefill_optimized(),
        2,
        &ador::baselines::decode_optimized(),
        2,
    );
    let stream = mix.generate(DISAGG_REQUESTS, DISAGG_SEED);
    let base = disagg_cluster(true);

    let (ev_now, ev_outcomes, ev_report) = drive_fleet(
        &fleet,
        base.with_drive_mode(DriveMode::EventDriven),
        &mix,
        stream.clone(),
    );
    let (ls_now, ls_outcomes, ls_report) = drive_fleet(
        &fleet,
        base.with_drive_mode(DriveMode::Lockstep),
        &mix,
        stream,
    );

    assert_eq!(
        ev_outcomes, ls_outcomes,
        "per-replica outcome halves must be identical across drivers"
    );
    assert_eq!(ev_now, ls_now, "drained fleets end on the same clock");
    assert_eq!(ev_report, ls_report);
    // The pin is only meaningful if the scenario actually disaggregates:
    // every completed request shipped its context over the link.
    assert_eq!(ev_report.kv_transfers, ev_report.completed);
    assert!(ev_report.kv_transferred_tokens > 0);
    assert_eq!(ev_report.completed, DISAGG_REQUESTS);
}

/// `QosReport::merge_exact` over genuinely mixed replica configs: a
/// three-replica aggregated fleet where one replica runs prefix caching,
/// two run fixed-depth speculation, and batch caps differ. The fleet
/// report's percentiles must be the *true union* percentiles of the
/// pooled per-request outcomes (not a per-replica aggregate), and the
/// workload counters must be exact sums of the per-replica reports.
#[test]
fn fleet_merge_exact_pools_percentiles_and_sums_counters_across_mixed_replicas() {
    let caching = SimConfig::new(1.0, 16).with_prefix_caching(true);
    let speculating = SimConfig::new(1.0, 8).with_speculation(
        SpeculationConfig::new(SpeculationPolicy::Fixed(2)).with_default_acceptance(0.8),
    );
    let fleet = FleetSpec::new(vec![
        ReplicaSpec::new(ador::baselines::ador_table3(), caching),
        ReplicaSpec::new(ador::baselines::prefill_optimized(), speculating),
        ReplicaSpec::new(ador::baselines::decode_optimized(), speculating),
    ]);
    let mix = TenantMix::new(vec![
        TenantClass::chatbot(6.0),
        TenantClass::summarization(2.0),
    ]);
    let stream = mix.generate(120, 41);
    let cfg = ClusterConfig::new(0, RouterPolicy::JoinShortestQueue);
    let (_, outcomes, report) = drive_fleet(&fleet, cfg, &mix, stream);
    let fleet_qos = report.fleet.as_ref().expect("requests completed");
    let pooled: Vec<RequestOutcome> = outcomes.into_iter().flatten().collect();
    assert_eq!(pooled.len(), 120, "nothing shed, everything completed");

    // Population-derived figures are recomputed exactly from the pooled
    // outcomes: the union percentiles, not a bound over replicas.
    let stats_of = |samples: Vec<Seconds>| LatencyStats::from_samples(&samples);
    assert_eq!(
        fleet_qos.ttft,
        stats_of(pooled.iter().map(|o| o.ttft).collect())
    );
    assert_eq!(
        fleet_qos.tbt,
        stats_of(pooled.iter().map(|o| o.mean_tbt).collect())
    );
    assert_eq!(
        fleet_qos.e2e,
        stats_of(pooled.iter().map(|o| o.e2e).collect())
    );

    // Counter aggregates are exact sums over the per-replica reports —
    // including the counters only some replicas produce (prefix-cache
    // traffic from the caching replica, draft traffic from the
    // speculating pair).
    let parts: Vec<QosReport> = report.per_replica.iter().flatten().cloned().collect();
    assert_eq!(parts.len(), 3, "every replica served something");
    let sum = |f: fn(&QosReport) -> usize| parts.iter().map(f).sum::<usize>();
    assert_eq!(fleet_qos.completed, sum(|r| r.completed));
    assert_eq!(fleet_qos.prefilled_tokens, sum(|r| r.prefilled_tokens));
    assert_eq!(fleet_qos.generated_tokens, sum(|r| r.generated_tokens));
    assert_eq!(fleet_qos.prefix_hit_tokens, sum(|r| r.prefix_hit_tokens));
    assert_eq!(fleet_qos.prefix_miss_tokens, sum(|r| r.prefix_miss_tokens));
    assert_eq!(fleet_qos.drafted_tokens, sum(|r| r.drafted_tokens));
    assert_eq!(fleet_qos.accepted_tokens, sum(|r| r.accepted_tokens));
    assert_eq!(fleet_qos.rejected_tokens, sum(|r| r.rejected_tokens));
    assert!(
        fleet_qos.drafted_tokens > 0,
        "the speculating replicas must actually draft"
    );
    assert_eq!(
        fleet_qos.drafted_tokens,
        fleet_qos.accepted_tokens + fleet_qos.rejected_tokens
    );

    // The exact union percentile never exceeds the conservative
    // bound-based merge it replaces.
    let bound = QosReport::merge(&parts);
    assert!(fleet_qos.ttft.p95 <= bound.ttft.p95);
    assert!(fleet_qos.e2e.p95 <= bound.e2e.p95);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The equivalence pin, broadened: across seeds, fleet sizes, routing
    /// policies and admission control, the event-driven core and the
    /// lockstep oracle produce identical fleet reports (and therefore
    /// identical per-request outcomes and routing traces).
    #[test]
    fn event_core_matches_lockstep_across_seeds_and_policies(
        seed in 0u64..1000,
        replicas in 1usize..5,
        count in 1usize..80,
        policy_pick in 0usize..4,
        capped in 0usize..2,
    ) {
        let policy = [
            RouterPolicy::RoundRobin,
            RouterPolicy::JoinShortestQueue,
            RouterPolicy::LeastKvLoad,
            RouterPolicy::SloAware,
        ][policy_pick];
        let mut cfg = ClusterConfig::new(replicas, policy)
            .with_engine(SimConfig::new(1.0, 8).with_kv_memory_fraction(0.05));
        if capped == 1 {
            cfg = cfg.with_queue_cap(2);
        }
        let mix = TenantMix::new(vec![
            TenantClass::chatbot(7.0),
            TenantClass::summarization(3.0),
        ]);
        let stream = mix.generate(count, seed);
        let (_, ev_outcomes, ev_report) =
            drive(cfg.with_drive_mode(DriveMode::EventDriven), &mix, stream.clone());
        let (_, ls_outcomes, ls_report) =
            drive(cfg.with_drive_mode(DriveMode::Lockstep), &mix, stream);
        prop_assert_eq!(ev_outcomes, ls_outcomes);
        prop_assert_eq!(ev_report, ls_report);
    }

    /// Conservation across the fleet at every step: requests offered to
    /// the cluster are always exactly accounted for as completed, shed,
    /// or in flight — through routing, admission control, KV-pressure
    /// preemption and drain.
    #[test]
    fn fleet_conserves_requests_at_every_step(
        seed in 0u64..1000,
        replicas in 1usize..4,
        count in 1usize..60,
        policy_pick in 0usize..4,
        capped in 0usize..2,
    ) {
        let arch = ador::baselines::ador_table3();
        let model = presets::llama3_8b();
        let policy = [
            RouterPolicy::RoundRobin,
            RouterPolicy::JoinShortestQueue,
            RouterPolicy::LeastKvLoad,
            RouterPolicy::SloAware,
        ][policy_pick];
        let mut cfg = ClusterConfig::new(replicas, policy)
            .with_engine(SimConfig::new(1.0, 8).with_kv_memory_fraction(0.05));
        if capped == 1 {
            cfg = cfg.with_queue_cap(3);
        }
        let mix = TenantMix::new(vec![
            TenantClass::chatbot(8.0),
            TenantClass::summarization(3.0),
        ]);
        let mut sim = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg).unwrap();
        sim.submit_stream(&mix, mix.generate(count, seed));
        loop {
            prop_assert_eq!(
                sim.submitted(),
                sim.completed() + sim.rejected() + sim.in_flight(),
                "conservation violated mid-run"
            );
            if !sim.advance().unwrap() {
                break;
            }
        }
        let report = sim.finish();
        prop_assert_eq!(report.completed + report.rejected, count);
        let by_tenant: usize = report.tenants.iter().map(|t| t.completed + t.rejected).sum();
        prop_assert_eq!(by_tenant, count);
    }

    /// Conservation, broadened to heterogeneous and disaggregated fleets:
    /// with mixed chips (prefill-optimized + decode-optimized specs),
    /// varying pool sizes, both mixes, admission control and the KV link
    /// in play, every offered request is exactly accounted for at every
    /// event boundary as completed, shed, in flight on a replica, or in
    /// transfer over the link.
    #[test]
    fn heterogeneous_fleet_conserves_requests_at_every_step(
        seed in 0u64..1000,
        prefill in 1usize..3,
        decode in 1usize..3,
        count in 1usize..60,
        mix_pick in 0usize..2,
        disagg_pick in 0usize..2,
        capped in 0usize..2,
    ) {
        let disaggregated = disagg_pick == 1;
        let model = presets::llama3_8b();
        let engine = SimConfig::new(1.0, 8).with_kv_memory_fraction(0.05);
        let p_spec = ReplicaSpec::new(ador::baselines::prefill_optimized(), engine);
        let d_spec = ReplicaSpec::new(ador::baselines::decode_optimized(), engine);
        let fleet = if disaggregated {
            FleetSpec::prefill_decode(&p_spec, prefill, &d_spec, decode)
        } else {
            // Same mixed chips, but every replica serves whole requests.
            FleetSpec::new(
                (0..prefill)
                    .map(|_| p_spec.clone())
                    .chain((0..decode).map(|_| d_spec.clone()))
                    .collect(),
            )
        };
        let mut cfg = disagg_cluster(disaggregated);
        if capped == 1 {
            cfg = cfg.with_queue_cap(3);
        }
        let mix = if mix_pick == 0 {
            TenantMix::new(vec![
                TenantClass::chatbot(8.0),
                TenantClass::summarization(3.0),
            ])
        } else {
            disagg_mix(DISAGG_RATE)
        };
        let mut sim =
            ClusterSim::new_fleet(&fleet, &model, Deployment::single_device(), cfg).unwrap();
        sim.submit_stream(&mix, mix.generate(count, seed));
        loop {
            prop_assert_eq!(
                sim.submitted(),
                sim.completed() + sim.rejected() + sim.in_flight() + sim.in_transfer(),
                "conservation violated mid-run"
            );
            if !sim.advance().unwrap() {
                break;
            }
        }
        prop_assert_eq!(sim.in_flight(), 0);
        prop_assert_eq!(sim.in_transfer(), 0);
        let report = sim.finish();
        prop_assert_eq!(report.completed + report.rejected, count);
        let by_tenant: usize = report.tenants.iter().map(|t| t.completed + t.rejected).sum();
        prop_assert_eq!(by_tenant, count);
        if !disaggregated {
            prop_assert_eq!(report.kv_transfers, 0);
        }
    }
}
