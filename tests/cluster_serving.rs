//! Cluster-serving integration tests: the pinned router-policy ordering,
//! routing determinism, SLO-aware partition isolation, and the fleet-wide
//! conservation invariant.

use ador::cluster::scenarios::{
    scarce_kv_fleet, skewed_two_tenant, SKEWED_MIX_RATE, SKEWED_MIX_REQUESTS,
};
use ador::cluster::{ClusterConfig, ClusterSim, RouterPolicy, TenantClass, TenantMix};
use ador::model::presets;
use ador::perf::Deployment;
use ador::serving::SimConfig;
use proptest::prelude::*;

/// The pinned scenario (shared with `exp_cluster` and `fleet_serving`
/// via `ador::cluster::scenarios`): a skewed two-tenant mix — 70 %
/// steady strict-SLO chat, 30 % bursty MMPP summarization with heavy
/// prompts — on four 16-slot replicas whose KV memory is scarce (5 %
/// fraction), at a fixed 7 req/s aggregate. Scarce KV makes placement
/// quality visible: stacking KV-heavy work on one replica triggers
/// preemption storms there.
fn skewed_mix() -> TenantMix {
    skewed_two_tenant(SKEWED_MIX_RATE)
}

fn run_policy(policy: RouterPolicy, seed: u64) -> ador::cluster::FleetReport {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    ClusterSim::new(
        &arch,
        &model,
        Deployment::single_device(),
        scarce_kv_fleet(4, policy),
    )
    .unwrap()
    .run(&skewed_mix(), SKEWED_MIX_REQUESTS, seed)
    .unwrap()
}

/// The acceptance pin: on the skewed two-tenant mix at a fixed aggregate
/// rate, both adaptive policies achieve strictly higher fleet SLO
/// attainment than round-robin — and the KV-demand-aware policy, which
/// balances the binding resource directly, beats count-balancing too.
#[test]
fn adaptive_policies_beat_round_robin_on_skewed_mix() {
    use ador::cluster::scenarios::SKEWED_MIX_SEED;
    let rr = run_policy(RouterPolicy::RoundRobin, SKEWED_MIX_SEED);
    let jsq = run_policy(RouterPolicy::JoinShortestQueue, SKEWED_MIX_SEED);
    let kv = run_policy(RouterPolicy::LeastKvLoad, SKEWED_MIX_SEED);

    let attain = |r: &ador::cluster::FleetReport| r.fleet_attainment();
    assert!(
        attain(&jsq) > attain(&rr),
        "JSQ {:.4} must strictly beat RR {:.4}",
        attain(&jsq),
        attain(&rr)
    );
    assert!(
        attain(&kv) > attain(&rr),
        "LeastKvLoad {:.4} must strictly beat RR {:.4}",
        attain(&kv),
        attain(&rr)
    );

    // The mechanism, not just the outcome: round-robin blindly stacks
    // KV-heavy work, so it pays far more KV-pressure preemptions than the
    // KV-demand-aware router.
    let preemptions = |r: &ador::cluster::FleetReport| r.fleet.as_ref().unwrap().preemptions;
    assert!(
        preemptions(&kv) < preemptions(&rr) / 2,
        "LeastKvLoad preemptions {} vs RR {}",
        preemptions(&kv),
        preemptions(&rr)
    );

    // Every policy served the whole offered stream (no admission control
    // here): attainment differences come from QoS, not completion count.
    for r in [&rr, &jsq, &kv] {
        assert_eq!(r.completed, SKEWED_MIX_REQUESTS);
        assert_eq!(r.rejected, 0);
    }
}

/// Same seed ⇒ identical per-replica assignment trace (and identical
/// report); a different seed must change the trace. Routing has no hidden
/// nondeterminism: ties break by replica index, and the tenant streams
/// are pure functions of the seed.
#[test]
fn router_assignment_is_deterministic_under_seed() {
    for policy in [
        RouterPolicy::RoundRobin,
        RouterPolicy::JoinShortestQueue,
        RouterPolicy::LeastKvLoad,
        RouterPolicy::SloAware,
    ] {
        let a = run_policy(policy, 11);
        let b = run_policy(policy, 11);
        assert_eq!(
            a.assignments, b.assignments,
            "{policy}: same seed must reproduce the assignment trace"
        );
        assert_eq!(a, b, "{policy}: full fleet reports must match");
        // A different seed draws a different workload, so the report must
        // change. (The round-robin *trace* is seed-independent by design —
        // it cycles regardless of load — so the trace inequality is only
        // checked for the load-aware policies.)
        let c = run_policy(policy, 12);
        assert_ne!(a, c, "{policy}: the seed must actually reach the workload");
        if policy != RouterPolicy::RoundRobin {
            assert_ne!(
                a.assignments, c.assignments,
                "{policy}: load-aware routing must see the new workload"
            );
        }
    }
}

/// SLO-aware routing really partitions: with two classes on four
/// replicas, chat (class 0) only ever lands on replicas {0, 2} and
/// summarization (class 1) on {1, 3}.
#[test]
fn slo_aware_isolates_classes_onto_their_partition() {
    let report = run_policy(RouterPolicy::SloAware, 5);
    let mix = skewed_mix();
    let stream = mix.generate(SKEWED_MIX_REQUESTS, 5);
    for (cr, (id, replica)) in stream.iter().zip(&report.assignments) {
        assert_eq!(cr.request.id, *id);
        let replica = replica.expect("no admission control, nothing shed");
        assert_eq!(
            replica % 2,
            cr.tenant % 2,
            "request {id} of class {} routed off-partition to replica {replica}",
            cr.tenant
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation across the fleet at every step: requests offered to
    /// the cluster are always exactly accounted for as completed, shed,
    /// or in flight — through routing, admission control, KV-pressure
    /// preemption and drain.
    #[test]
    fn fleet_conserves_requests_at_every_step(
        seed in 0u64..1000,
        replicas in 1usize..4,
        count in 1usize..60,
        policy_pick in 0usize..4,
        capped in 0usize..2,
    ) {
        let arch = ador::baselines::ador_table3();
        let model = presets::llama3_8b();
        let policy = [
            RouterPolicy::RoundRobin,
            RouterPolicy::JoinShortestQueue,
            RouterPolicy::LeastKvLoad,
            RouterPolicy::SloAware,
        ][policy_pick];
        let mut cfg = ClusterConfig::new(replicas, policy)
            .with_engine(SimConfig::new(1.0, 8).with_kv_memory_fraction(0.05));
        if capped == 1 {
            cfg = cfg.with_queue_cap(3);
        }
        let mix = TenantMix::new(vec![
            TenantClass::chatbot(8.0),
            TenantClass::summarization(3.0),
        ]);
        let mut sim = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg).unwrap();
        sim.submit_stream(&mix, mix.generate(count, seed));
        loop {
            prop_assert_eq!(
                sim.submitted(),
                sim.completed() + sim.rejected() + sim.in_flight(),
                "conservation violated mid-run"
            );
            if !sim.advance().unwrap() {
                break;
            }
        }
        let report = sim.finish();
        prop_assert_eq!(report.completed + report.rejected, count);
        let by_tenant: usize = report.tenants.iter().map(|t| t.completed + t.rejected).sum();
        prop_assert_eq!(by_tenant, count);
    }
}
