//! End-to-end observability contracts: same-seed runs export
//! byte-identical traces, and the Chrome trace-event JSON round-trips
//! through the `ador_bench` parser (i.e. it is real JSON a Perfetto
//! import will accept, not just a string that looks like it).

use ador::cluster::{ClusterConfig, ClusterSim, FleetReport, RouterPolicy, TenantClass, TenantMix};
use ador::model::presets;
use ador::perf::Deployment;
use ador::serving::SimConfig;
use ador::telemetry::{chrome_trace, TelemetryConfig};
use ador::units::Seconds;
use ador_bench::json::{self, Value};

fn traced_fleet(seed: u64) -> FleetReport {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let mix = TenantMix::new(vec![
        TenantClass::chatbot(4.0),
        TenantClass::summarization(2.0),
    ]);
    let cfg = ClusterConfig::new(2, RouterPolicy::JoinShortestQueue)
        .with_engine(SimConfig::new(1.0, 32))
        .with_telemetry(TelemetryConfig::trace().with_series(Seconds::from_millis(100.0)));
    ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
        .expect("fleet builds")
        .run(&mix, 80, seed)
        .expect("fleet runs")
}

#[test]
fn same_seed_runs_export_byte_identical_traces() {
    let a = traced_fleet(13);
    let b = traced_fleet(13);
    let ta = a.telemetry.expect("traced");
    let tb = b.telemetry.expect("traced");
    assert_eq!(ta.events, tb.events, "event streams must be deterministic");
    assert_eq!(ta.series, tb.series, "time series must be deterministic");
    assert_eq!(
        chrome_trace(&ta.events),
        chrome_trace(&tb.events),
        "exported trace must be byte-identical across same-seed runs"
    );
}

#[test]
fn chrome_trace_round_trips_through_the_json_parser() {
    let report = traced_fleet(13);
    let telemetry = report.telemetry.expect("traced");
    let trace = chrome_trace(&telemetry.events);
    let doc = json::parse(&trace).expect("exported trace must be valid JSON");

    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "a completed run produces trace events");

    // Every event carries the Chrome trace-event required fields, and
    // the complete ("X") events have non-negative durations.
    let mut complete = 0;
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph field");
        e.get("pid").and_then(Value::as_f64).expect("pid field");
        assert!(
            e.get("name").and_then(Value::as_str).is_some(),
            "name field"
        );
        match ph {
            "X" => {
                complete += 1;
                let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
                let dur = e.get("dur").and_then(Value::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0, "ts {ts}, dur {dur}");
            }
            "i" | "M" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(complete > 0, "phase spans must appear as complete events");
}

#[test]
fn tracing_leaves_the_fleet_report_unchanged() {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let mix = TenantMix::new(vec![
        TenantClass::chatbot(4.0),
        TenantClass::summarization(2.0),
    ]);
    let run = |telemetry: TelemetryConfig| {
        let cfg = ClusterConfig::new(2, RouterPolicy::LeastKvLoad)
            .with_engine(SimConfig::new(1.0, 32))
            .with_telemetry(telemetry);
        ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
            .expect("fleet builds")
            .run(&mix, 80, 17)
            .expect("fleet runs")
    };
    let off = run(TelemetryConfig::OFF);
    assert!(off.telemetry.is_none(), "untraced runs carry no telemetry");
    let mut on =
        run(TelemetryConfig::flight_recorder(4096).with_series(Seconds::from_millis(50.0)));
    assert!(on.telemetry.take().is_some());
    assert_eq!(on, off, "telemetry must observe, never perturb");
}
