//! End-to-end observability contracts: same-seed runs export
//! byte-identical traces, and the Chrome trace-event JSON round-trips
//! through the `ador_bench` parser (i.e. it is real JSON a Perfetto
//! import will accept, not just a string that looks like it).

use ador::cluster::scenarios::{
    disagg_cluster, disagg_engine, disagg_mix, DISAGG_RATE, DISAGG_REPLICAS, DISAGG_REQUESTS,
    DISAGG_SEED,
};
use ador::cluster::{
    ClusterConfig, ClusterSim, FleetReport, FleetSpec, PoolRole, ReplicaSpec, RouterPolicy,
    TenantClass, TenantMix,
};
use ador::model::presets;
use ador::perf::Deployment;
use ador::serving::SimConfig;
use ador::telemetry::{chrome_trace, Event, EventKind, TelemetryConfig};
use ador::units::Seconds;
use ador_bench::json::{self, Value};

fn traced_fleet(seed: u64) -> FleetReport {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let mix = TenantMix::new(vec![
        TenantClass::chatbot(4.0),
        TenantClass::summarization(2.0),
    ]);
    let cfg = ClusterConfig::new(2, RouterPolicy::JoinShortestQueue)
        .with_engine(SimConfig::new(1.0, 32))
        .with_telemetry(TelemetryConfig::trace().with_series(Seconds::from_millis(100.0)));
    ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
        .expect("fleet builds")
        .run(&mix, 80, seed)
        .expect("fleet runs")
}

#[test]
fn same_seed_runs_export_byte_identical_traces() {
    let a = traced_fleet(13);
    let b = traced_fleet(13);
    let ta = a.telemetry.expect("traced");
    let tb = b.telemetry.expect("traced");
    assert_eq!(ta.events, tb.events, "event streams must be deterministic");
    assert_eq!(ta.series, tb.series, "time series must be deterministic");
    assert_eq!(
        chrome_trace(&ta.events),
        chrome_trace(&tb.events),
        "exported trace must be byte-identical across same-seed runs"
    );
}

#[test]
fn chrome_trace_round_trips_through_the_json_parser() {
    let report = traced_fleet(13);
    let telemetry = report.telemetry.expect("traced");
    let trace = chrome_trace(&telemetry.events);
    let doc = json::parse(&trace).expect("exported trace must be valid JSON");

    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "a completed run produces trace events");

    // Every event carries the Chrome trace-event required fields, and
    // the complete ("X") events have non-negative durations.
    let mut complete = 0;
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph field");
        e.get("pid").and_then(Value::as_f64).expect("pid field");
        assert!(
            e.get("name").and_then(Value::as_str).is_some(),
            "name field"
        );
        match ph {
            "X" => {
                complete += 1;
                let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
                let dur = e.get("dur").and_then(Value::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0, "ts {ts}, dur {dur}");
            }
            "i" | "M" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(complete > 0, "phase spans must appear as complete events");
}

#[test]
fn tracing_leaves_the_fleet_report_unchanged() {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let mix = TenantMix::new(vec![
        TenantClass::chatbot(4.0),
        TenantClass::summarization(2.0),
    ]);
    let run = |telemetry: TelemetryConfig| {
        let cfg = ClusterConfig::new(2, RouterPolicy::LeastKvLoad)
            .with_engine(SimConfig::new(1.0, 32))
            .with_telemetry(telemetry);
        ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
            .expect("fleet builds")
            .run(&mix, 80, 17)
            .expect("fleet runs")
    };
    let off = run(TelemetryConfig::OFF);
    assert!(off.telemetry.is_none(), "untraced runs carry no telemetry");
    let mut on =
        run(TelemetryConfig::flight_recorder(4096).with_series(Seconds::from_millis(50.0)));
    assert!(on.telemetry.take().is_some());
    assert_eq!(on, off, "telemetry must observe, never perturb");
}

/// Runs the pinned disaggregation scenario with per-replica tracing and
/// windowed series (the fleet path reads telemetry off each replica's
/// engine config, not the cluster config).
fn traced_disagg(seed: u64) -> FleetReport {
    let model = presets::llama3_8b();
    let engine = disagg_engine()
        .with_telemetry(TelemetryConfig::trace().with_series(Seconds::from_millis(250.0)));
    let fleet = FleetSpec::prefill_decode(
        &ReplicaSpec::new(ador::baselines::prefill_optimized(), engine),
        DISAGG_REPLICAS / 2,
        &ReplicaSpec::new(ador::baselines::decode_optimized(), engine),
        DISAGG_REPLICAS / 2,
    );
    ClusterSim::new_fleet(
        &fleet,
        &model,
        Deployment::single_device(),
        disagg_cluster(true),
    )
    .expect("fleet builds")
    .run(&disagg_mix(DISAGG_RATE), DISAGG_REQUESTS, seed)
    .expect("fleet runs")
}

#[test]
fn disaggregated_series_stay_separable_by_pool_role() {
    let report = traced_disagg(DISAGG_SEED);
    let telemetry = report.telemetry.expect("traced");
    assert_eq!(
        telemetry.series.len(),
        telemetry.series_roles.len(),
        "every series carries its replica's pool role"
    );
    assert!(
        telemetry.series_roles.contains(&PoolRole::Prefill)
            && telemetry.series_roles.contains(&PoolRole::Decode),
        "a disaggregated fleet tags both pools: {:?}",
        telemetry.series_roles
    );
    // The decode pool commits ~all output tokens; the prefill pool only
    // first tokens — the per-pool goodput split must show it.
    let pool_goodput = |role: PoolRole| -> f64 {
        telemetry
            .series
            .iter()
            .zip(&telemetry.series_roles)
            .filter(|(_, r)| **r == role)
            .flat_map(|(s, _)| s.points.iter().map(|p| p.goodput_tps))
            .sum()
    };
    let prefill = pool_goodput(PoolRole::Prefill);
    let decode = pool_goodput(PoolRole::Decode);
    assert!(
        decode > prefill && decode > 0.0,
        "decode-pool goodput ({decode:.1}) must dominate prefill-pool ({prefill:.1})"
    );

    // Aggregated fleets tag every series Unified.
    let model = presets::llama3_8b();
    let mix = TenantMix::new(vec![TenantClass::chatbot(4.0)]);
    let cfg = ClusterConfig::new(2, RouterPolicy::JoinShortestQueue)
        .with_engine(SimConfig::new(1.0, 32))
        .with_telemetry(TelemetryConfig::trace().with_series(Seconds::from_millis(100.0)));
    let arch = ador::baselines::ador_table3();
    let aggregated = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
        .expect("fleet builds")
        .run(&mix, 60, 5)
        .expect("fleet runs");
    let roles = aggregated.telemetry.expect("traced").series_roles;
    assert!(
        !roles.is_empty() && roles.iter().all(|r| *r == PoolRole::Unified),
        "aggregated fleets are all-Unified: {roles:?}"
    );
}

#[test]
fn kv_transfer_spans_nest_between_prefill_completion_and_decode_admission() {
    let report = traced_disagg(DISAGG_SEED);
    assert!(report.kv_transfers > 0, "the scenario must transfer");
    let telemetry = report.telemetry.as_ref().expect("traced");

    // Index the per-request lifecycle instants across both pools.
    let mut complete_at = std::collections::BTreeMap::new();
    let mut enqueues: std::collections::BTreeMap<u64, Vec<f64>> = std::collections::BTreeMap::new();
    for events in &telemetry.events {
        for e in events {
            match e.kind {
                EventKind::Complete => {
                    // First Complete = the prefill half's finish.
                    complete_at.entry(e.request).or_insert(e.time.get());
                }
                EventKind::Enqueue => enqueues.entry(e.request).or_default().push(e.time.get()),
                _ => {}
            }
        }
    }

    let mut checked = 0;
    let mut start_at = std::collections::BTreeMap::new();
    for (_, e) in &telemetry.transfer_events {
        match e.kind {
            EventKind::KvTransferStart { .. } => {
                start_at.insert(e.request, e.time.get());
            }
            EventKind::KvTransferEnd { .. } => {
                let Some(&start) = start_at.get(&e.request) else {
                    continue;
                };
                let end = e.time.get();
                let Some(&complete) = complete_at.get(&e.request) else {
                    continue;
                };
                // The decode half re-enqueues at transfer maturity.
                let Some(decode_enqueue) = enqueues
                    .get(&e.request)
                    .and_then(|ts| ts.iter().copied().find(|&t| t >= start))
                else {
                    continue;
                };
                assert!(
                    complete <= start && start <= end && end <= decode_enqueue,
                    "request {}: transfer [{start}, {end}] must nest between prefill \
                     completion {complete} and decode admission {decode_enqueue}",
                    e.request
                );
                checked += 1;
            }
            _ => {}
        }
    }
    assert!(checked > 0, "at least one full transfer span is checked");

    // The combined streams (lifecycles plus transfer markers) render to
    // one Chrome trace that round-trips the JSON parser and is
    // byte-identical across same-seed runs.
    let merge = |report: &FleetReport| -> Vec<Vec<Event>> {
        let t = report.telemetry.as_ref().expect("traced");
        let mut streams = t.events.clone();
        for (replica, e) in &t.transfer_events {
            streams[*replica].push(*e);
        }
        streams
    };
    let second = traced_disagg(DISAGG_SEED);
    let trace = chrome_trace(&merge(&report));
    assert_eq!(
        trace,
        chrome_trace(&merge(&second)),
        "same-seed disaggregated traces must be byte-identical"
    );
    let doc = json::parse(&trace).expect("disaggregated trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let named = |name: &str| {
        events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some(name))
            .count()
    };
    assert!(
        named("kv_transfer_out") > 0 && named("kv_transfer_in") > 0,
        "transfer markers must survive the export"
    );
}
