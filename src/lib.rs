//! Umbrella crate for the ADOR framework reproduction.
//!
//! Re-exports everything from [`ador_core`]; see that crate (and the
//! workspace `README.md`) for the full API tour.
//!
//! # Examples
//!
//! ```
//! // The umbrella crate exposes the same surface as `ador-core`.
//! use ador::prelude::*;
//! ```

#![forbid(unsafe_code)]

pub use ador_core::*;
