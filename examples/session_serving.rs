//! Session serving demo: prefix-aware KV reuse on multi-turn chat.
//!
//! Drives the pinned multi-turn session workload (each turn re-prompts
//! with the whole conversation so far) through a LLaMA3-8B engine with
//! prefix caching off and on, then through a fleet under every router
//! policy — showing how much prefill the cache removes and why a
//! session's turns must be routed to the replica that holds its prefix.
//!
//! Run with: `cargo run --release --example session_serving -- [replicas]`
//! (default 4 replicas).

use ador::cluster::scenarios::{
    session_fleet, session_workload, SESSION_ENGINE_RATE, SESSION_RATE, SESSION_REQUESTS,
    SESSION_SEED,
};
use ador::cluster::{ClusterSim, RouterPolicy};
use ador::model::presets;
use ador::perf::Deployment;
use ador::AdorError;

const POLICIES: [RouterPolicy; 4] = [
    RouterPolicy::RoundRobin,
    RouterPolicy::JoinShortestQueue,
    RouterPolicy::LeastKvLoad,
    RouterPolicy::CacheAffinity,
];

fn cache_on_off() -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    println!("mode      | prefilled tok | hit rate | TTFT mean | TTFT p95 | preempt");
    for caching in [false, true] {
        let cfg = session_fleet(1, RouterPolicy::RoundRobin).with_prefix_caching(caching);
        let report = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)?.run(
            &session_workload(SESSION_ENGINE_RATE),
            SESSION_REQUESTS / 2,
            SESSION_SEED,
        )?;
        let fleet = report.fleet.as_ref().expect("requests completed");
        println!(
            "cache {:<3} | {:>13} | {:>8.2} | {:>9} | {:>8} | {:>7}",
            if caching { "on" } else { "off" },
            fleet.prefilled_tokens,
            fleet.prefix_hit_rate(),
            fleet.ttft.mean.to_string(),
            fleet.ttft.p95.to_string(),
            fleet.preemptions,
        );
    }
    Ok(())
}

fn router_policies(replicas: usize) -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    // Per-replica load held constant as the fleet scales.
    let mix = session_workload(SESSION_RATE / 4.0 * replicas as f64);
    println!("policy              | attainment | hit rate | prefilled tok | TTFT p95");
    for policy in POLICIES {
        let report = ClusterSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            session_fleet(replicas, policy),
        )?
        .run(&mix, SESSION_REQUESTS, SESSION_SEED)?;
        let fleet = report.fleet.as_ref().expect("requests completed");
        println!(
            "{:<20}| {:>10.3} | {:>8.2} | {:>13} | {:>8}",
            policy.to_string(),
            report.fleet_attainment(),
            fleet.prefix_hit_rate(),
            fleet.prefilled_tokens,
            fleet.ttft.p95.to_string(),
        );
    }
    println!(
        "\nReuse is per-replica: scattering a session's turns (JSQ) rebuilds its\n\
         prefix on every replica it touches, while cache-affinity keeps turns\n\
         where their KV already lives."
    );
    Ok(())
}

fn main() -> Result<(), AdorError> {
    let replicas: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);

    println!("=== Prefix cache on one engine (multi-turn chat sessions) ===");
    cache_on_off()?;

    println!("\n=== Router policies on {replicas} prefix-caching replicas ===");
    router_policies(replicas)?;
    Ok(())
}
