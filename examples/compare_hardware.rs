//! Compare every baseline on one model (paper Fig. 4 / Fig. 15 style).
//!
//! Prints TTFT, TBT and area efficiency for all registry architectures
//! serving LLaMA3-8B, including the Groq TSP's many-device deployment
//! (weights must fit in 220 MB of SRAM per chip).
//!
//! Run with: `cargo run --release --example compare_hardware [batch]`

use ador::baselines;
use ador::hw::AreaModel;
use ador::model::presets;
use ador::perf::{Deployment, Evaluator};

fn main() {
    let batch: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let model = presets::llama3_8b();
    let seq = 1024;
    let area_model = AreaModel::default();

    println!("=== {} | batch {batch} | seq {seq} ===", model.name);
    println!(
        "{:<14} | {:>7} | {:>10} | {:>10} | {:>10} | {:>14}",
        "device", "devices", "TTFT (ms)", "TBT (ms)", "die (mm2)", "TBT/s per mm2"
    );

    for arch in baselines::registry() {
        // TSP needs enough chips to hold the weights in SRAM; everything
        // else serves 8B on one device.
        let devices = if arch.dram.capacity < model.weight_bytes() {
            baselines::tsp_devices_for(model.weight_bytes()).next_power_of_two()
        } else {
            1
        };
        let deployment = if devices == 1 {
            Deployment::single_device()
        } else {
            Deployment::tensor_parallel(devices)
        };
        let Ok(eval) = Evaluator::new(&arch, &model, deployment) else {
            println!("{:<14} | cannot serve the model", arch.name);
            continue;
        };
        let (Ok(ttft), Ok(tbt)) = (eval.ttft(1, seq), eval.decode_interval(batch, seq)) else {
            println!("{:<14} | evaluation failed (KV overflow)", arch.name);
            continue;
        };
        let total_area = area_model.estimate(&arch).total().as_mm2() * devices as f64;
        let tbt_rate = 1.0 / tbt.get();
        println!(
            "{:<14} | {:>7} | {:>10.2} | {:>10.2} | {:>10.0} | {:>14.4}",
            arch.name,
            devices,
            ttft.as_millis(),
            tbt.as_millis(),
            total_area,
            tbt_rate / total_area,
        );
    }

    println!(
        "\nShape to check against the paper: the ADOR design leads TBT and \
         area efficiency; LLMCompass-T leads raw TTFT; the TSP's chip count \
         destroys its area efficiency (Fig. 4a)."
    );
}
