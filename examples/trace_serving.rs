//! Observability demo: trace a small fleet, decompose request latency
//! into lifecycle phases, peek at the windowed time series, and export
//! a Chrome trace-event file for the Perfetto waterfall view.
//!
//! Everything printed here is deterministic: events are stamped with sim
//! time only, so the same seed reproduces the same trace byte for byte
//! (pinned by `tests/telemetry.rs`).
//!
//! Run with: `cargo run --release --example trace_serving -- [replicas]`
//! (default 2 replicas). The Chrome trace lands in the system temp
//! directory; open it at <https://ui.perfetto.dev>.

use ador::cluster::{ClusterConfig, ClusterSim, RouterPolicy, TenantClass, TenantMix};
use ador::model::presets;
use ador::perf::Deployment;
use ador::serving::SimConfig;
use ador::telemetry::{chrome_trace, LatencyHistogram, PhaseHistograms, TelemetryConfig};
use ador::units::Seconds;
use ador::AdorError;

fn main() -> Result<(), AdorError> {
    let replicas: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2);

    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let mix = TenantMix::new(vec![
        TenantClass::chatbot(3.0 * replicas as f64),
        TenantClass::summarization(1.0 * replicas as f64),
    ]);
    let cfg = ClusterConfig::new(replicas, RouterPolicy::JoinShortestQueue)
        .with_engine(SimConfig::new(1.0, 32))
        .with_telemetry(TelemetryConfig::trace().with_series(Seconds::from_millis(100.0)));
    let report = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)?.run(
        &mix,
        60 * replicas,
        7,
    )?;
    let telemetry = report.telemetry.as_ref().expect("tracing was enabled");

    println!(
        "=== Fleet run: {replicas} replicas, {} requests ===",
        report.completed
    );
    let events_total: usize = telemetry.events.iter().map(Vec::len).sum();
    println!("captured {events_total} lifecycle events across the fleet");

    // Phase decomposition: where did request time actually go?
    println!("\n=== Latency decomposition by lifecycle phase ===");
    println!("phase     | spans | p50 (ms) | p95 (ms) | max (ms)");
    let mut pooled = PhaseHistograms::default();
    for events in &telemetry.events {
        let h = PhaseHistograms::from_events(events);
        pooled.queue.merge(&h.queue);
        pooled.prefill.merge(&h.prefill);
        pooled.decode.merge(&h.decode);
        pooled.stall.merge(&h.stall);
    }
    let row = |label: &str, h: &LatencyHistogram| {
        if h.count() == 0 {
            println!("{label:<10}|     0 |        - |        - |        -");
        } else {
            println!(
                "{label:<10}| {:>5} | {:>8.2} | {:>8.2} | {:>8.2}",
                h.count(),
                h.percentile(0.50).as_millis(),
                h.percentile(0.95).as_millis(),
                h.max().as_millis(),
            );
        }
    };
    row("queue", &pooled.queue);
    row("prefill", &pooled.prefill);
    row("decode", &pooled.decode);
    row("preempted", &pooled.stall);

    // The windowed time series: the fleet's shape over time.
    println!("\n=== Replica 0 time series (100 ms windows) ===");
    println!("t (s) | queue | active | kv tokens | goodput (tok/s)");
    let series = &telemetry.series[0];
    let stride = (series.points.len() / 8).max(1);
    for p in series.points.iter().step_by(stride) {
        println!(
            "{:>5.2} | {:>5} | {:>6} | {:>9} | {:>8.0}",
            p.time.get(),
            p.queue_depth,
            p.active,
            p.kv_in_use,
            p.goodput_tps,
        );
    }

    // Per-tenant goodput from the same run.
    println!("\n=== Per-tenant goodput (tokens/s per window) ===");
    for (lane, tenant) in telemetry.tenant_goodput.iter().zip(&report.tenants) {
        let peak = lane.iter().copied().fold(0.0f64, f64::max);
        let mean = lane.iter().sum::<f64>() / lane.len().max(1) as f64;
        println!(
            "{:<14}: mean {:>7.0}, peak {:>7.0} over {} windows",
            tenant.name,
            mean,
            peak,
            lane.len()
        );
    }

    // Export the waterfall for Perfetto / chrome://tracing.
    let trace = chrome_trace(&telemetry.events);
    let path = std::env::temp_dir().join("ador_trace_serving.json");
    std::fs::write(&path, &trace).expect("write trace file");
    println!(
        "\nwrote {} ({} bytes) — load it at https://ui.perfetto.dev",
        path.display(),
        trace.len()
    );
    Ok(())
}
