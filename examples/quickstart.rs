//! Quickstart: run the ADOR search end-to-end.
//!
//! Mirrors the paper's Fig. 9 flow — vendor constraints + user SLA +
//! workload in, proposed architecture + predicted QoS out — then compares
//! the proposal head-to-head with an NVIDIA A100 at the same operating
//! point (the Table III / Fig. 15 experiment in miniature).
//!
//! Run with: `cargo run --release --example quickstart`

use ador::prelude::*;

fn main() -> Result<(), AdorError> {
    // The workload a vendor wants to serve: LLaMA3-8B chatbot traffic at
    // batch 128 with 1 K contexts.
    let session = Ador::new(presets::llama3_8b()).batch(128).seq_len(1024);

    // Step 1-4 of the paper's search: propose the smallest-area HDA that
    // meets the chatbot SLA under A100-class constraints.
    let outcome = session.explore()?;
    println!("=== ADOR proposal ===");
    println!("{outcome}");
    println!("area breakdown: {}", outcome.area);
    println!("candidates evaluated: {}", outcome.steps.len());

    // Head-to-head with the A100 (paper: 2.36x TBT at batch 150, ~1.9x
    // TTFT, 4x area efficiency).
    let a100 = baselines::a100();
    let cmp = session.compare(&outcome.architecture, &a100)?;
    println!("\n=== vs. NVIDIA A100 at batch 128 / seq 1024 ===");
    println!(
        "TTFT: {} vs {} ({:.2}x better)",
        cmp.ttft_a, cmp.ttft_b, cmp.ttft_ratio
    );
    println!(
        "TBT : {} vs {} ({:.2}x better)",
        cmp.tbt_a, cmp.tbt_b, cmp.tbt_ratio
    );

    let area_ratio = 826.0 / outcome.area.total().as_mm2();
    println!(
        "area efficiency (TBT/mm2): {:.2}x better",
        cmp.tbt_ratio * area_ratio
    );

    // Validate the proposal in the serving simulator.
    let report = session.simulate_serving(
        &outcome.architecture,
        SimConfig::new(8.0, 128).with_requests(100).with_seed(42),
        TraceProfile::ultrachat_like(),
    )?;
    println!("\n=== serving validation (8 req/s ultrachat-like) ===");
    println!(
        "completed {} requests; TTFT p95 {}; TBT p95 {}; {:.1} tok/s",
        report.completed, report.ttft.p95, report.tbt.p95, report.tokens_per_sec
    );
    println!(
        "SLO (relaxed) attained: {}",
        Slo::relaxed().attained(&report)
    );
    Ok(())
}
