//! Fleet serving demo: a multi-replica cluster under multi-tenant traffic.
//!
//! Builds a fleet of LLaMA3-8B replicas behind each router policy and
//! prints the fleet-wide QoS breakdown: per-tenant SLO attainment on a
//! skewed chat + bursty-summarization mix, per-replica utilization on a
//! three-tenant mix, the shed count once admission control is enabled,
//! and the fleet capacity search (the Fig. 16 question asked of the whole
//! cluster).
//!
//! Run with: `cargo run --release --example fleet_serving -- [replicas]`
//! (default 4 replicas).

use ador::cluster::{
    cluster_capacity, ClusterConfig, ClusterSim, RouterPolicy, TenantClass, TenantMix,
};
use ador::model::presets;
use ador::perf::Deployment;
use ador::serving::SimConfig;
use ador::AdorError;

const POLICIES: [RouterPolicy; 4] = [
    RouterPolicy::RoundRobin,
    RouterPolicy::JoinShortestQueue,
    RouterPolicy::LeastKvLoad,
    RouterPolicy::SloAware,
];

fn three_tenant_mix(aggregate: f64) -> TenantMix {
    TenantMix::new(vec![
        TenantClass::chatbot(aggregate * 0.5),
        TenantClass::summarization(aggregate * 0.2),
        TenantClass::code_completion(aggregate * 0.3),
    ])
}

/// The differentiating scenario (pinned by `tests/cluster_serving.rs`,
/// shared via `ador::cluster::scenarios`): a skewed two-tenant mix —
/// 70 % steady strict-SLO chat, 30 % bursty MMPP summarization — on
/// scarce-KV replicas, where placement quality decides who pays
/// KV-pressure preemption storms. The aggregate rate scales with the
/// replica count so each fleet size sits at the same per-replica load.
fn policy_breakdown(replicas: usize) -> Result<(), AdorError> {
    use ador::cluster::scenarios::{
        scarce_kv_fleet, skewed_two_tenant, SKEWED_MIX_RATE, SKEWED_MIX_REQUESTS, SKEWED_MIX_SEED,
    };
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let mix = skewed_two_tenant(SKEWED_MIX_RATE / 4.0 * replicas as f64);
    println!(
        "{} replicas, {:.1} req/s aggregate (70 % chat / 30 % bursty summarization), scarce KV (5 %)",
        replicas,
        mix.aggregate_rate()
    );
    println!("policy              | fleet att | chat | summ | preempt | imbal");
    for policy in POLICIES {
        let report = ClusterSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            scarce_kv_fleet(replicas, policy),
        )?
        .run(&mix, SKEWED_MIX_REQUESTS, SKEWED_MIX_SEED)?;
        let fleet = report.fleet.as_ref().expect("requests completed");
        println!(
            "{:<20}| {:>9.3} | {:.2} | {:.2} | {:>7} | {:.3}",
            policy.to_string(),
            report.fleet_attainment(),
            report.tenants[0].attainment,
            report.tenants[1].attainment,
            fleet.preemptions,
            report.imbalance,
        );
    }
    Ok(())
}

fn replica_utilization(replicas: usize) -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let mix = three_tenant_mix(3.0 * replicas as f64);
    let cfg = ClusterConfig::new(replicas, RouterPolicy::JoinShortestQueue)
        .with_engine(SimConfig::new(1.0, 32));
    let report =
        ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)?.run(&mix, 300, 3)?;
    println!("replica | completed | tok/s | mean batch | peak KV (tokens)");
    for (i, replica) in report.per_replica.iter().enumerate() {
        match replica {
            Some(r) => println!(
                "{i:>7} | {:>9} | {:>5.0} | {:>10.1} | {:>8}",
                r.completed, r.tokens_per_sec, r.mean_batch, r.peak_kv_tokens
            ),
            None => println!("{i:>7} | {:>9} |     - |          - |        -", 0),
        }
    }
    println!(
        "utilization imbalance (CV of processed tokens): {:.3}",
        report.imbalance
    );
    Ok(())
}

fn admission_control(replicas: usize) -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    // Overload the fleet 3x and cap each replica's queue: the router now
    // decides who gets served at all.
    let mix = three_tenant_mix(9.0 * replicas as f64);
    println!("policy              | completed | shed | fleet attainment (shed = miss)");
    for policy in POLICIES {
        let cfg = ClusterConfig::new(replicas, policy)
            .with_engine(SimConfig::new(1.0, 16))
            .with_queue_cap(4);
        let report =
            ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)?.run(&mix, 300, 5)?;
        println!(
            "{:<20}| {:>9} | {:>4} | {:.3}",
            policy.to_string(),
            report.completed,
            report.rejected,
            report.fleet_attainment(),
        );
    }
    Ok(())
}

fn fleet_capacity(replicas: usize) -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    let mix = three_tenant_mix(4.0);
    let cfg = ClusterConfig::new(replicas, RouterPolicy::JoinShortestQueue)
        .with_engine(SimConfig::new(1.0, 32));
    let cap = cluster_capacity(
        &arch,
        &model,
        Deployment::single_device(),
        cfg,
        &mix,
        200,
        16,
        0.95,
        (0.5, 40.0 * replicas as f64),
        7,
    )?;
    println!(
        "{} replicas sustain {:.1} req/s aggregate at >=95 % attainment per class",
        replicas, cap.rate
    );
    for tenant in &cap.report.tenants {
        println!(
            "  {}: attainment {:.3} over {} requests",
            tenant.name, tenant.attainment, tenant.completed
        );
    }
    Ok(())
}

fn main() -> Result<(), AdorError> {
    let replicas: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);

    println!("=== Router policies under a skewed two-tenant mix ===");
    policy_breakdown(replicas)?;

    println!("\n=== Per-replica utilization (join-shortest-queue) ===");
    replica_utilization(replicas)?;

    println!("\n=== Admission control under 3x overload (queue cap 4) ===");
    admission_control(replicas)?;

    println!("\n=== Fleet capacity at >=95 % per-class attainment ===");
    fleet_capacity(replicas)?;
    Ok(())
}
