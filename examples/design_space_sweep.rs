//! Design-space sweep: the latency/throughput trade-off of Fig. 1.
//!
//! Sweeps the SA-vs-MT allocation of an ADOR-template chip at a fixed
//! silicon budget and prints each design's prefill throughput (vendor's
//! axis) against its decode latency (user's axis) — the Pareto frontier the
//! paper draws between Groq-TSP-style latency machines and TPU-style
//! throughput machines.
//!
//! Run with: `cargo run --release --example design_space_sweep`

use ador::hw::memory::DramSpec;
use ador::hw::{Architecture, AreaModel, MacTree, SystolicArray};
use ador::model::presets;
use ador::perf::{Deployment, Evaluator};
use ador::units::{Bandwidth, Bytes, Frequency};

fn build(name: &str, sa_dim: usize, mt_lanes: usize, cores: usize) -> Architecture {
    let mut b = Architecture::builder(name)
        .cores(cores)
        .local_memory(Bytes::from_kib(2048))
        .global_memory(Bytes::from_mib(16))
        .dram(DramSpec::hbm2e(
            Bytes::from_gib(80),
            Bandwidth::from_tbps(2.0),
        ))
        .p2p_bandwidth(Bandwidth::from_gbps(64.0))
        .frequency(Frequency::from_mhz(1500.0));
    if sa_dim > 0 {
        b = b.systolic_array(SystolicArray::square(sa_dim));
    }
    if mt_lanes > 0 {
        b = b.mac_tree(MacTree::new(16, mt_lanes));
    }
    b.build()
}

fn main() {
    let model = presets::llama3_8b();
    let area_model = AreaModel::default();
    let batch = 64;
    let seq = 1024;

    // From latency-oriented (all MT) through balanced HDAs to
    // throughput-oriented (all SA).
    let designs = [
        ("MT-only (latency)", build("mt-only", 0, 64, 32)),
        ("HDA 32x32 + MT", build("hda-32", 32, 16, 32)),
        ("HDA 64x64 + MT (Table III)", build("hda-64", 64, 16, 32)),
        ("HDA 96x96 + MT", build("hda-96", 96, 16, 16)),
        ("SA-only (throughput)", build("sa-only", 96, 0, 32)),
    ];

    println!("=== Fig. 1 design space: LLaMA3-8B, batch {batch}, seq {seq} ===");
    println!(
        "{:<28} | {:>9} | {:>10} | {:>10} | {:>12}",
        "design", "die (mm2)", "TTFT (ms)", "TBT (ms)", "prefill TF/s"
    );
    for (label, arch) in &designs {
        let eval = Evaluator::new(arch, &model, Deployment::single_device())
            .expect("model fits one device");
        let ttft = eval.ttft(1, seq).expect("prefill evaluates");
        let step = eval
            .step(ador::model::Phase::prefill(1, seq))
            .expect("step");
        let tbt = eval.decode_interval(batch, seq).expect("decode evaluates");
        let achieved = step.flops_per_device.get() / step.total.get() / 1e12;
        let die = area_model.estimate(arch).total();
        println!(
            "{label:<28} | {:>9.0} | {:>10.2} | {:>10.2} | {:>12.1}",
            die.as_mm2(),
            ttft.as_millis(),
            tbt.as_millis(),
            achieved,
        );
    }

    println!(
        "\nReading the frontier: MT-heavy designs win TBT (user axis), \
         SA-heavy designs win TTFT/throughput (vendor axis); the balanced \
         HDA sits at the paper's 'optimal point for GenAI serving'."
    );

    // Power at typical operating points (the Fig. 9 power-budget input).
    println!("\n=== power at typical operating points ===");
    let power_model = ador::hw::PowerModel::default();
    for (label, arch) in &designs {
        let decode = power_model.estimate(arch, ador::hw::OperatingPoint::decode_typical());
        let prefill = power_model.estimate(arch, ador::hw::OperatingPoint::prefill_typical());
        println!(
            "{label:<28} | decode {:>6} | prefill {:>6}",
            decode.total(),
            prefill.total()
        );
    }

    // The search's own Pareto frontier over its candidate log.
    println!("\n=== search-derived Pareto frontier (area vs TTFT vs TBT) ===");
    let input = ador::search::SearchInput {
        vendor: ador::search::VendorConstraints::a100_class(),
        user: ador::search::UserRequirements::chatbot(),
        workload: ador::search::Workload::new(model.clone(), batch, seq),
    };
    let outcome = ador::search::search(&input).expect("search runs");
    for p in ador::search::pareto_frontier(&outcome) {
        println!(
            "{:<24} | {:>9} | TTFT {:>10} | TBT {:>10}",
            p.candidate, p.area, p.ttft, p.tbt
        );
    }
}
