//! Chatbot serving study: fleet QoS under load and SLO-bounded capacity.
//!
//! Extends the Fig. 16 methodology beyond one engine: serve LLaMA3-8B
//! (one device per replica) and Yi-34B (two devices per replica) behind a
//! join-shortest-queue router, drive the fleet with a two-tenant mix
//! (strict-SLO chat + tight-SLO code completion), and report the
//! per-tenant fleet breakdown at increasing aggregate request rates. The
//! single-engine scheduler-policy and capacity studies ride along
//! unchanged.
//!
//! Run with: `cargo run --release --example chatbot_serving -- [replicas]`
//! (default 2 replicas).

use ador::cluster::{ClusterConfig, ClusterSim, RouterPolicy, TenantClass, TenantMix};
use ador::model::{presets, ModelConfig};
use ador::perf::Deployment;
use ador::serving::{max_capacity, SchedulerPolicy, ServingSim, SimConfig, Slo, TraceProfile};
use ador::AdorError;

/// Per-tenant fleet QoS at increasing aggregate load: chat keeps the
/// paper's strict SLO, code completion its 400 ms TTFT contract.
fn fleet_qos_at_rates(
    model: &ModelConfig,
    deployment: Deployment,
    replicas: usize,
) -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    println!(
        "--- {} on {} device(s) x {} replica(s), join-shortest-queue ---",
        model.name, deployment.devices, replicas
    );
    println!("rate(req/s) | TTFT p95 | TBT p95 | per-tenant attainment | preempt | imbal");
    for rate in [4.0, 10.0, 20.0, 40.0] {
        let mix = TenantMix::new(vec![
            TenantClass::chatbot(rate * 0.75),
            TenantClass::code_completion(rate * 0.25),
        ]);
        let cfg = ClusterConfig::new(replicas, RouterPolicy::JoinShortestQueue)
            .with_engine(SimConfig::new(1.0, 128));
        let report = ClusterSim::new(&arch, model, deployment, cfg)?.run(&mix, 150, 7)?;
        let fleet = report.fleet.as_ref().expect("requests completed");
        let tenants: Vec<String> = report
            .tenants
            .iter()
            .map(|t| format!("{} {:.2}", t.name, t.attainment))
            .collect();
        println!(
            "{rate:>10.1} | {:>8} | {:>7} | {:<32} | {:>7} | {:.3}",
            format!("{}", fleet.ttft.p95),
            format!("{}", fleet.tbt.p95),
            tenants.join(", "),
            fleet.preemptions,
            report.imbalance,
        );
    }
    Ok(())
}

/// Chunked prefill under a long-document workload: how the scheduler policy
/// trades admission speed (TTFT) against decode smoothness (TBT), and how
/// KV pressure shows up as preemptions once memory is scarce.
fn scheduler_policies() -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    println!("policy             | TTFT p95 | TBT p95 | preempt | peak KV (tokens)");
    for (label, policy, kv_fraction) in [
        ("fused              ", SchedulerPolicy::Fused, 0.9),
        (
            "decode-prioritized ",
            SchedulerPolicy::DecodePrioritized,
            0.9,
        ),
        ("fused, scarce KV   ", SchedulerPolicy::Fused, 0.02),
    ] {
        let cfg = SimConfig::new(4.0, 64)
            .with_requests(80)
            .with_seed(13)
            .with_prefill_chunk(512)
            .with_policy(policy)
            .with_kv_memory_fraction(kv_fraction);
        let report = ServingSim::new(&arch, &model, Deployment::single_device(), cfg)?
            .run(TraceProfile::summarization())?;
        println!(
            "{label}| {:>8} | {:>7} | {:>7} | {:>8}",
            format!("{}", report.ttft.p95),
            format!("{}", report.tbt.p95),
            report.preemptions,
            report.peak_kv_tokens,
        );
    }
    Ok(())
}

fn capacity(model: &ModelConfig, deployment: Deployment) -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    let base = SimConfig::new(1.0, 128).with_requests(120).with_seed(11);
    for (label, slo) in [
        ("strict (25 ms TBT)", Slo::strict()),
        ("relaxed (50 ms TBT)", Slo::relaxed()),
    ] {
        let cap = max_capacity(
            &arch,
            model,
            deployment,
            base,
            TraceProfile::ultrachat_like(),
            slo,
            (0.5, 60.0),
            7,
        )?;
        println!(
            "{}: max capacity {:.1} req/s (TBT p95 {} at that rate)",
            label, cap.rate, cap.report.tbt.p95
        );
    }
    Ok(())
}

fn main() -> Result<(), AdorError> {
    let replicas: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2);

    println!("=== Fleet QoS vs aggregate load (Fig. 16 methodology, per-tenant) ===");
    fleet_qos_at_rates(&presets::llama3_8b(), Deployment::single_device(), replicas)?;
    fleet_qos_at_rates(&presets::yi_34b(), Deployment::tensor_parallel(2), replicas)?;

    println!("\n=== Scheduler policy & KV pressure (512-token chunks, summarization) ===");
    scheduler_policies()?;

    println!("\n=== SLO-bounded max capacity (single engine) ===");
    println!("LLaMA3 8B, 1 device:");
    capacity(&presets::llama3_8b(), Deployment::single_device())?;
    println!("Yi 34B, 2 devices:");
    capacity(&presets::yi_34b(), Deployment::tensor_parallel(2))?;
    Ok(())
}
