//! Chatbot serving study: QoS under load and SLO-bounded capacity.
//!
//! Reproduces the Fig. 16 methodology: serve LLaMA3-8B (one device) and
//! Yi-34B (two devices) against an ultrachat-like trace, measure QoS at
//! increasing request rates, and bisect the maximum capacity under strict
//! and relaxed TBT SLOs.
//!
//! Run with: `cargo run --release --example chatbot_serving`

use ador::model::{presets, ModelConfig};
use ador::perf::Deployment;
use ador::serving::{max_capacity, SchedulerPolicy, ServingSim, SimConfig, Slo, TraceProfile};
use ador::AdorError;

fn qos_at_rates(model: &ModelConfig, deployment: Deployment) -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    println!("--- {} on {} device(s) ---", model.name, deployment.devices);
    println!("rate(req/s) | TTFT p95 | TBT p95 | mean batch | queue p̄ | tok/s");
    for rate in [2.0, 5.0, 10.0, 20.0] {
        let cfg = SimConfig::new(rate, 128).with_requests(120).with_seed(7);
        let report =
            ServingSim::new(&arch, model, deployment, cfg)?.run(TraceProfile::ultrachat_like())?;
        println!(
            "{rate:>10.1} | {:>8} | {:>7} | {:>10.1} | {:>8.1} | {:>6.0}",
            format!("{}", report.ttft.p95),
            format!("{}", report.tbt.p95),
            report.mean_batch,
            report.mean_queue_depth,
            report.tokens_per_sec,
        );
    }
    Ok(())
}

/// Chunked prefill under a long-document workload: how the scheduler policy
/// trades admission speed (TTFT) against decode smoothness (TBT), and how
/// KV pressure shows up as preemptions once memory is scarce.
fn scheduler_policies() -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    println!("policy             | TTFT p95 | TBT p95 | preempt | peak KV (tokens)");
    for (label, policy, kv_fraction) in [
        ("fused              ", SchedulerPolicy::Fused, 0.9),
        (
            "decode-prioritized ",
            SchedulerPolicy::DecodePrioritized,
            0.9,
        ),
        ("fused, scarce KV   ", SchedulerPolicy::Fused, 0.02),
    ] {
        let cfg = SimConfig::new(4.0, 64)
            .with_requests(80)
            .with_seed(13)
            .with_prefill_chunk(512)
            .with_policy(policy)
            .with_kv_memory_fraction(kv_fraction);
        let report = ServingSim::new(&arch, &model, Deployment::single_device(), cfg)?
            .run(TraceProfile::summarization())?;
        println!(
            "{label}| {:>8} | {:>7} | {:>7} | {:>8}",
            format!("{}", report.ttft.p95),
            format!("{}", report.tbt.p95),
            report.preemptions,
            report.peak_kv_tokens,
        );
    }
    Ok(())
}

fn capacity(model: &ModelConfig, deployment: Deployment) -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    let base = SimConfig::new(1.0, 128).with_requests(120).with_seed(11);
    for (label, slo) in [
        ("strict (25 ms TBT)", Slo::strict()),
        ("relaxed (50 ms TBT)", Slo::relaxed()),
    ] {
        let cap = max_capacity(
            &arch,
            model,
            deployment,
            base,
            TraceProfile::ultrachat_like(),
            slo,
            (0.5, 60.0),
            7,
        )?;
        println!(
            "{}: max capacity {:.1} req/s (TBT p95 {} at that rate)",
            label, cap.rate, cap.report.tbt.p95
        );
    }
    Ok(())
}

fn main() -> Result<(), AdorError> {
    println!("=== QoS vs load (Fig. 16 methodology) ===");
    qos_at_rates(&presets::llama3_8b(), Deployment::single_device())?;
    qos_at_rates(&presets::yi_34b(), Deployment::tensor_parallel(2))?;

    println!("\n=== Scheduler policy & KV pressure (512-token chunks, summarization) ===");
    scheduler_policies()?;

    println!("\n=== SLO-bounded max capacity ===");
    println!("LLaMA3 8B, 1 device:");
    capacity(&presets::llama3_8b(), Deployment::single_device())?;
    println!("Yi 34B, 2 devices:");
    capacity(&presets::yi_34b(), Deployment::tensor_parallel(2))?;
    Ok(())
}
