//! Speculative-decoding demo: draft/verify multi-token commits with
//! SLO-customized depth.
//!
//! First sweeps a fixed speculation depth on one engine (chatbot traffic,
//! weight-bound batch) to show the mean-TBT win of multi-token commits,
//! then runs the pinned mixed-tenant fleet, where a tight-TBT chatbot
//! class shares 256-slot replicas with a low-acceptance analytics class —
//! the regime where naive fixed depth either under-serves the latency
//! tenant or burns fleet capacity, and the SLO-adaptive verify budget
//! tops goodput.
//!
//! Run with: `cargo run --release --example spec_serving -- [replicas]`
//! (default 2 replicas).

use ador::cluster::scenarios::{
    spec_engine_config, spec_fleet, spec_mix, SPEC_RATE, SPEC_REPLICAS, SPEC_REQUESTS, SPEC_SEED,
};
use ador::cluster::ClusterSim;
use ador::model::presets;
use ador::perf::Deployment;
use ador::serving::{ServingSim, SpeculationPolicy, TraceProfile};
use ador::AdorError;

const POLICIES: [SpeculationPolicy; 5] = [
    SpeculationPolicy::Off,
    SpeculationPolicy::Fixed(1),
    SpeculationPolicy::Fixed(2),
    SpeculationPolicy::Fixed(4),
    SpeculationPolicy::SloAdaptive,
];

fn fixed_sweep() -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    println!("one engine, chatbot traffic at 8 req/s, draft acceptance 0.8:");
    println!("depth k | TBT mean  | TBT p95   | tok/s | realized acceptance");
    for k in [0usize, 1, 2, 4] {
        let policy = if k == 0 {
            SpeculationPolicy::Off
        } else {
            SpeculationPolicy::Fixed(k)
        };
        let report = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            spec_engine_config(policy, 0.8),
        )?
        .run(TraceProfile::ultrachat_like())?;
        println!(
            "{k:>7} | {:>9} | {:>9} | {:>5.0} | {:>19.2}",
            report.tbt.mean.to_string(),
            report.tbt.p95.to_string(),
            report.tokens_per_sec,
            report.acceptance_rate(),
        );
    }
    Ok(())
}

fn fleet_policies(replicas: usize) -> Result<(), AdorError> {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_8b();
    // Per-replica load held constant as the fleet scales.
    let mix = spec_mix(SPEC_RATE / SPEC_REPLICAS as f64 * replicas as f64);
    println!("\nmixed chatbot/analytics fleet, {replicas} replicas at 46 req/s each:");
    println!("policy       | goodput tok/s | tok/s | chatbot att | chatbot TBT p95 | drafted");
    for policy in POLICIES {
        let report = ClusterSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            spec_fleet(replicas, policy),
        )?
        .run(&mix, SPEC_REQUESTS, SPEC_SEED)?;
        let fleet = report.fleet.as_ref().expect("requests completed");
        let chatbot = &report.tenants[0];
        println!(
            "{:<12} | {:>13.0} | {:>5.0} | {:>11.3} | {:>15} | {:>7}",
            policy.to_string(),
            fleet.goodput_tokens_per_sec,
            fleet.tokens_per_sec,
            chatbot.attainment,
            chatbot
                .tbt
                .as_ref()
                .expect("chatbot completed")
                .p95
                .to_string(),
            fleet.drafted_tokens,
        );
    }
    println!(
        "\nGoodput counts only SLO-met requests' tokens: fixed depths either miss the\n\
         chatbot TBT contract or burn capacity drafting for the 0.55-acceptance\n\
         analytics tenant; the slo-adaptive verify budget goes to urgent requests only."
    );
    Ok(())
}

fn main() -> Result<(), AdorError> {
    let replicas: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(SPEC_REPLICAS);
    fixed_sweep()?;
    fleet_policies(replicas)?;
    Ok(())
}
