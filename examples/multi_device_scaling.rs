//! Multi-device scaling explorer (paper Fig. 7 / Fig. 13).
//!
//! For LLaMA3-70B on ADOR devices: compares tensor-parallel sync
//! strategies as the device count grows, then sweeps the P2P link
//! bandwidth for prefill / decode / continuous-batching mixes — showing
//! the paper's two headline claims: all-gather scales past Megatron at
//! ≥4 devices, and ~32 GB/s of P2P is already enough for decode.
//!
//! Run with: `cargo run --release --example multi_device_scaling`

use ador::model::presets;
use ador::noc::{P2pLink, SyncStrategy};
use ador::parallel::{p2p_sweep, tp_sweep, BlockWorkload, WorkloadMix};
use ador::perf::{Deployment, Evaluator};
use ador::units::{Bandwidth, Bytes, Seconds};

/// Derives per-block workloads (compute window + sync message) from the
/// performance model, so the scaling curves use real numbers.
fn blocks() -> (BlockWorkload, BlockWorkload) {
    let arch = ador::baselines::ador_table3();
    let model = presets::llama3_70b();
    let eval = Evaluator::new(&arch, &model, Deployment::tensor_parallel(8))
        .expect("70B fits on 8 devices");

    let batch = 32;
    let seq = 1024;
    // One layer has two Megatron-fusable blocks; compute window at TP=1 is
    // approximated as 8x the per-device step share.
    let decode_step = eval
        .step(ador::model::Phase::decode(batch, seq))
        .expect("decode");
    let prefill_step = eval
        .step(ador::model::Phase::prefill(1, seq))
        .expect("prefill");
    let layers = model.layers as f64;
    let msg_decode = Bytes::new((batch * model.hidden) as u64 * 2);
    let msg_prefill = Bytes::new((seq * model.hidden) as u64 * 2);
    let window = |total: Seconds| Seconds::new(total.get() * 8.0 / layers / 2.0);
    (
        BlockWorkload::new(window(prefill_step.ops_time), msg_prefill),
        BlockWorkload::new(window(decode_step.ops_time), msg_decode),
    )
}

fn main() {
    let (prefill, decode) = blocks();
    let devices = [1usize, 2, 4, 8, 16];

    println!("=== Fig. 13a: TP strategy scalability (decode blocks, 128 GB/s P2P) ===");
    println!(
        "{:>8} | {:>10} | {:>10} | {:>10}",
        "devices", "all-gather", "all-reduce", "megatron"
    );
    let link = P2pLink::new(Bandwidth::from_gbps(128.0));
    let curves: Vec<Vec<f64>> = SyncStrategy::all()
        .iter()
        .map(|&s| {
            tp_sweep(decode, s, link, &devices)
                .into_iter()
                .map(|p| p.speedup)
                .collect()
        })
        .collect();
    for (i, &n) in devices.iter().enumerate() {
        println!(
            "{n:>8} | {:>10.2} | {:>10.2} | {:>10.2}",
            curves[0][i], curves[1][i], curves[2][i]
        );
    }

    println!("\n=== Fig. 13b: speedup at TP=8 vs P2P bandwidth ===");
    let bandwidths = [16.0, 32.0, 64.0, 128.0];
    println!(
        "{:>12} | {:>8} | {:>8} | {:>11}",
        "P2P (GB/s)", "prefill", "decode", "continuous"
    );
    let sweeps: Vec<Vec<(f64, f64)>> = [
        WorkloadMix::Prefill,
        WorkloadMix::Decode,
        WorkloadMix::Continuous,
    ]
    .iter()
    .map(|&mix| p2p_sweep(prefill, decode, mix, 8, &bandwidths))
    .collect();
    for (i, &bw) in bandwidths.iter().enumerate() {
        println!(
            "{bw:>12.0} | {:>8.2} | {:>8.2} | {:>11.2}",
            sweeps[0][i].1, sweeps[1][i].1, sweeps[2][i].1
        );
    }

    println!(
        "\nPaper checkpoints: Megatron ahead at 2 devices, all-gather ahead \
         from 4; decode speedup nearly saturated by 32 GB/s (PCIe-4 x16)."
    );
}
