//! Aggregate workload statistics: the numbers behind the paper's
//! motivation figures.
//!
//! * [`StepSummary`] totals one inference step's compute and traffic;
//! * [`kv_read_share`] reproduces Fig. 3a (fraction of DRAM reads that are
//!   KV-cache, growing with batch);
//! * [`attention_op_share`] reproduces Fig. 3b (fraction of operations spent
//!   in self-attention, growing with sequence length).

use ador_units::{Bytes, FlopCount};
use serde::{Deserialize, Serialize};

use crate::{graph, ModelConfig, OpClass, Phase};

/// Totals for one inference step of a model under a given phase.
///
/// # Examples
///
/// ```
/// use ador_model::{presets, Phase};
/// use ador_model::workload::StepSummary;
///
/// let s = StepSummary::compute(&presets::llama3_8b(), Phase::decode(128, 8192));
/// // At batch 128 and 8 K context, KV reads dwarf the weight stream.
/// assert!(s.kv_read_bytes > s.weight_bytes * 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepSummary {
    /// Total floating-point work.
    pub flops: FlopCount,
    /// Model weights streamed (shared across batch).
    pub weight_bytes: Bytes,
    /// KV-cache reads (per-request).
    pub kv_read_bytes: Bytes,
    /// KV-cache writes.
    pub kv_write_bytes: Bytes,
    /// On-chip activation traffic (reads + writes).
    pub act_bytes: Bytes,
    /// FLOPs in attention-class operators.
    pub attention_flops: FlopCount,
    /// FLOPs in weight-matmul-class operators.
    pub weight_matmul_flops: FlopCount,
    /// FLOPs in vector-class operators.
    pub vector_flops: FlopCount,
}

impl StepSummary {
    /// Computes the summary for `cfg` under `phase`.
    pub fn compute(cfg: &ModelConfig, phase: Phase) -> Self {
        let layers = cfg.layers as f64;
        let mut s = Self {
            flops: FlopCount::ZERO,
            weight_bytes: Bytes::ZERO,
            kv_read_bytes: Bytes::ZERO,
            kv_write_bytes: Bytes::ZERO,
            act_bytes: Bytes::ZERO,
            attention_flops: FlopCount::ZERO,
            weight_matmul_flops: FlopCount::ZERO,
            vector_flops: FlopCount::ZERO,
        };
        let mut add = |ops: &[crate::Operator], mult: f64| {
            for op in ops {
                let f = op.flops() * mult;
                s.flops += f;
                s.weight_bytes += op.weight_bytes * mult;
                s.kv_read_bytes += op.kv_read_bytes * mult;
                s.kv_write_bytes += op.kv_write_bytes * mult;
                s.act_bytes += (op.act_in_bytes + op.act_out_bytes) * mult;
                match op.class {
                    OpClass::Attention => s.attention_flops += f,
                    OpClass::WeightMatMul => s.weight_matmul_flops += f,
                    OpClass::Vector => s.vector_flops += f,
                }
            }
        };
        add(&graph::layer_operators(cfg, phase), layers);
        add(&graph::once_operators(cfg, phase), 1.0);
        s
    }

    /// All DRAM traffic for the step (weights + KV in and out).
    pub fn dram_bytes(&self) -> Bytes {
        self.weight_bytes + self.kv_read_bytes + self.kv_write_bytes
    }

    /// FLOPs per DRAM byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops.get() / self.dram_bytes().get() as f64
    }
}

/// Fraction of decode-step DRAM **reads** that are KV-cache entries, as in
/// Fig. 3a ("over 90 % of the data read from DRAM pertains to key-value
/// pairs" at batch 128, sequence 8192).
///
/// # Examples
///
/// ```
/// use ador_model::{presets, workload::kv_read_share};
///
/// let share = kv_read_share(&presets::llama3_8b(), 128, 8192);
/// assert!(share > 0.9);
/// let single = kv_read_share(&presets::llama3_8b(), 1, 8192);
/// assert!(single < share);
/// ```
pub fn kv_read_share(cfg: &ModelConfig, batch: usize, context_len: usize) -> f64 {
    let s = StepSummary::compute(cfg, Phase::decode(batch, context_len));
    let reads = s.weight_bytes + s.kv_read_bytes;
    s.kv_read_bytes.get() as f64 / reads.get() as f64
}

/// Fraction of a decode step's MACs spent in self-attention at the given
/// context length, as in Fig. 3b (grows from ~25 % toward ~72 % as context
/// stretches from 4 K to 64 K for LLaMA3-8B-class models).
///
/// # Examples
///
/// ```
/// use ador_model::{presets, workload::attention_op_share};
///
/// let m = presets::llama3_8b();
/// assert!(attention_op_share(&m, 65536) > 0.6);
/// assert!(attention_op_share(&m, 4096) < attention_op_share(&m, 65536));
/// ```
pub fn attention_op_share(cfg: &ModelConfig, context_len: usize) -> f64 {
    let s = StepSummary::compute(cfg, Phase::decode(1, context_len));
    let matmul = s.attention_flops + s.weight_matmul_flops;
    s.attention_flops.get() / matmul.get()
}

/// Decode-step roofline turning point: the batch size at which the step's
/// compute time (at `peak_tflops`) matches its memory time (at
/// `bandwidth_gbps`) — useful for reasoning about where batching stops
/// helping (paper Fig. 1).
pub fn roofline_batch(
    cfg: &ModelConfig,
    context_len: usize,
    peak_tflops: f64,
    bandwidth_gbps: f64,
) -> usize {
    let mut batch = 1usize;
    while batch < 8192 {
        let s = StepSummary::compute(cfg, Phase::decode(batch, context_len));
        let compute = s.flops.get() / (peak_tflops * 1e12);
        let memory = s.dram_bytes().get() as f64 / (bandwidth_gbps * 1e9);
        if compute >= memory {
            return batch;
        }
        batch *= 2;
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use proptest::prelude::*;

    #[test]
    fn fig3a_kv_reads_dominate_at_batch_128() {
        // Paper: "in recent models with a batch size of 128, over 90 % of the
        // data that needs to be read from DRAM pertains to key-value pairs"
        // (sequence length 8192). With strict byte accounting the dense
        // models land at 0.81–0.95 depending on their GQA grouping — KV
        // dominates everywhere, and the widest-KV model clears 90 %.
        for m in [
            presets::llama3_8b(),
            presets::qwen2_7b(),
            presets::gemma2_9b(),
        ] {
            let share = kv_read_share(&m, 128, 8192);
            assert!(share > 0.78, "{}: {share:.3}", m.name);
        }
        assert!(kv_read_share(&presets::gemma2_9b(), 128, 8192) > 0.90);
        // Mixtral streams all eight experts at high batch (~93 GB of
        // weights), so its KV share is lower but KV still wins.
        assert!(kv_read_share(&presets::mixtral_8x7b(), 128, 8192) > 0.55);
    }

    #[test]
    fn fig3a_share_grows_with_batch() {
        let m = presets::llama3_8b();
        let shares: Vec<f64> = [1, 16, 64, 128]
            .iter()
            .map(|&b| kv_read_share(&m, b, 8192))
            .collect();
        assert!(shares.windows(2).all(|w| w[0] < w[1]), "{shares:?}");
    }

    #[test]
    fn fig3b_attention_share_grows_with_context() {
        let m = presets::llama3_8b();
        let s4k = attention_op_share(&m, 4096);
        let s8k = attention_op_share(&m, 8192);
        let s64k = attention_op_share(&m, 65536);
        assert!(s4k < s8k && s8k < s64k);
        // Paper reports ~71.7 % at 64 K; our strict-MAC accounting lands close.
        assert!((0.6..0.8).contains(&s64k), "{s64k}");
        assert!((0.08..0.35).contains(&s4k), "{s4k}");
    }

    #[test]
    fn prefill_is_compute_dense() {
        let m = presets::llama3_8b();
        let prefill = StepSummary::compute(&m, Phase::prefill(1, 1024));
        let decode = StepSummary::compute(&m, Phase::decode(1, 1024));
        assert!(prefill.arithmetic_intensity() > 100.0 * decode.arithmetic_intensity());
    }

    #[test]
    fn roofline_batch_increases_with_compute() {
        let m = presets::llama3_8b();
        let weak = roofline_batch(&m, 1024, 100.0, 2000.0);
        let strong = roofline_batch(&m, 1024, 800.0, 2000.0);
        assert!(strong >= weak);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn summary_components_sum(b in 1usize..64, ctx in 16usize..2048) {
            let m = presets::llama2_7b();
            let s = StepSummary::compute(&m, Phase::decode(b, ctx));
            let parts = s.attention_flops + s.weight_matmul_flops + s.vector_flops;
            prop_assert!((parts.get() - s.flops.get()).abs() <= 1e-6 * s.flops.get());
        }

        #[test]
        fn kv_share_in_unit_interval(b in 1usize..256, ctx in 1usize..16384) {
            let share = kv_read_share(&presets::llama3_8b(), b, ctx);
            prop_assert!((0.0..=1.0).contains(&share));
        }
    }
}
