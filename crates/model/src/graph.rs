//! Lowering a [`ModelConfig`] + [`Phase`] into the operator list the
//! hardware models consume.
//!
//! Byte accounting conventions:
//!
//! * `weight_bytes` — model weights streamed from DRAM, **shared** across the
//!   batch (read once per step regardless of batch size);
//! * `kv_read_bytes` / `kv_write_bytes` — per-request KV-cache traffic that
//!   scales with batch (the unsharable part, paper §II-B);
//! * activation bytes — on-chip traffic used for local-memory sizing
//!   (paper Fig. 12).

use ador_units::Bytes;

use crate::{MatMulShape, ModelConfig, OpClass, OpKind, OpName, Operator, Phase};

fn matmul(
    name: OpName,
    class: OpClass,
    shape: MatMulShape,
    weight_bytes: Bytes,
    act_in: Bytes,
    act_out: Bytes,
) -> Operator {
    Operator {
        name,
        kind: OpKind::MatMul(shape),
        class,
        weight_bytes,
        kv_read_bytes: Bytes::ZERO,
        kv_write_bytes: Bytes::ZERO,
        act_in_bytes: act_in,
        act_out_bytes: act_out,
    }
}

fn vector(name: OpName, kind: OpKind, act_in: Bytes, act_out: Bytes) -> Operator {
    Operator {
        name,
        kind,
        class: OpClass::Vector,
        weight_bytes: Bytes::ZERO,
        kv_read_bytes: Bytes::ZERO,
        kv_write_bytes: Bytes::ZERO,
        act_in_bytes: act_in,
        act_out_bytes: act_out,
    }
}

/// Operators for one decoder layer under `phase`.
///
/// The returned list is in execution order: norm → QKV → RoPE → attention
/// (score, softmax, value) → output projection → residual → norm → MLP →
/// residual.
pub fn layer_operators(cfg: &ModelConfig, phase: Phase) -> Vec<Operator> {
    let dt = cfg.dtype.bytes();
    let b = phase.batch();
    let t = phase.tokens_per_request();
    let m = phase.rows();
    let h = cfg.hidden;
    let q_dim = cfg.q_dim();
    let kv_dim = cfg.kv_dim();
    let span = phase.mean_attention_span().round().max(1.0) as usize;

    let act = |elems: usize| Bytes::new(elems as u64 * dt);
    let mh = act(m * h);

    let mut ops = Vec::with_capacity(16);

    // Pre-attention RMSNorm.
    ops.push(vector(
        OpName::AttnNorm,
        OpKind::Norm {
            elements: (m * h) as u64,
        },
        mh,
        mh,
    ));

    // Fused QKV projection; the K/V outputs for this step's tokens are the
    // KV-cache write.
    let qkv_n = q_dim + 2 * kv_dim;
    let mut qkv = matmul(
        OpName::QkvProj,
        OpClass::WeightMatMul,
        MatMulShape::new(m, h, qkv_n),
        Bytes::new((h * qkv_n) as u64 * dt),
        mh,
        act(m * qkv_n),
    );
    qkv.kv_write_bytes =
        cfg.kv_bytes_per_token_layer() * (b * phase.kv_tokens_written_per_request()) as u64;
    ops.push(qkv);

    // Rotary position embedding on Q and K.
    ops.push(vector(
        OpName::Rope,
        OpKind::Elementwise {
            elements: (m * (q_dim + kv_dim)) as u64,
        },
        act(m * (q_dim + kv_dim)),
        act(m * (q_dim + kv_dim)),
    ));

    // Attention scores Q·Kᵀ: one [t×d]·[d×span] product per (request, head).
    // Each K plane is read once per request and reused across the query
    // heads in its group (on-chip reuse), so the DRAM-side read is sized by
    // kv_heads, not heads.
    let kv_plane = Bytes::new((b as f64 * span as f64 * kv_dim as f64 * dt as f64) as u64);
    let score_elems = (b * cfg.heads * t) as u64 * span as u64;
    let mut score = matmul(
        OpName::AttnScore,
        OpClass::Attention,
        MatMulShape::batched(t, cfg.head_dim, span, b * cfg.heads),
        Bytes::ZERO,
        act(m * q_dim),
        Bytes::new(score_elems * dt),
    );
    score.kv_read_bytes = kv_plane;
    ops.push(score);

    ops.push(vector(
        OpName::AttnSoftmax,
        OpKind::Softmax {
            elements: score_elems,
        },
        Bytes::new(score_elems * dt),
        Bytes::new(score_elems * dt),
    ));

    // Attention values scores·V: [t×span]·[span×d] per (request, head).
    let mut value = matmul(
        OpName::AttnValue,
        OpClass::Attention,
        MatMulShape::batched(t, span, cfg.head_dim, b * cfg.heads),
        Bytes::ZERO,
        Bytes::new(score_elems * dt),
        act(m * q_dim),
    );
    value.kv_read_bytes = kv_plane;
    ops.push(value);

    // Output projection.
    ops.push(matmul(
        OpName::OutProj,
        OpClass::WeightMatMul,
        MatMulShape::new(m, q_dim, h),
        Bytes::new((q_dim * h) as u64 * dt),
        act(m * q_dim),
        mh,
    ));

    ops.push(vector(
        OpName::Residual,
        OpKind::Elementwise {
            elements: (m * h) as u64,
        },
        mh,
        mh,
    ));
    ops.push(vector(
        OpName::MlpNorm,
        OpKind::Norm {
            elements: (m * h) as u64,
        },
        mh,
        mh,
    ));

    // MLP block. For MoE the router picks top-k experts per token; weights
    // streamed = expected distinct experts activated by this batch, compute
    // = k dense passes per token.
    let i = cfg.intermediate;
    let mi = act(m * i);
    let dense_matrix_bytes = Bytes::new((h * i) as u64 * dt);
    let (expert_passes, streamed_matrix_bytes) = match &cfg.moe {
        Some(moe) => {
            ops.push(matmul(
                OpName::MoeRouter,
                OpClass::WeightMatMul,
                MatMulShape::new(m, h, moe.num_experts),
                Bytes::new(moe.router_params(h) * dt),
                mh,
                act(m * moe.num_experts),
            ));
            // Routing is per *token*, so the expert coverage follows the
            // tokens in flight: a decode step activates per its batch, a
            // prefill chunk of thousands of tokens touches every expert.
            (
                moe.experts_per_token,
                dense_matrix_bytes * moe.expected_active_experts(m),
            )
        }
        None => (1, dense_matrix_bytes),
    };

    if cfg.gated_mlp {
        ops.push(matmul(
            OpName::MlpGate,
            OpClass::WeightMatMul,
            MatMulShape::batched(m, h, i, expert_passes),
            streamed_matrix_bytes,
            mh,
            mi,
        ));
    }
    ops.push(matmul(
        OpName::MlpUp,
        OpClass::WeightMatMul,
        MatMulShape::batched(m, h, i, expert_passes),
        streamed_matrix_bytes,
        mh,
        mi,
    ));
    // Activation (and gate multiply when gated).
    let act_elems = (m * i * expert_passes) as u64 * if cfg.gated_mlp { 2 } else { 1 };
    ops.push(vector(
        OpName::MlpAct,
        OpKind::Elementwise {
            elements: act_elems,
        },
        mi,
        mi,
    ));
    ops.push(matmul(
        OpName::MlpDown,
        OpClass::WeightMatMul,
        MatMulShape::batched(m, i, h, expert_passes),
        streamed_matrix_bytes,
        mi,
        mh,
    ));

    ops.push(vector(
        OpName::Residual,
        OpKind::Elementwise {
            elements: (m * h) as u64,
        },
        mh,
        mh,
    ));

    ops
}

/// Operators that run once per step, outside the decoder stack: embedding
/// gather, final norm, and the LM head.
///
/// The LM head only projects the *last* position of each request (logits are
/// needed only where a token will be sampled), so its `M` is the batch size
/// in both phases — which is why the paper's Fig. 12 calls out the LM head
/// as decode-only pressure.
pub fn once_operators(cfg: &ModelConfig, phase: Phase) -> Vec<Operator> {
    let dt = cfg.dtype.bytes();
    let b = phase.batch();
    let m = phase.rows();
    let h = cfg.hidden;
    let act = |elems: usize| Bytes::new(elems as u64 * dt);
    let mh = act(m * h);

    let mut ops = vec![Operator {
        name: OpName::Embed,
        kind: OpKind::Gather {
            tokens: m as u64,
            hidden: h as u64,
        },
        class: OpClass::Vector,
        weight_bytes: act(m * h), // embedding rows actually touched
        kv_read_bytes: Bytes::ZERO,
        kv_write_bytes: Bytes::ZERO,
        act_in_bytes: Bytes::ZERO,
        act_out_bytes: mh,
    }];
    ops.push(vector(
        OpName::FinalNorm,
        OpKind::Norm {
            elements: (b * h) as u64,
        },
        act(b * h),
        act(b * h),
    ));
    ops.push(matmul(
        OpName::LmHead,
        OpClass::WeightMatMul,
        MatMulShape::new(b, h, cfg.vocab),
        Bytes::new((h * cfg.vocab) as u64 * dt),
        act(b * h),
        act(b * cfg.vocab),
    ));
    ops
}

/// The complete operator list for one step of `phase`: embedding, all
/// `cfg.layers` decoder layers, final norm, LM head.
pub fn operators(cfg: &ModelConfig, phase: Phase) -> Vec<Operator> {
    let layer = layer_operators(cfg, phase);
    let once = once_operators(cfg, phase);
    let mut ops = Vec::with_capacity(layer.len() * cfg.layers + once.len());
    ops.push(once[0].clone()); // embed
    for _ in 0..cfg.layers {
        ops.extend(layer.iter().cloned());
    }
    ops.extend(once[1..].iter().cloned());
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use ador_units::FlopCount;

    #[test]
    fn decode_weight_bytes_cover_whole_model_once() {
        let m = presets::llama3_8b();
        let ops = operators(&m, Phase::decode(1, 512));
        let streamed: u64 = ops.iter().map(|o| o.weight_bytes.get()).sum();
        // Streamed weights ≈ all parameters except the input embedding
        // (gathers touch only the used rows) at 2 B each.
        let expect = (m.total_params() - (m.vocab * m.hidden) as u64) * 2;
        let rel = (streamed as f64 - expect as f64).abs() / expect as f64;
        assert!(rel < 0.01, "streamed {streamed} vs expected {expect}");
    }

    #[test]
    fn decode_kv_read_matches_cache_size() {
        let m = presets::llama3_8b();
        let (batch, ctx) = (32, 1024);
        let ops = operators(&m, Phase::decode(batch, ctx));
        let kv_read: u64 = ops.iter().map(|o| o.kv_read_bytes.get()).sum();
        assert_eq!(kv_read, m.kv_cache_bytes(batch, ctx).get());
    }

    #[test]
    fn prefill_flops_roughly_two_params_per_token() {
        let m = presets::llama3_8b();
        let tokens = 1024;
        let ops = operators(&m, Phase::prefill(1, tokens));
        let flops: FlopCount = ops.iter().map(|o| o.flops()).sum();
        // The 2·P·T rule of thumb over the decoder stack. The embedding is a
        // gather (0 FLOPs) and the LM head only projects the last position,
        // so both are excluded from P; attention adds a few percent on top.
        let stack_params = m.total_params() - 2 * (m.vocab * m.hidden) as u64;
        let rule = 2.0 * stack_params as f64 * tokens as f64;
        let ratio = flops.get() / rule;
        assert!((1.0..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn decode_kv_write_is_one_token_per_request() {
        let m = presets::llama3_8b();
        let ops = layer_operators(&m, Phase::decode(8, 100));
        let written: u64 = ops.iter().map(|o| o.kv_write_bytes.get()).sum();
        assert_eq!(written, m.kv_bytes_per_token_layer().get() * 8);
    }

    #[test]
    fn prefill_kv_write_covers_prompt() {
        let m = presets::llama3_8b();
        let ops = layer_operators(&m, Phase::prefill(2, 64));
        let written: u64 = ops.iter().map(|o| o.kv_write_bytes.get()).sum();
        assert_eq!(written, m.kv_bytes_per_token_layer().get() * 2 * 64);
    }

    #[test]
    fn moe_adds_router_and_scales_mlp() {
        let mixtral = presets::mixtral_8x7b();
        let ops = layer_operators(&mixtral, Phase::decode(1, 128));
        assert!(ops.iter().any(|o| o.name == OpName::MoeRouter));
        let gate = ops.iter().find(|o| o.name == OpName::MlpGate).unwrap();
        // One request streams exactly top-k = 2 experts' worth of weights.
        let one_expert = (mixtral.hidden * mixtral.intermediate) as u64 * 2;
        assert!((gate.weight_bytes.get() as f64 / one_expert as f64 - 2.0).abs() < 0.01);
        // Compute is also 2 dense passes.
        assert_eq!(gate.matmul_shape().unwrap().count, 2);
    }

    #[test]
    fn lm_head_rows_are_batch_not_tokens() {
        let m = presets::llama3_8b();
        let ops = once_operators(&m, Phase::prefill(4, 512));
        let lm = ops.iter().find(|o| o.name == OpName::LmHead).unwrap();
        assert_eq!(lm.matmul_shape().unwrap().m, 4);
    }

    #[test]
    fn full_graph_replicates_layers() {
        let m = presets::llama3_8b();
        let per_layer = layer_operators(&m, Phase::decode(1, 1)).len();
        let total = operators(&m, Phase::decode(1, 1)).len();
        assert_eq!(total, per_layer * m.layers + 3);
    }

    #[test]
    fn attention_ops_are_classified_for_mac_tree() {
        let m = presets::llama3_8b();
        for phase in [Phase::decode(8, 256), Phase::prefill(2, 256)] {
            let ops = layer_operators(&m, phase);
            for op in &ops {
                let is_kv = op.kv_read_bytes.get() > 0;
                if is_kv {
                    assert_eq!(op.class, OpClass::Attention, "{}", op.name);
                }
            }
        }
    }
}
