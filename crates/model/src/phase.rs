//! Inference phase descriptors.

use core::fmt;

use serde::{Deserialize, Serialize};

/// One workload point of LLM inference: either a prefill pass over a prompt
/// or a single auto-regressive decode step (paper §II-A).
///
/// The two phases stress opposite hardware resources — prefill is
/// compute-bound GEMM work, decode is bandwidth-bound GEMV work — which is
/// the entire premise of the heterogeneous ADOR template.
///
/// # Examples
///
/// ```
/// use ador_model::Phase;
///
/// let prefill = Phase::prefill(4, 1024);
/// assert_eq!(prefill.tokens_in_flight(), 4096);
/// assert_eq!(prefill.rows(), 4096); // GEMM M dimension
///
/// let decode = Phase::decode(32, 1024);
/// assert_eq!(decode.rows(), 32); // one token per request
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Parallel processing of `prompt_len` input tokens for each of `batch`
    /// requests; KV pairs for all tokens are produced.
    Prefill {
        /// Concurrent requests being prefiled together.
        batch: usize,
        /// Prompt length per request, in tokens.
        prompt_len: usize,
    },
    /// One auto-regressive step generating a single token for each of
    /// `batch` requests whose KV caches hold `context_len` tokens.
    Decode {
        /// Concurrent requests in the decode batch.
        batch: usize,
        /// KV-cache length per request, in tokens.
        context_len: usize,
    },
}

impl Phase {
    /// Creates a prefill phase.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `prompt_len` is zero.
    pub fn prefill(batch: usize, prompt_len: usize) -> Self {
        assert!(
            batch > 0 && prompt_len > 0,
            "prefill needs batch > 0 and prompt_len > 0"
        );
        Phase::Prefill { batch, prompt_len }
    }

    /// Creates a decode phase.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `context_len` is zero.
    pub fn decode(batch: usize, context_len: usize) -> Self {
        assert!(
            batch > 0 && context_len > 0,
            "decode needs batch > 0 and context_len > 0"
        );
        Phase::Decode { batch, context_len }
    }

    /// Number of concurrent requests.
    pub fn batch(&self) -> usize {
        match *self {
            Phase::Prefill { batch, .. } | Phase::Decode { batch, .. } => batch,
        }
    }

    /// Tokens processed per request in this step (prompt length for prefill,
    /// one for decode).
    pub fn tokens_per_request(&self) -> usize {
        match *self {
            Phase::Prefill { prompt_len, .. } => prompt_len,
            Phase::Decode { .. } => 1,
        }
    }

    /// Total tokens flowing through the weight matrices — the `M` dimension
    /// of every weight GEMM/GEMV in this step.
    pub fn rows(&self) -> usize {
        self.batch() * self.tokens_per_request()
    }

    /// Alias for [`Phase::rows`]: total tokens resident in this step.
    pub fn tokens_in_flight(&self) -> usize {
        self.rows()
    }

    /// KV-cache context length each query token attends over, *averaged*
    /// across the step. For prefill with causal masking, token `t` attends
    /// to `t+1` keys, so the average is `(prompt_len + 1) / 2`; for decode it
    /// is the full cache.
    pub fn mean_attention_span(&self) -> f64 {
        match *self {
            Phase::Prefill { prompt_len, .. } => (prompt_len as f64 + 1.0) / 2.0,
            Phase::Decode { context_len, .. } => context_len as f64,
        }
    }

    /// KV entries that must be **read** from memory per request. Prefill
    /// keeps the running chunk on-chip, so reads equal the average causal
    /// span; decode reads the whole cache.
    pub fn kv_tokens_read_per_request(&self) -> f64 {
        self.mean_attention_span()
    }

    /// KV entries **written** per request (the newly produced tokens).
    pub fn kv_tokens_written_per_request(&self) -> usize {
        self.tokens_per_request()
    }

    /// `true` for the prefill variant.
    pub fn is_prefill(&self) -> bool {
        matches!(self, Phase::Prefill { .. })
    }

    /// `true` for the decode variant.
    pub fn is_decode(&self) -> bool {
        matches!(self, Phase::Decode { .. })
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Phase::Prefill { batch, prompt_len } => {
                write!(f, "prefill(batch={batch}, prompt={prompt_len})")
            }
            Phase::Decode { batch, context_len } => {
                write!(f, "decode(batch={batch}, context={context_len})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rows_multiply_out() {
        assert_eq!(Phase::prefill(3, 100).rows(), 300);
        assert_eq!(Phase::decode(17, 999).rows(), 17);
    }

    #[test]
    fn causal_span_is_half_prompt() {
        assert_eq!(Phase::prefill(1, 1023).mean_attention_span(), 512.0);
        assert_eq!(Phase::decode(1, 1024).mean_attention_span(), 1024.0);
    }

    #[test]
    fn kv_written_matches_tokens() {
        assert_eq!(Phase::prefill(2, 64).kv_tokens_written_per_request(), 64);
        assert_eq!(Phase::decode(2, 64).kv_tokens_written_per_request(), 1);
    }

    #[test]
    #[should_panic(expected = "batch > 0")]
    fn zero_batch_rejected() {
        let _ = Phase::decode(0, 1);
    }

    #[test]
    fn display_names_phase() {
        assert_eq!(
            format!("{}", Phase::prefill(1, 2)),
            "prefill(batch=1, prompt=2)"
        );
        assert_eq!(
            format!("{}", Phase::decode(3, 4)),
            "decode(batch=3, context=4)"
        );
    }

    proptest! {
        #[test]
        fn prefill_rows_ge_decode_rows(b in 1usize..256, s in 1usize..4096) {
            prop_assert!(Phase::prefill(b, s).rows() >= Phase::decode(b, s).rows());
        }
    }
}
