//! Transformer model configuration and derived size arithmetic.

use core::fmt;

use ador_units::Bytes;
use serde::{Deserialize, Serialize};

use crate::moe::MoeConfig as MoeConfigInner;
use crate::{graph, Operator, Phase};

/// Numeric storage format of weights and KV-cache entries.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// IEEE 754 half precision (2 bytes) — the paper's serving format.
    #[default]
    F16,
    /// bfloat16 (2 bytes).
    Bf16,
    /// IEEE 754 single precision (4 bytes).
    F32,
    /// 8-bit integer (1 byte).
    I8,
}

impl DataType {
    /// Storage size of one element in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            DataType::F16 | DataType::Bf16 => 2,
            DataType::F32 => 4,
            DataType::I8 => 1,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::F16 => "fp16",
            DataType::Bf16 => "bf16",
            DataType::F32 => "fp32",
            DataType::I8 => "int8",
        };
        f.write_str(s)
    }
}

/// Attention head-sharing scheme, derived from the head counts (paper §V-A
/// distinguishes these because they change the MAC-tree lane requirement,
/// Fig. 11b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttentionKind {
    /// Multi-head attention: every query head has its own KV head.
    Mha,
    /// Grouped-query attention: several query heads share one KV head.
    Gqa,
    /// Multi-query attention: all query heads share a single KV head.
    Mqa,
}

impl fmt::Display for AttentionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttentionKind::Mha => "MHA",
            AttentionKind::Gqa => "GQA",
            AttentionKind::Mqa => "MQA",
        };
        f.write_str(s)
    }
}

pub use crate::moe::MoeConfig;

/// A decoder-only transformer description.
///
/// Field semantics follow the usual HuggingFace `config.json` names. All
/// derived sizes (parameter counts, KV bytes, operator lists) are computed
/// from these fields, so the struct is a passive data carrier with public
/// fields in the C-struct spirit.
///
/// # Examples
///
/// ```
/// use ador_model::{ModelConfig, AttentionKind};
///
/// let m = ModelConfig::builder("toy")
///     .hidden(1024)
///     .layers(4)
///     .heads(16)
///     .kv_heads(4)
///     .intermediate(4096)
///     .vocab(32000)
///     .build();
/// assert_eq!(m.head_dim, 64);
/// assert_eq!(m.attention_kind(), AttentionKind::Gqa);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name (e.g. `"LLaMA3 8B"`).
    pub name: String,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Number of decoder layers.
    pub layers: usize,
    /// Number of query heads.
    pub heads: usize,
    /// Number of key/value heads (`== heads` for MHA, `1` for MQA).
    pub kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// MLP intermediate dimension.
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// `true` for SwiGLU-style MLPs (gate + up + down), `false` for the
    /// classic two-matrix MLP.
    pub gated_mlp: bool,
    /// Mixture-of-experts configuration, if any.
    pub moe: Option<MoeConfigInner>,
    /// Maximum supported sequence length.
    pub max_seq_len: usize,
    /// Weight / KV storage format.
    pub dtype: DataType,
}

impl ModelConfig {
    /// Starts building a configuration; see [`ModelConfigBuilder`].
    pub fn builder(name: impl Into<String>) -> ModelConfigBuilder {
        ModelConfigBuilder::new(name)
    }

    /// The attention head-sharing scheme implied by the head counts.
    pub fn attention_kind(&self) -> AttentionKind {
        if self.kv_heads == 1 {
            AttentionKind::Mqa
        } else if self.kv_heads == self.heads {
            AttentionKind::Mha
        } else {
            AttentionKind::Gqa
        }
    }

    /// Query projection width (`heads · head_dim`).
    #[inline]
    pub fn q_dim(&self) -> usize {
        self.heads * self.head_dim
    }

    /// Key/value projection width (`kv_heads · head_dim`).
    #[inline]
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim
    }

    /// Parameters in one layer's attention block (Q, K, V, O projections).
    pub fn attn_params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let q = self.q_dim() as u64;
        let kv = self.kv_dim() as u64;
        h * q + 2 * h * kv + q * h
    }

    /// Parameters in one layer's MLP block.
    ///
    /// For MoE models this counts **all** experts (they all live in DRAM).
    pub fn mlp_params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let i = self.intermediate as u64;
        let matrices = if self.gated_mlp { 3 } else { 2 };
        let dense = matrices * h * i;
        match &self.moe {
            Some(moe) => dense * moe.num_experts as u64 + moe.router_params(self.hidden),
            None => dense,
        }
    }

    /// Parameters in one decoder layer (attention + MLP + norms).
    pub fn params_per_layer(&self) -> u64 {
        self.attn_params_per_layer() + self.mlp_params_per_layer() + 2 * self.hidden as u64
    }

    /// Total parameters including embedding and LM head.
    pub fn total_params(&self) -> u64 {
        let embed = (self.vocab * self.hidden) as u64;
        let lm_head = (self.hidden * self.vocab) as u64;
        self.params_per_layer() * self.layers as u64 + embed + lm_head + self.hidden as u64
    }

    /// Bytes of weights that a decode step must stream per layer
    /// (attention + MLP); for MoE models only the *activated* experts are
    /// streamed, which depends on the batch via [`MoeConfig::expected_active_experts`].
    pub fn streamed_layer_bytes(&self, batch: usize) -> Bytes {
        let dense_mlp = {
            let h = self.hidden as u64;
            let i = self.intermediate as u64;
            let matrices = if self.gated_mlp { 3 } else { 2 };
            matrices * h * i
        };
        let mlp = match &self.moe {
            Some(moe) => {
                let active = moe.expected_active_experts(batch);
                (dense_mlp as f64 * active) as u64 + moe.router_params(self.hidden)
            }
            None => dense_mlp,
        };
        Bytes::new((self.attn_params_per_layer() + mlp) * self.dtype.bytes())
    }

    /// Total weight footprint in bytes.
    pub fn weight_bytes(&self) -> Bytes {
        Bytes::new(self.total_params() * self.dtype.bytes())
    }

    /// KV-cache bytes for one token in one layer (K and V planes).
    pub fn kv_bytes_per_token_layer(&self) -> Bytes {
        Bytes::new(2 * self.kv_dim() as u64 * self.dtype.bytes())
    }

    /// KV-cache bytes for one token across all layers.
    pub fn kv_bytes_per_token(&self) -> Bytes {
        self.kv_bytes_per_token_layer() * self.layers as u64
    }

    /// Full KV-cache footprint for `batch` requests at `context` tokens each.
    pub fn kv_cache_bytes(&self, batch: usize, context: usize) -> Bytes {
        self.kv_bytes_per_token() * (batch * context) as u64
    }

    /// The operator list for one inference step of `phase`
    /// (all layers + LM head); see [`graph::operators`].
    pub fn operators(&self, phase: Phase) -> Vec<Operator> {
        graph::operators(self, phase)
    }

    /// The operator list for a single decoder layer of `phase`.
    pub fn layer_operators(&self, phase: Phase) -> Vec<Operator> {
        graph::layer_operators(self, phase)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant
    /// (zero dimension, `heads` not divisible by `kv_heads`, MoE without
    /// experts, …).
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden == 0
            || self.layers == 0
            || self.heads == 0
            || self.kv_heads == 0
            || self.head_dim == 0
            || self.intermediate == 0
            || self.vocab == 0
            || self.max_seq_len == 0
        {
            return Err(format!("model '{}' has a zero-sized dimension", self.name));
        }
        if self.kv_heads > self.heads {
            return Err(format!(
                "model '{}' has more KV heads ({}) than query heads ({})",
                self.name, self.kv_heads, self.heads
            ));
        }
        if self.heads % self.kv_heads != 0 {
            return Err(format!(
                "model '{}': query heads ({}) must be a multiple of KV heads ({})",
                self.name, self.heads, self.kv_heads
            ));
        }
        if let Some(moe) = &self.moe {
            moe.validate()
                .map_err(|e| format!("model '{}': {e}", self.name))?;
        }
        Ok(())
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.1}B params, {} layers, h={}, {} {}x{})",
            self.name,
            self.total_params() as f64 / 1e9,
            self.layers,
            self.hidden,
            self.attention_kind(),
            self.heads,
            self.head_dim,
        )
    }
}

/// Incremental constructor for [`ModelConfig`] (C-BUILDER).
///
/// `head_dim` defaults to `hidden / heads`; `kv_heads` defaults to `heads`
/// (MHA); `max_seq_len` defaults to 8192; `dtype` defaults to FP16; the MLP
/// defaults to gated (SwiGLU).
#[derive(Debug, Clone)]
pub struct ModelConfigBuilder {
    name: String,
    hidden: usize,
    layers: usize,
    heads: usize,
    kv_heads: Option<usize>,
    head_dim: Option<usize>,
    intermediate: usize,
    vocab: usize,
    gated_mlp: bool,
    moe: Option<MoeConfigInner>,
    max_seq_len: usize,
    dtype: DataType,
}

impl ModelConfigBuilder {
    /// Creates a builder with placeholder dimensions that must be filled in.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            hidden: 0,
            layers: 0,
            heads: 0,
            kv_heads: None,
            head_dim: None,
            intermediate: 0,
            vocab: 0,
            gated_mlp: true,
            moe: None,
            max_seq_len: 8192,
            dtype: DataType::F16,
        }
    }

    /// Sets the hidden dimension.
    pub fn hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden;
        self
    }

    /// Sets the decoder layer count.
    pub fn layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Sets the query-head count.
    pub fn heads(mut self, heads: usize) -> Self {
        self.heads = heads;
        self
    }

    /// Sets the KV-head count (defaults to `heads`, i.e. MHA).
    pub fn kv_heads(mut self, kv_heads: usize) -> Self {
        self.kv_heads = Some(kv_heads);
        self
    }

    /// Sets the per-head dimension (defaults to `hidden / heads`).
    pub fn head_dim(mut self, head_dim: usize) -> Self {
        self.head_dim = Some(head_dim);
        self
    }

    /// Sets the MLP intermediate dimension.
    pub fn intermediate(mut self, intermediate: usize) -> Self {
        self.intermediate = intermediate;
        self
    }

    /// Sets the vocabulary size.
    pub fn vocab(mut self, vocab: usize) -> Self {
        self.vocab = vocab;
        self
    }

    /// Selects a gated (SwiGLU, 3-matrix) or plain (2-matrix) MLP.
    pub fn gated_mlp(mut self, gated: bool) -> Self {
        self.gated_mlp = gated;
        self
    }

    /// Makes the MLP a mixture of experts.
    pub fn moe(mut self, num_experts: usize, experts_per_token: usize) -> Self {
        self.moe = Some(MoeConfigInner::new(num_experts, experts_per_token));
        self
    }

    /// Sets the maximum sequence length.
    pub fn max_seq_len(mut self, max_seq_len: usize) -> Self {
        self.max_seq_len = max_seq_len;
        self
    }

    /// Sets the storage data type.
    pub fn dtype(mut self, dtype: DataType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if the resulting configuration fails [`ModelConfig::validate`];
    /// builders are used with literal dimensions, so this is a programming
    /// error rather than a recoverable condition.
    pub fn build(self) -> ModelConfig {
        let heads = self.heads;
        let cfg = ModelConfig {
            name: self.name,
            hidden: self.hidden,
            layers: self.layers,
            heads,
            kv_heads: self.kv_heads.unwrap_or(heads),
            head_dim: self
                .head_dim
                .unwrap_or_else(|| self.hidden.checked_div(heads).unwrap_or(0)),
            intermediate: self.intermediate,
            vocab: self.vocab,
            gated_mlp: self.gated_mlp,
            moe: self.moe,
            max_seq_len: self.max_seq_len,
            dtype: self.dtype,
        };
        if let Err(e) = cfg.validate() {
            panic!("invalid model configuration: {e}");
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn attention_kind_classification() {
        let mk = |heads, kv| {
            ModelConfig::builder("t")
                .hidden(1024)
                .layers(1)
                .heads(heads)
                .kv_heads(kv)
                .head_dim(64)
                .intermediate(4096)
                .vocab(1000)
                .build()
                .attention_kind()
        };
        assert_eq!(mk(16, 16), AttentionKind::Mha);
        assert_eq!(mk(16, 4), AttentionKind::Gqa);
        assert_eq!(mk(16, 1), AttentionKind::Mqa);
    }

    #[test]
    fn llama3_8b_kv_bytes_match_hand_calc() {
        let m = presets::llama3_8b();
        // 2 planes * 8 kv heads * 128 dim * 2 bytes = 4 KiB per token-layer.
        assert_eq!(m.kv_bytes_per_token_layer(), Bytes::from_kib(4));
        // 4 KiB * 32 layers = 128 KiB per token.
        assert_eq!(m.kv_bytes_per_token(), Bytes::from_kib(128));
    }

    #[test]
    fn gated_mlp_has_three_matrices() {
        let base = ModelConfig::builder("t")
            .hidden(1000)
            .layers(1)
            .heads(10)
            .head_dim(100)
            .intermediate(3000)
            .vocab(100);
        let gated = base.clone().gated_mlp(true).build();
        let plain = base.gated_mlp(false).build();
        assert_eq!(gated.mlp_params_per_layer(), 3 * 1000 * 3000);
        assert_eq!(plain.mlp_params_per_layer(), 2 * 1000 * 3000);
    }

    #[test]
    fn kv_cache_scales_with_batch_and_context() {
        let m = presets::llama3_8b();
        let small = m.kv_cache_bytes(1, 1024);
        let big = m.kv_cache_bytes(128, 1024);
        assert_eq!(big.get(), small.get() * 128);
    }

    #[test]
    fn validate_rejects_bad_head_grouping() {
        let mut m = presets::llama3_8b();
        m.kv_heads = 7; // 32 % 7 != 0
        assert!(m.validate().is_err());
        m.kv_heads = 64; // more than heads
        assert!(m.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn builder_panics_on_missing_dims() {
        let _ = ModelConfig::builder("broken").build();
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", presets::llama3_8b());
        assert!(s.contains("LLaMA3 8B"));
        assert!(s.contains("GQA"));
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DataType::F16.bytes(), 2);
        assert_eq!(DataType::Bf16.bytes(), 2);
        assert_eq!(DataType::F32.bytes(), 4);
        assert_eq!(DataType::I8.bytes(), 1);
    }

    #[test]
    fn streamed_bytes_smaller_for_moe_at_small_batch() {
        let mixtral = presets::mixtral_8x7b();
        let b1 = mixtral.streamed_layer_bytes(1);
        let b128 = mixtral.streamed_layer_bytes(128);
        let all = Bytes::new(
            (mixtral.attn_params_per_layer() + mixtral.mlp_params_per_layer())
                * mixtral.dtype.bytes(),
        );
        assert!(b1 < b128, "small batch must activate fewer experts");
        assert!(
            b128 <= all,
            "streamed weights can never exceed the full layer"
        );
    }
}
