//! Mixture-of-experts sizing arithmetic.

use serde::{Deserialize, Serialize};

/// Mixture-of-experts layer configuration (paper §V-A mentions MoE layers as
/// a weight-reuse case when sizing the MAC tree).
///
/// # Examples
///
/// ```
/// use ador_model::MoeConfig;
///
/// let mixtral = MoeConfig::new(8, 2);
/// // A single request activates exactly top-k experts...
/// assert_eq!(mixtral.expected_active_experts(1), 2.0 / 8.0 * 8.0 / 8.0 * 8.0);
/// // ...while a large batch touches essentially all of them.
/// assert!(mixtral.expected_active_experts(64) > 7.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Number of experts per MoE layer.
    pub num_experts: usize,
    /// Experts routed per token (top-k).
    pub experts_per_token: usize,
}

impl MoeConfig {
    /// Creates an MoE configuration with `num_experts` experts and top-`k`
    /// routing.
    pub const fn new(num_experts: usize, experts_per_token: usize) -> Self {
        Self {
            num_experts,
            experts_per_token,
        }
    }

    /// Expected number of **distinct** experts activated by a decode step of
    /// `batch` tokens, assuming uniform routing: each token draws
    /// `experts_per_token` distinct experts, so a given expert stays idle
    /// with probability `(1 - k/E)^batch`.
    ///
    /// This is what determines how many expert weight matrices must be
    /// streamed from DRAM in one step — the reason MoE weight traffic grows
    /// with batch size even though per-token compute is constant.
    pub fn expected_active_experts(&self, batch: usize) -> f64 {
        let e = self.num_experts as f64;
        let k = self.experts_per_token as f64;
        if batch == 0 {
            return 0.0;
        }
        e * (1.0 - (1.0 - k / e).powi(batch as i32))
    }

    /// Fraction of expert weights streamed for a decode step of `batch`.
    pub fn active_fraction(&self, batch: usize) -> f64 {
        self.expected_active_experts(batch) / self.num_experts as f64
    }

    /// Router (gate) parameters: one `hidden × num_experts` matrix.
    pub fn router_params(&self, hidden: usize) -> u64 {
        (hidden * self.num_experts) as u64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description if the expert counts are inconsistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_experts == 0 {
            return Err("MoE must have at least one expert".to_string());
        }
        if self.experts_per_token == 0 || self.experts_per_token > self.num_experts {
            return Err(format!(
                "experts_per_token ({}) must be in [1, num_experts ({})]",
                self.experts_per_token, self.num_experts
            ));
        }
        Ok(())
    }
}

/// Expert-activation summary for one decode step, exposed for schedulers
/// that want the intermediate numbers (C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpertActivation {
    /// Expected distinct experts touched.
    pub active_experts: f64,
    /// `active_experts / num_experts`.
    pub fraction: f64,
    /// Per-token compute multiplier (`experts_per_token` dense-MLP passes).
    pub compute_multiplier: f64,
}

impl ExpertActivation {
    /// Computes the activation summary for a decode step of `batch` tokens.
    pub fn for_batch(moe: &MoeConfig, batch: usize) -> Self {
        Self {
            active_experts: moe.expected_active_experts(batch),
            fraction: moe.active_fraction(batch),
            compute_multiplier: moe.experts_per_token as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_token_activates_topk() {
        let moe = MoeConfig::new(8, 2);
        assert!((moe.expected_active_experts(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn large_batch_saturates_all_experts() {
        let moe = MoeConfig::new(8, 2);
        assert!(moe.expected_active_experts(256) > 7.999);
        assert!(moe.active_fraction(256) <= 1.0);
    }

    #[test]
    fn zero_batch_activates_nothing() {
        assert_eq!(MoeConfig::new(8, 2).expected_active_experts(0), 0.0);
    }

    #[test]
    fn validation_bounds() {
        assert!(MoeConfig::new(0, 1).validate().is_err());
        assert!(MoeConfig::new(8, 0).validate().is_err());
        assert!(MoeConfig::new(8, 9).validate().is_err());
        assert!(MoeConfig::new(8, 8).validate().is_ok());
    }

    proptest! {
        #[test]
        fn activation_monotone_in_batch(e in 2usize..64, k in 1usize..4, b in 1usize..200) {
            let k = k.min(e);
            let moe = MoeConfig::new(e, k);
            let small = moe.expected_active_experts(b);
            let large = moe.expected_active_experts(b + 1);
            prop_assert!(large >= small - 1e-9);
            prop_assert!(large <= e as f64 + 1e-9);
            prop_assert!(small >= k as f64 - 1e-9);
        }
    }
}
