//! The model zoo used throughout the paper's evaluation.
//!
//! Dimensions follow the public HuggingFace `config.json` files. Parameter
//! counts derived from these configurations land within ~2 % of the
//! advertised sizes (checked in the tests below); small deviations come from
//! tied embeddings and biases, which the serving models ignore.

use crate::ModelConfig;

/// LLaMA3 8B — the paper's main evaluation model (Figs. 11, 12, 15, 16, 17).
pub fn llama3_8b() -> ModelConfig {
    ModelConfig::builder("LLaMA3 8B")
        .hidden(4096)
        .layers(32)
        .heads(32)
        .kv_heads(8)
        .head_dim(128)
        .intermediate(14336)
        .vocab(128256)
        .max_seq_len(8192)
        .build()
}

/// LLaMA3 70B — the multi-device evaluation model (Fig. 15b).
pub fn llama3_70b() -> ModelConfig {
    ModelConfig::builder("LLaMA3 70B")
        .hidden(8192)
        .layers(80)
        .heads(64)
        .kv_heads(8)
        .head_dim(128)
        .intermediate(28672)
        .vocab(128256)
        .max_seq_len(8192)
        .build()
}

/// LLaMA2 7B — MHA example for the MAC-tree lane study (Fig. 11b).
pub fn llama2_7b() -> ModelConfig {
    ModelConfig::builder("LLaMA2 7B")
        .hidden(4096)
        .layers(32)
        .heads(32)
        .kv_heads(32)
        .head_dim(128)
        .intermediate(11008)
        .vocab(32000)
        .max_seq_len(4096)
        .build()
}

/// Mistral 7B — GQA model used in the bandwidth study (Fig. 4b).
pub fn mistral_7b() -> ModelConfig {
    ModelConfig::builder("Mistral 7B")
        .hidden(4096)
        .layers(32)
        .heads(32)
        .kv_heads(8)
        .head_dim(128)
        .intermediate(14336)
        .vocab(32000)
        .max_seq_len(32768)
        .build()
}

/// Mixtral 8x7B — the MoE model of Fig. 1 / Fig. 3a.
pub fn mixtral_8x7b() -> ModelConfig {
    ModelConfig::builder("Mixtral 8x7B")
        .hidden(4096)
        .layers(32)
        .heads(32)
        .kv_heads(8)
        .head_dim(128)
        .intermediate(14336)
        .vocab(32000)
        .moe(8, 2)
        .max_seq_len(32768)
        .build()
}

/// Qwen2 7B (Fig. 3a).
pub fn qwen2_7b() -> ModelConfig {
    ModelConfig::builder("Qwen2 7B")
        .hidden(3584)
        .layers(28)
        .heads(28)
        .kv_heads(4)
        .head_dim(128)
        .intermediate(18944)
        .vocab(152064)
        .max_seq_len(32768)
        .build()
}

/// Gemma2 9B (Fig. 3a).
pub fn gemma2_9b() -> ModelConfig {
    ModelConfig::builder("Gemma2 9B")
        .hidden(3584)
        .layers(42)
        .heads(16)
        .kv_heads(8)
        .head_dim(256)
        .intermediate(14336)
        .vocab(256000)
        .max_seq_len(8192)
        .build()
}

/// GPT-J 6B — MHA model for the bandwidth study (Fig. 4b).
pub fn gptj_6b() -> ModelConfig {
    ModelConfig::builder("GPT-J 6B")
        .hidden(4096)
        .layers(28)
        .heads(16)
        .kv_heads(16)
        .head_dim(256)
        .intermediate(16384)
        .vocab(50400)
        .gated_mlp(false)
        .max_seq_len(2048)
        .build()
}

/// Falcon 7B — the MQA example of the MAC-tree lane study (Fig. 11b).
pub fn falcon_7b() -> ModelConfig {
    ModelConfig::builder("Falcon 7B")
        .hidden(4544)
        .layers(32)
        .heads(71)
        .kv_heads(1)
        .head_dim(64)
        .intermediate(18176)
        .vocab(65024)
        .gated_mlp(false)
        .max_seq_len(2048)
        .build()
}

/// Yi 34B — the two-device serving model of Fig. 16.
pub fn yi_34b() -> ModelConfig {
    ModelConfig::builder("Yi 34B")
        .hidden(7168)
        .layers(60)
        .heads(56)
        .kv_heads(8)
        .head_dim(128)
        .intermediate(20480)
        .vocab(64000)
        .max_seq_len(4096)
        .build()
}

fn opt(name: &str, hidden: usize, layers: usize, heads: usize) -> ModelConfig {
    ModelConfig::builder(name)
        .hidden(hidden)
        .layers(layers)
        .heads(heads)
        .intermediate(4 * hidden)
        .vocab(50272)
        .gated_mlp(false)
        .max_seq_len(2048)
        .build()
}

/// OPT 1.3B (Fig. 10 bandwidth calibration point).
pub fn opt_1_3b() -> ModelConfig {
    opt("OPT 1.3B", 2048, 24, 32)
}

/// OPT 6.7B (Fig. 10).
pub fn opt_6_7b() -> ModelConfig {
    opt("OPT 6.7B", 4096, 32, 32)
}

/// OPT 13B (Fig. 10).
pub fn opt_13b() -> ModelConfig {
    opt("OPT 13B", 5120, 40, 40)
}

/// OPT 30B (Fig. 10).
pub fn opt_30b() -> ModelConfig {
    opt("OPT 30B", 7168, 48, 56)
}

/// OPT 66B (Fig. 10).
pub fn opt_66b() -> ModelConfig {
    opt("OPT 66B", 9216, 64, 72)
}

/// Every preset, for registry-style iteration.
pub fn all() -> Vec<ModelConfig> {
    vec![
        llama3_8b(),
        llama3_70b(),
        llama2_7b(),
        mistral_7b(),
        mixtral_8x7b(),
        qwen2_7b(),
        gemma2_9b(),
        gptj_6b(),
        falcon_7b(),
        yi_34b(),
        opt_1_3b(),
        opt_6_7b(),
        opt_13b(),
        opt_30b(),
        opt_66b(),
    ]
}

/// Looks up a preset by (case-insensitive) name.
///
/// # Examples
///
/// ```
/// let m = ador_model::presets::by_name("llama3 8b").unwrap();
/// assert_eq!(m.layers, 32);
/// ```
pub fn by_name(name: &str) -> Option<ModelConfig> {
    let needle = name.to_ascii_lowercase();
    all()
        .into_iter()
        .find(|m| m.name.to_ascii_lowercase() == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttentionKind;

    fn billions(m: &ModelConfig) -> f64 {
        m.total_params() as f64 / 1e9
    }

    #[test]
    fn parameter_counts_match_advertised_sizes() {
        let cases: Vec<(ModelConfig, f64, f64)> = vec![
            (llama3_8b(), 8.0, 0.05),
            (llama3_70b(), 70.6, 0.02),
            (llama2_7b(), 6.7, 0.05),
            (mistral_7b(), 7.2, 0.05),
            (mixtral_8x7b(), 46.7, 0.02),
            (qwen2_7b(), 7.6, 0.05),
            (gptj_6b(), 6.0, 0.05),
            (falcon_7b(), 7.2, 0.05),
            (yi_34b(), 34.4, 0.02),
            (opt_6_7b(), 6.7, 0.05),
            (opt_66b(), 66.0, 0.05),
        ];
        for (m, expect, tol) in cases {
            let got = billions(&m);
            let rel = (got - expect).abs() / expect;
            assert!(
                rel < tol,
                "{}: {got:.2}B vs {expect}B (rel {rel:.3})",
                m.name
            );
        }
    }

    #[test]
    fn attention_kinds_match_fig11b_labels() {
        assert_eq!(llama2_7b().attention_kind(), AttentionKind::Mha);
        assert_eq!(llama3_8b().attention_kind(), AttentionKind::Gqa);
        assert_eq!(falcon_7b().attention_kind(), AttentionKind::Mqa);
    }

    #[test]
    fn all_presets_validate() {
        for m in all() {
            assert!(m.validate().is_ok(), "{} failed validation", m.name);
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_name("MIXTRAL 8X7B").is_some());
        assert!(by_name("no such model").is_none());
    }

    #[test]
    fn opt_family_is_ordered_by_size() {
        let sizes: Vec<f64> = [opt_1_3b(), opt_6_7b(), opt_13b(), opt_30b(), opt_66b()]
            .iter()
            .map(billions)
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
    }

    #[test]
    fn mixtral_is_moe() {
        let m = mixtral_8x7b();
        let moe = m.moe.unwrap();
        assert_eq!(moe.num_experts, 8);
        assert_eq!(moe.experts_per_token, 2);
    }
}
