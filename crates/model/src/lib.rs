//! LLM model descriptions and workload characterization for ADOR.
//!
//! The ADOR framework (paper §IV–V) consumes "GenAI model information" —
//! tensor shapes, attention variants, MoE structure — and turns each
//! inference phase into a list of operators with exact compute and memory
//! traffic. This crate provides:
//!
//! * [`ModelConfig`] — a transformer description (hidden size, GQA/MQA
//!   grouping, gated MLP, MoE, vocabulary), with derived parameter counts and
//!   KV-cache sizes;
//! * [`presets`] — the model zoo used across the paper's figures (LLaMA 2/3,
//!   Mistral, Mixtral, Qwen2, Gemma2, GPT-J, Falcon, Yi-34B, the OPT family);
//! * [`Phase`] — a prefill or decode workload point (batch, sequence
//!   lengths);
//! * [`Operator`] / [`graph`] — the per-layer operator list with
//!   GEMM/GEMV shapes, weight bytes, KV-cache reads/writes and vector work;
//! * [`workload`] — aggregate statistics backing Fig. 3a (KV vs parameter
//!   DRAM share) and Fig. 3b (attention vs MLP op share).
//!
//! # Examples
//!
//! ```
//! use ador_model::{presets, Phase};
//!
//! let llama = presets::llama3_8b();
//! assert!((llama.total_params() as f64 / 1e9 - 8.0).abs() < 0.1);
//!
//! let decode = Phase::decode(32, 1024);
//! let ops = llama.operators(decode);
//! let weight_bytes: u64 = ops.iter().map(|op| op.weight_bytes.get()).sum();
//! assert!(weight_bytes > 10_000_000_000); // ~16 GB of FP16 weights per step
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod graph;
mod moe;
mod ops;
mod phase;
pub mod presets;
pub mod workload;

pub use config::{AttentionKind, DataType, ModelConfig, ModelConfigBuilder, MoeConfig};
pub use moe::ExpertActivation;
pub use ops::{MatMulShape, OpClass, OpKind, OpName, Operator};
pub use phase::Phase;
