//! Operator descriptors: what one step of inference asks of the hardware.

use core::fmt;

use ador_units::{Bytes, FlopCount};
use serde::{Deserialize, Serialize};

/// Shape of a (possibly batched) matrix multiplication
/// `count × (M×K · K×N)`.
///
/// The `M = 1` (or small-`M`) case is the GEMV regime the paper's MAC tree
/// targets; large `M` is the GEMM regime for the systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatMulShape {
    /// Output rows (token dimension for weight ops).
    pub m: usize,
    /// Contraction dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Number of independent multiplications of this shape (e.g. one per
    /// attention head).
    pub count: usize,
}

impl MatMulShape {
    /// A single `M×K · K×N` product.
    pub const fn new(m: usize, k: usize, n: usize) -> Self {
        Self { m, k, n, count: 1 }
    }

    /// `count` independent products of the same shape.
    pub const fn batched(m: usize, k: usize, n: usize, count: usize) -> Self {
        Self { m, k, n, count }
    }

    /// Total multiply-accumulates.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64 * self.count as u64
    }

    /// Total floating-point operations (2 per MAC).
    pub fn flops(&self) -> FlopCount {
        FlopCount::from_macs(self.macs())
    }

    /// `true` if this is matrix–vector shaped (the latency-critical case):
    /// the token dimension is small relative to the weight tile.
    pub fn is_gemv_like(&self) -> bool {
        self.m <= 8
    }
}

impl fmt::Display for MatMulShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 1 {
            write!(f, "[{}x{}]·[{}x{}]", self.m, self.k, self.k, self.n)
        } else {
            write!(
                f,
                "{}x [{}x{}]·[{}x{}]",
                self.count, self.m, self.k, self.k, self.n
            )
        }
    }
}

/// The computational kind of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense matrix multiplication against model weights or KV planes.
    MatMul(MatMulShape),
    /// Row-wise softmax over `elements` values.
    Softmax {
        /// Total elements normalized.
        elements: u64,
    },
    /// RMS/LayerNorm over `elements` values.
    Norm {
        /// Total elements normalized.
        elements: u64,
    },
    /// Pointwise work (residual adds, activations, RoPE) over `elements`.
    Elementwise {
        /// Total elements touched.
        elements: u64,
    },
    /// Embedding-table gather for `tokens` tokens of width `hidden`.
    Gather {
        /// Tokens looked up.
        tokens: u64,
        /// Row width of the table.
        hidden: u64,
    },
}

impl OpKind {
    /// Floating-point operations performed (vector ops count one FLOP per
    /// element pass; softmax ≈ 5 passes: max, sub, exp, sum, div).
    pub fn flops(&self) -> FlopCount {
        match *self {
            OpKind::MatMul(shape) => shape.flops(),
            OpKind::Softmax { elements } => FlopCount::new(5.0 * elements as f64),
            OpKind::Norm { elements } => FlopCount::new(4.0 * elements as f64),
            OpKind::Elementwise { elements } => FlopCount::new(elements as f64),
            OpKind::Gather { .. } => FlopCount::ZERO,
        }
    }
}

/// Scheduling class — which ADOR compute unit services the operator
/// (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Multiplication against *shared* model weights (QKV/O/MLP/LM-head):
    /// SA in prefill, MT in decode.
    WeightMatMul,
    /// Multiplication against *per-request* KV-cache data: always
    /// bandwidth-critical, serviced by the MT.
    Attention,
    /// Softmax / norm / elementwise / gather: vector unit.
    Vector,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::WeightMatMul => "weight-matmul",
            OpClass::Attention => "attention",
            OpClass::Vector => "vector",
        };
        f.write_str(s)
    }
}

/// Canonical operator names, matching the paper's latency-breakdown labels
/// (Fig. 11a: "QKV Proj", "MHA", "Out Proj", "MLP1", "MLP2").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names ARE the paper's labels; per-variant docs add nothing
pub enum OpName {
    Embed,
    AttnNorm,
    QkvProj,
    Rope,
    AttnScore,
    AttnSoftmax,
    AttnValue,
    OutProj,
    MlpNorm,
    MoeRouter,
    MlpGate,
    MlpUp,
    MlpAct,
    MlpDown,
    Residual,
    FinalNorm,
    LmHead,
}

impl OpName {
    /// The paper's Fig. 11 breakdown bucket for this operator.
    pub fn breakdown_bucket(&self) -> &'static str {
        match self {
            OpName::QkvProj => "QKV Proj",
            OpName::AttnScore | OpName::AttnSoftmax | OpName::AttnValue | OpName::Rope => "MHA",
            OpName::OutProj => "Out Proj",
            OpName::MlpGate | OpName::MlpUp | OpName::MoeRouter => "MLP1",
            OpName::MlpDown | OpName::MlpAct => "MLP2",
            OpName::LmHead => "LM-Head",
            OpName::Embed => "Embed",
            _ => "Others",
        }
    }
}

impl fmt::Display for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpName::Embed => "embed",
            OpName::AttnNorm => "attn_norm",
            OpName::QkvProj => "qkv_proj",
            OpName::Rope => "rope",
            OpName::AttnScore => "attn_score",
            OpName::AttnSoftmax => "attn_softmax",
            OpName::AttnValue => "attn_value",
            OpName::OutProj => "out_proj",
            OpName::MlpNorm => "mlp_norm",
            OpName::MoeRouter => "moe_router",
            OpName::MlpGate => "mlp_gate",
            OpName::MlpUp => "mlp_up",
            OpName::MlpAct => "mlp_act",
            OpName::MlpDown => "mlp_down",
            OpName::Residual => "residual",
            OpName::FinalNorm => "final_norm",
            OpName::LmHead => "lm_head",
        };
        f.write_str(s)
    }
}

/// One operator of an inference step, with its full memory-traffic
/// accounting.
///
/// All byte quantities are totals for the whole step (already multiplied by
/// batch, heads, etc.). `weight_bytes` are *shared* across the batch —
/// streamed once per step — while `kv_read_bytes` are *per-request* state
/// that cannot be amortized (paper §II-B, the key observation of Fig. 3a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Which operator this is.
    pub name: OpName,
    /// Computational shape.
    pub kind: OpKind,
    /// Scheduling class (which compute unit wants it).
    pub class: OpClass,
    /// Model weights streamed from DRAM, shared across the batch.
    pub weight_bytes: Bytes,
    /// KV-cache bytes read (per-request, unsharable).
    pub kv_read_bytes: Bytes,
    /// KV-cache bytes written.
    pub kv_write_bytes: Bytes,
    /// Activation bytes read on-chip.
    pub act_in_bytes: Bytes,
    /// Activation bytes produced.
    pub act_out_bytes: Bytes,
}

impl Operator {
    /// Floating-point operations for this operator.
    pub fn flops(&self) -> FlopCount {
        self.kind.flops()
    }

    /// Total DRAM traffic assuming weights and KV both live off-chip.
    pub fn dram_bytes(&self) -> Bytes {
        self.weight_bytes + self.kv_read_bytes + self.kv_write_bytes
    }

    /// Arithmetic intensity in FLOPs per DRAM byte (∞ for on-chip-only ops,
    /// represented as `f64::INFINITY`).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.dram_bytes().get();
        if bytes == 0 {
            f64::INFINITY
        } else {
            self.flops().get() / bytes as f64
        }
    }

    /// The matmul shape, if this is a matmul.
    pub fn matmul_shape(&self) -> Option<MatMulShape> {
        match self.kind {
            OpKind::MatMul(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.name, self.class, self.flops())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_macs_multiply() {
        let s = MatMulShape::batched(2, 3, 5, 7);
        assert_eq!(s.macs(), 2 * 3 * 5 * 7);
        assert_eq!(s.flops().get(), 2.0 * 210.0);
    }

    #[test]
    fn gemv_detection() {
        assert!(MatMulShape::new(1, 4096, 4096).is_gemv_like());
        assert!(MatMulShape::new(8, 4096, 4096).is_gemv_like());
        assert!(!MatMulShape::new(64, 4096, 4096).is_gemv_like());
    }

    #[test]
    fn vector_flops_scale_with_elements() {
        assert_eq!(OpKind::Softmax { elements: 10 }.flops().get(), 50.0);
        assert_eq!(OpKind::Norm { elements: 10 }.flops().get(), 40.0);
        assert_eq!(OpKind::Elementwise { elements: 10 }.flops().get(), 10.0);
        assert_eq!(
            OpKind::Gather {
                tokens: 4,
                hidden: 8
            }
            .flops(),
            FlopCount::ZERO
        );
    }

    #[test]
    fn breakdown_buckets_match_paper_labels() {
        assert_eq!(OpName::QkvProj.breakdown_bucket(), "QKV Proj");
        assert_eq!(OpName::AttnScore.breakdown_bucket(), "MHA");
        assert_eq!(OpName::AttnValue.breakdown_bucket(), "MHA");
        assert_eq!(OpName::MlpUp.breakdown_bucket(), "MLP1");
        assert_eq!(OpName::MlpDown.breakdown_bucket(), "MLP2");
        assert_eq!(OpName::Residual.breakdown_bucket(), "Others");
    }

    #[test]
    fn arithmetic_intensity_infinite_on_chip() {
        let op = Operator {
            name: OpName::Residual,
            kind: OpKind::Elementwise { elements: 100 },
            class: OpClass::Vector,
            weight_bytes: Bytes::ZERO,
            kv_read_bytes: Bytes::ZERO,
            kv_write_bytes: Bytes::ZERO,
            act_in_bytes: Bytes::new(200),
            act_out_bytes: Bytes::new(200),
        };
        assert!(op.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", MatMulShape::new(1, 2, 3)), "[1x2]·[2x3]");
        assert_eq!(
            format!("{}", MatMulShape::batched(1, 2, 3, 4)),
            "4x [1x2]·[2x3]"
        );
        assert_eq!(format!("{}", OpClass::Attention), "attention");
        assert_eq!(format!("{}", OpName::QkvProj), "qkv_proj");
    }
}
