//! Fixture for the `allow-no-reason` rule. The first attribute below
//! must stay comment-free on its line and the line above it.

fn padding() {}

#[allow(dead_code)]
fn bare() {}

// justification: fixture demonstrates a properly commented allow
#[allow(dead_code)]
fn justified() {}

fn malformed_suppression() {
    // ador-lint: allow(panic)
    let _x: u32 = 0;
}
