//! Fixture for the `unordered-collection` rule. Deliberately contains
//! findings.

use std::collections::HashMap;

fn bad() -> HashMap<u32, u32> {
    HashMap::new()
}

fn suppressed() {
    // ador-lint: allow(unordered-collection) — fixture: order-insensitive counter map
    let _m: HashMap<u32, u32> = HashMap::new();
}
