//! Fixture for the `as-cast` rule. Deliberately contains findings; the
//! test module at the bottom must stay finding-free.

fn bad(x: u64) -> f64 {
    x as f64
}

fn bad_narrowing(x: f64) -> usize {
    x as usize
}

fn suppressed(x: u64) -> u32 {
    x as u32 // ador-lint: allow(as-cast) — fixture: masked to the low 32 bits on purpose
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_are_fine_in_tests() {
        let x = 1u64 as f64;
        assert!(x > 0.0);
    }
}
