//! Fixture for the `thread-rng` rule. Deliberately contains findings.

fn bad() {
    let mut _rng = thread_rng();
    let _r: f64 = rand::random();
    let _rng2 = StdRng::from_entropy();
}

fn suppressed() {
    let mut _rng = thread_rng(); // ador-lint: allow(thread-rng) — fixture: entropy wanted here
}
