//! Fixture for the `wall-clock` rule. Deliberately contains findings;
//! the workspace walk skips `fixtures/` directories.

fn bad() {
    let _t = Instant::now();
    let _s = SystemTime::now();
}

fn suppressed() {
    // ador-lint: allow(wall-clock) — fixture: measuring host time deliberately
    let _t = Instant::now();
}
