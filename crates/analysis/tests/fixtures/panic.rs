//! Fixture for the `panic` rule. Deliberately contains findings; the
//! test module at the bottom must stay finding-free.

fn bad(x: Option<u32>, xs: &[u32]) -> u32 {
    let a = x.unwrap();
    let b = xs[0];
    if a == 0 {
        panic!("zero");
    }
    a + b
}

fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("present")
}

fn suppressed(x: Option<u32>) -> u32 {
    // ador-lint: allow(panic) — fixture: invariant documented at the call site
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        let xs = [1u32, 2];
        assert_eq!(xs[0], 1);
    }
}
