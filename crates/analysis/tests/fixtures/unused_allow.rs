//! Fixture for the `unused-allow` rule: a valid suppression whose
//! finding was refactored away.

fn clean() -> u32 {
    // ador-lint: allow(panic) — stale: the unwrap below was refactored away
    42
}
