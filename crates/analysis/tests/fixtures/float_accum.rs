//! Fixture: f64 `+=` accumulation in loops in telemetry aggregation code.

pub fn mean(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut kahan = 0.0;
    for x in xs {
        sum += x;
        // ador-lint: allow(float-accum) — compensated summation keeps drift bounded
        kahan += x;
    }
    (sum + kahan) / 2.0
}

pub fn total(buckets: &[u64]) -> u64 {
    let mut n = 0;
    for b in buckets {
        n += b;
    }
    n
}
