//! Fixture for the `map-iter` rule. Deliberately contains findings
//! (including the `unordered-collection` findings from the bindings the
//! rule tracks — tests filter by rule id).

struct Roster {
    // ador-lint: allow(unordered-collection) — fixture: field exists to exercise map-iter
    members: HashMap<u64, u32>,
}

fn field_iteration(r: &Roster) {
    for _k in r.members.keys() {}
}

fn local_iteration() {
    // ador-lint: allow(unordered-collection) — fixture: binding exists to exercise map-iter
    let scores: HashMap<u64, u32> = HashMap::new();
    for _pair in scores {}
}

fn method_chain() {
    // ador-lint: allow(unordered-collection) — fixture: binding exists to exercise map-iter
    let seen = HashSet::new();
    let _v: Vec<u64> = seen.iter().copied().collect();
}

fn suppressed(r: &Roster) {
    // ador-lint: allow(map-iter) — fixture: reduced with a commutative fold
    let _n: u32 = r.members.values().sum();
}
