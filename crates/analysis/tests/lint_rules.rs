//! Fixture-driven rule tests.
//!
//! Every rule has a fixture under `tests/fixtures/` with positive cases
//! (the rule fires, at pinned lines) and suppressed cases (a reasoned
//! `ador-lint: allow(…)` silences it). The fixtures deliberately
//! contain findings, which is why the workspace walk skips `fixtures/`
//! directories. Also here: the seeded-regression demonstration the CI
//! gate relies on, the baseline lifecycle, and the JSON self-validation
//! that parses `render_json` output back with `ador-bench::json`.

// tests may unwrap: a failed unwrap IS the failure signal
#![allow(clippy::unwrap_used)]

use ador_analysis::baseline::StaleEntry;
use ador_analysis::{hash_line, lint_file, Baseline, FileClass, Finding, Report, RULES};
use ador_bench::json::{parse, Value};

const SIM: FileClass = FileClass {
    sim: true,
    test_file: false,
};

/// All fixtures, paired with the rule they exercise.
const FIXTURES: &[(&str, &str)] = &[
    ("wall-clock", include_str!("fixtures/wall_clock.rs")),
    ("thread-rng", include_str!("fixtures/thread_rng.rs")),
    (
        "unordered-collection",
        include_str!("fixtures/unordered_collection.rs"),
    ),
    ("map-iter", include_str!("fixtures/map_iter.rs")),
    ("panic", include_str!("fixtures/panic.rs")),
    ("as-cast", include_str!("fixtures/as_cast.rs")),
    ("float-accum", include_str!("fixtures/float_accum.rs")),
    (
        "allow-no-reason",
        include_str!("fixtures/allow_no_reason.rs"),
    ),
    ("unused-allow", include_str!("fixtures/unused_allow.rs")),
];

/// The path each rule's fixture is linted under: `float-accum` is scoped
/// to the telemetry crate's library sources, everything else is
/// path-independent.
fn fixture_path(rule: &str) -> &'static str {
    if rule == "float-accum" {
        "crates/telemetry/src/fixture.rs"
    } else {
        "fixture.rs"
    }
}

fn lines_for(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

/// Asserts every suppression in the fixture was used and well-formed
/// (fixtures that *test* those rules opt out).
fn assert_suppressions_clean(findings: &[Finding]) {
    let hygiene = findings
        .iter()
        .filter(|f| f.rule == "unused-allow" || f.rule == "allow-no-reason")
        .count();
    assert_eq!(
        hygiene, 0,
        "fixture suppressions must all land: {findings:?}"
    );
}

#[test]
fn wall_clock_fires_and_suppresses() {
    let found = lint_file(SIM, "wall_clock.rs", FIXTURES[0].1);
    assert_eq!(lines_for(&found, "wall-clock"), vec![5, 6]);
    assert_suppressions_clean(&found);
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn thread_rng_fires_and_suppresses() {
    let found = lint_file(SIM, "thread_rng.rs", FIXTURES[1].1);
    assert_eq!(lines_for(&found, "thread-rng"), vec![4, 5, 6]);
    assert_suppressions_clean(&found);
    assert_eq!(found.len(), 3, "{found:?}");
}

#[test]
fn unordered_collection_fires_and_suppresses() {
    let found = lint_file(SIM, "unordered_collection.rs", FIXTURES[2].1);
    assert_eq!(lines_for(&found, "unordered-collection"), vec![4, 6, 7]);
    assert_suppressions_clean(&found);
    assert_eq!(found.len(), 3, "{found:?}");
}

#[test]
fn map_iter_fires_and_suppresses() {
    let found = lint_file(SIM, "map_iter.rs", FIXTURES[3].1);
    // Field iteration, a direct `for … in map`, and a method chain.
    assert_eq!(lines_for(&found, "map-iter"), vec![11, 17, 23]);
    // The bindings' own unordered-collection findings are all annotated.
    assert_eq!(lines_for(&found, "unordered-collection"), Vec::<u32>::new());
    assert_suppressions_clean(&found);
    assert_eq!(found.len(), 3, "{found:?}");
}

#[test]
fn panic_fires_in_library_code_only() {
    let found = lint_file(SIM, "panic.rs", FIXTURES[4].1);
    // unwrap, indexing-by-literal, panic!, expect — and nothing from the
    // `#[cfg(test)]` module at the bottom.
    assert_eq!(lines_for(&found, "panic"), vec![5, 6, 8, 14]);
    assert_suppressions_clean(&found);
    assert_eq!(found.len(), 4, "{found:?}");
}

#[test]
fn as_cast_fires_in_library_code_only() {
    let found = lint_file(SIM, "as_cast.rs", FIXTURES[5].1);
    assert_eq!(lines_for(&found, "as-cast"), vec![5, 9]);
    assert_suppressions_clean(&found);
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn float_accum_fires_in_telemetry_library_code_and_suppresses() {
    let found = lint_file(SIM, "crates/telemetry/src/fixture.rs", FIXTURES[6].1);
    // `sum +=` fires; the annotated `kahan +=` and the integer `n +=`
    // stay silent.
    assert_eq!(lines_for(&found, "float-accum"), vec![7]);
    assert_suppressions_clean(&found);
    assert_eq!(found.len(), 1, "{found:?}");
    // Outside the telemetry crate the rule never fires.
    let out = lint_file(SIM, "crates/serving/src/fixture.rs", FIXTURES[6].1);
    assert_eq!(lines_for(&out, "float-accum"), Vec::<u32>::new());
}

#[test]
fn allow_no_reason_fires_on_bare_attr_and_malformed_suppression() {
    let found = lint_file(SIM, "allow_no_reason.rs", FIXTURES[7].1);
    // The bare `#[allow]` and the reasonless suppression; the justified
    // `#[allow]` stays silent.
    assert_eq!(lines_for(&found, "allow-no-reason"), vec![6, 14]);
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn unused_allow_fires_on_stale_suppression() {
    let found = lint_file(SIM, "unused_allow.rs", FIXTURES[8].1);
    assert_eq!(lines_for(&found, "unused-allow"), vec![5]);
    assert_eq!(found.len(), 1, "{found:?}");
}

#[test]
fn every_rule_has_a_fixture_that_fires_it() {
    for info in RULES {
        let covered = FIXTURES.iter().any(|(rule, src)| {
            *rule == info.id
                && lint_file(SIM, fixture_path(rule), src)
                    .iter()
                    .any(|f| f.rule == info.id)
        });
        assert!(covered, "rule `{}` has no firing fixture", info.id);
    }
}

/// The CI gate's contract: planting a determinism hazard in previously
/// clean code produces a finding the committed baseline cannot absorb.
#[test]
fn seeded_regression_fails_the_gate() {
    let clean = "fn step(now: Seconds) -> Seconds {\n    now\n}\n";
    assert!(lint_file(SIM, "sim.rs", clean).is_empty());

    let seeded =
        "fn step(now: Seconds) -> Seconds {\n    let _wall = Instant::now();\n    now\n}\n";
    let found = lint_file(SIM, "sim.rs", seeded);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, "wall-clock");

    let hashes = vec![hash_line("let _wall = Instant::now();")];
    let (fresh, stale) = Baseline::empty().apply(found, &hashes);
    assert_eq!(fresh.len(), 1, "a seeded hazard must surface as new");
    assert!(stale.is_empty());
}

/// The baseline lifecycle over a real fixture: grandfathered findings
/// are absorbed; fixing one leaves a stale entry that fails the run.
#[test]
fn fixing_a_grandfathered_finding_goes_stale() {
    let src = FIXTURES[5].1; // as_cast.rs
    let hashes_of = |src: &str, findings: &[Finding]| -> Vec<u64> {
        let lines: Vec<&str> = src.lines().collect();
        findings
            .iter()
            .map(|f| hash_line(lines[f.line as usize - 1]))
            .collect()
    };

    let findings = lint_file(SIM, "as_cast.rs", src);
    let hashes = hashes_of(src, &findings);
    let base = Baseline::from_findings(&findings, &hashes);
    let reparsed = Baseline::parse(&base.render()).unwrap();
    let (fresh, stale) = reparsed.apply(findings, &hashes);
    assert!(fresh.is_empty() && stale.is_empty(), "fully grandfathered");

    // "Fix" the narrowing cast: its entry must go stale.
    let fixed = src.replace("x as usize", "0");
    let f2 = lint_file(SIM, "as_cast.rs", &fixed);
    let h2 = hashes_of(&fixed, &f2);
    let (fresh, stale) = reparsed.apply(f2, &h2);
    assert!(fresh.is_empty());
    assert_eq!(stale.len(), 1, "{stale:?}");
    assert_eq!(stale[0].rule, "as-cast");
    assert_eq!((stale[0].allowed, stale[0].live), (1, 0));
}

/// `render_json` output must parse with `ador-bench::json` — the two
/// hand-rolled ends of the repo's JSON story pin each other.
#[test]
fn json_report_parses_with_ador_bench() {
    let report = Report {
        findings: vec![Finding {
            path: "crates/serving/src/engine.rs".to_string(),
            line: 42,
            col: 7,
            rule: "panic",
            message: "quote: \"x\", backslash: \\, and a\nnewline".to_string(),
        }],
        stale: vec![StaleEntry {
            rule: "as-cast".to_string(),
            path: "crates/spec/src/lib.rs".to_string(),
            allowed: 2,
            live: 1,
        }],
        files: 120,
        baselined: 53,
    };
    let doc = parse(&report.render_json()).expect("ador-lint JSON must parse");
    assert_eq!(doc.get("name").and_then(Value::as_str), Some("ador-lint"));
    assert_eq!(doc.get("files").and_then(Value::as_f64), Some(120.0));
    assert_eq!(doc.get("baselined").and_then(Value::as_f64), Some(53.0));
    assert_eq!(doc.get("clean").and_then(Value::as_bool), Some(false));

    let findings = doc.get("findings").and_then(Value::as_array).unwrap();
    assert_eq!(findings.len(), 1);
    assert_eq!(
        findings[0].get("rule").and_then(Value::as_str),
        Some("panic")
    );
    assert_eq!(findings[0].get("line").and_then(Value::as_f64), Some(42.0));
    assert_eq!(
        findings[0].get("message").and_then(Value::as_str),
        Some("quote: \"x\", backslash: \\, and a\nnewline"),
        "escaping must survive the round trip"
    );

    let stale = doc.get("stale_baseline").and_then(Value::as_array).unwrap();
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].get("allowed").and_then(Value::as_f64), Some(2.0));
    assert_eq!(stale[0].get("live").and_then(Value::as_f64), Some(1.0));
}
