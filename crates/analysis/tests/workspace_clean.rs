//! The gate itself: the workspace must lint clean against the committed
//! baseline. This is the same check CI runs via the `ador-lint` binary;
//! having it as a test means `cargo test` catches a regression (or a
//! stale baseline) before CI does.

use std::path::Path;

use ador_analysis::{lint_workspace, Baseline};

#[test]
fn workspace_lints_clean_against_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("lint-baseline.txt"))
        .expect("committed lint-baseline.txt must exist at the workspace root");
    let base = Baseline::parse(&text).expect("committed baseline must parse");
    let (report, _, _) = lint_workspace(&root, &base).expect("workspace walk");
    assert!(
        report.clean(),
        "workspace has unbaselined findings or stale baseline entries:\n{}",
        report.render_text()
    );
}
