//! The lint rules: token-pattern checks over one lexed file.
//!
//! Rules are deliberately lexical — no type information, no name
//! resolution. That keeps the pass dependency-free and fast, at the cost
//! of heuristics (e.g. [`map-iter`](RULES) tracks identifiers *declared*
//! as `HashMap`/`HashSet` in the same file). The contract being enforced
//! is architectural, not type-level: the sim crates (`ador-serving`,
//! `ador-cluster`, `ador-spec`) must stay replay-deterministic and
//! panic-free in library code, so the checks only need to catch the
//! constructs that can violate that, not to understand arbitrary Rust.
//!
//! Scopes:
//!
//! - **determinism** rules fire in sim-crate files only, *including*
//!   their test modules (a test that iterates a `HashMap` asserts on an
//!   order the language does not define);
//! - **panic-safety** and **cast** rules fire in sim-crate library code
//!   only (test modules, `tests/`, `benches/` and `examples/` are free
//!   to unwrap);
//! - **hygiene** rules fire everywhere the lint looks.

use crate::lexer::{Lexed, Tok, TokKind};

/// Where a file sits relative to the rule scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FileClass {
    /// File belongs to a deterministic-simulation crate
    /// (`crates/serving`, `crates/cluster`, `crates/spec`).
    pub sim: bool,
    /// File is wholly test/bench/example code (under `tests/`,
    /// `benches/` or `examples/`). `#[cfg(test)]` modules inside
    /// library files are detected separately.
    pub test_file: bool,
}

/// One lint finding, before suppression/baseline filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the hazard.
    pub message: String,
}

/// Static description of one rule, for `--list` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule identifier, as used in suppression comments and baselines.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule the pass knows, in severity-then-name order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wall-clock",
        summary: "no Instant/SystemTime reads in sim crates: wall time is \
                  nondeterministic; use the sim clock (Seconds)",
    },
    RuleInfo {
        id: "thread-rng",
        summary: "no thread_rng/from_entropy/rand::random in sim crates: \
                  every RNG must be seeded for replay determinism",
    },
    RuleInfo {
        id: "unordered-collection",
        summary: "no HashMap/HashSet in sim crates: iteration order is \
                  unspecified; use BTreeMap/BTreeSet or annotate an \
                  order-insensitive use",
    },
    RuleInfo {
        id: "map-iter",
        summary: "iteration over a HashMap/HashSet-typed binding in a sim \
                  crate: the visit order is unspecified and can break \
                  replay equality",
    },
    RuleInfo {
        id: "panic",
        summary: "no unwrap/expect/panic!/indexing-by-literal in sim-crate \
                  library code: return a typed SimError or annotate the \
                  documented invariant",
    },
    RuleInfo {
        id: "as-cast",
        summary: "numeric `as` cast in sim-crate library code: prefer the \
                  typed conversions in ador-units (silent truncation on \
                  token/time quantities)",
    },
    RuleInfo {
        id: "float-accum",
        summary: "f64 `+=` accumulation in a loop in telemetry aggregation \
                  code: floating-point accumulation drifts and breaks the \
                  exact-merge guarantee; use integer nanoseconds (or \
                  Kahan) or annotate why drift is acceptable",
    },
    RuleInfo {
        id: "allow-no-reason",
        summary: "#[allow(...)] or ador-lint suppression without a \
                  justification comment",
    },
    RuleInfo {
        id: "unused-allow",
        summary: "an ador-lint suppression comment that suppresses \
                  nothing (stale after a fix; delete it)",
    },
];

/// True if `id` names a known rule.
pub fn is_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Runs every rule over one lexed file, returning raw findings in token
/// order. Suppression comments and baselines are applied by the caller
/// ([`crate::lint_file`]), not here.
pub fn check(class: FileClass, path: &str, lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let test_regions = if class.test_file {
        vec![(0, toks.len())]
    } else {
        test_regions(toks)
    };
    let in_test = |i: usize| test_regions.iter().any(|&(a, b)| i >= a && i < b);
    let finding = |tok: &Tok, rule: &'static str, message: String| Finding {
        path: path.to_string(),
        line: tok.line,
        col: tok.col,
        rule,
        message,
    };

    let unordered = if class.sim {
        unordered_bindings(toks)
    } else {
        Vec::new()
    };

    // Exact-merge protection applies to the telemetry crate's library
    // code: its reports promise that merging partials reproduces the
    // whole, which f64 accumulation order can silently break.
    let float_scope = path.starts_with("crates/telemetry/src/");
    let (floats, loops) = if float_scope {
        (float_bindings(toks), loop_regions(toks))
    } else {
        (Vec::new(), Vec::new())
    };
    let in_loop = |i: usize| loops.iter().any(|&(a, b)| i >= a && i < b);

    for i in 0..toks.len() {
        let t = &toks[i];

        // --- determinism (sim crates, tests included) ---
        if class.sim && t.kind == TokKind::Ident {
            match t.text.as_str() {
                "Instant" | "SystemTime" => out.push(finding(
                    t,
                    "wall-clock",
                    format!(
                        "`{}` reads wall-clock time; sim code must use the \
                         deterministic event clock (`Seconds`)",
                        t.text
                    ),
                )),
                "thread_rng" | "from_entropy" => out.push(finding(
                    t,
                    "thread-rng",
                    format!(
                        "`{}` draws OS entropy; sim code must seed every \
                         RNG (`StdRng::seed_from_u64`)",
                        t.text
                    ),
                )),
                "random"
                    if i >= 3
                        && toks[i - 1].is_punct(':')
                        && toks[i - 2].is_punct(':')
                        && toks[i - 3].is_ident("rand") =>
                {
                    out.push(finding(
                        t,
                        "thread-rng",
                        "`rand::random` draws OS entropy; sim code must seed \
                         every RNG (`StdRng::seed_from_u64`)"
                            .to_string(),
                    ));
                }
                "HashMap" | "HashSet" => out.push(finding(
                    t,
                    "unordered-collection",
                    format!(
                        "`{}` has unspecified iteration order; use \
                         `BTreeMap`/`BTreeSet` (or annotate an \
                         order-insensitive use)",
                        t.text
                    ),
                )),
                m if ITER_METHODS.contains(&m)
                    && i >= 2
                    && toks[i - 1].is_punct('.')
                    && toks[i - 2].kind == TokKind::Ident
                    && unordered.contains(&toks[i - 2].text)
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
                {
                    out.push(finding(
                        t,
                        "map-iter",
                        format!(
                            "`{}.{m}()` visits an unordered collection in \
                             unspecified order; replay equality is not \
                             guaranteed",
                            toks[i - 2].text
                        ),
                    ));
                }
                "for" => {
                    if let Some(bind) = for_loop_over(toks, i, &unordered) {
                        out.push(finding(
                            t,
                            "map-iter",
                            format!(
                                "`for … in {bind}` visits an unordered \
                                 collection in unspecified order; replay \
                                 equality is not guaranteed"
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }

        // --- panic-safety and casts (sim crates, library code only) ---
        if class.sim && !in_test(i) {
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "unwrap" | "expect"
                        if i >= 1
                            && toks[i - 1].is_punct('.')
                            && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
                    {
                        out.push(finding(
                            t,
                            "panic",
                            format!(
                                "`.{}()` can panic; return a typed error, or \
                                 annotate the documented invariant",
                                t.text
                            ),
                        ));
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented"
                        if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
                    {
                        out.push(finding(
                            t,
                            "panic",
                            format!("`{}!` aborts the simulation; return a typed error", t.text),
                        ));
                    }
                    "as" if toks
                        .get(i + 1)
                        .is_some_and(|n| NUMERIC_TYPES.contains(&n.text.as_str())) =>
                    {
                        out.push(finding(
                            t,
                            "as-cast",
                            format!(
                                "`as {}` silently truncates/rounds; prefer the \
                                 typed conversions in `ador-units`",
                                toks[i + 1].text
                            ),
                        ));
                    }
                    _ => {}
                }
            }
            // Indexing by an integer literal: `xs[0]`. Postfix `[` only —
            // a `[` after `:`/`=`/`(` is a type or array literal.
            if t.is_punct('[')
                && i >= 1
                && (toks[i - 1].kind == TokKind::Ident
                    || toks[i - 1].is_punct(')')
                    || toks[i - 1].is_punct(']'))
                && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Num)
                && toks.get(i + 2).is_some_and(|n| n.is_punct(']'))
            {
                out.push(finding(
                    t,
                    "panic",
                    format!(
                        "indexing by literal `[{}]` panics when out of \
                         bounds; use `.get({})` or a destructuring match",
                        toks[i + 1].text,
                        toks[i + 1].text
                    ),
                ));
            }
        }

        // --- exact-merge protection (telemetry library code only) ---
        if float_scope
            && !in_test(i)
            && t.kind == TokKind::Ident
            && floats.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct('+'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('='))
            && in_loop(i)
        {
            out.push(finding(
                t,
                "float-accum",
                format!(
                    "`{} +=` accumulates an f64 in a loop; rounding drifts \
                     with summation order and breaks the exact-merge \
                     guarantee — accumulate integer nanoseconds, or \
                     annotate why drift is acceptable",
                    t.text
                ),
            ));
        }

        // --- hygiene (everywhere) ---
        if t.is_punct('#') {
            if let Some(allow_tok) = allow_attr_at(toks, i) {
                if !has_comment_near(lexed, allow_tok.line) {
                    out.push(finding(
                        allow_tok,
                        "allow-no-reason",
                        "`#[allow(…)]` without a justification comment on \
                         the same or preceding line"
                            .to_string(),
                    ));
                }
            }
        }
    }
    out
}

/// Identifiers declared with a `HashMap`/`HashSet` type or initializer
/// anywhere in the file: struct fields and `let` ascriptions
/// (`name: [path::]HashMap<…>`) and constructor bindings
/// (`name = [path::]HashMap::new()` / `with_capacity`).
fn unordered_bindings(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let after = match toks.get(i + 1) {
            Some(t) if t.is_punct(':') && !toks.get(i + 2).is_some_and(|t| t.is_punct(':')) => {
                i + 2
            }
            Some(t) if t.is_punct('=') => i + 2,
            _ => continue,
        };
        if path_ends_in_unordered(toks, after) && !out.contains(&toks[i].text) {
            out.push(toks[i].text.clone());
        }
    }
    out
}

/// True if the tokens at `i` start a (possibly `std::collections::`-
/// qualified) `HashMap`/`HashSet` path.
fn path_ends_in_unordered(toks: &[Tok], mut i: usize) -> bool {
    for _ in 0..8 {
        match toks.get(i) {
            Some(t) if t.is_ident("HashMap") || t.is_ident("HashSet") => return true,
            Some(t)
                if t.kind == TokKind::Ident
                    && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|b| b.is_punct(':')) =>
            {
                i += 3;
            }
            _ => return false,
        }
    }
    false
}

/// If the `for` at `toks[i]` loops directly over an unordered binding
/// (`for … in [&][mut] [self.]name {`), returns the binding name.
fn for_loop_over(toks: &[Tok], i: usize, unordered: &[String]) -> Option<String> {
    // Find the `in` within a short window (patterns are small).
    let in_at = (i + 1..toks.len().min(i + 16)).find(|&j| toks[j].is_ident("in"))?;
    let mut j = in_at + 1;
    while toks
        .get(j)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
    {
        j += 1;
    }
    if toks.get(j).is_some_and(|t| t.is_ident("self"))
        && toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
    {
        j += 2;
    }
    let name = toks.get(j)?;
    if name.kind == TokKind::Ident
        && unordered.contains(&name.text)
        && toks.get(j + 1).is_some_and(|t| t.is_punct('{'))
    {
        Some(name.text.clone())
    } else {
        None
    }
}

/// Identifiers bound as `f64` anywhere in the file: type ascriptions
/// (`name: f64` on fields, `let`s and params — not `name::`) and float
/// initializers (`name = 0.0`).
fn float_bindings(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let is_float = match toks.get(i + 1) {
            Some(t) if t.is_punct(':') && !toks.get(i + 2).is_some_and(|t| t.is_punct(':')) => {
                toks.get(i + 2).is_some_and(|t| t.is_ident("f64"))
            }
            Some(t) if t.is_punct('=') => toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Num && t.text.contains('.')),
            _ => false,
        };
        if is_float && !out.contains(&toks[i].text) {
            out.push(toks[i].text.clone());
        }
    }
    out
}

/// Token index ranges covered by loop bodies: the brace-balanced block
/// after each `loop`, `while`, or `for … in …` keyword. `for` is only a
/// loop when an `in` follows nearby (`impl X for Y` has none).
fn loop_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for i in 0..toks.len() {
        let is_loop = match toks[i].text.as_str() {
            _ if toks[i].kind != TokKind::Ident => false,
            "loop" | "while" => true,
            "for" => (i + 1..toks.len().min(i + 16)).any(|j| toks[j].is_ident("in")),
            _ => false,
        };
        if !is_loop {
            continue;
        }
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        if j >= toks.len() {
            continue;
        }
        let start = j;
        let mut depth = 0usize;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        regions.push((start, j + 1));
    }
    regions
}

/// If the `#` at `toks[i]` opens an `#[allow(…)]` / `#![allow(…)]`
/// attribute, returns the `allow` token.
fn allow_attr_at(toks: &[Tok], i: usize) -> Option<&Tok> {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    let name = toks.get(j + 1)?;
    (name.is_ident("allow") && toks.get(j + 2).is_some_and(|t| t.is_punct('('))).then_some(name)
}

/// True if any comment sits on `line` or the line above it.
fn has_comment_near(lexed: &Lexed, line: u32) -> bool {
    lexed
        .comments
        .iter()
        .any(|c| c.line == line || c.line + 1 == line)
}

/// Token index ranges covered by `#[cfg(test)]` / `#[test]` items.
///
/// After a test attribute, any further attributes are skipped, then the
/// item's first brace-balanced `{…}` block is the region; an item ending
/// in `;` before any `{` (e.g. `#[cfg(test)] use …;`) covers nothing
/// beyond itself.
fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let Some((is_test, after_attr)) = attr_at(toks, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = after_attr;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = after_attr;
        while let Some((_, next)) = attr_at(toks, j) {
            j = next;
        }
        // The item's body: first `{` before any top-level `;`.
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            j += 1;
        }
        if j < toks.len() && toks[j].is_punct('{') {
            let mut depth = 0usize;
            let start = j;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            regions.push((start, j + 1));
        }
        i = j + 1;
    }
    regions
}

/// If `toks[i]` opens an attribute, returns `(is_test_attr, index past
/// the closing `]`)`. A test attribute is `#[test]`, `#[cfg(test)]` or
/// any `cfg` attribute mentioning `test` (e.g. `#[cfg(all(test, …))]`).
fn attr_at(toks: &[Tok], i: usize) -> Option<(bool, usize)> {
    if !toks.get(i)?.is_punct('#') {
        return None;
    }
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !toks.get(j)?.is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let body_start = j + 1;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    let body = &toks[body_start..j.min(toks.len())];
    let is_test = match body.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    };
    Some((is_test, (j + 1).min(toks.len())))
}
