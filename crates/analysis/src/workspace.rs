//! Workspace discovery and the end-to-end lint run.
//!
//! Walks the workspace tree for `.rs` files (skipping `target/`,
//! `.git/`, the offline dependency `shims/`, and `fixtures/`
//! directories, whose files *deliberately* contain findings), classifies
//! each file against the rule scopes, lints it, and applies the
//! baseline. The [`Report`] renders either the human `path:line:col
//! rule message` form or a machine-readable JSON document.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::baseline::{Baseline, StaleEntry};
use crate::rules::{FileClass, Finding};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "shims", "fixtures"];

/// Path prefixes of the deterministic-simulation crates — the scope of
/// the determinism and panic-safety rules.
pub const SIM_PREFIXES: &[&str] = &[
    "crates/serving/src/",
    "crates/cluster/src/",
    "crates/spec/src/",
    "crates/telemetry/src/",
];

/// The outcome of one workspace lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings not covered by the baseline, sorted by path/line/col.
    pub findings: Vec<Finding>,
    /// Baseline entries that no longer fire.
    pub stale: Vec<StaleEntry>,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Number of findings absorbed by the baseline.
    pub baselined: usize,
}

impl Report {
    /// True when the run is clean: no new findings, no stale entries.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.stale.is_empty()
    }

    /// Human-readable rendering: one `path:line:col rule message` line
    /// per finding, stale-entry diagnostics, then a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{} {} {}\n",
                f.path, f.line, f.col, f.rule, f.message
            ));
        }
        for s in &self.stale {
            out.push_str(&format!("{s}\n"));
        }
        out.push_str(&format!(
            "ador-lint: {} files scanned, {} finding(s) ({} baselined), {} stale baseline entr{}\n",
            self.files,
            self.findings.len(),
            self.baselined,
            self.stale.len(),
            if self.stale.len() == 1 { "y" } else { "ies" },
        ));
        out
    }

    /// Machine-readable rendering. The emitter is local (this crate is
    /// dependency-free); the crate's tests parse the output back with
    /// `ador-bench::json` to pin the two ends against each other.
    pub fn render_json(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                obj(&[
                    ("path", str_lit(&f.path)),
                    ("line", f.line.to_string()),
                    ("col", f.col.to_string()),
                    ("rule", str_lit(f.rule)),
                    ("message", str_lit(&f.message)),
                ])
            })
            .collect();
        let stale: Vec<String> = self
            .stale
            .iter()
            .map(|s| {
                obj(&[
                    ("rule", str_lit(&s.rule)),
                    ("path", str_lit(&s.path)),
                    ("allowed", s.allowed.to_string()),
                    ("live", s.live.to_string()),
                ])
            })
            .collect();
        obj(&[
            ("name", str_lit("ador-lint")),
            ("files", self.files.to_string()),
            ("baselined", self.baselined.to_string()),
            ("clean", self.clean().to_string()),
            ("findings", format!("[{}]", findings.join(","))),
            ("stale_baseline", format!("[{}]", stale.join(","))),
        ])
    }
}

fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn obj(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("{}:{v}", str_lit(k)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Classifies a workspace-relative path against the rule scopes.
pub fn classify(rel: &str) -> FileClass {
    FileClass {
        sim: SIM_PREFIXES.iter().any(|p| rel.starts_with(p)),
        test_file: rel
            .split('/')
            .any(|part| matches!(part, "tests" | "benches" | "examples")),
    }
}

/// Recursively collects the workspace's `.rs` files, sorted so runs are
/// deterministic regardless of directory-entry order.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every file under `root` and applies `base`. Also returns the
/// full pre-baseline finding list with line hashes, which
/// `--write-baseline` re-renders into a fresh baseline file.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn lint_workspace(
    root: &Path,
    base: &Baseline,
) -> io::Result<(Report, Vec<Finding>, Vec<u64>)> {
    let mut all = Vec::new();
    let mut hashes = Vec::new();
    let files = collect_files(root)?;
    let count = files.len();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        let lines: Vec<&str> = source.lines().collect();
        for f in crate::lint_file(classify(&rel), &rel, &source) {
            let text = lines.get(f.line as usize - 1).copied().unwrap_or("");
            hashes.push(crate::baseline::hash_line(text));
            all.push(f);
        }
    }
    let total = all.len();
    let (fresh, stale) = base.apply(all.clone(), &hashes);
    let report = Report {
        baselined: total - fresh.len(),
        findings: fresh,
        stale,
        files: count,
    };
    Ok((report, all, hashes))
}
