//! The committed findings baseline: grandfathered debt, keyed to
//! survive unrelated edits.
//!
//! Each entry is `(rule, path, hash-of-trimmed-source-line)` with a
//! count, so findings stay matched when other edits move line numbers,
//! but *disappear* (go stale) when the offending line itself is fixed
//! or removed. [`Baseline::apply`] enforces both directions: findings
//! beyond an entry's count are *new* (fail), and entries with fewer
//! live findings than their count are *stale* (also fail, so the
//! ledger is always an exact photograph of the remaining debt).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::Finding;

/// Stable hash of one trimmed source line (splitmix64-folded bytes —
/// the same mixer the simulator uses for block and session identities).
pub fn hash_line(line: &str) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &b in line.trim().as_bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    h
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One stale-baseline diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// Rule of the stale entry.
    pub rule: String,
    /// Path of the stale entry.
    pub path: String,
    /// How many grandfathered findings the entry still allows.
    pub allowed: usize,
    /// How many actually fire now (strictly fewer).
    pub live: usize,
}

impl std::fmt::Display for StaleEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale baseline entry: {} {} allows {} finding(s) but only {} \
             still fire — shrink or drop it (re-run with --write-baseline)",
            self.rule, self.path, self.allowed, self.live
        )
    }
}

/// The parsed baseline: allowed finding counts per
/// `(rule, path, line-hash)` key. A `BTreeMap` so rendering is
/// deterministic — the lint dogfoods its own contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String, u64), usize>,
}

impl Baseline {
    /// An empty baseline (every finding is new).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of grandfathered findings across all entries.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    /// Parses the baseline file format: one `rule path hash16 count`
    /// line per entry; `#` comments and blank lines ignored.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let [rule, path, hash, count] = fields[..] else {
                return Err(format!(
                    "baseline line {}: expected `rule path hash count`, got {line:?}",
                    lineno + 1
                ));
            };
            if !crate::rules::is_rule(rule) {
                return Err(format!(
                    "baseline line {}: unknown rule `{rule}`",
                    lineno + 1
                ));
            }
            let hash = u64::from_str_radix(hash, 16)
                .map_err(|_| format!("baseline line {}: bad hash `{hash}`", lineno + 1))?;
            let count: usize = count
                .parse()
                .ok()
                .filter(|&c| c > 0)
                .ok_or_else(|| format!("baseline line {}: bad count `{count}`", lineno + 1))?;
            *entries
                .entry((rule.to_string(), path.to_string(), hash))
                .or_insert(0) += count;
        }
        Ok(Self { entries })
    }

    /// Renders the baseline file, sorted (stable across regenerations).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# ador-lint baseline — grandfathered findings.\n\
             # One entry per (rule, path, hash of the trimmed source line): count.\n\
             # Regenerate with: cargo run -p ador-analysis --bin ador-lint -- --write-baseline\n",
        );
        for ((rule, path, hash), count) in &self.entries {
            let _ = writeln!(out, "{rule} {path} {hash:016x} {count}");
        }
        out
    }

    /// Builds a baseline grandfathering exactly the given findings
    /// (`hashes[i]` is the line hash of `findings[i]`).
    pub fn from_findings(findings: &[Finding], hashes: &[u64]) -> Self {
        let mut entries = BTreeMap::new();
        for (f, &h) in findings.iter().zip(hashes) {
            *entries
                .entry((f.rule.to_string(), f.path.clone(), h))
                .or_insert(0) += 1;
        }
        Self { entries }
    }

    /// Splits findings into (new, stale): findings beyond an entry's
    /// count are new; entries whose count exceeds the live findings are
    /// stale. Within one key, the earliest findings (by position) are
    /// the grandfathered ones — deterministic either way, since all
    /// matching findings share the same rule and line text.
    pub fn apply(&self, findings: Vec<Finding>, hashes: &[u64]) -> (Vec<Finding>, Vec<StaleEntry>) {
        let mut seen: BTreeMap<(String, String, u64), usize> = BTreeMap::new();
        let mut fresh = Vec::new();
        for (f, &h) in findings.into_iter().zip(hashes) {
            let key = (f.rule.to_string(), f.path.clone(), h);
            let allowed = self.entries.get(&key).copied().unwrap_or(0);
            let used = seen.entry(key).or_insert(0);
            *used += 1;
            if *used > allowed {
                fresh.push(f);
            }
        }
        let mut stale = Vec::new();
        for ((rule, path, hash), &allowed) in &self.entries {
            let live = seen
                .get(&(rule.clone(), path.clone(), *hash))
                .copied()
                .unwrap_or(0)
                .min(allowed);
            if live < allowed {
                stale.push(StaleEntry {
                    rule: rule.clone(),
                    path: path.clone(),
                    allowed,
                    live,
                });
            }
        }
        (fresh, stale)
    }
}

#[cfg(test)]
mod tests {
    // tests may unwrap: a failed unwrap is exactly the test failing
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32) -> Finding {
        Finding {
            path: path.to_string(),
            line,
            col: 1,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn hash_ignores_indentation_but_not_content() {
        assert_eq!(hash_line("  x as f64"), hash_line("x as f64"));
        assert_ne!(hash_line("x as f64"), hash_line("x as f32"));
    }

    #[test]
    fn round_trips_through_the_file_format() {
        let f = vec![
            finding("as-cast", "crates/a/src/l.rs", 3),
            finding("as-cast", "crates/a/src/l.rs", 9),
            finding("panic", "crates/b/src/l.rs", 1),
        ];
        let hashes = vec![
            hash_line("x as f64"),
            hash_line("x as f64"),
            hash_line("u()"),
        ];
        let base = Baseline::from_findings(&f, &hashes);
        assert_eq!(base.total(), 3);
        let reparsed = Baseline::parse(&base.render()).unwrap();
        assert_eq!(reparsed, base);
        // Everything grandfathered: nothing new, nothing stale.
        let (fresh, stale) = reparsed.apply(f, &hashes);
        assert!(fresh.is_empty());
        assert!(stale.is_empty());
    }

    #[test]
    fn findings_beyond_the_count_are_new() {
        let old = vec![finding("as-cast", "a.rs", 3)];
        let h = vec![hash_line("x as f64")];
        let base = Baseline::from_findings(&old, &h);
        let now = vec![
            finding("as-cast", "a.rs", 3),
            finding("as-cast", "a.rs", 17), // a second identical line
        ];
        let (fresh, stale) = base.apply(now, &[hash_line("x as f64"), hash_line("x as f64")]);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].line, 17, "the excess finding is the new one");
        assert!(stale.is_empty());
    }

    #[test]
    fn fixed_findings_leave_stale_entries() {
        let old = vec![finding("as-cast", "a.rs", 3), finding("panic", "b.rs", 5)];
        let h = vec![hash_line("x as f64"), hash_line("u()")];
        let base = Baseline::from_findings(&old, &h);
        // The panic was fixed; only the cast remains.
        let (fresh, stale) = base.apply(
            vec![finding("as-cast", "a.rs", 3)],
            &[hash_line("x as f64")],
        );
        assert!(fresh.is_empty());
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "panic");
        assert_eq!((stale[0].allowed, stale[0].live), (1, 0));
    }

    #[test]
    fn editing_the_line_both_fires_and_goes_stale() {
        // Changing the offending line's text changes its hash: the old
        // entry is stale and the finding is new — the contributor must
        // consciously re-baseline or fix.
        let base =
            Baseline::from_findings(&[finding("as-cast", "a.rs", 3)], &[hash_line("x as f64")]);
        let (fresh, stale) = base.apply(
            vec![finding("as-cast", "a.rs", 3)],
            &[hash_line("y as f64")],
        );
        assert_eq!(fresh.len(), 1);
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Baseline::parse("as-cast a.rs zzzz 1").is_err());
        assert!(Baseline::parse("as-cast a.rs 00ff 0").is_err());
        assert!(Baseline::parse("no-such-rule a.rs 00ff 1").is_err());
        assert!(Baseline::parse("too few").is_err());
        assert!(Baseline::parse("# comment\n\n").unwrap().total() == 0);
    }
}
