//! The `ador-lint` command-line entry point.
//!
//! ```text
//! cargo run -p ador-analysis --bin ador-lint -- --workspace-root .
//! ```
//!
//! Exit codes: `0` clean, `1` findings or stale baseline entries,
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use ador_analysis::{lint_workspace, Baseline, RULES};

const USAGE: &str = "\
ador-lint — static analysis for the ADOR simulator's determinism and
panic-safety contracts.

USAGE:
    ador-lint [OPTIONS]

OPTIONS:
    --workspace-root <path>   Workspace to lint (default: .)
    --baseline <path>         Baseline file (default: <root>/lint-baseline.txt)
    --no-baseline             Ignore the baseline: report every finding
    --write-baseline          Rewrite the baseline to grandfather all
                              current findings, then exit clean
    --json                    Emit the machine-readable JSON report
    --list                    List the rules and exit
    -h, --help                This help
";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("ador-lint: error: {err}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace-root" => {
                root = PathBuf::from(args.next().ok_or("--workspace-root needs a path")?);
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--json" => json = true,
            "--list" => {
                for rule in RULES {
                    println!("{:<22} {}", rule.id, rule.summary);
                }
                return Ok(true);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    let base = if no_baseline || write_baseline {
        Baseline::empty()
    } else if baseline_path.exists() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
        Baseline::parse(&text)?
    } else {
        Baseline::empty()
    };

    let (report, all, hashes) =
        lint_workspace(&root, &base).map_err(|e| format!("scanning {}: {e}", root.display()))?;

    if write_baseline {
        let fresh = Baseline::from_findings(&all, &hashes);
        std::fs::write(&baseline_path, fresh.render())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "ador-lint: wrote {} ({} grandfathered finding(s))",
            baseline_path.display(),
            fresh.total()
        );
        return Ok(true);
    }

    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(report.clean())
}
