//! A small, self-contained Rust lexer for the lint pass.
//!
//! The rules in [`crate::rules`] pattern-match token sequences, so the
//! lexer's only job is to split source text into identifiers, literals
//! and punctuation *correctly enough that nothing inside a comment or
//! string literal can masquerade as code*. It understands:
//!
//! - line comments (`//`, `///`, `//!`) and nested block comments;
//! - string, raw-string (`r"…"`, `r#"…"#`, any guard depth), byte-string
//!   and byte-raw-string literals, with escapes;
//! - char literals vs. lifetimes (`'a'` vs. `'a`);
//! - raw identifiers (`r#type`);
//! - numeric literals (enough to skip them atomically — the rules never
//!   inspect their value).
//!
//! Doc comments are comments here, so code shown in rustdoc examples is
//! invisible to the rules (doctests are narrative, not simulator code).
//! Comments are returned separately because the suppression syntax
//! (`// ador-lint: allow(rule) — reason`) and the `#[allow]`
//! justification rule both need them.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the rules do not distinguish).
    Ident,
    /// A lifetime such as `'a` (without the quote in [`Tok::text`]).
    Lifetime,
    /// Any string-like literal (string, raw string, byte string, char).
    Literal,
    /// A numeric literal.
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token of the input, with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// The token's text. For [`TokKind::Punct`] this is one character;
    /// for literals it is the raw source slice including quotes.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True if this token is the given identifier.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// One comment (line or block), with the 1-based line it starts on.
/// Block comments spanning several lines are recorded once, at their
/// first line; the suppression syntax is line-comment-based so that is
/// the only anchor the rules need.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based starting line.
    pub line: u32,
}

/// A lexed source file: the token stream plus the comment side-channel.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// All non-comment tokens, in source order.
    pub toks: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source`. Unterminated literals or comments simply end the
/// token stream at end-of-input — the lint runs on code the compiler
/// already accepted, so error recovery is not a goal.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Self {
            bytes: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line/column counters.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let (line, col, start) = (self.line, self.col, self.pos);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'r' | b'b' if self.raw_or_byte_literal(line, col) => {}
                b'"' => {
                    self.string_literal();
                    self.push_literal(start, line, col);
                }
                b'\'' => self.char_or_lifetime(line, col),
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokKind::Num, start, line, col);
                }
                b if is_ident_start(b) => {
                    self.ident();
                    self.push(TokKind::Ident, start, line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.toks.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn push_literal(&mut self, start: usize, line: u32, col: u32) {
        self.push(TokKind::Literal, start, line, col);
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.comments.push(Comment { text, line });
    }

    /// Handles `r"…"`, `r#…#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`.
    /// Returns false if the `r`/`b` at the cursor is just an ordinary
    /// identifier start (the caller then lexes it as an ident).
    fn raw_or_byte_literal(&mut self, line: u32, col: u32) -> bool {
        let start = self.pos;
        let mut at = self.pos;
        if self.bytes.get(at) == Some(&b'b') {
            at += 1;
        }
        let raw = self.bytes.get(at) == Some(&b'r');
        if raw {
            at += 1;
        }
        let mut guards = 0usize;
        while self.bytes.get(at) == Some(&b'#') {
            guards += 1;
            at += 1;
        }
        match self.bytes.get(at) {
            // Raw identifier `r#type`: lex as an ident (without guards).
            _ if raw && guards == 1 && self.bytes.get(at).is_some_and(|&b| is_ident_start(b)) => {
                self.bump(); // r
                self.bump(); // #
                self.ident();
                self.push(TokKind::Ident, start, line, col);
                true
            }
            Some(b'"') if raw => {
                while self.pos < at {
                    self.bump();
                }
                self.raw_string_body(guards);
                self.push_literal(start, line, col);
                true
            }
            Some(b'"') if guards == 0 && at > start => {
                // b"…": byte string with ordinary escapes.
                while self.pos < at {
                    self.bump();
                }
                self.string_literal();
                self.push_literal(start, line, col);
                true
            }
            Some(b'\'') if guards == 0 && at == start + 1 => {
                // b'…': byte char literal.
                self.bump(); // b
                self.char_literal_body();
                self.push_literal(start, line, col);
                true
            }
            _ => false,
        }
    }

    /// Consumes a `"…"` literal starting at the opening quote.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Consumes a raw-string body starting at the opening quote, with
    /// `guards` trailing `#` characters required to close it.
    fn raw_string_body(&mut self, guards: usize) {
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            if b == b'"' {
                let closed = (0..guards).all(|i| self.peek(i) == Some(b'#'));
                if closed {
                    for _ in 0..guards {
                        self.bump();
                    }
                    return;
                }
            }
        }
    }

    /// At a `'`: either a char literal or a lifetime.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        let start = self.pos;
        // `'x'` is a char; `'x` followed by a non-quote is a lifetime.
        // `'a'` (ident-start then a closing quote) is a char literal;
        // `'a` followed by anything else is a lifetime. `'_'` is the
        // (valid) underscore char literal, `'_` the inferred lifetime.
        let is_lifetime = self.peek(1).is_some_and(is_ident_start) && self.peek(2) != Some(b'\'');
        if is_lifetime {
            self.bump(); // quote
            let ident_start = self.pos;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.bytes[ident_start..self.pos]).into_owned();
            self.out.toks.push(Tok {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
            });
        } else {
            self.char_literal_body();
            self.push_literal(start, line, col);
        }
    }

    /// Consumes a char literal starting at the opening quote.
    fn char_literal_body(&mut self) {
        self.bump(); // opening quote
        if self.peek(0) == Some(b'\\') {
            self.bump();
            self.bump(); // the escaped character (or escape kind)
                         // `\u{…}` and friends: consume through the closing quote.
            while let Some(b) = self.peek(0) {
                if b == b'\'' {
                    break;
                }
                self.bump();
            }
        } else {
            // One (possibly multi-byte) character.
            self.bump();
            while self.peek(0).is_some_and(|b| b >= 0x80) {
                self.bump();
            }
        }
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
    }

    fn number(&mut self) {
        // Digits, underscores, radix prefixes, exponents, float dots and
        // type suffixes — consumed greedily; `1.2e-3f64` is one token.
        // A trailing `-`/`+` is only part of the number right after an
        // exponent marker.
        let mut prev = 0u8;
        while let Some(b) = self.peek(0) {
            let take = match b {
                b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => true,
                b'.' => self.peek(1).is_none_or(|n| n != b'.'), // not `0..n`
                b'+' | b'-' => matches!(prev, b'e' | b'E'),
                _ => false,
            };
            if !take {
                break;
            }
            prev = b;
            self.bump();
        }
    }

    fn ident(&mut self) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"HashMap "quoted" here"#;
            let b = b"HashMap";
            /// HashMap in a doc example: `map.iter()`
            let real = 1;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"real".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").toks;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Literal).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn escaped_quotes_and_unicode_escapes() {
        let toks = lex(r#"let c = '\''; let u = '\u{1F600}'; let s = "a\"b";"#).toks;
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec![r"'\''", r"'\u{1F600}'", r#""a\"b""#]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ids = idents("let r#type = 1; let rate = r * 2;");
        assert!(ids.contains(&"r#type".to_string()));
        assert!(ids.contains(&"rate".to_string()));
        assert!(ids.contains(&"r".to_string()));
    }

    #[test]
    fn numbers_are_single_tokens() {
        let toks = lex("let x = 1.5e-3f64 + 0xFF_u32; for i in 0..10 {}").toks;
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1.5e-3f64", "0xFF_u32", "0", "10"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let toks = lex("ab\n  cd").toks;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
