//! `ador-lint`: a workspace static-analysis pass enforcing the
//! simulator's determinism and panic-safety contracts.
//!
//! The whole ADOR reproduction rests on bit-identical replay: the
//! event-driven fleet core is only trustworthy because lockstep/event
//! equality is pinned, and every pinned scenario assumes a seeded run
//! reproduces exactly. This crate enforces the contract *statically*,
//! in the same hand-rolled offline idiom as `ador-bench`'s JSON parser:
//! a small Rust lexer ([`lexer`]), a token-pattern rule engine
//! ([`rules`]), per-line suppression comments, and a committed baseline
//! file ([`baseline`]) for grandfathered findings.
//!
//! # Rules
//!
//! See [`rules::RULES`] for the list. In short: no wall-clock reads, no
//! unseeded RNG and no unordered-collection iteration in the sim crates
//! (`ador-serving`, `ador-cluster`, `ador-spec`); no
//! `unwrap`/`expect`/`panic!`/indexing-by-literal and no numeric `as`
//! casts in their non-test library code; every `#[allow]` and every
//! suppression carries a written reason.
//!
//! # Suppressions
//!
//! A finding is suppressed by a comment on the same line or the line
//! above, naming the rule **and a reason**:
//!
//! ```text
//! let head = self.pending.pop_front().expect("peeked above");
//! // ador-lint: allow(panic) — peek() returned Some on the line above
//! ```
//!
//! A suppression without a reason does not suppress (and is itself a
//! finding); a suppression that no longer matches anything is flagged
//! as `unused-allow` so fixed code sheds its annotations.
//!
//! # Baseline
//!
//! Grandfathered findings live in a committed `lint-baseline.txt`,
//! keyed by `(rule, path, hash-of-source-line)` with a count — robust
//! to unrelated edits moving line numbers. New findings (beyond the
//! baselined count) fail the run; a baseline entry that no longer fires
//! is *stale* and also fails the run, so the debt ledger only shrinks.
//!
//! # Running
//!
//! ```text
//! cargo run -p ador-analysis --bin ador-lint -- --workspace-root .
//! ```
//!
//! Findings print as `path:line:col rule message`; `--json` emits a
//! machine-readable report (validated round-trip against
//! `ador-bench::json` in this crate's tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use baseline::{hash_line, Baseline};
pub use rules::{FileClass, Finding, RuleInfo, RULES};
pub use workspace::{lint_workspace, Report};

use lexer::Lexed;

/// One parsed `ador-lint: allow(...)` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Suppression {
    line: u32,
    rules: Vec<String>,
    /// False when the comment carries no reason text or names an
    /// unknown rule — such suppressions suppress nothing.
    valid: bool,
    /// Diagnostic for invalid suppressions.
    problem: Option<String>,
}

/// Parses every `ador-lint:` suppression in a file's comments.
fn suppressions(lexed: &Lexed) -> Vec<Suppression> {
    let mut out = Vec::new();
    for comment in &lexed.comments {
        // Doc comments are documentation, not directives — rustdoc text
        // describing the suppression syntax must not suppress anything.
        if comment.text.starts_with("///")
            || comment.text.starts_with("//!")
            || comment.text.starts_with("/**")
            || comment.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = comment.text.find("ador-lint:") else {
            continue;
        };
        let rest = comment.text[at + "ador-lint:".len()..].trim_start();
        let mut sup = Suppression {
            line: comment.line,
            rules: Vec::new(),
            valid: false,
            problem: None,
        };
        let inner = rest
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('('));
        let Some(inner) = inner else {
            sup.problem = Some("expected `ador-lint: allow(<rule>) — <reason>`".to_string());
            out.push(sup);
            continue;
        };
        let Some(close) = inner.find(')') else {
            sup.problem = Some("unclosed `allow(`".to_string());
            out.push(sup);
            continue;
        };
        sup.rules = inner[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let unknown: Vec<&String> = sup.rules.iter().filter(|r| !rules::is_rule(r)).collect();
        // The reason is whatever follows the `)`, minus separator
        // punctuation (`—`, `-`, `:`).
        let reason = inner[close + 1..].trim_matches(|c: char| {
            c.is_whitespace() || c == '—' || c == '–' || c == '-' || c == ':'
        });
        if sup.rules.is_empty() {
            sup.problem = Some("`allow()` names no rule".to_string());
        } else if let Some(u) = unknown.first() {
            sup.problem = Some(format!("unknown rule `{u}`"));
        } else if reason.is_empty() {
            sup.problem = Some("suppression carries no reason".to_string());
        } else {
            sup.valid = true;
        }
        out.push(sup);
    }
    out
}

/// Lints one file: lexes it, runs every rule in [`rules::check`], then
/// applies suppression comments. Returns the surviving findings sorted
/// by position (baseline filtering is the caller's job — see
/// [`Baseline::apply`]).
pub fn lint_file(class: FileClass, path: &str, source: &str) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let raw = rules::check(class, path, &lexed);
    let sups = suppressions(&lexed);
    let mut used = vec![false; sups.len()];

    let mut out: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            let mut suppressed = false;
            for (i, sup) in sups.iter().enumerate() {
                if sup.valid
                    && (sup.line == f.line || sup.line + 1 == f.line)
                    && sup.rules.iter().any(|r| r == f.rule)
                {
                    used[i] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();

    for (i, sup) in sups.iter().enumerate() {
        if !sup.valid {
            out.push(Finding {
                path: path.to_string(),
                line: sup.line,
                col: 1,
                rule: "allow-no-reason",
                message: format!(
                    "malformed suppression ({}); it suppresses nothing",
                    sup.problem.as_deref().unwrap_or("unparseable")
                ),
            });
        } else if !used[i] {
            out.push(Finding {
                path: path.to_string(),
                line: sup.line,
                col: 1,
                rule: "unused-allow",
                message: format!(
                    "suppression for `{}` matches no finding on this or the \
                     next line; delete it",
                    sup.rules.join(", ")
                ),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: FileClass = FileClass {
        sim: true,
        test_file: false,
    };

    #[test]
    fn suppression_with_reason_silences_the_finding() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   // ador-lint: allow(panic) — invariant: caller checked\n    \
                   x.unwrap()\n}\n";
        assert!(lint_file(SIM, "a.rs", src).is_empty());
    }

    #[test]
    fn same_line_suppression_works_too() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   x.unwrap() // ador-lint: allow(panic): checked by caller\n}\n";
        assert!(lint_file(SIM, "a.rs", src).is_empty());
    }

    #[test]
    fn reasonless_suppression_does_not_suppress() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   // ador-lint: allow(panic)\n    \
                   x.unwrap()\n}\n";
        let found = lint_file(SIM, "a.rs", src);
        let rules: Vec<&str> = found.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"panic"), "{found:?}");
        assert!(rules.contains(&"allow-no-reason"), "{found:?}");
    }

    #[test]
    fn unknown_rule_in_suppression_is_flagged() {
        let src = "// ador-lint: allow(no-such-rule) — because\nfn f() {}\n";
        let found = lint_file(SIM, "a.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "allow-no-reason");
        assert!(found[0].message.contains("no-such-rule"));
    }

    #[test]
    fn unused_suppression_is_flagged() {
        let src = "// ador-lint: allow(panic) — stale after a refactor\nfn f() {}\n";
        let found = lint_file(SIM, "a.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "unused-allow");
    }

    #[test]
    fn findings_outside_sim_scope_do_not_fire() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let not_sim = FileClass {
            sim: false,
            test_file: false,
        };
        assert!(lint_file(not_sim, "a.rs", src).is_empty());
    }

    const TELEMETRY: FileClass = FileClass {
        sim: false,
        test_file: false,
    };
    const TELEMETRY_PATH: &str = "crates/telemetry/src/agg.rs";

    #[test]
    fn float_accumulation_in_a_telemetry_loop_is_flagged() {
        let src = "fn mean(xs: &[f64]) -> f64 {\n    \
                   let mut sum = 0.0;\n    \
                   for x in xs {\n        sum += x;\n    }\n    \
                   sum\n}\n";
        let found = lint_file(TELEMETRY, TELEMETRY_PATH, src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "float-accum");
        assert!(found[0].message.contains("sum"));
    }

    #[test]
    fn ascribed_f64_accumulator_in_a_while_loop_is_flagged() {
        let src = "fn run(n: u32) {\n    let mut acc: f64 = total();\n    \
                   let mut i = 0;\n    \
                   while i < n {\n        acc += step();\n        i += 1;\n    }\n}\n";
        let found = lint_file(TELEMETRY, TELEMETRY_PATH, src);
        let rules: Vec<&str> = found.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["float-accum"], "{found:?}");
    }

    #[test]
    fn float_accum_suppression_with_reason_silences_it() {
        let src = "fn mean(xs: &[f64]) -> f64 {\n    \
                   let mut sum = 0.0;\n    \
                   for x in xs {\n        \
                   // ador-lint: allow(float-accum) — display-only mean, drift invisible\n        \
                   sum += x;\n    }\n    sum\n}\n";
        assert!(lint_file(TELEMETRY, TELEMETRY_PATH, src).is_empty());
    }

    #[test]
    fn integer_accumulation_and_non_loop_float_adds_are_clean() {
        // u64 `+=` in a loop, f64 `+=` outside any loop, and `impl … for`
        // (not a loop) must all stay silent.
        let src = "impl Agg for Sum {\n    \
                   fn add(&mut self, xs: &[u64]) {\n        \
                   let mut n = 0;\n        \
                   for x in xs {\n            n += x;\n        }\n        \
                   self.total += n;\n    }\n}\n\
                   fn once(a: f64) -> f64 {\n    let mut t = 0.0;\n    t += a;\n    t\n}\n";
        assert!(lint_file(TELEMETRY, TELEMETRY_PATH, src).is_empty());
    }

    #[test]
    fn float_accum_is_scoped_to_telemetry_library_paths() {
        let src = "fn mean(xs: &[f64]) -> f64 {\n    \
                   let mut sum = 0.0;\n    \
                   for x in xs {\n        sum += x;\n    }\n    \
                   sum\n}\n";
        assert!(lint_file(SIM, "crates/serving/src/agg.rs", src).is_empty());
        assert!(lint_file(TELEMETRY, "crates/telemetry/tests/agg.rs", src).is_empty());
    }
}
