//! Round-trip and edge-case tests for `ador_bench::json` — the
//! hand-rolled emit/parse pair every committed artifact (and now the
//! `ador-lint --json` report) flows through.
//!
//! The property tests drive a seeded value generator (the shim's
//! strategies cover scalar ranges; trees are derived from a sampled
//! `u64` seed with the same splitmix64 mixer the simulator uses), so
//! every run covers the same inputs — flake-free by construction.

use ador_bench::json::{self, Value};
use proptest::prelude::*;

/// splitmix64 step: the repo's standard seeded mixer.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded string mixing ASCII with every escape class the emitter
/// handles: quotes, backslashes, control chars, multi-byte UTF-8.
fn gen_string(state: &mut u64) -> String {
    let len = mix(state) % 12;
    (0..len)
        .map(|_| match mix(state) % 10 {
            0 => '"',
            1 => '\\',
            2 => '\n',
            3 => '\t',
            4 => '\u{1}',
            5 => 'é',
            6 => '日',
            _ => char::from(b'a' + (mix(state) % 26) as u8),
        })
        .collect()
}

/// A finite number spanning sign, fraction, and exponent regimes.
fn gen_num(state: &mut u64) -> f64 {
    let mantissa = (mix(state) % 2_000_001) as f64 - 1_000_000.0;
    let exponent = (mix(state) % 7) as i32 - 3;
    mantissa * 10f64.powi(exponent)
}

/// A seeded JSON value tree, at most `depth` levels of nesting.
fn gen_value(state: &mut u64, depth: u64) -> Value {
    let arms = if depth == 0 { 4 } else { 6 };
    match mix(state) % arms {
        0 => Value::Null,
        1 => Value::Bool(mix(state) % 2 == 0),
        2 => Value::Num(gen_num(state)),
        3 => Value::Str(gen_string(state)),
        4 => Value::Arr(
            (0..mix(state) % 4)
                .map(|_| gen_value(state, depth - 1))
                .collect(),
        ),
        _ => Value::Obj(
            (0..mix(state) % 4)
                .map(|i| {
                    (
                        format!("k{i}_{}", gen_string(state)),
                        gen_value(state, depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

/// Renders a `Value` back through the module's own emit helpers.
fn emit(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(x) => json::num(*x),
        Value::Str(s) => json::string(s),
        Value::Arr(items) => json::array(&items.iter().map(emit).collect::<Vec<String>>()),
        Value::Obj(fields) => {
            let rendered: Vec<(&str, String)> =
                fields.iter().map(|(k, v)| (k.as_str(), emit(v))).collect();
            json::object(&rendered)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_trees_round_trip(seed in 0u64..u64::MAX, depth in 1u64..5) {
        let mut state = seed;
        let value = gen_value(&mut state, depth);
        let text = emit(&value);
        let back = json::parse(&text);
        prop_assert_eq!(back.as_ref(), Ok(&value), "emitted: {}", text);
    }

    #[test]
    fn strings_round_trip(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let s = gen_string(&mut state);
        let parsed = json::parse(&json::string(&s));
        prop_assert_eq!(parsed, Ok(Value::Str(s)));
    }

    #[test]
    fn finite_numbers_round_trip_exactly(seed in 0u64..u64::MAX) {
        // `num` uses Rust's shortest round-trip Display, so parsing
        // back must recover the bit-identical f64.
        let mut state = seed;
        let x = gen_num(&mut state);
        prop_assert_eq!(json::parse(&json::num(x)), Ok(Value::Num(x)));
    }
}

#[test]
fn string_escapes_round_trip() {
    let hostile = "quote \" backslash \\ newline \n tab \t cr \r ctrl \u{1} é 日本";
    let text = json::string(hostile);
    assert_eq!(json::parse(&text), Ok(Value::Str(hostile.to_string())));
    // Control characters must leave as \u escapes, not raw bytes.
    assert!(text.contains("\\u0001"), "{text}");
}

#[test]
fn unicode_escapes_parse() {
    assert_eq!(json::parse(r#""Aé日""#), Ok(Value::Str("Aé日".to_string())));
    assert_eq!(
        json::parse(r#""slash \/ too""#),
        Ok(Value::Str("slash / too".to_string()))
    );
}

#[test]
fn negative_and_signed_exponents_parse() {
    assert_eq!(json::parse("-1e-3"), Ok(Value::Num(-0.001)));
    assert_eq!(json::parse("2.5E+2"), Ok(Value::Num(250.0)));
    assert_eq!(json::parse("-0.125e2"), Ok(Value::Num(-12.5)));
    assert_eq!(
        json::parse("[1e0,-2E-1]"),
        Ok(Value::Arr(vec![Value::Num(1.0), Value::Num(-0.2),]))
    );
}

#[test]
fn non_finite_numbers_emit_null() {
    assert_eq!(json::parse(&json::num(f64::NAN)), Ok(Value::Null));
    assert_eq!(json::parse(&json::num(f64::INFINITY)), Ok(Value::Null));
}

#[test]
fn deep_nesting_round_trips() {
    const DEPTH: usize = 128;
    let mut value = Value::Num(7.0);
    for _ in 0..DEPTH {
        value = Value::Arr(vec![value]);
    }
    let text = emit(&value);
    assert_eq!(text.matches('[').count(), DEPTH);
    assert_eq!(json::parse(&text), Ok(value));

    let mut obj = Value::Bool(true);
    for _ in 0..DEPTH {
        obj = Value::Obj(vec![("k".to_string(), obj)]);
    }
    assert_eq!(json::parse(&emit(&obj)), Ok(obj));
}

#[test]
fn whitespace_is_tolerated_between_tokens() {
    let text = " {\n\t\"a\" : [ 1 ,\r 2 ] , \"b\" : null }\n";
    assert_eq!(
        json::parse(text),
        Ok(Value::Obj(vec![
            (
                "a".to_string(),
                Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)])
            ),
            ("b".to_string(), Value::Null),
        ]))
    );
}

#[test]
fn trailing_garbage_is_rejected() {
    for text in ["{} x", "1 2", "[1,2] ,", "null\"\"", "true false"] {
        let err = json::parse(text).expect_err(text);
        assert!(err.contains("trailing garbage"), "{text}: {err}");
    }
}

#[test]
fn malformed_documents_are_rejected() {
    for text in [
        "{",
        "[1,",
        "\"unterminated",
        "{\"k\" 1}",
        "[1 2]",
        "",
        "nul",
        "--1",
    ] {
        assert!(json::parse(text).is_err(), "{text:?} should not parse");
    }
}
