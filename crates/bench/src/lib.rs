//! Shared helpers for the ADOR experiment benches.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper; this crate holds the table-printing plumbing they share.

#![forbid(unsafe_code)]

use std::fmt::Display;

/// Prints a titled, pipe-separated table: one header row, then the body
/// rows. Keeping the format regular makes `bench_output.txt` diffable.
pub fn print_table<H, R, C>(title: &str, header: &[H], rows: &[Vec<C>], _witness: R)
where
    H: Display,
    C: Display,
    R: Display,
{
    println!("\n=== {title} ===");
    let head: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("| {} |", head.join(" | "));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
        println!("| {} |", cells.join(" | "));
    }
}

/// Simpler row-printer used by most experiments.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    println!("| {} |", header.join(" | "));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a float with fixed precision (keeps bench output stable).
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// A paper-vs-measured annotation line, for EXPERIMENTS.md traceability.
pub fn claim(label: &str, paper: &str, measured: &str) {
    println!("claim: {label}: paper = {paper}, measured = {measured}");
}

/// Minimal JSON emission for machine-readable perf artifacts.
///
/// The report types under `ador_core::serving` / `ador_core::cluster`
/// carry `serde::Serialize` derives, but the offline serde shim is an
/// inert marker (see `shims/README.md`) — nothing can drive real
/// serialization through it. Until the real `serde`/`serde_json` land,
/// benches hand-assemble their artifact objects with these helpers; the
/// derives guarantee the types stay serializable for that switch.
pub mod json {
    use std::fmt::Write;

    /// Renders a JSON string literal (with escaping).
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Renders a finite number (non-finite values become `null`, which
    /// JSON cannot represent otherwise).
    pub fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x}")
        } else {
            "null".to_string()
        }
    }

    /// Renders an object from pre-rendered value fragments.
    pub fn object(fields: &[(&str, String)]) -> String {
        let body: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("{}:{v}", string(k)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Renders an array from pre-rendered value fragments.
    pub fn array(items: &[String]) -> String {
        format!("[{}]", items.join(","))
    }

    /// A parsed JSON value — the read half of this module, used by the
    /// artifact schema checks (`crate::schema`) so CI can fail on a
    /// missing or malformed committed artifact without `serde_json`.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (parsed as `f64`).
        Num(f64),
        /// A string literal.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order (keys are not deduplicated).
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Looks up `key` in an object (first match); `None` otherwise.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The number, if this is a `Num`.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }

        /// The string, if this is a `Str`.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The boolean, if this is a `Bool`.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The items, if this is an `Arr`.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parses one JSON document (object, array, or scalar). Rejects
    /// trailing garbage. Error messages carry the byte offset.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
            Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
            Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, ":")?;
                    let value = parse_value(bytes, pos)?;
                    fields.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                    }
                }
            }
            Some(_) => parse_number(bytes, pos).map(Value::Num),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Emits one machine-readable artifact line (`artifact: <name> <json>`),
/// greppable out of `bench_output.txt` by perf-tracking tooling.
pub fn artifact(name: &str, json: &str) {
    println!("artifact: {name} {json}");
}

/// Schema checks for committed perf artifacts. CI runs these through the
/// repo-root `tests/bench_artifact.rs` test, so a missing, unparseable or
/// structurally wrong artifact fails the build rather than silently
/// rotting.
pub mod schema {
    use crate::json::{self, Value};

    /// Validates a `BENCH_cluster.json` document (emitted by the
    /// `bench_cluster` target): the fleet-driver wall-clock grid.
    ///
    /// Checked invariants, not specific grid values — so a `--quick`
    /// smoke run and the full committed grid both pass:
    /// - top-level object named `"bench_cluster"` with a positive
    ///   `rate_per_replica` and a numeric `seed`;
    /// - a non-empty `cells` array; every cell has integral `replicas`
    ///   and `requests` counts ≥ 1, positive finite `lockstep_s` /
    ///   `event_s` wall-clock seconds, and a `speedup` consistent with
    ///   their ratio;
    /// - every cell's `reports_equal` flag is `true` — the bench
    ///   re-verifies driver equivalence on the measured runs themselves.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate_bench_cluster(text: &str) -> Result<(), String> {
        let doc = json::parse(text)?;
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing `name`")?;
        if name != "bench_cluster" {
            return Err(format!("unexpected artifact name `{name}`"));
        }
        let rate = doc
            .get("rate_per_replica")
            .and_then(Value::as_f64)
            .ok_or("missing `rate_per_replica`")?;
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(format!("non-positive rate_per_replica {rate}"));
        }
        doc.get("seed")
            .and_then(Value::as_f64)
            .ok_or("missing `seed`")?;
        let cells = doc
            .get("cells")
            .and_then(Value::as_array)
            .ok_or("missing `cells` array")?;
        if cells.is_empty() {
            return Err("empty `cells` array".to_string());
        }
        for (i, cell) in cells.iter().enumerate() {
            let count = |key: &str| -> Result<f64, String> {
                let x = cell
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("cell {i}: missing `{key}`"))?;
                if x < 1.0 || x.fract() != 0.0 {
                    return Err(format!("cell {i}: `{key}` must be an integer ≥ 1, got {x}"));
                }
                Ok(x)
            };
            count("replicas")?;
            count("requests")?;
            let secs = |key: &str| -> Result<f64, String> {
                let x = cell
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("cell {i}: missing `{key}`"))?;
                if !(x > 0.0 && x.is_finite()) {
                    return Err(format!("cell {i}: `{key}` must be positive, got {x}"));
                }
                Ok(x)
            };
            let lockstep = secs("lockstep_s")?;
            let event = secs("event_s")?;
            let speedup = secs("speedup")?;
            if (speedup - lockstep / event).abs() > 0.01 * (lockstep / event) {
                return Err(format!(
                    "cell {i}: speedup {speedup} inconsistent with {lockstep}/{event}"
                ));
            }
            if cell.get("reports_equal").and_then(Value::as_bool) != Some(true) {
                return Err(format!("cell {i}: reports_equal must be true"));
            }
        }
        Ok(())
    }

    /// Validates a `BENCH_disagg.json` document (emitted by the
    /// `exp_disagg` target): the fleet co-exploration result.
    ///
    /// Checked invariants, not specific values — so a `--quick` smoke
    /// run and the full committed result both pass:
    /// - top-level object named `"bench_disagg"` with positive `rate`,
    ///   `replicas` and `requests`, a numeric `seed`, a
    ///   `target_attainment` in `(0, 1]` and a boolean `quick` flag;
    /// - a non-empty `candidates` array; every candidate has a non-empty
    ///   `label`, an `attainment` in `[0, 1]`, finite non-negative
    ///   `goodput_tokens_per_sec` / `ttft_p95_ms` / `tbt_p95_ms`, boolean
    ///   `disaggregated` / `meets_target` flags, and pool sizes that sum
    ///   to `replicas` when disaggregated (aggregated candidates field
    ///   the whole fleet in both pools);
    /// - a `winner` and a `best_homogeneous` object of the same shape,
    ///   with `best_homogeneous.disaggregated == false`;
    /// - `disagg_wins` must be `true` unless `quick` is — the committed
    ///   full-run artifact carries the pinned disaggregation win.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate_bench_disagg(text: &str) -> Result<(), String> {
        let doc = json::parse(text)?;
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing `name`")?;
        if name != "bench_disagg" {
            return Err(format!("unexpected artifact name `{name}`"));
        }
        let positive = |key: &str| -> Result<f64, String> {
            let x = doc
                .get(key)
                .and_then(Value::as_f64)
                .ok_or(format!("missing `{key}`"))?;
            if !(x > 0.0 && x.is_finite()) {
                return Err(format!("`{key}` must be positive, got {x}"));
            }
            Ok(x)
        };
        positive("rate")?;
        let replicas = positive("replicas")?;
        positive("requests")?;
        doc.get("seed")
            .and_then(Value::as_f64)
            .ok_or("missing `seed`")?;
        let target = positive("target_attainment")?;
        if target > 1.0 {
            return Err(format!("target_attainment {target} above 1"));
        }
        let quick = doc
            .get("quick")
            .and_then(Value::as_bool)
            .ok_or("missing `quick`")?;

        let check_candidate = |c: &Value, what: &str| -> Result<(), String> {
            if c.get("label")
                .and_then(Value::as_str)
                .is_none_or(str::is_empty)
            {
                return Err(format!("{what}: missing or empty `label`"));
            }
            let attainment = c
                .get("attainment")
                .and_then(Value::as_f64)
                .ok_or(format!("{what}: missing `attainment`"))?;
            if !(0.0..=1.0).contains(&attainment) {
                return Err(format!("{what}: attainment {attainment} outside [0, 1]"));
            }
            for key in ["goodput_tokens_per_sec", "ttft_p95_ms", "tbt_p95_ms"] {
                let x = c
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("{what}: missing `{key}`"))?;
                if !(x >= 0.0 && x.is_finite()) {
                    return Err(format!("{what}: `{key}` must be non-negative, got {x}"));
                }
            }
            let disagg = c
                .get("disaggregated")
                .and_then(Value::as_bool)
                .ok_or(format!("{what}: missing `disaggregated`"))?;
            c.get("meets_target")
                .and_then(Value::as_bool)
                .ok_or(format!("{what}: missing `meets_target`"))?;
            let pool = |key: &str| {
                c.get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("{what}: missing `{key}`"))
            };
            let (prefill, decode) = (pool("prefill_replicas")?, pool("decode_replicas")?);
            let iso_count = if disagg {
                prefill + decode == replicas
            } else {
                prefill == replicas && decode == replicas
            };
            if !iso_count {
                return Err(format!(
                    "{what}: pools {prefill}+{decode} inconsistent with {replicas} replicas"
                ));
            }
            Ok(())
        };

        let candidates = doc
            .get("candidates")
            .and_then(Value::as_array)
            .ok_or("missing `candidates` array")?;
        if candidates.is_empty() {
            return Err("empty `candidates` array".to_string());
        }
        for (i, c) in candidates.iter().enumerate() {
            check_candidate(c, &format!("candidate {i}"))?;
        }
        let winner = doc.get("winner").ok_or("missing `winner`")?;
        check_candidate(winner, "winner")?;
        let homog = doc
            .get("best_homogeneous")
            .ok_or("missing `best_homogeneous`")?;
        check_candidate(homog, "best_homogeneous")?;
        if homog.get("disaggregated").and_then(Value::as_bool) != Some(false) {
            return Err("best_homogeneous must be an aggregated candidate".to_string());
        }
        let wins = doc
            .get("disagg_wins")
            .and_then(Value::as_bool)
            .ok_or("missing `disagg_wins`")?;
        if !quick && !wins {
            return Err("full-run artifact must carry the disaggregation win".to_string());
        }
        Ok(())
    }

    /// Request count above which [`validate_bench_telemetry`] enforces
    /// the overhead budget. Smaller cells (including the `--quick` smoke
    /// grid) are dominated by fixed costs and wall-clock noise, so only
    /// their structure is checked.
    pub const TELEMETRY_OVERHEAD_FLOOR_REQUESTS: f64 = 100_000.0;

    /// Maximum accepted tracing-on / tracing-off wall-clock ratio at or
    /// above [`TELEMETRY_OVERHEAD_FLOOR_REQUESTS`]: telemetry must stay
    /// within 10 % of the untraced fleet.
    pub const TELEMETRY_OVERHEAD_CAP: f64 = 1.10;

    /// Validates a `BENCH_telemetry.json` document (emitted by the
    /// `bench_telemetry` target): the tracing-on vs tracing-off
    /// wall-clock grid.
    ///
    /// Checked invariants, not specific grid values — so a `--quick`
    /// smoke run and the full committed grid both pass:
    /// - top-level object named `"bench_telemetry"` with a positive
    ///   `rate_per_replica`, a numeric `seed`, an integral
    ///   `ring_capacity` ≥ 1 and a positive `series_interval_s`;
    /// - a non-empty `cells` array; every cell has integral `replicas`
    ///   and `requests` counts ≥ 1, positive finite `off_s` / `on_s` /
    ///   `per_token_s` wall-clock seconds (the always-on configuration
    ///   and the full per-token event stream respectively), and an
    ///   `overhead` consistent with the `on_s`/`off_s` ratio;
    /// - every cell's `reports_equal` flag is `true` — the bench
    ///   re-verifies on the measured runs that telemetry observed the
    ///   fleet without perturbing it;
    /// - cells with at least [`TELEMETRY_OVERHEAD_FLOOR_REQUESTS`]
    ///   requests keep `overhead` ≤ [`TELEMETRY_OVERHEAD_CAP`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate_bench_telemetry(text: &str) -> Result<(), String> {
        let doc = json::parse(text)?;
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing `name`")?;
        if name != "bench_telemetry" {
            return Err(format!("unexpected artifact name `{name}`"));
        }
        let rate = doc
            .get("rate_per_replica")
            .and_then(Value::as_f64)
            .ok_or("missing `rate_per_replica`")?;
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(format!("non-positive rate_per_replica {rate}"));
        }
        doc.get("seed")
            .and_then(Value::as_f64)
            .ok_or("missing `seed`")?;
        let ring = doc
            .get("ring_capacity")
            .and_then(Value::as_f64)
            .ok_or("missing `ring_capacity`")?;
        if ring < 1.0 || ring.fract() != 0.0 {
            return Err(format!("ring_capacity must be an integer ≥ 1, got {ring}"));
        }
        let interval = doc
            .get("series_interval_s")
            .and_then(Value::as_f64)
            .ok_or("missing `series_interval_s`")?;
        if !(interval > 0.0 && interval.is_finite()) {
            return Err(format!("non-positive series_interval_s {interval}"));
        }
        let cells = doc
            .get("cells")
            .and_then(Value::as_array)
            .ok_or("missing `cells` array")?;
        if cells.is_empty() {
            return Err("empty `cells` array".to_string());
        }
        for (i, cell) in cells.iter().enumerate() {
            let count = |key: &str| -> Result<f64, String> {
                let x = cell
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("cell {i}: missing `{key}`"))?;
                if x < 1.0 || x.fract() != 0.0 {
                    return Err(format!("cell {i}: `{key}` must be an integer ≥ 1, got {x}"));
                }
                Ok(x)
            };
            count("replicas")?;
            let requests = count("requests")?;
            let secs = |key: &str| -> Result<f64, String> {
                let x = cell
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("cell {i}: missing `{key}`"))?;
                if !(x > 0.0 && x.is_finite()) {
                    return Err(format!("cell {i}: `{key}` must be positive, got {x}"));
                }
                Ok(x)
            };
            let off = secs("off_s")?;
            let on = secs("on_s")?;
            secs("per_token_s")?;
            let overhead = secs("overhead")?;
            if (overhead - on / off).abs() > 0.01 * (on / off) {
                return Err(format!(
                    "cell {i}: overhead {overhead} inconsistent with {on}/{off}"
                ));
            }
            if requests >= TELEMETRY_OVERHEAD_FLOOR_REQUESTS && overhead > TELEMETRY_OVERHEAD_CAP {
                return Err(format!(
                    "cell {i}: overhead {overhead} exceeds the {TELEMETRY_OVERHEAD_CAP} \
                     budget at {requests} requests"
                ));
            }
            if cell.get("reports_equal").and_then(Value::as_bool) != Some(true) {
                return Err(format!("cell {i}: reports_equal must be true"));
            }
        }
        Ok(())
    }

    /// Request count above which [`validate_bench_attribution`] enforces
    /// the attribution overhead budget (same fixed-cost rationale as
    /// [`TELEMETRY_OVERHEAD_FLOOR_REQUESTS`]).
    pub const ATTRIBUTION_OVERHEAD_FLOOR_REQUESTS: f64 = 100_000.0;

    /// Maximum accepted attribution-on / tracing-only wall-clock ratio at
    /// or above [`ATTRIBUTION_OVERHEAD_FLOOR_REQUESTS`]: replaying the
    /// event streams into blame ledgers must stay within 10 % of the
    /// traced fleet it post-processes.
    pub const ATTRIBUTION_OVERHEAD_CAP: f64 = 1.10;

    /// Maximum accepted steady-state-decode allocations per engine step
    /// in a full-run artifact. The step loop reuses its scratch buffers,
    /// so per-step allocation pressure is bounded by batch bookkeeping,
    /// not token counts; the cap holds headroom over the measured grid
    /// while still catching an accidental per-step `Vec` rebuild.
    pub const STEADY_DECODE_ALLOCS_PER_STEP_CAP: f64 = 256.0;

    /// Validates a `BENCH_attribution.json` document (emitted by the
    /// `bench_attribution` target): attribution overhead, self-profiled
    /// allocations per step, and the aggregated-vs-disaggregated blame
    /// comparison.
    ///
    /// Checked invariants, not specific grid values — so a `--quick`
    /// smoke run and the full committed artifact both pass:
    /// - top-level object named `"bench_attribution"` with a positive
    ///   `rate_per_replica`, a numeric `seed` and a boolean `quick` flag;
    /// - a non-empty `overhead_cells` array; every cell has integral
    ///   `replicas` / `requests` counts ≥ 1, positive finite `traced_s` /
    ///   `attributed_s`, an `overhead` consistent with their ratio, and
    ///   `conserved` / `reports_equal` both `true` — the bench re-checks
    ///   per-request conservation and report non-perturbation on the
    ///   measured runs themselves;
    /// - cells with at least [`ATTRIBUTION_OVERHEAD_FLOOR_REQUESTS`]
    ///   requests keep `overhead` ≤ [`ATTRIBUTION_OVERHEAD_CAP`];
    /// - a non-empty `alloc_cells` array; every cell has integral
    ///   `replicas` / `steps` counts ≥ 1 and a finite non-negative
    ///   `allocs_per_step`, capped at
    ///   [`STEADY_DECODE_ALLOCS_PER_STEP_CAP`] in full runs;
    /// - a `blame` object whose `aggregated` and `disaggregated` halves
    ///   each carry integral `requests` ≥ 1, `misses` in `[0, requests]`,
    ///   a `top_cause` naming a real
    ///   [`MissCause`](ador_core::telemetry::MissCause) label and a
    ///   finite non-negative `lost_ms`; full runs must pin the blame
    ///   shift — the aggregated fleet blames `prefill-interference`, the
    ///   disaggregated fleet blames something else, and `shifted` is
    ///   `true`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate_bench_attribution(text: &str) -> Result<(), String> {
        let doc = json::parse(text)?;
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing `name`")?;
        if name != "bench_attribution" {
            return Err(format!("unexpected artifact name `{name}`"));
        }
        let rate = doc
            .get("rate_per_replica")
            .and_then(Value::as_f64)
            .ok_or("missing `rate_per_replica`")?;
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(format!("non-positive rate_per_replica {rate}"));
        }
        doc.get("seed")
            .and_then(Value::as_f64)
            .ok_or("missing `seed`")?;
        let quick = doc
            .get("quick")
            .and_then(Value::as_bool)
            .ok_or("missing `quick`")?;

        let count_in = |cell: &Value, i: usize, key: &str| -> Result<f64, String> {
            let x = cell
                .get(key)
                .and_then(Value::as_f64)
                .ok_or(format!("cell {i}: missing `{key}`"))?;
            if x < 1.0 || x.fract() != 0.0 {
                return Err(format!("cell {i}: `{key}` must be an integer ≥ 1, got {x}"));
            }
            Ok(x)
        };

        let cells = doc
            .get("overhead_cells")
            .and_then(Value::as_array)
            .ok_or("missing `overhead_cells` array")?;
        if cells.is_empty() {
            return Err("empty `overhead_cells` array".to_string());
        }
        for (i, cell) in cells.iter().enumerate() {
            count_in(cell, i, "replicas")?;
            let requests = count_in(cell, i, "requests")?;
            let secs = |key: &str| -> Result<f64, String> {
                let x = cell
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("cell {i}: missing `{key}`"))?;
                if !(x > 0.0 && x.is_finite()) {
                    return Err(format!("cell {i}: `{key}` must be positive, got {x}"));
                }
                Ok(x)
            };
            let traced = secs("traced_s")?;
            let attributed = secs("attributed_s")?;
            let overhead = secs("overhead")?;
            if (overhead - attributed / traced).abs() > 0.01 * (attributed / traced) {
                return Err(format!(
                    "cell {i}: overhead {overhead} inconsistent with {attributed}/{traced}"
                ));
            }
            if requests >= ATTRIBUTION_OVERHEAD_FLOOR_REQUESTS
                && overhead > ATTRIBUTION_OVERHEAD_CAP
            {
                return Err(format!(
                    "cell {i}: overhead {overhead} exceeds the {ATTRIBUTION_OVERHEAD_CAP} \
                     budget at {requests} requests"
                ));
            }
            for key in ["conserved", "reports_equal"] {
                if cell.get(key).and_then(Value::as_bool) != Some(true) {
                    return Err(format!("cell {i}: `{key}` must be true"));
                }
            }
        }

        let allocs = doc
            .get("alloc_cells")
            .and_then(Value::as_array)
            .ok_or("missing `alloc_cells` array")?;
        if allocs.is_empty() {
            return Err("empty `alloc_cells` array".to_string());
        }
        for (i, cell) in allocs.iter().enumerate() {
            count_in(cell, i, "replicas")?;
            count_in(cell, i, "steps")?;
            let aps = cell
                .get("allocs_per_step")
                .and_then(Value::as_f64)
                .ok_or(format!("alloc cell {i}: missing `allocs_per_step`"))?;
            if !(aps >= 0.0 && aps.is_finite()) {
                return Err(format!(
                    "alloc cell {i}: `allocs_per_step` must be non-negative, got {aps}"
                ));
            }
            if !quick && aps > STEADY_DECODE_ALLOCS_PER_STEP_CAP {
                return Err(format!(
                    "alloc cell {i}: allocs_per_step {aps} exceeds the \
                     {STEADY_DECODE_ALLOCS_PER_STEP_CAP} steady-decode budget"
                ));
            }
        }

        let blame = doc.get("blame").ok_or("missing `blame`")?;
        let check_side = |what: &str| -> Result<String, String> {
            let side = blame.get(what).ok_or(format!("blame: missing `{what}`"))?;
            let requests =
                count_in(side, 0, "requests").map_err(|e| format!("blame.{what}: {e}"))?;
            let misses = side
                .get("misses")
                .and_then(Value::as_f64)
                .ok_or(format!("blame.{what}: missing `misses`"))?;
            if misses < 0.0 || misses.fract() != 0.0 || misses > requests {
                return Err(format!(
                    "blame.{what}: misses {misses} outside [0, {requests}]"
                ));
            }
            let cause = side
                .get("top_cause")
                .and_then(Value::as_str)
                .ok_or(format!("blame.{what}: missing `top_cause`"))?;
            if !ador_core::telemetry::MISS_CAUSES
                .iter()
                .any(|c| c.label() == cause)
            {
                return Err(format!("blame.{what}: unknown cause `{cause}`"));
            }
            let lost = side
                .get("lost_ms")
                .and_then(Value::as_f64)
                .ok_or(format!("blame.{what}: missing `lost_ms`"))?;
            if !(lost >= 0.0 && lost.is_finite()) {
                return Err(format!("blame.{what}: lost_ms {lost} must be non-negative"));
            }
            Ok(cause.to_string())
        };
        let aggregated = check_side("aggregated")?;
        let disaggregated = check_side("disaggregated")?;
        let shifted = blame
            .get("shifted")
            .and_then(Value::as_bool)
            .ok_or("blame: missing `shifted`")?;
        if !quick {
            if aggregated != "prefill-interference" {
                return Err(format!(
                    "full-run artifact must blame the aggregated fleet on \
                     prefill-interference, got `{aggregated}`"
                ));
            }
            if !shifted || disaggregated == aggregated {
                return Err(
                    "full-run artifact must carry the disaggregation blame shift".to_string(),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::json;

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(super::f(1.23456, 2), "1.23");
        assert_eq!(super::f(10.0, 1), "10.0");
    }

    #[test]
    fn json_helpers_render_valid_fragments() {
        assert_eq!(json::string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(json::num(2.5), "2.5");
        assert_eq!(json::num(f64::NAN), "null");
        assert_eq!(
            json::object(&[("rate", json::num(7.0)), ("policy", json::string("jsq"))]),
            r#"{"rate":7,"policy":"jsq"}"#
        );
        assert_eq!(json::array(&[json::num(1.0), json::num(2.0)]), "[1,2]");
    }

    #[test]
    fn json_parse_round_trips_emitted_documents() {
        let doc = json::object(&[
            ("name", json::string("bench_cluster")),
            ("rate", json::num(4.0)),
            ("flag", "true".to_string()),
            ("cells", json::array(&[json::num(1.0), json::num(2.5)])),
            ("note", json::string("tabs\tand \"quotes\"")),
        ]);
        let parsed = json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("name").and_then(json::Value::as_str),
            Some("bench_cluster")
        );
        assert_eq!(parsed.get("rate").and_then(json::Value::as_f64), Some(4.0));
        assert_eq!(
            parsed.get("flag").and_then(json::Value::as_bool),
            Some(true)
        );
        let cells = parsed.get("cells").and_then(json::Value::as_array).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].as_f64(), Some(2.5));
        assert_eq!(
            parsed.get("note").and_then(json::Value::as_str),
            Some("tabs\tand \"quotes\"")
        );
    }

    #[test]
    fn json_parse_rejects_malformed_documents() {
        assert!(json::parse("").is_err());
        assert!(json::parse("{").is_err());
        assert!(json::parse(r#"{"a": 1,}"#).is_err());
        assert!(json::parse("[1, 2] trailing").is_err());
        assert!(json::parse(r#""unterminated"#).is_err());
        // Whitespace and nesting are fine.
        assert!(json::parse(" {\n\t\"a\": [true, null, {\"b\": -1e-3}]\n} ").is_ok());
    }

    fn cell(replicas: f64, lockstep: f64, event: f64, equal: bool) -> String {
        json::object(&[
            ("replicas", json::num(replicas)),
            ("requests", json::num(1000.0)),
            ("lockstep_s", json::num(lockstep)),
            ("event_s", json::num(event)),
            ("speedup", json::num(lockstep / event)),
            ("reports_equal", equal.to_string()),
        ])
    }

    fn grid_doc(cells: &[String]) -> String {
        json::object(&[
            ("name", json::string("bench_cluster")),
            ("rate_per_replica", json::num(4.0)),
            ("seed", json::num(23.0)),
            ("cells", json::array(cells)),
        ])
    }

    #[test]
    fn bench_cluster_schema_accepts_a_well_formed_grid() {
        let doc = grid_doc(&[cell(4.0, 1.0, 0.5, true), cell(128.0, 60.0, 10.0, true)]);
        crate::schema::validate_bench_cluster(&doc).unwrap();
    }

    #[test]
    fn bench_cluster_schema_rejects_structural_violations() {
        let validate = crate::schema::validate_bench_cluster;
        assert!(validate("not json").is_err());
        assert!(validate(&grid_doc(&[])).is_err(), "empty grid");
        assert!(
            validate(&grid_doc(&[cell(4.0, 1.0, 0.5, false)])).is_err(),
            "drivers diverged"
        );
        assert!(
            validate(&grid_doc(&[cell(4.5, 1.0, 0.5, true)])).is_err(),
            "fractional replica count"
        );
        assert!(
            validate(&grid_doc(&[cell(4.0, 0.0, 0.5, true)])).is_err(),
            "zero wall-clock"
        );
        // A speedup field inconsistent with the measured ratio.
        let bad = grid_doc(&[json::object(&[
            ("replicas", json::num(4.0)),
            ("requests", json::num(1000.0)),
            ("lockstep_s", json::num(2.0)),
            ("event_s", json::num(1.0)),
            ("speedup", json::num(5.0)),
            ("reports_equal", "true".to_string()),
        ])]);
        assert!(validate(&bad).is_err(), "inconsistent speedup");
        // Wrong artifact name.
        let renamed =
            grid_doc(&[cell(4.0, 1.0, 0.5, true)]).replace("bench_cluster", "bench_other");
        assert!(validate(&renamed).is_err());
    }

    fn telemetry_cell(requests: f64, off: f64, on: f64, equal: bool) -> String {
        json::object(&[
            ("replicas", json::num(4.0)),
            ("requests", json::num(requests)),
            ("off_s", json::num(off)),
            ("on_s", json::num(on)),
            ("per_token_s", json::num(on * 1.2)),
            ("overhead", json::num(on / off)),
            ("reports_equal", equal.to_string()),
        ])
    }

    fn telemetry_doc(cells: &[String]) -> String {
        json::object(&[
            ("name", json::string("bench_telemetry")),
            ("rate_per_replica", json::num(6.0)),
            ("seed", json::num(23.0)),
            ("ring_capacity", json::num(65536.0)),
            ("series_interval_s", json::num(0.25)),
            ("cells", json::array(cells)),
        ])
    }

    #[test]
    fn bench_telemetry_schema_accepts_a_well_formed_grid() {
        let doc = telemetry_doc(&[
            telemetry_cell(600.0, 0.01, 0.02, true), // small cells escape the cap
            telemetry_cell(100_000.0, 60.0, 63.0, true),
        ]);
        crate::schema::validate_bench_telemetry(&doc).unwrap();
    }

    #[test]
    fn bench_telemetry_schema_rejects_structural_violations() {
        let validate = crate::schema::validate_bench_telemetry;
        assert!(validate("not json").is_err());
        assert!(validate(&telemetry_doc(&[])).is_err(), "empty grid");
        assert!(
            validate(&telemetry_doc(&[telemetry_cell(600.0, 0.01, 0.02, false)])).is_err(),
            "telemetry perturbed the run"
        );
        assert!(
            validate(&telemetry_doc(&[telemetry_cell(
                100_000.0, 60.0, 70.0, true
            )]))
            .is_err(),
            "overhead budget blown at the enforced scale"
        );
        // An overhead field inconsistent with the measured ratio.
        let bad = telemetry_doc(&[json::object(&[
            ("replicas", json::num(4.0)),
            ("requests", json::num(1000.0)),
            ("off_s", json::num(2.0)),
            ("on_s", json::num(2.1)),
            ("per_token_s", json::num(2.5)),
            ("overhead", json::num(2.0)),
            ("reports_equal", "true".to_string()),
        ])]);
        assert!(validate(&bad).is_err(), "inconsistent overhead");
        // The full per-token column must be present and positive.
        let no_per_token = telemetry_doc(&[
            telemetry_cell(600.0, 0.01, 0.011, true).replace("per_token_s", "per_token_sec")
        ]);
        assert!(validate(&no_per_token).is_err(), "missing per_token_s");
        // Wrong artifact name.
        let renamed = telemetry_doc(&[telemetry_cell(600.0, 0.01, 0.011, true)])
            .replace("bench_telemetry", "bench_other");
        assert!(validate(&renamed).is_err());
    }

    fn disagg_candidate(
        label: &str,
        prefill: f64,
        decode: f64,
        disagg: bool,
        attainment: f64,
    ) -> String {
        json::object(&[
            ("label", json::string(label)),
            ("policy", json::string("join-shortest-queue")),
            (
                "decode_policy",
                if disagg {
                    json::string("least-kv-load")
                } else {
                    "null".to_string()
                },
            ),
            ("prefill_replicas", json::num(prefill)),
            ("decode_replicas", json::num(decode)),
            ("disaggregated", disagg.to_string()),
            ("attainment", json::num(attainment)),
            ("goodput_tokens_per_sec", json::num(3000.0)),
            ("ttft_p95_ms", json::num(800.0)),
            ("tbt_p95_ms", json::num(12.0)),
            ("kv_transfers", json::num(if disagg { 400.0 } else { 0.0 })),
            ("meets_target", (attainment >= 0.9).to_string()),
        ])
    }

    fn disagg_doc(quick: bool, wins: bool, winner: &str, homog: &str) -> String {
        json::object(&[
            ("name", json::string("bench_disagg")),
            ("rate", json::num(30.0)),
            ("seed", json::num(29.0)),
            ("replicas", json::num(4.0)),
            ("requests", json::num(400.0)),
            ("target_attainment", json::num(0.9)),
            ("quick", quick.to_string()),
            (
                "candidates",
                json::array(&[winner.to_string(), homog.to_string()]),
            ),
            ("winner", winner.to_string()),
            ("best_homogeneous", homog.to_string()),
            ("disagg_wins", wins.to_string()),
        ])
    }

    #[test]
    fn bench_disagg_schema_accepts_full_and_quick_artifacts() {
        let winner = disagg_candidate("disagg 2xP + 2xD", 2.0, 2.0, true, 0.97);
        let homog = disagg_candidate("4xUnified [jsq]", 4.0, 4.0, false, 0.92);
        crate::schema::validate_bench_disagg(&disagg_doc(false, true, &winner, &homog)).unwrap();
        // A quick smoke artifact is exempt from the win requirement.
        crate::schema::validate_bench_disagg(&disagg_doc(true, false, &winner, &homog)).unwrap();
    }

    #[test]
    fn bench_disagg_schema_rejects_structural_violations() {
        let validate = crate::schema::validate_bench_disagg;
        let winner = disagg_candidate("disagg 2xP + 2xD", 2.0, 2.0, true, 0.97);
        let homog = disagg_candidate("4xUnified [jsq]", 4.0, 4.0, false, 0.92);
        assert!(validate("not json").is_err());
        assert!(
            validate(&disagg_doc(false, false, &winner, &homog)).is_err(),
            "full artifact must carry the disaggregation win"
        );
        assert!(
            validate(&disagg_doc(false, true, &winner, &winner)).is_err(),
            "best_homogeneous must be aggregated"
        );
        let short_pools = disagg_candidate("disagg 1xP + 2xD", 1.0, 2.0, true, 0.97);
        assert!(
            validate(&disagg_doc(false, true, &short_pools, &homog)).is_err(),
            "disaggregated pools must sum to the fleet size"
        );
        let over_attained = disagg_candidate("disagg 2xP + 2xD", 2.0, 2.0, true, 1.2);
        assert!(
            validate(&disagg_doc(false, true, &over_attained, &homog)).is_err(),
            "attainment above 1"
        );
        let renamed = disagg_doc(false, true, &winner, &homog).replace("bench_disagg", "other");
        assert!(validate(&renamed).is_err(), "wrong artifact name");
    }

    fn attr_overhead_cell(requests: f64, traced: f64, attributed: f64, flags: bool) -> String {
        json::object(&[
            ("replicas", json::num(4.0)),
            ("requests", json::num(requests)),
            ("traced_s", json::num(traced)),
            ("attributed_s", json::num(attributed)),
            ("overhead", json::num(attributed / traced)),
            ("conserved", flags.to_string()),
            ("reports_equal", flags.to_string()),
        ])
    }

    fn attr_alloc_cell(allocs_per_step: f64) -> String {
        json::object(&[
            ("replicas", json::num(4.0)),
            ("steps", json::num(512.0)),
            ("allocs_per_step", json::num(allocs_per_step)),
        ])
    }

    fn attr_blame_side(top_cause: &str) -> String {
        json::object(&[
            ("requests", json::num(400.0)),
            ("misses", json::num(120.0)),
            ("top_cause", json::string(top_cause)),
            ("lost_ms", json::num(84_000.0)),
        ])
    }

    fn attribution_doc(
        quick: bool,
        cells: &[String],
        allocs: &[String],
        aggregated: &str,
        disaggregated: &str,
        shifted: bool,
    ) -> String {
        json::object(&[
            ("name", json::string("bench_attribution")),
            ("rate_per_replica", json::num(6.0)),
            ("seed", json::num(23.0)),
            ("quick", quick.to_string()),
            ("overhead_cells", json::array(cells)),
            ("alloc_cells", json::array(allocs)),
            (
                "blame",
                json::object(&[
                    ("aggregated", attr_blame_side(aggregated)),
                    ("disaggregated", attr_blame_side(disaggregated)),
                    ("shifted", shifted.to_string()),
                ]),
            ),
        ])
    }

    #[test]
    fn bench_attribution_schema_accepts_full_and_quick_artifacts() {
        let cells = [
            attr_overhead_cell(600.0, 0.01, 0.02, true), // small cells escape the cap
            attr_overhead_cell(100_000.0, 60.0, 62.0, true),
        ];
        let allocs = [attr_alloc_cell(12.5)];
        let full = attribution_doc(
            false,
            &cells,
            &allocs,
            "prefill-interference",
            "queue",
            true,
        );
        crate::schema::validate_bench_attribution(&full).unwrap();
        // A quick smoke artifact is exempt from the blame-shift pin and
        // the alloc cap.
        let quick = attribution_doc(
            true,
            &[attr_overhead_cell(300.0, 0.01, 0.02, true)],
            &[attr_alloc_cell(10_000.0)],
            "queue",
            "queue",
            false,
        );
        crate::schema::validate_bench_attribution(&quick).unwrap();
    }

    #[test]
    fn bench_attribution_schema_rejects_structural_violations() {
        let validate = crate::schema::validate_bench_attribution;
        let ok_cell = attr_overhead_cell(600.0, 0.01, 0.02, true);
        let ok_alloc = attr_alloc_cell(12.5);
        let doc = |cells: &[String], allocs: &[String], agg: &str, dis: &str, shifted: bool| {
            attribution_doc(false, cells, allocs, agg, dis, shifted)
        };
        assert!(validate("not json").is_err());
        assert!(
            validate(&doc(
                &[],
                std::slice::from_ref(&ok_alloc),
                "prefill-interference",
                "queue",
                true
            ))
            .is_err(),
            "empty overhead grid"
        );
        assert!(
            validate(&doc(
                &[attr_overhead_cell(600.0, 0.01, 0.02, false)],
                std::slice::from_ref(&ok_alloc),
                "prefill-interference",
                "queue",
                true
            ))
            .is_err(),
            "conservation or perturbation check failed"
        );
        assert!(
            validate(&doc(
                &[attr_overhead_cell(100_000.0, 60.0, 70.0, true)],
                std::slice::from_ref(&ok_alloc),
                "prefill-interference",
                "queue",
                true
            ))
            .is_err(),
            "overhead budget blown at the enforced scale"
        );
        assert!(
            validate(&doc(
                std::slice::from_ref(&ok_cell),
                &[attr_alloc_cell(10_000.0)],
                "prefill-interference",
                "queue",
                true
            ))
            .is_err(),
            "alloc budget blown in a full run"
        );
        assert!(
            validate(&doc(
                std::slice::from_ref(&ok_cell),
                std::slice::from_ref(&ok_alloc),
                "queue",
                "decode-stall",
                true
            ))
            .is_err(),
            "full run must blame the aggregated fleet on prefill-interference"
        );
        assert!(
            validate(&doc(
                std::slice::from_ref(&ok_cell),
                std::slice::from_ref(&ok_alloc),
                "prefill-interference",
                "prefill-interference",
                false
            ))
            .is_err(),
            "full run must carry the blame shift"
        );
        assert!(
            validate(&doc(
                std::slice::from_ref(&ok_cell),
                std::slice::from_ref(&ok_alloc),
                "prefill-interference",
                "no-such-cause",
                true
            ))
            .is_err(),
            "unknown miss cause"
        );
        let renamed = doc(
            &[ok_cell],
            &[ok_alloc],
            "prefill-interference",
            "queue",
            true,
        )
        .replace("bench_attribution", "other");
        assert!(validate(&renamed).is_err(), "wrong artifact name");
    }
}
