//! Shared helpers for the ADOR experiment benches.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper; this crate holds the table-printing plumbing they share.

#![forbid(unsafe_code)]

use std::fmt::Display;

/// Prints a titled, pipe-separated table: one header row, then the body
/// rows. Keeping the format regular makes `bench_output.txt` diffable.
pub fn print_table<H, R, C>(title: &str, header: &[H], rows: &[Vec<C>], _witness: R)
where
    H: Display,
    C: Display,
    R: Display,
{
    println!("\n=== {title} ===");
    let head: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("| {} |", head.join(" | "));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
        println!("| {} |", cells.join(" | "));
    }
}

/// Simpler row-printer used by most experiments.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    println!("| {} |", header.join(" | "));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a float with fixed precision (keeps bench output stable).
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// A paper-vs-measured annotation line, for EXPERIMENTS.md traceability.
pub fn claim(label: &str, paper: &str, measured: &str) {
    println!("claim: {label}: paper = {paper}, measured = {measured}");
}

/// Minimal JSON emission for machine-readable perf artifacts.
///
/// The report types under `ador_core::serving` / `ador_core::cluster`
/// carry `serde::Serialize` derives, but the offline serde shim is an
/// inert marker (see `shims/README.md`) — nothing can drive real
/// serialization through it. Until the real `serde`/`serde_json` land,
/// benches hand-assemble their artifact objects with these helpers; the
/// derives guarantee the types stay serializable for that switch.
pub mod json {
    use std::fmt::Write;

    /// Renders a JSON string literal (with escaping).
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Renders a finite number (non-finite values become `null`, which
    /// JSON cannot represent otherwise).
    pub fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x}")
        } else {
            "null".to_string()
        }
    }

    /// Renders an object from pre-rendered value fragments.
    pub fn object(fields: &[(&str, String)]) -> String {
        let body: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("{}:{v}", string(k)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Renders an array from pre-rendered value fragments.
    pub fn array(items: &[String]) -> String {
        format!("[{}]", items.join(","))
    }
}

/// Emits one machine-readable artifact line (`artifact: <name> <json>`),
/// greppable out of `bench_output.txt` by perf-tracking tooling.
pub fn artifact(name: &str, json: &str) {
    println!("artifact: {name} {json}");
}

#[cfg(test)]
mod tests {
    use super::json;

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(super::f(1.23456, 2), "1.23");
        assert_eq!(super::f(10.0, 1), "10.0");
    }

    #[test]
    fn json_helpers_render_valid_fragments() {
        assert_eq!(json::string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(json::num(2.5), "2.5");
        assert_eq!(json::num(f64::NAN), "null");
        assert_eq!(
            json::object(&[("rate", json::num(7.0)), ("policy", json::string("jsq"))]),
            r#"{"rate":7,"policy":"jsq"}"#
        );
        assert_eq!(json::array(&[json::num(1.0), json::num(2.0)]), "[1,2]");
    }
}
