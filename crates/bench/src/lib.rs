//! Shared helpers for the ADOR experiment benches.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper; this crate holds the table-printing plumbing they share.

#![forbid(unsafe_code)]

use std::fmt::Display;

/// Prints a titled, pipe-separated table: one header row, then the body
/// rows. Keeping the format regular makes `bench_output.txt` diffable.
pub fn print_table<H, R, C>(title: &str, header: &[H], rows: &[Vec<C>], _witness: R)
where
    H: Display,
    C: Display,
    R: Display,
{
    println!("\n=== {title} ===");
    let head: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("| {} |", head.join(" | "));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
        println!("| {} |", cells.join(" | "));
    }
}

/// Simpler row-printer used by most experiments.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    println!("| {} |", header.join(" | "));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a float with fixed precision (keeps bench output stable).
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// A paper-vs-measured annotation line, for EXPERIMENTS.md traceability.
pub fn claim(label: &str, paper: &str, measured: &str) {
    println!("claim: {label}: paper = {paper}, measured = {measured}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(super::f(1.23456, 2), "1.23");
        assert_eq!(super::f(10.0, 1), "10.0");
    }
}
