//! Ablation: the heterogeneous-dataflow choice itself — MT-only vs SA-only
//! vs the combined HDA, across both phases (DESIGN.md §5).

use ador_bench::{claim, table};
use ador_core::hw::memory::DramSpec;
use ador_core::hw::{Architecture, MacTree, SystolicArray};
use ador_core::model::presets;
use ador_core::perf::{Deployment, Evaluator};
use ador_core::units::{Bandwidth, Bytes, Frequency};

fn build(name: &str, sa: Option<usize>, mt: Option<(usize, usize)>) -> Architecture {
    let mut b = Architecture::builder(name)
        .cores(32)
        .local_memory(Bytes::from_kib(2048))
        .global_memory(Bytes::from_mib(16))
        .dram(DramSpec::hbm2e(
            Bytes::from_gib(80),
            Bandwidth::from_tbps(2.0),
        ))
        .frequency(Frequency::from_mhz(1500.0));
    if let Some(dim) = sa {
        b = b.systolic_array(SystolicArray::square(dim));
    }
    if let Some((size, lanes)) = mt {
        b = b.mac_tree(MacTree::new(size, lanes));
    }
    b.build()
}

fn main() {
    let model = presets::llama3_8b();
    // Iso-ish MAC budgets: SA-only 64x64, MT-only with a wide bank, HDA.
    let designs = [
        ("SA-only 64x64", build("sa-only", Some(64), None)),
        ("MT-only 16x256", build("mt-only", None, Some((16, 256)))),
        ("HDA 64x64 + 16x16", build("hda", Some(64), Some((16, 16)))),
    ];

    let mut rows = Vec::new();
    for (label, arch) in &designs {
        let eval = Evaluator::new(arch, &model, Deployment::single_device()).expect("fits");
        let ttft = eval.ttft(1, 1024).expect("prefill");
        let tbt32 = eval.decode_interval(32, 1024).expect("decode");
        let tbt150 = eval.decode_interval(150, 1024).expect("decode");
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", ttft.as_millis()),
            format!("{:.2}", tbt32.as_millis()),
            format!("{:.2}", tbt150.as_millis()),
        ]);
    }
    table(
        "Ablation: dataflow composition (LLaMA3 8B)",
        &["design", "TTFT@1k (ms)", "TBT b32 (ms)", "TBT b150 (ms)"],
        &rows,
    );

    let sa_ttft: f64 = rows[0][1].parse().unwrap();
    let mt_ttft: f64 = rows[1][1].parse().unwrap();
    let hda_ttft: f64 = rows[2][1].parse().unwrap();
    let sa_tbt: f64 = rows[0][2].parse().unwrap();
    let hda_tbt: f64 = rows[2][2].parse().unwrap();
    claim(
        "ablation HDA balances both axes",
        "HDA matches the SA's prefill and the MT's decode simultaneously (paper §II-C: HDA beats single-dataflow designs)",
        &format!(
            "TTFT: SA {sa_ttft:.0} / MT {mt_ttft:.0} / HDA {hda_ttft:.0} ms; TBT b32: SA {sa_tbt:.2} -> HDA {hda_tbt:.2} ms"
        ),
    );
}
