//! Table III: hardware specifications proposed by ADOR — the search run
//! under A100-class constraints, printed next to the paper's columns.

use ador_bench::{claim, table};
use ador_core::baselines;
use ador_core::hw::{Architecture, AreaModel};
use ador_core::model::presets;
use ador_core::prelude::Ador;

fn spec_row(arch: &Architecture, area_model: &AreaModel) -> Vec<String> {
    let sa = arch
        .sa
        .map(|s| {
            if arch.sa_per_core > 1 {
                format!("{}x{} x{}", s.rows(), s.cols(), arch.sa_per_core)
            } else {
                format!("{}x{}", s.rows(), s.cols())
            }
        })
        .unwrap_or_else(|| "-".into());
    let mt = arch
        .mt
        .map(|m| format!("{}x{}", m.size(), m.lanes()))
        .unwrap_or_else(|| "-".into());
    vec![
        arch.name.clone(),
        format!("{:.0}", arch.frequency.as_mhz()),
        sa,
        mt,
        arch.cores.to_string(),
        format!("{:.0}", arch.local_mem_per_core.as_kib()),
        format!("{:.0}", arch.global_mem.as_mib()),
        format!("{:.0}", arch.dram.capacity.as_gib()),
        format!("{:.1}", arch.dram.bandwidth.as_tbps()),
        format!("{:.0}", arch.p2p_bandwidth.as_gbps()),
        format!("{:.0}", arch.peak_flops().as_tflops()),
        format!("{:.0}", area_model.estimate(arch).total().as_mm2()),
    ]
}

fn main() {
    let area_model = AreaModel::default();

    // The paper's Table III columns.
    let mut rows: Vec<Vec<String>> = [
        baselines::a100(),
        baselines::llmcompass_l(),
        baselines::llmcompass_t(),
        baselines::ador_table3(),
    ]
    .iter()
    .map(|a| spec_row(a, &area_model))
    .collect();

    // Our own search under the same constraints.
    let outcome = Ador::new(presets::llama3_8b())
        .batch(128)
        .seq_len(1024)
        .explore()
        .expect("search succeeds under A100-class constraints");
    let mut searched = spec_row(&outcome.architecture, &area_model);
    searched[0] = format!(
        "ADOR search ({})",
        if outcome.satisfied {
            "meets SLA"
        } else {
            "best effort"
        }
    );
    rows.push(searched);

    table(
        "Table III: specifications (paper columns + our search result)",
        &[
            "design",
            "freq (MHz)",
            "SA",
            "MT",
            "cores",
            "local (KB)",
            "global (MB)",
            "DRAM (GB)",
            "BW (TB/s)",
            "P2P (GB/s)",
            "TFLOPS",
            "die (mm2)",
        ],
        &rows,
    );

    claim(
        "table3 die areas",
        "LLMCompass-L 478 / LLMCompass-T 787 / ADOR 516 mm2",
        &format!("{} / {} / {} mm2", rows[1][11], rows[2][11], rows[3][11]),
    );
    claim(
        "table3 peak performance",
        "196 / 786 / 417 TFLOPS for L / T / ADOR",
        &format!("{} / {} / {} TFLOPS", rows[1][10], rows[2][10], rows[3][10]),
    );
    claim(
        "table3 search shape",
        "the search proposes a balanced HDA (64x64-class SA + bandwidth-matched MT, PCIe-class P2P) within the A100 budget",
        &format!(
            "{} | {} TFLOPS | {} mm2 | TTFT {} | TBT {}",
            rows[4][0], rows[4][10], rows[4][11], outcome.ttft, outcome.tbt
        ),
    );
}
