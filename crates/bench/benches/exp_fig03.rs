//! Figure 3: (a) KV-cache share of decode DRAM reads per model and batch;
//! (b) attention's share of operations vs sequence length.

use ador_bench::{claim, table};
use ador_core::model::{presets, workload};

fn fig3a() {
    let models = [
        presets::qwen2_7b(),
        presets::llama3_8b(),
        presets::gemma2_9b(),
        presets::mixtral_8x7b(),
    ];
    let batches = [1usize, 16, 64, 128];
    let mut rows = Vec::new();
    for m in &models {
        let mut row = vec![m.name.clone()];
        for &b in &batches {
            row.push(format!(
                "{:.1}%",
                100.0 * workload::kv_read_share(m, b, 8192)
            ));
        }
        rows.push(row);
    }
    table(
        "Fig 3a: KV-cache share of decode DRAM reads (seq 8192)",
        &["model", "batch 1", "batch 16", "batch 64", "batch 128"],
        &rows,
    );
    claim(
        "fig3a KV dominates at batch 128",
        "over 90% of DRAM reads are key-value pairs",
        &format!(
            "dense models 81-96% (GQA-width dependent), e.g. Gemma2 {}",
            rows[2][4]
        ),
    );
}

fn fig3b() {
    let m = presets::llama3_8b();
    let mut rows = Vec::new();
    for (label, ctx) in [("4k", 4096usize), ("8k", 8192), ("64k", 65536)] {
        let share = workload::attention_op_share(&m, ctx);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", 100.0 * share),
            format!("{:.1}%", 100.0 * (1.0 - share)),
        ]);
    }
    table(
        "Fig 3b: operation share for LLaMA3 8B decode",
        &["context", "self-attention", "MLP & projections"],
        &rows,
    );
    claim(
        "fig3b attention share at 64k",
        "71.7% self-attention",
        &rows[2][1],
    );
    claim(
        "fig3b attention share grows with context",
        "28.2% (4k) -> 36.2% (8k) -> 71.7% (64k)",
        &format!("{} -> {} -> {}", rows[0][1], rows[1][1], rows[2][1]),
    );
}

fn main() {
    fig3a();
    fig3b();
}
