//! Figure 16: maximum request capacity under TBT SLOs in the simulated
//! chatbot environment (LLaMA3 8B on one device, Yi 34B on two).

use ador_bench::{claim, table};
use ador_core::baselines;
use ador_core::model::{presets, ModelConfig};
use ador_core::perf::Deployment;
use ador_core::serving::{max_capacity, SchedulerPolicy, SimConfig, Slo, TraceProfile};
use ador_core::units::Seconds;

// Capacity numbers reflect the chunked-prefill scheduler with
// token-granular KV accounting: KV headroom is no longer reserved for a
// request's whole lifetime at admission, so achievable batch sizes (and
// therefore capacities) run higher than under the old whole-life
// reservation engine.
fn capacity_with_policy(
    model: &ModelConfig,
    deployment: Deployment,
    tbt_ms: f64,
    policy: SchedulerPolicy,
) -> f64 {
    let arch = baselines::ador_table3();
    // More requests than batch slots, so saturation shows up as queueing.
    let cfg = SimConfig::new(1.0, 128)
        .with_requests(320)
        .with_seed(16)
        .with_policy(policy);
    // A TBT bound alone never trips once the batch cap pins the step time,
    // so the SLO also carries the queue-stability TTFT bound the paper's
    // serving environment implies (p95 TTFT within 2 s).
    let slo = Slo {
        ttft_max: Some(Seconds::from_millis(2000.0)),
        tbt_max: Some(Seconds::from_millis(tbt_ms)),
    };
    max_capacity(
        &arch,
        model,
        deployment,
        cfg,
        TraceProfile::ultrachat_like(),
        slo,
        (0.25, 80.0),
        8,
    )
    .expect("capacity search runs")
    .rate
}

fn capacity(model: &ModelConfig, deployment: Deployment, tbt_ms: f64) -> f64 {
    capacity_with_policy(model, deployment, tbt_ms, SchedulerPolicy::Fused)
}

fn main() {
    let configs = [
        (
            "LLaMA3 8B",
            presets::llama3_8b(),
            Deployment::single_device(),
        ),
        ("Yi 34B", presets::yi_34b(), Deployment::tensor_parallel(2)),
    ];

    // Strict/relaxed table (the figure's bar chart).
    let mut rows = Vec::new();
    for (label, model, deployment) in &configs {
        rows.push(vec![
            label.to_string(),
            format!("{}", deployment.devices),
            format!("{:.1}", capacity(model, *deployment, 25.0)),
            format!("{:.1}", capacity(model, *deployment, 50.0)),
        ]);
    }
    table(
        "Fig 16: max capacity under TBT SLO (req/s, ultrachat-like trace)",
        &[
            "model",
            "devices",
            "strict SLO (25 ms)",
            "relaxed SLO (50 ms)",
        ],
        &rows,
    );

    // Capacity-vs-SLO curve for LLaMA3-8B (the figure's line plot).
    let mut curve = Vec::new();
    for tbt in [10.0f64, 20.0, 30.0, 40.0, 50.0] {
        curve.push(vec![
            format!("{tbt:.0}"),
            format!(
                "{:.1}",
                capacity(&presets::llama3_8b(), Deployment::single_device(), tbt)
            ),
        ]);
    }
    table(
        "Fig 16 (curve): LLaMA3 8B capacity vs TBT SLO",
        &["TBT SLO (ms)", "max capacity (req/s)"],
        &curve,
    );

    // Scheduler-policy comparison at the strict SLO (LLaMA3-8B).
    let mut policy_rows = Vec::new();
    for (label, policy) in [
        ("fused", SchedulerPolicy::Fused),
        ("decode-prioritized", SchedulerPolicy::DecodePrioritized),
    ] {
        policy_rows.push(vec![
            label.to_string(),
            format!(
                "{:.1}",
                capacity_with_policy(
                    &presets::llama3_8b(),
                    Deployment::single_device(),
                    25.0,
                    policy,
                )
            ),
        ]);
    }
    table(
        "Fig 16 (policy): LLaMA3 8B capacity under the strict SLO by scheduler policy",
        &["policy", "max capacity (req/s)"],
        &policy_rows,
    );

    let relaxed_8b: f64 = rows[0][3].parse().unwrap();
    claim(
        "fig16 paper headline",
        "ADOR achieves 23.3 requests per second while meeting SLOs (LLaMA3 8B)",
        &format!("{relaxed_8b:.1} req/s under the relaxed SLO"),
    );
    claim(
        "fig16 capacity grows with SLO relaxation",
        "max capacity rises rapidly as the TBT SLO loosens",
        "curve rows are monotonically non-decreasing",
    );
    claim(
        "fig16 larger model = lower capacity",
        "Yi 34B sustains fewer req/s even on two devices",
        &format!("{} vs {} req/s (relaxed)", rows[1][3], rows[0][3]),
    );
}
