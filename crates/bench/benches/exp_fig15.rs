//! Figure 15: QoS comparison — TTFT and TBT vs batch size for the A100,
//! LLMCompass-L/T and the ADOR design, on LLaMA3 8B (1 device) and
//! LLaMA3 70B (8 devices).

use ador_bench::{claim, table};
use ador_core::baselines;
use ador_core::hw::{Architecture, AreaModel};
use ador_core::model::ModelConfig;
use ador_core::perf::{Deployment, Evaluator};

const BATCHES: [usize; 4] = [16, 64, 128, 150];

fn archs() -> [Architecture; 4] {
    [
        baselines::a100(),
        baselines::llmcompass_l(),
        baselines::llmcompass_t(),
        baselines::ador_table3(),
    ]
}

fn panel(model: &ModelConfig, deployment: Deployment, label: &str) -> (f64, f64) {
    let mut ttft_rows = Vec::new();
    let mut tbt_rows = Vec::new();
    for arch in archs() {
        let eval = Evaluator::new(&arch, model, deployment).expect("fits");
        let mut ttft_row = vec![arch.name.clone()];
        let mut tbt_row = vec![arch.name.clone()];
        for &b in &BATCHES {
            // Continuous batching: an arriving request waits out one decode
            // iteration of the running batch, then prefills (Fig. 2b).
            let prefill = eval.ttft(1, 1024).expect("prefill");
            let tbt = eval.decode_interval(b, 1024).expect("decode");
            let ttft = prefill + tbt;
            ttft_row.push(format!("{:.1}", ttft.as_millis()));
            tbt_row.push(format!("{:.1}", 1.0 / tbt.get()));
        }
        ttft_rows.push(ttft_row);
        tbt_rows.push(tbt_row);
    }
    table(
        &format!("Fig 15 {label}: TTFT (ms, lower is better)"),
        &["design", "batch 16", "batch 64", "batch 128", "batch 150"],
        &ttft_rows,
    );
    table(
        &format!("Fig 15 {label}: TBT (token/s per stream, higher is better)"),
        &["design", "batch 16", "batch 64", "batch 128", "batch 150"],
        &tbt_rows,
    );
    // Return the batch-150 ADOR-vs-A100 TBT gap and TTFT gap.
    let a100_tbt: f64 = tbt_rows[0][4].parse().unwrap();
    let ador_tbt: f64 = tbt_rows[3][4].parse().unwrap();
    let a100_ttft: f64 = ttft_rows[0][4].parse().unwrap();
    let ador_ttft: f64 = ttft_rows[3][4].parse().unwrap();
    (ador_tbt / a100_tbt, a100_ttft / ador_ttft)
}

fn main() {
    let area_model = AreaModel::default();
    let area_ratio = area_model.estimate(&baselines::a100()).total()
        / area_model.estimate(&baselines::ador_table3()).total();

    let (tbt_gap_8b, ttft_gap_8b) = panel(
        &ador_core::model::presets::llama3_8b(),
        Deployment::single_device(),
        "(a) LLaMA3 8B, 1 device",
    );
    claim(
        "fig15a TBT at batch 150",
        "ADOR achieves 2.36x higher TBT than the A100",
        &format!("{tbt_gap_8b:.2}x"),
    );
    claim(
        "fig15a TTFT improvement",
        "1.93x (area efficiency 1.93x TTFT / 3.78x TBT)",
        &format!(
            "TTFT {ttft_gap_8b:.2}x; area efficiency {:.2}x TTFT / {:.2}x TBT",
            ttft_gap_8b * area_ratio,
            tbt_gap_8b * area_ratio
        ),
    );

    let (tbt_gap_70b, _) = panel(
        &ador_core::model::presets::llama3_70b(),
        Deployment::tensor_parallel(8),
        "(b) LLaMA3 70B, 8 devices",
    );
    claim(
        "fig15b TBT at batch 150",
        "2.51x better TBT, 4.01x area efficiency",
        &format!(
            "{tbt_gap_70b:.2}x TBT, {:.2}x area efficiency",
            tbt_gap_70b * area_ratio
        ),
    );
    claim(
        "fig15 balanced design",
        "LLMCompass-L excels in latency, -T in throughput; only ADOR balances both",
        "check: -T leads TTFT tables, ADOR leads TBT tables at high batch",
    );
}
