//! Figure 13: (a) tensor-parallel strategy scalability; (b) speedup vs P2P
//! bandwidth for prefill / decode / continuous workloads.

use ador_bench::{claim, table};
use ador_core::model::{presets, Phase};
use ador_core::noc::{P2pLink, SyncStrategy};
use ador_core::parallel::{p2p_sweep, tp_sweep, BlockWorkload, WorkloadMix};
use ador_core::perf::{Deployment, Evaluator};
use ador_core::units::{Bandwidth, Bytes, Seconds};

/// Real block workloads from the performance model (2 TB/s device, the
/// figure's caption parameters).
fn blocks() -> (BlockWorkload, BlockWorkload) {
    let arch = ador_core::baselines::ador_table3();
    let model = presets::llama3_8b();
    let eval = Evaluator::new(&arch, &model, Deployment::single_device()).expect("fits");
    let batch = 32;
    let seq = 1024;
    let layers = model.layers as f64;
    let window = |t: Seconds| Seconds::new(t.get() / layers / 2.0);
    let decode = eval.step(Phase::decode(batch, seq)).expect("decode");
    let prefill = eval.step(Phase::prefill(1, seq)).expect("prefill");
    (
        BlockWorkload::new(
            window(prefill.ops_time),
            Bytes::new((seq * model.hidden * 2) as u64),
        ),
        BlockWorkload::new(
            window(decode.ops_time),
            Bytes::new((batch * model.hidden * 2) as u64),
        ),
    )
}

fn fig13a(decode: BlockWorkload) {
    let link = P2pLink::new(Bandwidth::from_gbps(128.0));
    let devices = [1usize, 2, 4, 8, 16];
    let curves: Vec<(SyncStrategy, Vec<f64>)> = SyncStrategy::all()
        .iter()
        .map(|&s| {
            (
                s,
                tp_sweep(decode, s, link, &devices)
                    .into_iter()
                    .map(|p| p.speedup)
                    .collect(),
            )
        })
        .collect();

    let mut rows = Vec::new();
    for (i, &n) in devices.iter().enumerate() {
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", curves[0].1[i]),
            format!("{:.2}", curves[1].1[i]),
            format!("{:.2}", curves[2].1[i]),
        ]);
    }
    table(
        "Fig 13a: latency speedup vs TP width (mem 2 TB/s, P2P 128 GB/s)",
        &["devices", "all-gather", "all-reduce", "megatron"],
        &rows,
    );
    claim(
        "fig13a all-gather scales best",
        "Megatron-LM best with few devices; all-gather highest scalability toward 16",
        &format!(
            "at 16 devices: AG {:.1}x vs MG {:.1}x vs AR {:.1}x",
            curves[0].1[4], curves[2].1[4], curves[1].1[4]
        ),
    );
}

fn fig13b(prefill: BlockWorkload, decode: BlockWorkload) {
    let bandwidths = [16.0, 32.0, 64.0, 128.0];
    let mixes = [
        ("prefill", WorkloadMix::Prefill),
        ("decoding", WorkloadMix::Decode),
        ("continuous 3:1", WorkloadMix::Continuous),
    ];
    let sweeps: Vec<Vec<(f64, f64)>> = mixes
        .iter()
        .map(|(_, m)| p2p_sweep(prefill, decode, *m, 8, &bandwidths))
        .collect();

    let mut rows = Vec::new();
    for (i, &bw) in bandwidths.iter().enumerate() {
        rows.push(vec![
            format!("{bw:.0}"),
            format!("{:.2}", sweeps[0][i].1),
            format!("{:.2}", sweeps[1][i].1),
            format!("{:.2}", sweeps[2][i].1),
        ]);
    }
    table(
        "Fig 13b: TP-8 speedup vs P2P bandwidth (GB/s)",
        &["P2P (GB/s)", "prefill", "decoding", "continuous"],
        &rows,
    );
    let decode32: f64 = rows[1][2].parse().unwrap();
    let decode128: f64 = rows[3][2].parse().unwrap();
    claim(
        "fig13b 32 GB/s suffices for decode",
        "PCIe-4 x16-class bandwidth overlaps decode communication",
        &format!(
            "decode speedup at 32 GB/s is {:.0}% of the 128 GB/s value",
            100.0 * decode32 / decode128
        ),
    );
    claim(
        "fig13b decode overlaps best",
        "memory-bound attention gives better overlapping tendencies than prefill",
        "decode column saturates earlier than prefill column",
    );
}

fn main() {
    let (prefill, decode) = blocks();
    fig13a(decode);
    fig13b(prefill, decode);
}
