//! Ablation: serving-scheduler knobs — prefill chunk size and batch cap
//! under continuous batching (the QoS trade-off of Fig. 2b).

use ador_bench::{claim, table};
use ador_core::baselines;
use ador_core::model::presets;
use ador_core::perf::Deployment;
use ador_core::serving::{ServingSim, SimConfig, TraceProfile};

fn run(prefill_chunk: usize, max_batch: usize) -> ador_core::serving::QosReport {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let mut cfg = SimConfig::new(10.0, max_batch)
        .with_requests(120)
        .with_seed(23);
    cfg.prefill_chunk = prefill_chunk;
    ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
        .expect("sim builds")
        .run(TraceProfile::ultrachat_like())
        .expect("sim runs")
}

fn main() {
    // Prefill chunk sweep at a fixed batch cap.
    let mut rows = Vec::new();
    for chunk in [512usize, 1024, 4096, 16384] {
        let r = run(chunk, 128);
        rows.push(vec![
            chunk.to_string(),
            format!("{:.0}", r.ttft.p95.as_millis()),
            format!("{:.1}", r.tbt.p95.as_millis()),
            format!("{:.0}", r.tokens_per_sec),
        ]);
    }
    table(
        "Ablation: prefill chunk size (10 req/s, batch cap 128)",
        &["chunk (tokens)", "TTFT p95 (ms)", "TBT p95 (ms)", "tok/s"],
        &rows,
    );
    claim(
        "ablation chunking trades TBT for TTFT",
        "big prefill chunks admit prompts faster (TTFT) but stall running decodes (TBT) — the Fig. 2b continuous-batching tension",
        "compare the 512 and 16384 rows",
    );

    // Batch-cap sweep.
    let mut rows = Vec::new();
    for cap in [8usize, 32, 128] {
        let r = run(4096, cap);
        rows.push(vec![
            cap.to_string(),
            format!("{:.0}", r.ttft.p95.as_millis()),
            format!("{:.1}", r.tbt.p95.as_millis()),
            format!("{:.0}", r.tokens_per_sec),
            format!("{:.1}", r.mean_batch),
        ]);
    }
    table(
        "Ablation: batch cap (10 req/s, chunk 4096)",
        &[
            "max batch",
            "TTFT p95 (ms)",
            "TBT p95 (ms)",
            "tok/s",
            "mean batch",
        ],
        &rows,
    );
    claim(
        "ablation batching is the vendor/user gap",
        "larger caps raise hardware throughput but queue/stretch user-visible latency (Fig. 1)",
        "tok/s rises with the cap while TTFT p95 falls and TBT p95 grows",
    );
}
