//! Ablation: serving-scheduler knobs — prefill chunk size and batch cap
//! under continuous batching (the QoS trade-off of Fig. 2b).

use ador_bench::{claim, table};
use ador_core::baselines;
use ador_core::model::presets;
use ador_core::perf::Deployment;
use ador_core::serving::{SchedulerPolicy, ServingSim, SimConfig, TraceProfile};

fn run(prefill_chunk: usize, max_batch: usize) -> ador_core::serving::QosReport {
    run_with(prefill_chunk, max_batch, SchedulerPolicy::Fused, 0.9)
}

fn run_with(
    prefill_chunk: usize,
    max_batch: usize,
    policy: SchedulerPolicy,
    kv_fraction: f64,
) -> ador_core::serving::QosReport {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let cfg = SimConfig::new(10.0, max_batch)
        .with_requests(120)
        .with_seed(23)
        .with_prefill_chunk(prefill_chunk)
        .with_policy(policy)
        .with_kv_memory_fraction(kv_fraction);
    ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
        .expect("sim builds")
        .run(TraceProfile::ultrachat_like())
        .expect("sim runs")
}

fn main() {
    // Prefill chunk sweep at a fixed batch cap.
    let mut rows = Vec::new();
    for chunk in [512usize, 1024, 4096, 16384] {
        let r = run(chunk, 128);
        rows.push(vec![
            chunk.to_string(),
            format!("{:.0}", r.ttft.p95.as_millis()),
            format!("{:.1}", r.tbt.p95.as_millis()),
            format!("{:.0}", r.tokens_per_sec),
        ]);
    }
    table(
        "Ablation: prefill chunk size (10 req/s, batch cap 128)",
        &["chunk (tokens)", "TTFT p95 (ms)", "TBT p95 (ms)", "tok/s"],
        &rows,
    );
    claim(
        "ablation chunking trades TBT for TTFT",
        "big prefill chunks admit prompts faster (TTFT) but stall running decodes (TBT) — the Fig. 2b continuous-batching tension",
        "compare the 512 and 16384 rows",
    );

    // Batch-cap sweep.
    let mut rows = Vec::new();
    for cap in [8usize, 32, 128] {
        let r = run(4096, cap);
        rows.push(vec![
            cap.to_string(),
            format!("{:.0}", r.ttft.p95.as_millis()),
            format!("{:.1}", r.tbt.p95.as_millis()),
            format!("{:.0}", r.tokens_per_sec),
            format!("{:.1}", r.mean_batch),
        ]);
    }
    table(
        "Ablation: batch cap (10 req/s, chunk 4096)",
        &[
            "max batch",
            "TTFT p95 (ms)",
            "TBT p95 (ms)",
            "tok/s",
            "mean batch",
        ],
        &rows,
    );
    claim(
        "ablation batching is the vendor/user gap",
        "larger caps raise hardware throughput but queue/stretch user-visible latency (Fig. 1)",
        "tok/s rises with the cap while TTFT p95 falls and TBT p95 grows",
    );

    // Scheduler-policy × KV-pressure sweep (512-token chunks, batch 128).
    let mut rows = Vec::new();
    for (label, policy, kv_fraction) in [
        ("fused", SchedulerPolicy::Fused, 0.9),
        ("decode-prio", SchedulerPolicy::DecodePrioritized, 0.9),
        ("fused/scarce-KV", SchedulerPolicy::Fused, 0.02),
        (
            "decode-prio/scarce-KV",
            SchedulerPolicy::DecodePrioritized,
            0.02,
        ),
    ] {
        let r = run_with(512, 128, policy, kv_fraction);
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", r.ttft.p95.as_millis()),
            format!("{:.1}", r.tbt.p95.as_millis()),
            r.preemptions.to_string(),
            format!("{:.1}", r.mean_queue_depth),
        ]);
    }
    table(
        "Ablation: scheduler policy and KV pressure (10 req/s, chunk 512)",
        &[
            "policy",
            "TTFT p95 (ms)",
            "TBT p95 (ms)",
            "preemptions",
            "mean queue",
        ],
        &rows,
    );
    claim(
        "ablation policy trades TTFT for TBT",
        "decode-prioritized interleaving halves prefill interference on TBT while slowing admission",
        "decode-prio rows show lower TBT p95 and higher TTFT p95 than fused",
    );
    claim(
        "ablation scarce KV triggers preemption",
        "a 2% KV budget forces youngest-first eviction instead of deadlock or overflow",
        "scarce-KV rows complete with non-zero preemption counts",
    );
}
