//! Telemetry wall-clock overhead: tracing-on vs tracing-off over a
//! replicas × requests grid.
//!
//! The observability contract is twofold: telemetry off must be *free*
//! (the untraced fleet is bit-identical to a build without the telemetry
//! crate — pinned by proptests in `ador-serving` and re-verified here on
//! every measured run), and telemetry on must be *cheap* — within 10 %
//! wall-clock of the untraced fleet at the 128-replica / 100k-request
//! cell. The budgeted configuration is the always-on production shape:
//! a bounded per-replica flight recorder plus windowed time series at
//! `EventDetail::Lifecycle` granularity, which elides the steady
//! one-token decode commits that otherwise dominate event volume
//! (~20 M commits at the 64×64k cell) while keeping every phase
//! boundary — `PhaseHistograms` and `chrome_trace` see identical spans.
//! The full per-token stream (`EventDetail::PerToken`, the default)
//! is measured alongside and reported as `per_token_s`: it buys
//! per-step timing at a cost proportional to total tokens, so it is
//! priced, not budgeted.
//!
//! Writes the machine-readable grid to `BENCH_telemetry.json` at the
//! workspace root (schema-checked by `tests/bench_artifact.rs` via
//! `ador_bench::schema::validate_bench_telemetry`) and mirrors it as an
//! `artifact:` line. Pass `--quick` for the CI smoke grid.

use std::time::Instant;

use ador_bench::{artifact, f, json, table};
use ador_core::baselines;
use ador_core::cluster::scenarios::{scale_fleet, scale_mix, SCALE_RATE_PER_REPLICA, SCALE_SEED};
use ador_core::cluster::{ClusterSim, DriveMode, FleetReport};
use ador_core::model::presets;
use ador_core::perf::Deployment;
use ador_core::telemetry::{EventDetail, TelemetryConfig};
use ador_core::units::Seconds;

/// The full grid: the same cells as `bench_cluster`, up to the
/// 128-replica / 100k-request point where the overhead budget is
/// enforced ([`ador_bench::schema::TELEMETRY_OVERHEAD_FLOOR_REQUESTS`]).
const FULL_GRID: [(usize, usize); 4] = [(4, 4_000), (16, 16_000), (64, 64_000), (128, 100_000)];

/// The `--quick` smoke grid: exercises the same code path (all three
/// configs, equivalence checks, JSON write) in seconds.
const QUICK_GRID: [(usize, usize); 2] = [(2, 300), (4, 600)];

/// Per-replica flight-recorder capacity of the traced configurations —
/// enough to post-mortem the recent past (≈40 batch-32 steps of
/// commits), constant memory, and small enough (128 KB of events per
/// replica) that the fleet's rings stay cache-resident: ring-write
/// memory traffic, not CPU, is what the overhead budget is spent on.
const RING_CAPACITY: usize = 4_096;

/// Time-series sampling interval of the traced configurations.
fn series_interval() -> Seconds {
    Seconds::from_millis(250.0)
}

/// Runs one cell `runs` times and keeps the fastest wall-clock (the
/// usual minimum-of-N noise damper; the report is identical across
/// repeats — the simulation is deterministic).
fn run_cell(
    replicas: usize,
    requests: usize,
    telemetry: TelemetryConfig,
    runs: usize,
) -> (f64, FleetReport) {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let mix = scale_mix(replicas);
    let stream = mix.generate(requests, SCALE_SEED);
    let mut best: Option<(f64, FleetReport)> = None;
    for _ in 0..runs {
        let sim = ClusterSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            scale_fleet(replicas, DriveMode::EventDriven).with_telemetry(telemetry),
        )
        .expect("fleet builds");
        let start = Instant::now();
        let report = sim.run_stream(&mix, stream.clone()).expect("fleet runs");
        let elapsed = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(t, _)| elapsed < *t) {
            best = Some((elapsed, report));
        }
    }
    best.expect("at least one run")
}

/// Strips the telemetry artifacts from a traced report and checks that
/// what remains — every simulated quantity — equals the untraced run.
fn check_traced(
    mut report: FleetReport,
    off_report: &FleetReport,
    label: &str,
    replicas: usize,
    requests: usize,
) -> bool {
    let telemetry = report.telemetry.take();
    assert!(
        telemetry.is_some_and(|t| t.events.iter().any(|e| !e.is_empty())),
        "{label} run must retain events at {replicas} replicas x {requests} requests"
    );
    // The observability contract: modulo the artifacts themselves,
    // the traced report is the untraced report.
    let equal = report == *off_report;
    assert!(
        equal,
        "{label} telemetry perturbed the run at {replicas} replicas x {requests} requests"
    );
    equal
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let grid: &[(usize, usize)] = if quick { &QUICK_GRID } else { &FULL_GRID };
    // The budgeted always-on shape: lifecycle-granularity events.
    let lifecycle = TelemetryConfig::flight_recorder(RING_CAPACITY)
        .with_detail(EventDetail::Lifecycle)
        .with_series(series_interval());
    // The full per-token stream — priced alongside, not budgeted.
    let per_token = TelemetryConfig::flight_recorder(RING_CAPACITY).with_series(series_interval());

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let runs = if quick { 1 } else { 3 };
    for &(replicas, requests) in grid {
        let (off_s, off_report) = run_cell(replicas, requests, TelemetryConfig::OFF, runs);
        let (on_s, on_report) = run_cell(replicas, requests, lifecycle, runs);
        let (per_token_s, per_token_report) = run_cell(replicas, requests, per_token, runs);
        let reports_equal = check_traced(on_report, &off_report, "lifecycle", replicas, requests)
            && check_traced(
                per_token_report,
                &off_report,
                "per-token",
                replicas,
                requests,
            );
        let overhead = on_s / off_s;
        rows.push(vec![
            replicas.to_string(),
            requests.to_string(),
            f(off_s, 3),
            f(on_s, 3),
            format!("{}x", f(overhead, 3)),
            f(per_token_s, 3),
            reports_equal.to_string(),
        ]);
        cells.push(json::object(&[
            ("replicas", json::num(replicas as f64)),
            ("requests", json::num(requests as f64)),
            ("off_s", json::num(off_s)),
            ("on_s", json::num(on_s)),
            ("per_token_s", json::num(per_token_s)),
            ("overhead", json::num(overhead)),
            ("reports_equal", reports_equal.to_string()),
        ]));
    }
    table(
        "Telemetry wall-clock: off vs lifecycle (budgeted) vs per-token",
        &[
            "replicas",
            "requests",
            "off (s)",
            "on (s)",
            "overhead",
            "per-token (s)",
            "reports equal",
        ],
        &rows,
    );

    let doc = json::object(&[
        ("name", json::string("bench_telemetry")),
        ("rate_per_replica", json::num(SCALE_RATE_PER_REPLICA)),
        ("seed", json::num(SCALE_SEED as f64)),
        ("ring_capacity", json::num(RING_CAPACITY as f64)),
        ("series_interval_s", json::num(series_interval().get())),
        ("cells", json::array(&cells)),
    ]);
    ador_bench::schema::validate_bench_telemetry(&doc).expect("emitted grid passes its own schema");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_telemetry.json");
    println!("wrote {path}");
    artifact("bench_telemetry", &doc);
}
