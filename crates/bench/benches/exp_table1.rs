//! Table I: analysis of current serving hardware (datasheet encoding
//! check — these numbers feed every downstream model).

use ador_bench::{claim, table};
use ador_core::baselines;

fn main() {
    let devices = [baselines::h100(), baselines::tpuv4(), baselines::groq_tsp()];
    let mut rows = Vec::new();
    for arch in &devices {
        rows.push(vec![
            arch.name.clone(),
            format!("{:.0}", arch.frequency.as_mhz()),
            format!("{}", arch.process),
            format!("{:.0}", arch.peak_flops().as_tflops()),
            format!("{:.0}", arch.total_sram().as_mib()),
            format!("{}", arch.dram.kind),
            format!("{:.0}", arch.dram.capacity.as_gib()),
            format!("{:.0}", arch.dram.bandwidth.as_gbps()),
            format!("{:.0}", arch.p2p_bandwidth.as_gbps()),
            arch.tdp
                .map_or("-".to_string(), |t| format!("{:.0}", t.as_watts())),
            arch.die_area_override
                .map_or("-".to_string(), |a| format!("{:.0}", a.as_mm2())),
        ]);
    }
    table(
        "Table I: key specifications of current serving hardware",
        &[
            "device",
            "freq (MHz)",
            "process",
            "peak TFLOPS",
            "SRAM (MB)",
            "DRAM",
            "DRAM (GB)",
            "mem BW (GB/s)",
            "P2P (GB/s)",
            "TDP (W)",
            "die (mm2)",
        ],
        &rows,
    );
    claim(
        "table1 encoding",
        "H100 1000 TFLOPS / 3350 GB/s; TPUv4 275 TFLOPS / 1200 GB/s; TSP 205 TFLOPS / 80 TB/s SRAM",
        "rows above match the datasheet values used throughout the evaluation",
    );
    // Note: SRAM column for TSP reports its 220 MB weight store via the
    // memory system; H100/TPUv4 carry their 80/160 MB on-chip totals in
    // the paper. Our template tracks local+global SRAM for synthesized
    // designs and datasheet DRAM/SRAM for baselines.
}
