//! Table II: systolic array vs MAC tree — the qualitative table, made
//! quantitative with the cycle models (same 256-MAC budget each).

use ador_bench::{claim, table};
use ador_core::hw::{MacTree, SystolicArray};
use ador_core::units::Frequency;

fn main() {
    let sa = SystolicArray::new(16, 16);
    let mt = MacTree::new(16, 16);
    let freq = Frequency::from_ghz(1.5);

    // GEMM (throughput regime): 1024x4096 . 4096x4096.
    let gemm_sa = sa.gemm_timing(1024, 4096, 4096);
    let gemm_mt = mt.matmul_timing(1024, 4096, 4096, 1);
    // GEMV (latency regime): 1x4096 . 4096x4096.
    let gemv_sa = sa.gemm_timing(1, 4096, 4096);
    let gemv_mt = mt.matmul_timing(1, 4096, 4096, 1);

    let ms = |c: ador_core::units::Cycles| (c / freq).as_millis();
    let rows = vec![
        vec![
            "GEMM 1024x4096x4096".to_string(),
            format!("{:.2} ms ({})", ms(gemm_sa.cycles), gemm_sa.utilization),
            format!("{:.2} ms ({})", ms(gemm_mt.cycles), gemm_mt.utilization),
        ],
        vec![
            "GEMV 1x4096x4096".to_string(),
            format!("{:.3} ms ({})", ms(gemv_sa.cycles), gemv_sa.utilization),
            format!("{:.3} ms ({})", ms(gemv_mt.cycles), gemv_mt.utilization),
        ],
    ];
    table(
        "Table II: SA 16x16 vs MT 16x16 (same MAC budget, 1.5 GHz)",
        &["operation", "systolic array", "MAC tree"],
        &rows,
    );

    claim(
        "table2 SA targets matrix-multiplication",
        "SA: high compute intensity, throughput-sensitive workloads",
        &format!("GEMM utilization {}", gemm_sa.utilization),
    );
    claim(
        "table2 MT targets dot-products",
        "MT: low overall latency, latency-sensitive workloads",
        &format!(
            "GEMV: MT {:.3} ms vs SA {:.3} ms ({}x faster)",
            ms(gemv_mt.cycles),
            ms(gemv_sa.cycles),
            (ms(gemv_sa.cycles) / ms(gemv_mt.cycles)).round()
        ),
    );
    claim(
        "table2 SA scales worse with size on GEMV",
        "larger arrays expose longer diagonal fill",
        &format!(
            "util 16x16 {} -> 128x128 {}",
            SystolicArray::square(16)
                .gemm_timing(1, 4096, 4096)
                .utilization,
            SystolicArray::square(128)
                .gemm_timing(1, 4096, 4096)
                .utilization,
        ),
    );
}
