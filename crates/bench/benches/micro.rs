//! Criterion micro-benchmarks of the framework itself: how fast are the
//! analytical evaluator, the lowering path, the serving simulator and the
//! full design search.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ador_core::baselines;
use ador_core::model::{presets, Phase};
use ador_core::perf::{lower, Deployment, Evaluator};
use ador_core::serving::{ServingSim, SimConfig, TraceProfile};

fn bench_evaluator(c: &mut Criterion) {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let eval = Evaluator::new(&arch, &model, Deployment::single_device()).unwrap();
    c.bench_function("evaluator_decode_step", |b| {
        b.iter(|| eval.step(black_box(Phase::decode(64, 1024))).unwrap())
    });
    c.bench_function("evaluator_prefill_step", |b| {
        b.iter(|| eval.step(black_box(Phase::prefill(1, 1024))).unwrap())
    });
}

fn bench_lowering(c: &mut Criterion) {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    c.bench_function("lower_decode_program", |b| {
        b.iter(|| {
            lower(
                &arch,
                &model,
                black_box(Phase::decode(32, 512)),
                Deployment::single_device(),
            )
        })
    });
}

fn bench_serving(c: &mut Criterion) {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.bench_function("serving_sim_40_requests", |b| {
        b.iter(|| {
            let cfg = SimConfig::new(5.0, 64).with_requests(40).with_seed(1);
            ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run(TraceProfile::short_chat())
                .unwrap()
        })
    });
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    use ador_core::search::{SearchInput, UserRequirements, VendorConstraints, Workload};
    let input = SearchInput {
        vendor: VendorConstraints::a100_class(),
        user: UserRequirements::chatbot(),
        workload: Workload::new(presets::llama3_8b(), 128, 1024),
    };
    let mut group = c.benchmark_group("search");
    group.sample_size(10);
    group.bench_function("full_design_search", |b| {
        b.iter(|| ador_core::search::search(black_box(&input)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_evaluator,
    bench_lowering,
    bench_serving,
    bench_search
);
criterion_main!(benches);
