//! Figure 1: the vendor/user gap — Mixtral-8x7B QoS vs batch on A100×8,
//! and the latency/throughput design-space scatter.

use ador_bench::{claim, table};
use ador_core::baselines;
use ador_core::model::presets;
use ador_core::perf::{Deployment, Evaluator};

fn qos_vs_batch() {
    let model = presets::mixtral_8x7b();
    let a100 = baselines::a100();
    // 8x A100 with NVLink-class links, as in the figure's caption.
    let deployment = Deployment::tensor_parallel(8).with_link(ador_core::noc::P2pLink::new(
        ador_core::units::Bandwidth::from_gbps(600.0),
    ));
    let eval = Evaluator::new(&a100, &model, deployment).expect("mixtral fits 8 devices");

    let mut rows = Vec::new();
    for batch in [1usize, 16, 32, 64, 128, 256] {
        let ttft = eval.ttft(batch, 1024).expect("prefill");
        let tbt = eval.decode_interval(batch, 1024).expect("decode");
        rows.push(vec![
            batch.to_string(),
            format!("{:.1}", ttft.as_millis()),
            format!("{:.1}", 1.0 / tbt.get()),
        ]);
    }
    table(
        "Fig 1 (top): Mixtral 8x7B on NVIDIA A100 x8, seq 1024",
        &["batch", "TTFT (ms)", "TBT (token/s)"],
        &rows,
    );
    let first: f64 = rows[0][2].parse().unwrap();
    let last: f64 = rows[5][2].parse().unwrap();
    claim(
        "fig1 batching degrades per-stream TBT",
        "TBT falls as batch grows (70 -> 10 token/s band)",
        &format!("{first:.1} -> {last:.1} token/s"),
    );
    let t0: f64 = rows[0][1].parse().unwrap();
    let t5: f64 = rows[5][1].parse().unwrap();
    claim(
        "fig1 batching inflates TTFT",
        "TTFT grows toward the 1600 ms band",
        &format!("{t0:.0} -> {t5:.0} ms"),
    );
}

fn design_space_scatter() {
    let model = presets::llama3_8b();
    let mut rows = Vec::new();
    for (arch, devices) in [
        (
            baselines::groq_tsp(),
            baselines::tsp_devices_for(model.weight_bytes()).next_power_of_two(),
        ),
        (baselines::h100(), 1),
        (baselines::ador_table3(), 1),
    ] {
        let deployment = if devices == 1 {
            Deployment::single_device()
        } else {
            Deployment::tensor_parallel(devices)
        };
        let eval = Evaluator::new(&arch, &model, deployment).expect("fits");
        let tbt = eval.decode_interval(64, 1024).expect("decode");
        let latency_per_token = tbt.get();
        let throughput_per_device = 64.0 / tbt.get() / devices as f64;
        rows.push(vec![
            arch.name.clone(),
            devices.to_string(),
            format!("{:.2}", latency_per_token * 1e3),
            format!("{:.0}", throughput_per_device),
        ]);
    }
    table(
        "Fig 1 (bottom): design space at batch 64 (LLaMA3 8B)",
        &[
            "design",
            "devices",
            "query latency (ms/token)",
            "throughput (token/s/device)",
        ],
        &rows,
    );
    claim(
        "fig1 scatter",
        "TSP = latency-oriented corner, ADOR = balanced optimum (best throughput/device at competitive latency)",
        "see rows above: ADOR holds highest token/s/device; TSP lowest latency",
    );
}

fn main() {
    qos_vs_batch();
    design_space_scatter();
}
