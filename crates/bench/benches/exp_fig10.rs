//! Figure 10: effective memory bandwidth of the MAC tree vs per-device
//! operation count — the OPT-family calibration points on a U55C-class
//! 460 GB/s HBM2 part, plus the trend line.

use ador_bench::{claim, table};
use ador_core::hw::EffectiveBandwidthModel;
use ador_core::model::workload::StepSummary;
use ador_core::model::{presets, Phase};
use ador_core::units::{Bandwidth, FlopCount};

fn main() {
    let law = EffectiveBandwidthModel::default();
    let u55c = Bandwidth::from_gbps(460.0);

    // The paper measures one decode pass of each OPT model sharded over
    // 1/2/4/8 devices; the x-axis is ops per device.
    let models = [
        presets::opt_1_3b(),
        presets::opt_6_7b(),
        presets::opt_13b(),
        presets::opt_30b(),
        presets::opt_66b(),
    ];
    let mut rows = Vec::new();
    for m in &models {
        let ops = StepSummary::compute(m, Phase::decode(8, 1024)).flops;
        for devices in [1usize, 2, 4, 8] {
            let per_dev = ops * (1.0 / devices as f64);
            let util = law.utilization(per_dev);
            let eff = law.effective(u55c, per_dev);
            rows.push(vec![
                m.name.clone(),
                devices.to_string(),
                format!("{:.2e}", per_dev.get()),
                format!("{}", util),
                format!("{:.0}", eff.as_gbps()),
            ]);
        }
    }
    table(
        "Fig 10: effective bandwidth vs ops/device (460 GB/s HBM2 spec)",
        &[
            "model",
            "devices",
            "ops/device",
            "utilization",
            "effective GB/s",
        ],
        &rows,
    );

    // The trend line itself.
    let mut trend = Vec::new();
    for exp in [9.0f64, 9.5, 10.0, 10.5, 11.0, 11.5] {
        let ops = FlopCount::new(10f64.powf(exp));
        trend.push(vec![
            format!("1e{exp:.1}"),
            format!("{}", law.utilization(ops)),
            format!("{:.0}", law.effective(u55c, ops).as_gbps()),
        ]);
    }
    table(
        "Fig 10 trend line",
        &["ops", "utilization", "effective GB/s"],
        &trend,
    );

    claim(
        "fig10 logarithmic law",
        "70-80% region around 1e9-1e10 ops, 80-90% region toward 1e11, up to 90% of theoretical max",
        "trend rows: 70.0% at 1e9, 80.0% at 1e10, capped 90.0% from 1e11",
    );
    claim(
        "fig10 sharding moves points left",
        "more devices -> fewer ops/device -> lower utilization",
        "per-model rows decrease monotonically with device count",
    );
}
