//! Attribution overhead, steady-decode allocation pressure, and the
//! aggregated-vs-disaggregated blame comparison.
//!
//! Three claims back the SLO-miss attribution layer:
//!
//! 1. **Attribution is cheap.** Replaying the recorded event streams
//!    into per-request time-loss ledgers happens once, at `finish()`,
//!    over events the traced fleet already paid for — so the
//!    attribution-on run must stay within 10 % wall-clock of the
//!    tracing-only run at the 128-replica / 100k-request cell
//!    (`ador_bench::schema::ATTRIBUTION_OVERHEAD_CAP`). Each measured
//!    cell also re-checks the two correctness contracts: every
//!    surviving attribution conserves (components sum exactly to the
//!    measured e2e nanoseconds) and the attributed report minus its
//!    attribution field equals the tracing-only report bit-for-bit.
//! 2. **The step loop does not churn the allocator.** A counting
//!    global allocator prices `Engine::step` in steady-state decode:
//!    full batches, no arrivals, no completions — the regime a serving
//!    fleet spends most of its wall-clock in. The committed
//!    allocations-per-step figure is schema-capped
//!    (`STEADY_DECODE_ALLOCS_PER_STEP_CAP`), so an accidental
//!    per-step `Vec` rebuild fails CI rather than silently taxing
//!    every simulated step. (The `profile` feature's span counters
//!    break the same number down by stage; this bench stays
//!    featureless so the default build is what gets priced.)
//! 3. **Blame shifts with topology.** On the pinned disaggregation
//!    scenario, the aggregated fleet's dominant miss cause is
//!    `prefill-interference` — ingest prefill chunks stretching
//!    interactive decode batches — and the disaggregated fleet's is
//!    not: moving prefill to its own pool moves the blame, which is
//!    exactly the signal the attribution layer exists to surface.
//!
//! Writes the machine-readable result to `BENCH_attribution.json` at
//! the workspace root (schema-checked by `tests/bench_artifact.rs` via
//! `ador_bench::schema::validate_bench_attribution`) and mirrors it as
//! an `artifact:` line. Pass `--quick` for the CI smoke run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ador_bench::{artifact, f, json, table};
use ador_core::baselines;
use ador_core::cluster::scenarios::{
    disagg_cluster, disagg_engine, disagg_mix, scale_fleet, scale_mix, DISAGG_RATE,
    DISAGG_REPLICAS, DISAGG_REQUESTS, DISAGG_SEED, SCALE_RATE_PER_REPLICA, SCALE_SEED,
};
use ador_core::cluster::{ClusterSim, DriveMode, FleetReport, FleetSpec, ReplicaSpec};
use ador_core::model::presets;
use ador_core::perf::Deployment;
use ador_core::serving::{Request, ServingSim, SimConfig};
use ador_core::telemetry::{attribute_events, EventDetail, TelemetryConfig};
use ador_core::units::Seconds;

/// Counts every heap allocation the process makes. Lives in the bench
/// binary (not the forbid-unsafe library crates) and charges nothing
/// beyond one relaxed atomic increment per allocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// side effect with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The overhead grid: the same cells as `bench_telemetry`, up to the
/// 128-replica / 100k-request point where the budget is enforced.
const FULL_GRID: [(usize, usize); 4] = [(4, 4_000), (16, 16_000), (64, 64_000), (128, 100_000)];

/// The `--quick` smoke grid.
const QUICK_GRID: [(usize, usize); 2] = [(2, 300), (4, 600)];

/// Replica counts of the allocation-pressure cells: allocs-per-step is
/// per engine, so the two sizes pin that it stays scale-free.
const FULL_ALLOC_REPLICAS: [usize; 2] = [4, 128];
const QUICK_ALLOC_REPLICAS: [usize; 1] = [2];

/// Measured steps per engine in the allocation cells.
const FULL_ALLOC_STEPS: usize = 512;
const QUICK_ALLOC_STEPS: usize = 64;

/// Decode batch width of the allocation cells.
const ALLOC_BATCH: usize = 32;

/// Per-replica flight-recorder capacity of the traced configurations
/// (same rationale as `bench_telemetry`: constant memory, rings stay
/// cache-resident).
const RING_CAPACITY: usize = 4_096;

fn series_interval() -> Seconds {
    Seconds::from_millis(250.0)
}

/// Runs one cell under both telemetry configs, `runs` times each with
/// the repeats interleaved (so machine-load drift hits both sides
/// alike), and keeps each side's fastest wall-clock — the usual
/// minimum-of-N noise damper; the reports are identical across repeats
/// because the simulation is deterministic.
#[allow(clippy::type_complexity)]
fn run_cell(
    replicas: usize,
    requests: usize,
    traced_cfg: TelemetryConfig,
    attributed_cfg: TelemetryConfig,
    runs: usize,
) -> ((f64, FleetReport), (f64, FleetReport)) {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let mix = scale_mix(replicas);
    let stream = mix.generate(requests, SCALE_SEED);
    let once = |telemetry: TelemetryConfig| -> (f64, FleetReport) {
        let sim = ClusterSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            scale_fleet(replicas, DriveMode::EventDriven).with_telemetry(telemetry),
        )
        .expect("fleet builds");
        let start = Instant::now();
        let report = sim.run_stream(&mix, stream.clone()).expect("fleet runs");
        (start.elapsed().as_secs_f64(), report)
    };
    let mut traced: Option<(f64, FleetReport)> = None;
    let mut attributed: Option<(f64, FleetReport)> = None;
    for _ in 0..runs {
        let t = once(traced_cfg);
        if traced.as_ref().is_none_or(|(best, _)| t.0 < *best) {
            traced = Some(t);
        }
        let a = once(attributed_cfg);
        if attributed.as_ref().is_none_or(|(best, _)| a.0 < *best) {
            attributed = Some(a);
        }
    }
    (
        traced.expect("at least one run"),
        attributed.expect("at least one run"),
    )
}

/// Re-verifies the attributed run against the tracing-only baseline:
/// every attribution the retained events support conserves exactly, and
/// stripping the attribution artifact reproduces the traced report.
fn check_attributed(
    attributed: &FleetReport,
    traced: &FleetReport,
    replicas: usize,
    requests: usize,
) -> (bool, bool) {
    let events = &attributed
        .telemetry
        .as_ref()
        .expect("attributed run is traced")
        .events;
    let attrs = attribute_events(events);
    assert!(
        !attrs.is_empty(),
        "no attributable lifecycles at {replicas} replicas x {requests} requests"
    );
    let conserved = attrs.iter().all(|a| a.conserved());
    assert!(
        attributed.attribution.is_some(),
        "attribution-on run must carry a FleetAttribution"
    );
    let mut stripped = attributed.clone();
    stripped.attribution = None;
    let reports_equal = stripped == *traced;
    assert!(
        reports_equal,
        "attribution perturbed the run at {replicas} replicas x {requests} requests"
    );
    (conserved, reports_equal)
}

/// Prices `Engine::step` in steady-state decode: `replicas` independent
/// engines, each holding a full decode batch with thousands of tokens
/// still to emit, stepped round-robin for `steps` iterations while the
/// counting allocator watches.
fn allocs_per_step(replicas: usize, steps: usize) -> f64 {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let mut engines = Vec::with_capacity(replicas);
    for r in 0..replicas {
        let mut engine = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, ALLOC_BATCH),
        )
        .expect("engine builds")
        .engine();
        for i in 0..ALLOC_BATCH {
            let id = (r * ALLOC_BATCH + i) as u64;
            engine
                .submit(Request::new(id, Seconds::ZERO, 64, 4_096))
                .expect("submit");
        }
        // Warm past prefill and admission into pure decode.
        while engine.queue_depth() > 0 {
            engine.step().expect("warmup step");
        }
        for _ in 0..8 {
            engine.step().expect("warmup step");
        }
        engines.push(engine);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..steps {
        for engine in &mut engines {
            engine.step().expect("measured step");
        }
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    delta as f64 / (steps * replicas) as f64
}

/// One blame side of the pinned disaggregation scenario: the same
/// iso-count fleet the `exp_disagg` comparison uses, PerToken-traced
/// with attribution on.
fn blame_side(disaggregated: bool) -> (FleetReport, String) {
    let model = presets::llama3_8b();
    let telemetry = TelemetryConfig::trace()
        .with_detail(EventDetail::PerToken)
        .with_attribution();
    // The fleet path reads telemetry from each replica's engine config,
    // so the trace rides on the specs, not the cluster config.
    let engine = disagg_engine().with_telemetry(telemetry);
    let fleet = if disaggregated {
        FleetSpec::prefill_decode(
            &ReplicaSpec::new(baselines::prefill_optimized(), engine),
            DISAGG_REPLICAS / 2,
            &ReplicaSpec::new(baselines::decode_optimized(), engine),
            DISAGG_REPLICAS / 2,
        )
    } else {
        FleetSpec::homogeneous(
            &ReplicaSpec::new(baselines::ador_table3(), engine),
            DISAGG_REPLICAS,
        )
    };
    let cfg = disagg_cluster(disaggregated);
    let mix = disagg_mix(DISAGG_RATE);
    let report = ClusterSim::new_fleet(&fleet, &model, Deployment::single_device(), cfg)
        .expect("fleet builds")
        .run(&mix, DISAGG_REQUESTS, DISAGG_SEED)
        .expect("fleet runs");
    let cause = report
        .attribution
        .as_ref()
        .expect("attribution on")
        .fleet
        .dominant_cause()
        .map_or("intrinsic", |c| c.label())
        .to_string();
    (report, cause)
}

fn blame_json(report: &FleetReport, cause: &str) -> String {
    let fleet = &report.attribution.as_ref().expect("attribution on").fleet;
    json::object(&[
        ("requests", json::num(fleet.requests as f64)),
        ("misses", json::num(fleet.misses as f64)),
        ("top_cause", json::string(cause)),
        ("lost_ms", json::num(fleet.total_lost_ns() as f64 / 1.0e6)),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let grid: &[(usize, usize)] = if quick { &QUICK_GRID } else { &FULL_GRID };
    let runs = if quick { 1 } else { 5 };
    // The budgeted always-on shape plus attribution on top of it.
    let traced_cfg = TelemetryConfig::flight_recorder(RING_CAPACITY)
        .with_detail(EventDetail::Lifecycle)
        .with_series(series_interval());
    let attributed_cfg = traced_cfg.with_attribution();

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for &(replicas, requests) in grid {
        let ((traced_s, traced_report), (attributed_s, attributed_report)) =
            run_cell(replicas, requests, traced_cfg, attributed_cfg, runs);
        let (conserved, reports_equal) =
            check_attributed(&attributed_report, &traced_report, replicas, requests);
        let overhead = attributed_s / traced_s;
        rows.push(vec![
            replicas.to_string(),
            requests.to_string(),
            f(traced_s, 3),
            f(attributed_s, 3),
            format!("{}x", f(overhead, 3)),
            conserved.to_string(),
        ]);
        cells.push(json::object(&[
            ("replicas", json::num(replicas as f64)),
            ("requests", json::num(requests as f64)),
            ("traced_s", json::num(traced_s)),
            ("attributed_s", json::num(attributed_s)),
            ("overhead", json::num(overhead)),
            ("conserved", conserved.to_string()),
            ("reports_equal", reports_equal.to_string()),
        ]));
    }
    table(
        "Attribution wall-clock: tracing-only vs tracing + attribution",
        &[
            "replicas",
            "requests",
            "traced (s)",
            "attributed (s)",
            "overhead",
            "conserved",
        ],
        &rows,
    );

    let alloc_replicas: &[usize] = if quick {
        &QUICK_ALLOC_REPLICAS
    } else {
        &FULL_ALLOC_REPLICAS
    };
    let alloc_steps = if quick {
        QUICK_ALLOC_STEPS
    } else {
        FULL_ALLOC_STEPS
    };
    let mut alloc_rows = Vec::new();
    let mut alloc_cells = Vec::new();
    for &replicas in alloc_replicas {
        let aps = allocs_per_step(replicas, alloc_steps);
        alloc_rows.push(vec![
            replicas.to_string(),
            alloc_steps.to_string(),
            f(aps, 2),
        ]);
        alloc_cells.push(json::object(&[
            ("replicas", json::num(replicas as f64)),
            ("steps", json::num(alloc_steps as f64)),
            ("allocs_per_step", json::num(aps)),
        ]));
    }
    table(
        "Steady-state decode allocation pressure (counting allocator)",
        &["replicas", "steps/engine", "allocs/step"],
        &alloc_rows,
    );

    let (agg_report, agg_cause) = blame_side(false);
    let (dis_report, dis_cause) = blame_side(true);
    let shifted = agg_cause != dis_cause;
    table(
        "Dominant miss cause on the pinned disaggregation scenario",
        &["topology", "requests", "misses", "top cause", "lost (ms)"],
        &[
            vec![
                "aggregated".to_string(),
                agg_report
                    .attribution
                    .as_ref()
                    .unwrap()
                    .fleet
                    .requests
                    .to_string(),
                agg_report
                    .attribution
                    .as_ref()
                    .unwrap()
                    .fleet
                    .misses
                    .to_string(),
                agg_cause.clone(),
                f(
                    agg_report
                        .attribution
                        .as_ref()
                        .unwrap()
                        .fleet
                        .total_lost_ns() as f64
                        / 1.0e6,
                    1,
                ),
            ],
            vec![
                "disaggregated".to_string(),
                dis_report
                    .attribution
                    .as_ref()
                    .unwrap()
                    .fleet
                    .requests
                    .to_string(),
                dis_report
                    .attribution
                    .as_ref()
                    .unwrap()
                    .fleet
                    .misses
                    .to_string(),
                dis_cause.clone(),
                f(
                    dis_report
                        .attribution
                        .as_ref()
                        .unwrap()
                        .fleet
                        .total_lost_ns() as f64
                        / 1.0e6,
                    1,
                ),
            ],
        ],
    );
    println!("blame shifted with topology: {shifted}");

    let doc = json::object(&[
        ("name", json::string("bench_attribution")),
        ("rate_per_replica", json::num(SCALE_RATE_PER_REPLICA)),
        ("seed", json::num(SCALE_SEED as f64)),
        ("quick", quick.to_string()),
        ("overhead_cells", json::array(&cells)),
        ("alloc_cells", json::array(&alloc_cells)),
        (
            "blame",
            json::object(&[
                ("aggregated", blame_json(&agg_report, &agg_cause)),
                ("disaggregated", blame_json(&dis_report, &dis_cause)),
                ("shifted", shifted.to_string()),
            ]),
        ),
    ]);
    ador_bench::schema::validate_bench_attribution(&doc)
        .expect("emitted artifact passes its own schema");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_attribution.json");
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_attribution.json");
    println!("wrote {path}");
    artifact("bench_attribution", &doc);
}
