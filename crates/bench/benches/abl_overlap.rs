//! Ablation: computation–communication overlap on/off (Fig. 6d's
//! motivation) for multi-device decode.

use ador_bench::{claim, table};
use ador_core::noc::{P2pLink, SyncStrategy};
use ador_core::parallel::{BlockWorkload, TensorParallel};
use ador_core::units::{Bandwidth, Bytes, Seconds};

fn main() {
    // LLaMA3-70B-class decode block on a 2 TB/s device.
    let block = BlockWorkload::new(Seconds::from_micros(240.0), Bytes::from_kib(512));
    let devices = [2usize, 4, 8, 16];
    let link = P2pLink::new(Bandwidth::from_gbps(64.0));

    let mut rows = Vec::new();
    for &n in &devices {
        // All-gather pipelines (overlap on); all-reduce carries the same
        // role with overlap structurally off.
        let overlap_on = TensorParallel::new(n, SyncStrategy::AllGather).speedup(block, link);
        let overlap_off = TensorParallel::new(n, SyncStrategy::AllReduce).speedup(block, link);
        rows.push(vec![
            n.to_string(),
            format!("{overlap_on:.2}"),
            format!("{overlap_off:.2}"),
            format!("{:.2}", overlap_on / overlap_off),
        ]);
    }
    table(
        "Ablation: overlap on (all-gather) vs off (all-reduce), TP speedup",
        &["devices", "overlapped", "serialized", "gain"],
        &rows,
    );

    let gain16: f64 = rows[3][3].parse().unwrap();
    claim(
        "ablation overlap is the scalability lever",
        "Fig. 6d: pipelining all-gather hides synchronization; all-reduce exposes partial-sum transfers and accumulation",
        &format!("at 16 devices the overlapped dataflow is {gain16:.1}x faster"),
    );
}
