//! Disaggregation experiment (beyond the paper): heterogeneous
//! prefill/decode fleets co-explored with the hardware model.
//!
//! The paper's search proposes one chip; this experiment asks the
//! datacenter question: given the pinned interactive + bursty-ingest mix
//! (`scenarios::disagg_mix`) and an iso-count fleet budget, which chips
//! in what mix behind which router? `ador_core::search::co_explore`
//! evaluates every homogeneous fleet (unified / prefill-optimized /
//! decode-optimized × front-door policy) and every disaggregated split
//! over the pinned KV link, then picks the composition with the highest
//! goodput among those meeting the attainment target.
//!
//! Writes the machine-readable result to `BENCH_disagg.json` at the
//! workspace root (schema-checked by `tests/bench_artifact.rs` via
//! `ador_bench::schema::validate_bench_disagg`) and mirrors it as an
//! `artifact:` line. Pass `--quick` for the CI smoke run (fewer requests;
//! the disagg-beats-homogeneous pin is only enforced on full runs).

use ador_bench::{artifact, claim, f, json, table};
use ador_core::cluster::scenarios::{
    disagg_engine, disagg_link, disagg_mix, DISAGG_RATE, DISAGG_REPLICAS, DISAGG_REQUESTS,
    DISAGG_SEED,
};
use ador_core::model::presets;
use ador_core::search::{co_explore, FleetCandidate, FleetChips, FleetSearchInput};

/// The fleet SLO target candidates must meet before goodput breaks ties.
const TARGET_ATTAINMENT: f64 = 0.9;

fn candidate_json(c: &FleetCandidate) -> String {
    json::object(&[
        ("label", json::string(&c.label)),
        ("policy", json::string(&c.policy.to_string())),
        (
            "decode_policy",
            c.decode_policy
                .map_or("null".to_string(), |p| json::string(&p.to_string())),
        ),
        ("prefill_replicas", json::num(c.prefill_replicas as f64)),
        ("decode_replicas", json::num(c.decode_replicas as f64)),
        ("disaggregated", c.disaggregated.to_string()),
        ("attainment", json::num(c.attainment)),
        ("goodput_tokens_per_sec", json::num(c.goodput)),
        ("ttft_p95_ms", json::num(c.ttft_p95_ms)),
        ("tbt_p95_ms", json::num(c.tbt_p95_ms)),
        ("kv_transfers", json::num(c.kv_transfers as f64)),
        ("meets_target", c.meets_target.to_string()),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 80 } else { DISAGG_REQUESTS };

    let model = presets::llama3_8b();
    let mix = disagg_mix(DISAGG_RATE);
    let input = FleetSearchInput {
        model: &model,
        mix: &mix,
        chips: FleetChips::ador_defaults(),
        replicas: DISAGG_REPLICAS,
        engine: disagg_engine(),
        link: disagg_link(),
        requests,
        seed: DISAGG_SEED,
        target_attainment: TARGET_ATTAINMENT,
    };
    let outcome = co_explore(&input).expect("fleet search runs");

    let rows: Vec<Vec<String>> = outcome
        .candidates
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let marker = if i == outcome.best {
                " <- winner"
            } else if i == outcome.best_homogeneous {
                " <- best homogeneous"
            } else {
                ""
            };
            vec![
                format!("{}{marker}", c.label),
                f(c.attainment, 3),
                f(c.goodput, 0),
                f(c.ttft_p95_ms, 0),
                f(c.tbt_p95_ms, 1),
                c.kv_transfers.to_string(),
                c.meets_target.to_string(),
            ]
        })
        .collect();
    table(
        &format!(
            "Disaggregation co-exploration: {DISAGG_REPLICAS}-replica fleets, \
             {DISAGG_RATE} req/s interactive+ingest mix, target attainment {TARGET_ATTAINMENT}"
        ),
        &[
            "composition",
            "attainment",
            "goodput (tok/s)",
            "TTFT p95 (ms)",
            "TBT p95 (ms)",
            "KV transfers",
            "meets target",
        ],
        &rows,
    );

    let winner = outcome.winner();
    let homog = outcome.homogeneous_baseline();
    let disagg_wins = winner.disaggregated
        && (winner.attainment > homog.attainment
            || (winner.meets_target && winner.goodput > homog.goodput));
    claim(
        "disaggregated heterogeneous mix beats best homogeneous fleet",
        "prefill/decode disaggregation wins at iso-count when decode SLOs bind (DistServe/Splitwise)",
        &format!(
            "winner `{}` attainment {:.3} goodput {:.0} vs homogeneous `{}` attainment {:.3} goodput {:.0}",
            winner.label, winner.attainment, winner.goodput, homog.label, homog.attainment, homog.goodput
        ),
    );
    if !quick {
        assert!(
            disagg_wins,
            "the pinned scenario must show a disaggregation win: winner {winner:?} vs {homog:?}"
        );
    }

    let doc = json::object(&[
        ("name", json::string("bench_disagg")),
        ("rate", json::num(DISAGG_RATE)),
        ("seed", json::num(DISAGG_SEED as f64)),
        ("replicas", json::num(DISAGG_REPLICAS as f64)),
        ("requests", json::num(requests as f64)),
        ("target_attainment", json::num(TARGET_ATTAINMENT)),
        ("quick", quick.to_string()),
        (
            "candidates",
            json::array(
                &outcome
                    .candidates
                    .iter()
                    .map(candidate_json)
                    .collect::<Vec<_>>(),
            ),
        ),
        ("winner", candidate_json(winner)),
        ("best_homogeneous", candidate_json(homog)),
        ("disagg_wins", disagg_wins.to_string()),
    ]);
    ador_bench::schema::validate_bench_disagg(&doc).expect("emitted result passes its own schema");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_disagg.json");
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_disagg.json");
    println!("wrote {path}");
    artifact("bench_disagg", &doc);
}
