//! Figure 12: peak local-memory usage per layer type (LLaMA3 8B,
//! batch 32).

use ador_bench::{claim, table};
use ador_core::model::presets;
use ador_core::perf::local_mem::{peak_usage, required_local_memory, LayerKind, LocalMemOptions};

fn main() {
    let model = presets::llama3_8b();
    let usage = peak_usage(&model, 32, 1024, LocalMemOptions::default());

    let mut rows = Vec::new();
    for (kind, bytes) in &usage {
        rows.push(vec![kind.to_string(), format!("{:.0}", bytes.as_kib())]);
    }
    table(
        "Fig 12: peak local-memory usage, LLaMA3 8B, batch 32 (KB)",
        &["layer type", "peak usage (KiB)"],
        &rows,
    );

    let lm_head = usage
        .iter()
        .find(|(k, _)| *k == LayerKind::LmHead)
        .unwrap()
        .1;
    let rest_max = usage
        .iter()
        .filter(|(k, _)| *k != LayerKind::LmHead)
        .map(|(_, b)| *b)
        .max()
        .unwrap();
    claim(
        "fig12 everything but the LM head stays small",
        "usage does not exceed 1.5 MB except the LM-Head",
        &format!("non-LM-head peak {:.0} KiB", rest_max.as_kib()),
    );
    claim(
        "fig12 LM head dominates",
        "LM-Head reaches the 4096 KB axis (vocab-sized logits)",
        &format!(
            "{:.0} KiB raw; vocab tiling brings the provisioned size down",
            lm_head.as_kib()
        ),
    );
    claim(
        "fig12 sizing rule",
        "Table III provisions 2048 KB of local memory per core",
        &format!(
            "required_local_memory(batch 32) = {:.0} KiB",
            required_local_memory(&model, 32, 1024).as_kib()
        ),
    );
}
