//! Ablation: the Fig. 10 effective-bandwidth law vs naive fixed
//! utilizations — how much the calibrated law changes predictions.

use ador_bench::{claim, table};
use ador_core::baselines;
use ador_core::hw::{PerfProfile, StreamLaw};
use ador_core::model::presets;
use ador_core::perf::{Deployment, Evaluator};

fn main() {
    let model = presets::llama3_8b();
    let variants = [
        ("measured law (default)", StreamLaw::measured()),
        ("fixed 100% (ideal)", StreamLaw::fixed(1.0)),
        ("fixed 70% (pessimal cap)", StreamLaw::fixed(0.70)),
    ];

    let mut rows = Vec::new();
    for (label, law) in variants {
        let mut arch = baselines::ador_table3();
        arch.profile = PerfProfile {
            weight_stream: law,
            attention_stream: law,
            ..arch.profile
        };
        let eval = Evaluator::new(&arch, &model, Deployment::single_device()).expect("fits");
        let tbt1 = eval.decode_interval(1, 1024).expect("decode");
        let tbt64 = eval.decode_interval(64, 1024).expect("decode");
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", tbt1.as_millis()),
            format!("{:.2}", tbt64.as_millis()),
        ]);
    }
    table(
        "Ablation: bandwidth-utilization law (LLaMA3 8B decode, ms)",
        &["law", "TBT batch 1", "TBT batch 64"],
        &rows,
    );

    let measured1: f64 = rows[0][1].parse().unwrap();
    let ideal1: f64 = rows[1][1].parse().unwrap();
    let fixed701: f64 = rows[2][1].parse().unwrap();
    claim(
        "ablation the law matters most at small workloads",
        "paper §V-A: estimating bandwidth by simulation alone causes significant errors",
        &format!(
            "batch-1 TBT spans {:.2}-{:.2} ms across laws ({:.0}% spread vs measured {measured1:.2} ms)",
            ideal1,
            fixed701,
            100.0 * (fixed701 - ideal1) / measured1
        ),
    );
    claim(
        "ablation large batches converge",
        "at high op counts the law saturates at 90%, so laws differ less",
        &format!(
            "batch-64 spread: {} vs {} vs {} ms",
            rows[0][2], rows[1][2], rows[2][2]
        ),
    );
}
