//! Cluster experiment (beyond the paper): router-policy comparison and
//! fleet capacity for a multi-replica, multi-tenant serving deployment.
//!
//! The paper's Fig. 16 stops at one engine; this experiment fronts four
//! replicas with a router and drives them with a skewed two-tenant mix
//! (steady strict-SLO chat + bursty MMPP summarization). Scarce KV makes
//! placement quality visible: policies that balance the binding resource
//! avoid preemption storms. A fleet-capacity search then asks how much
//! aggregate traffic each policy sustains at ≥95 % per-class attainment.
//!
//! Alongside the tables, the bench emits `artifact:` lines with JSON
//! objects (fleet attainment, capacity per policy) for perf-tracking
//! tooling.

use ador_bench::{artifact, claim, json, table};
use ador_core::baselines;
use ador_core::cluster::scenarios::{
    scarce_kv_fleet, skewed_two_tenant, SKEWED_MIX_RATE, SKEWED_MIX_REQUESTS, SKEWED_MIX_SEED,
};
use ador_core::cluster::{
    cluster_capacity, ClusterConfig, ClusterSim, FleetReport, RouterPolicy, TenantClass, TenantMix,
};
use ador_core::model::presets;
use ador_core::perf::Deployment;
use ador_core::serving::SimConfig;

const POLICIES: [RouterPolicy; 4] = [
    RouterPolicy::RoundRobin,
    RouterPolicy::JoinShortestQueue,
    RouterPolicy::LeastKvLoad,
    RouterPolicy::SloAware,
];

/// The scenario pinned by `tests/cluster_serving.rs`, via the shared
/// `scenarios` module so the published table and the regression test
/// cannot drift apart.
fn run_policy(policy: RouterPolicy) -> FleetReport {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    ClusterSim::new(
        &arch,
        &model,
        Deployment::single_device(),
        scarce_kv_fleet(4, policy),
    )
    .expect("cluster builds")
    .run(
        &skewed_two_tenant(SKEWED_MIX_RATE),
        SKEWED_MIX_REQUESTS,
        SKEWED_MIX_SEED,
    )
    .expect("cluster runs")
}

fn policy_comparison() -> Vec<(RouterPolicy, FleetReport)> {
    let reports: Vec<(RouterPolicy, FleetReport)> =
        POLICIES.iter().map(|&p| (p, run_policy(p))).collect();
    let mut rows = Vec::new();
    for (policy, report) in &reports {
        let fleet = report.fleet.as_ref().expect("requests completed");
        rows.push(vec![
            policy.to_string(),
            format!("{:.3}", report.fleet_attainment()),
            format!("{:.3}", report.tenants[0].attainment),
            format!("{:.3}", report.tenants[1].attainment),
            format!("{}", fleet.ttft.p95),
            format!("{}", fleet.preemptions),
            format!("{:.3}", report.imbalance),
        ]);
    }
    table(
        "Cluster: router policies on a skewed 2-tenant mix (4 replicas, 7 req/s, scarce KV)",
        &[
            "policy",
            "fleet attainment",
            "chat attainment",
            "summ attainment",
            "TTFT p95",
            "preemptions",
            "imbalance (CV)",
        ],
        &rows,
    );
    reports
}

fn capacity_comparison() -> Vec<(RouterPolicy, f64)> {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    // Ample KV here: the capacity question is about queueing, not
    // preemption churn.
    let mix = TenantMix::new(vec![
        TenantClass::chatbot(3.0),
        TenantClass::code_completion(1.0),
    ]);
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &policy in &POLICIES {
        let cfg = ClusterConfig::new(4, policy).with_engine(SimConfig::new(1.0, 32));
        let cap = cluster_capacity(
            &arch,
            &model,
            Deployment::single_device(),
            cfg,
            &mix,
            200,
            16,
            0.95,
            (0.5, 120.0),
            7,
        )
        .expect("capacity search runs");
        rows.push(vec![policy.to_string(), format!("{:.1}", cap.rate)]);
        results.push((policy, cap.rate));
    }
    table(
        "Cluster: max aggregate rate at ≥95 % per-class attainment (4 replicas, chat + code mix)",
        &["policy", "fleet capacity (req/s)"],
        &rows,
    );
    results
}

fn main() {
    let reports = policy_comparison();
    let capacities = capacity_comparison();

    let attain = |p: RouterPolicy| {
        reports
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, r)| r.fleet_attainment())
            .expect("policy present")
    };
    // Render the comparison operators from the measured values so the
    // claim line can never assert an ordering the run did not produce.
    let cmp = |a: f64, b: f64| {
        if a < b {
            "<"
        } else if a > b {
            ">"
        } else {
            "="
        }
    };
    let (rr, jsq, kv) = (
        attain(RouterPolicy::RoundRobin),
        attain(RouterPolicy::JoinShortestQueue),
        attain(RouterPolicy::LeastKvLoad),
    );
    claim(
        "cluster adaptive routing beats round-robin",
        "load-aware policies dominate static routing on skewed traffic (AdaServe/Apt-Serve)",
        &format!(
            "attainment RR {rr:.3} {} JSQ {jsq:.3} {} LeastKvLoad {kv:.3}",
            cmp(rr, jsq),
            cmp(jsq, kv),
        ),
    );

    // Machine-readable perf artifacts.
    let policy_objs: Vec<String> = reports
        .iter()
        .map(|(policy, report)| {
            json::object(&[
                ("policy", json::string(&policy.to_string())),
                ("fleet_attainment", json::num(report.fleet_attainment())),
                (
                    "preemptions",
                    json::num(report.fleet.as_ref().map_or(0, |f| f.preemptions) as f64),
                ),
                ("imbalance", json::num(report.imbalance)),
                (
                    "tenants",
                    json::array(
                        &report
                            .tenants
                            .iter()
                            .map(|t| {
                                json::object(&[
                                    ("name", json::string(&t.name)),
                                    ("attainment", json::num(t.attainment)),
                                    ("completed", json::num(t.completed as f64)),
                                ])
                            })
                            .collect::<Vec<_>>(),
                    ),
                ),
            ])
        })
        .collect();
    artifact("cluster_policy_comparison", &json::array(&policy_objs));

    let capacity_objs: Vec<String> = capacities
        .iter()
        .map(|(policy, rate)| {
            json::object(&[
                ("policy", json::string(&policy.to_string())),
                ("capacity_req_per_s", json::num(*rate)),
            ])
        })
        .collect();
    artifact("cluster_capacity", &json::array(&capacity_objs));
}
