//! Prefix-cache experiment (beyond the paper): KV reuse on multi-turn
//! session traffic, single-engine cache on/off, and cache-affinity
//! routing across a fleet.
//!
//! The serving engine re-prefills every prompt token unless prefix
//! caching is on; on session traffic — where each turn re-prompts with
//! the whole conversation so far — that wastes most of the prefill
//! budget. Table 1 quantifies the single-engine win (prefilled tokens,
//! TTFT, hit rate). Table 2 asks the fleet question: reuse is strictly
//! per-replica, so a router that scatters a session's turns
//! (join-shortest-queue) forfeits most hits, while `CacheAffinity`
//! pins sessions to their prefix.
//!
//! Alongside the tables, the bench emits `artifact:` lines with JSON
//! objects (per-mode engine metrics, per-policy fleet attainment) for
//! perf-tracking tooling.

use ador_bench::{artifact, claim, json, table};
use ador_core::baselines;
use ador_core::cluster::scenarios::{
    session_fleet, session_workload, SESSION_ENGINE_RATE, SESSION_RATE, SESSION_REQUESTS,
    SESSION_SEED,
};
use ador_core::cluster::{ClusterSim, FleetReport, RouterPolicy};
use ador_core::model::presets;
use ador_core::perf::Deployment;
use ador_core::serving::QosReport;

const POLICIES: [RouterPolicy; 4] = [
    RouterPolicy::RoundRobin,
    RouterPolicy::JoinShortestQueue,
    RouterPolicy::LeastKvLoad,
    RouterPolicy::CacheAffinity,
];

/// Single-engine session run (a 1-replica fleet over the pinned session
/// stream) with prefix caching on or off. The same scenario is pinned by
/// `tests/prefix_caching.rs` via `ador::cluster::scenarios`.
fn run_engine(caching: bool) -> FleetReport {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let cfg = session_fleet(1, RouterPolicy::RoundRobin).with_prefix_caching(caching);
    ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
        .expect("cluster builds")
        .run(
            &session_workload(SESSION_ENGINE_RATE),
            SESSION_REQUESTS / 2,
            SESSION_SEED,
        )
        .expect("cluster runs")
}

fn run_fleet(policy: RouterPolicy) -> FleetReport {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    ClusterSim::new(
        &arch,
        &model,
        Deployment::single_device(),
        session_fleet(4, policy),
    )
    .expect("cluster builds")
    .run(
        &session_workload(SESSION_RATE),
        SESSION_REQUESTS,
        SESSION_SEED,
    )
    .expect("cluster runs")
}

fn engine_row(label: &str, fleet: &QosReport) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{}", fleet.prefilled_tokens),
        format!("{:.2}", fleet.prefix_hit_rate()),
        format!("{}", fleet.ttft.mean),
        format!("{}", fleet.ttft.p95),
        format!("{}", fleet.tbt.p50),
        format!("{}", fleet.preemptions),
    ]
}

fn cache_on_off() -> (FleetReport, FleetReport) {
    let off = run_engine(false);
    let on = run_engine(true);
    let rows = vec![
        engine_row("cache off", off.fleet.as_ref().expect("completed")),
        engine_row("cache on", on.fleet.as_ref().expect("completed")),
    ];
    table(
        "Prefix cache: one engine on multi-turn chat sessions (3 req/s, 250 turns)",
        &[
            "mode",
            "prefilled tokens",
            "hit rate",
            "TTFT mean",
            "TTFT p95",
            "TBT p50",
            "preemptions",
        ],
        &rows,
    );
    (off, on)
}

fn affinity_vs_load_balancing() -> Vec<(RouterPolicy, FleetReport)> {
    let reports: Vec<(RouterPolicy, FleetReport)> =
        POLICIES.iter().map(|&p| (p, run_fleet(p))).collect();
    let mut rows = Vec::new();
    for (policy, report) in &reports {
        let fleet = report.fleet.as_ref().expect("requests completed");
        rows.push(vec![
            policy.to_string(),
            format!("{:.3}", report.fleet_attainment()),
            format!("{:.2}", fleet.prefix_hit_rate()),
            format!("{}", fleet.prefilled_tokens),
            format!("{}", fleet.ttft.p95),
            format!("{:.3}", report.imbalance),
        ]);
    }
    table(
        "Prefix cache: router policies on the session workload (4 caching replicas, 80 req/s)",
        &[
            "policy",
            "fleet attainment",
            "hit rate",
            "prefilled tokens",
            "TTFT p95",
            "imbalance (CV)",
        ],
        &rows,
    );
    reports
}

fn main() {
    let (off, on) = cache_on_off();
    let fleet_off = off.fleet.expect("completed");
    let fleet_on = on.fleet.expect("completed");
    claim(
        "prefix caching cuts session prefill",
        "cache-aware admission is a first-order serving lever (Apt-Serve, vLLM APC)",
        &format!(
            "prefilled tokens {} -> {} ({:.0} % saved), TTFT mean {} -> {}",
            fleet_off.prefilled_tokens,
            fleet_on.prefilled_tokens,
            100.0 * (1.0 - fleet_on.prefilled_tokens as f64 / fleet_off.prefilled_tokens as f64),
            fleet_off.ttft.mean,
            fleet_on.ttft.mean,
        ),
    );

    let reports = affinity_vs_load_balancing();
    let get = |p: RouterPolicy| {
        reports
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, r)| r)
            .expect("policy present")
    };
    let affinity = get(RouterPolicy::CacheAffinity);
    let jsq = get(RouterPolicy::JoinShortestQueue);
    let cmp = |a: f64, b: f64| {
        if a < b {
            "<"
        } else if a > b {
            ">"
        } else {
            "="
        }
    };
    claim(
        "cache-affinity routing beats scatter on sessions",
        "per-replica reuse makes session locality a routing concern (AdaServe)",
        &format!(
            "attainment CacheAffinity {:.3} {} JSQ {:.3}; hit rate {:.2} {} {:.2}",
            affinity.fleet_attainment(),
            cmp(affinity.fleet_attainment(), jsq.fleet_attainment()),
            jsq.fleet_attainment(),
            affinity
                .fleet
                .as_ref()
                .expect("completed")
                .prefix_hit_rate(),
            cmp(
                affinity
                    .fleet
                    .as_ref()
                    .expect("completed")
                    .prefix_hit_rate(),
                jsq.fleet.as_ref().expect("completed").prefix_hit_rate(),
            ),
            jsq.fleet.as_ref().expect("completed").prefix_hit_rate(),
        ),
    );

    // Machine-readable perf artifacts.
    let engine_obj = |label: &str, fleet: &QosReport| {
        json::object(&[
            ("mode", json::string(label)),
            ("prefilled_tokens", json::num(fleet.prefilled_tokens as f64)),
            ("prefix_hit_rate", json::num(fleet.prefix_hit_rate())),
            ("ttft_mean_s", json::num(fleet.ttft.mean.get())),
            ("ttft_p95_s", json::num(fleet.ttft.p95.get())),
            ("preemptions", json::num(fleet.preemptions as f64)),
        ])
    };
    artifact(
        "prefix_cache_on_off",
        &json::array(&[engine_obj("off", &fleet_off), engine_obj("on", &fleet_on)]),
    );

    let policy_objs: Vec<String> = reports
        .iter()
        .map(|(policy, report)| {
            let fleet = report.fleet.as_ref().expect("completed");
            json::object(&[
                ("policy", json::string(&policy.to_string())),
                ("fleet_attainment", json::num(report.fleet_attainment())),
                ("prefix_hit_rate", json::num(fleet.prefix_hit_rate())),
                ("prefilled_tokens", json::num(fleet.prefilled_tokens as f64)),
                ("imbalance", json::num(report.imbalance)),
            ])
        })
        .collect();
    artifact("prefix_cache_routing", &json::array(&policy_objs));
}
