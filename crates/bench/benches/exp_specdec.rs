//! Speculative-decoding experiment (beyond the paper): fixed-depth
//! draft/verify sweeps on a single engine, and SLO-customized speculation
//! depth (AdaServe) against fixed depths on a mixed-tenant fleet.
//!
//! Table 1 sweeps `Fixed(k)` against `Off` across draft acceptance rates
//! on one weight-bound engine: with decent acceptance, every committed
//! run divides the inter-token gap, so mean TBT drops — the biggest
//! unmodeled lever on the paper's latency/throughput frontier. Table 2
//! moves to the pinned compute-bound fleet, where indiscriminate drafting
//! inflates every verify pass: fixed depths either leave the latency
//! tenant missing its TBT contract (k too small) or burn fleet capacity
//! on a low-acceptance throughput tenant (k too large), while the
//! SLO-adaptive policy spends a budgeted verify allowance on the urgent
//! requests only and tops goodput (tokens from SLO-met requests).
//!
//! Alongside the tables, the bench emits `artifact:` lines with JSON
//! objects (per-depth engine metrics, per-policy fleet goodput) for
//! perf-tracking tooling.

use ador_bench::{artifact, claim, json, table};
use ador_core::baselines;
use ador_core::cluster::scenarios::{
    spec_engine_config, spec_fleet, spec_mix, SPEC_RATE, SPEC_REPLICAS, SPEC_REQUESTS, SPEC_SEED,
};
use ador_core::cluster::{ClusterSim, FleetReport};
use ador_core::model::presets;
use ador_core::perf::Deployment;
use ador_core::serving::{QosReport, ServingSim, SpeculationPolicy, TraceProfile};

const DEPTHS: [usize; 4] = [0, 1, 2, 4];
const ACCEPTANCES: [f64; 3] = [0.5, 0.7, 0.9];

const POLICIES: [SpeculationPolicy; 5] = [
    SpeculationPolicy::Off,
    SpeculationPolicy::Fixed(1),
    SpeculationPolicy::Fixed(2),
    SpeculationPolicy::Fixed(4),
    SpeculationPolicy::SloAdaptive,
];

fn run_engine(policy: SpeculationPolicy, acceptance: f64) -> QosReport {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    ServingSim::new(
        &arch,
        &model,
        Deployment::single_device(),
        spec_engine_config(policy, acceptance),
    )
    .expect("engine builds")
    .run(TraceProfile::ultrachat_like())
    .expect("engine runs")
}

fn run_fleet(policy: SpeculationPolicy) -> FleetReport {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    ClusterSim::new(
        &arch,
        &model,
        Deployment::single_device(),
        spec_fleet(SPEC_REPLICAS, policy),
    )
    .expect("cluster builds")
    .run(&spec_mix(SPEC_RATE), SPEC_REQUESTS, SPEC_SEED)
    .expect("cluster runs")
}

/// Table 1: the fixed-depth sweep on one engine, per acceptance rate.
fn fixed_sweep() -> Vec<(f64, usize, QosReport)> {
    let mut results = Vec::new();
    let mut rows = Vec::new();
    for &acceptance in &ACCEPTANCES {
        for &k in &DEPTHS {
            let policy = if k == 0 {
                SpeculationPolicy::Off
            } else {
                SpeculationPolicy::Fixed(k)
            };
            let report = run_engine(policy, acceptance);
            rows.push(vec![
                format!("{acceptance:.1}"),
                format!("{k}"),
                format!("{}", report.tbt.mean),
                format!("{}", report.tbt.p95),
                format!("{:.0}", report.tokens_per_sec),
                format!("{:.2}", report.acceptance_rate()),
                format!("{}", report.drafted_tokens),
            ]);
            results.push((acceptance, k, report));
        }
    }
    table(
        "Speculative decoding: fixed-depth sweep, one engine on chatbot traffic (8 req/s)",
        &[
            "acceptance",
            "depth k",
            "TBT mean",
            "TBT p95",
            "tok/s",
            "realized acc",
            "drafted",
        ],
        &rows,
    );
    results
}

/// Table 2: speculation policies on the pinned mixed-tenant fleet.
fn fleet_policies() -> Vec<(SpeculationPolicy, FleetReport)> {
    let reports: Vec<(SpeculationPolicy, FleetReport)> =
        POLICIES.iter().map(|&p| (p, run_fleet(p))).collect();
    let mut rows = Vec::new();
    for (policy, report) in &reports {
        let fleet = report.fleet.as_ref().expect("requests completed");
        let chatbot = &report.tenants[0];
        let analytics = &report.tenants[1];
        rows.push(vec![
            policy.to_string(),
            format!("{:.0}", fleet.goodput_tokens_per_sec),
            format!("{:.0}", fleet.tokens_per_sec),
            format!("{:.3}", report.fleet_attainment()),
            format!("{:.3}", chatbot.attainment),
            format!("{}", chatbot.tbt.as_ref().expect("chatbot completed").p95),
            format!("{:.3}", analytics.attainment),
            format!("{:.2}", fleet.acceptance_rate()),
            format!("{}", fleet.drafted_tokens),
        ]);
    }
    table(
        "Speculative decoding: policies on the mixed chatbot/analytics fleet (2 replicas, 92 req/s)",
        &[
            "policy",
            "goodput tok/s",
            "tok/s",
            "fleet att",
            "chatbot att",
            "chatbot TBT p95",
            "analytics att",
            "realized acc",
            "drafted",
        ],
        &rows,
    );
    reports
}

fn main() {
    let sweep = fixed_sweep();
    let at = |acc: f64, k: usize| {
        &sweep
            .iter()
            .find(|&&(a, d, _)| a == acc && d == k)
            .expect("swept")
            .2
    };
    for acc in [0.7, 0.9] {
        let off = at(acc, 0);
        let best = DEPTHS[1..]
            .iter()
            .map(|&k| at(acc, k))
            .min_by(|a, b| a.tbt.mean.partial_cmp(&b.tbt.mean).expect("not NaN"))
            .expect("non-empty");
        claim(
            &format!("fixed-depth speculation cuts mean TBT at acceptance {acc:.1}"),
            "draft/verify commits divide the inter-token gap (Leviathan et al.)",
            &format!(
                "TBT mean {} (off) -> {} (best fixed), x{:.2}",
                off.tbt.mean,
                best.tbt.mean,
                off.tbt.mean.get() / best.tbt.mean.get()
            ),
        );
    }

    let reports = fleet_policies();
    let goodput = |p: SpeculationPolicy| {
        reports
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, r)| r.fleet.as_ref().expect("completed").goodput_tokens_per_sec)
            .expect("policy present")
    };
    let ada = goodput(SpeculationPolicy::SloAdaptive);
    let best_fixed = POLICIES[..4]
        .iter()
        .map(|&p| goodput(p))
        .fold(f64::MIN, f64::max);
    claim(
        "SLO-customized depth beats every fixed depth on fleet goodput",
        "per-request depth from TBT slack under a verify budget (AdaServe)",
        &format!(
            "goodput slo-adaptive {ada:.0} tok/s vs best fixed/off {best_fixed:.0} tok/s (+{:.1} %)",
            100.0 * (ada / best_fixed - 1.0)
        ),
    );

    // Machine-readable perf artifacts.
    let sweep_objs: Vec<String> = sweep
        .iter()
        .map(|(acc, k, r)| {
            json::object(&[
                ("acceptance", json::num(*acc)),
                ("depth", json::num(*k as f64)),
                ("tbt_mean_s", json::num(r.tbt.mean.get())),
                ("tbt_p95_s", json::num(r.tbt.p95.get())),
                ("tokens_per_sec", json::num(r.tokens_per_sec)),
                ("realized_acceptance", json::num(r.acceptance_rate())),
            ])
        })
        .collect();
    artifact("specdec_fixed_sweep", &json::array(&sweep_objs));

    let fleet_objs: Vec<String> = reports
        .iter()
        .map(|(policy, report)| {
            let fleet = report.fleet.as_ref().expect("completed");
            json::object(&[
                ("policy", json::string(&policy.to_string())),
                (
                    "goodput_tokens_per_sec",
                    json::num(fleet.goodput_tokens_per_sec),
                ),
                ("tokens_per_sec", json::num(fleet.tokens_per_sec)),
                ("fleet_attainment", json::num(report.fleet_attainment())),
                (
                    "chatbot_attainment",
                    json::num(report.tenants[0].attainment),
                ),
                ("realized_acceptance", json::num(fleet.acceptance_rate())),
                ("drafted_tokens", json::num(fleet.drafted_tokens as f64)),
            ])
        })
        .collect();
    artifact("specdec_fleet_policies", &json::array(&fleet_objs));
}
