//! Figure 4: (a) area efficiency during LLaMA3-8B prefill, absolute and
//! 4 nm-normalized; (b) effective memory bandwidth for GenAI models.

use ador_bench::{claim, table};
use ador_core::baselines;
use ador_core::hw::{AreaModel, ProcessNode};
use ador_core::model::presets;
use ador_core::perf::{Deployment, Evaluator};

fn fig4a() {
    let model = presets::llama3_8b();
    let area_model = AreaModel::default();
    let mut rows = Vec::new();
    let mut ador_eff = 0.0f64;
    let mut a100_eff = 0.0f64;

    for (arch, devices) in [
        (baselines::a100(), 1usize),
        (baselines::h100(), 1),
        (baselines::tpuv4(), 1),
        (
            baselines::groq_tsp(),
            baselines::tsp_devices_for(model.weight_bytes()).next_power_of_two(),
        ),
        (baselines::ador_table3(), 1),
    ] {
        let deployment = if devices == 1 {
            Deployment::single_device()
        } else {
            Deployment::tensor_parallel(devices)
        };
        let Ok(eval) = Evaluator::new(&arch, &model, deployment) else {
            continue;
        };
        let step = eval
            .step(ador_core::model::Phase::prefill(1, 1024))
            .expect("prefill");
        // Achieved FLOPS across the deployment over the total silicon.
        let achieved_gflops = step.flops_per_device.get() * devices as f64 / step.total.get() / 1e9;
        let die = area_model.estimate(&arch).total().as_mm2() * devices as f64;
        let die_4nm = area_model
            .estimate_normalized(&arch, ProcessNode::N4)
            .as_mm2()
            * devices as f64;
        let absolute = achieved_gflops / die;
        let normalized = achieved_gflops / die_4nm;
        if arch.name.contains("A100") {
            a100_eff = absolute;
        }
        if arch.name.contains("ADOR") {
            ador_eff = absolute;
        }
        rows.push(vec![
            arch.name.clone(),
            devices.to_string(),
            format!("{}", arch.process),
            format!("{absolute:.2}"),
            format!("{normalized:.2}"),
        ]);
    }
    table(
        "Fig 4a: area efficiency, LLaMA3 8B prefill (achieved GFLOPS/mm2)",
        &[
            "device",
            "chips",
            "process",
            "absolute",
            "normalized to 4nm",
        ],
        &rows,
    );
    claim(
        "fig4a TSP area efficiency collapses",
        "TSP needs hundreds of chips (576 in the paper) and lands far below GPUs",
        "lowest row in the table above",
    );
    claim(
        "fig4a ADOR vs A100",
        "~4x better area efficiency",
        &format!("{:.1}x", ador_eff / a100_eff),
    );
}

fn fig4b() {
    let models = [
        presets::gptj_6b(),
        presets::llama2_7b(),
        presets::llama3_8b(),
        presets::mistral_7b(),
    ];
    let archs = [
        baselines::a100(),
        baselines::h100(),
        baselines::tpuv4(),
        baselines::ador_table3(),
    ];
    let mut rows = Vec::new();
    for arch in &archs {
        let mut row = vec![arch.name.clone()];
        for m in &models {
            let eval = Evaluator::new(arch, m, Deployment::single_device()).expect("fits");
            let step = eval
                .step(ador_core::model::Phase::decode(16, 512))
                .expect("decode");
            let util = step.dram_utilization(arch.dram.bandwidth);
            let effective = arch.dram.bandwidth.as_tbps() * util.get();
            row.push(format!("{effective:.2} ({util})"));
        }
        rows.push(row);
    }
    table(
        "Fig 4b: effective memory bandwidth at decode (batch 16, ctx 512), TB/s (utilization)",
        &["device", "GPT-J 6B", "LLaMA2 7B", "LLaMA3 8B", "Mistral 7B"],
        &rows,
    );
    claim(
        "fig4b GPU/TPU under 60%",
        "both GPU and TPU show less than 60% utilization vs spec",
        "see A100/H100/TPUv4 rows; the ADOR design exceeds them",
    );
}

fn main() {
    fig4a();
    fig4b();
}
