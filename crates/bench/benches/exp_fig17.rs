//! Figure 17: QoS across input/output sequence lengths — the TTFT and TBT
//! grids for LLaMA3 8B serving on the ADOR design.

use ador_bench::{claim, table};
use ador_core::baselines;
use ador_core::perf::Deployment;
use ador_core::serving::{ServingSim, SimConfig, TraceProfile};

const INPUTS: [usize; 4] = [128, 256, 512, 1024];
const OUTPUTS: [usize; 8] = [1, 16, 32, 64, 128, 256, 512, 1024];

fn main() {
    let arch = baselines::ador_table3();
    let model = ador_core::model::presets::llama3_8b();

    let mut ttft_rows = Vec::new();
    let mut tbt_rows = Vec::new();
    for &input in &INPUTS {
        let mut ttft_row = vec![input.to_string()];
        let mut tbt_row = vec![input.to_string()];
        for &output in &OUTPUTS {
            let cfg = SimConfig::new(8.0, 64).with_requests(120).with_seed(17);
            let report = ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
                .expect("sim builds")
                .run(TraceProfile::fixed(input, output))
                .expect("sim runs");
            ttft_row.push(format!("{:.1}", report.ttft.p50.as_millis()));
            if output == 1 {
                tbt_row.push("-".to_string());
            } else {
                tbt_row.push(format!("{:.1}", 1.0 / report.tbt.p50.get()));
            }
        }
        ttft_rows.push(ttft_row);
        tbt_rows.push(tbt_row);
    }

    let header: Vec<String> = std::iter::once("input \\ output".to_string())
        .chain(OUTPUTS.iter().map(|o| o.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    table(
        "Fig 17: TTFT p50 (ms) by input x output length",
        &header_refs,
        &ttft_rows,
    );
    table(
        "Fig 17: TBT p50 (token/s) by input x output length",
        &header_refs,
        &tbt_rows,
    );

    // Degradation factors, as the paper reports them.
    let tbt_short: f64 = tbt_rows[0][2].parse().unwrap(); // input 128, output 16
    let tbt_long: f64 = tbt_rows[0][8].parse().unwrap(); // input 128, output 1024
    let ttft_short: f64 = ttft_rows[0][1].parse().unwrap();
    let ttft_long: f64 = ttft_rows[0][8].parse().unwrap();
    claim(
        "fig17 TBT degradation with output length",
        "processing slows only ~3.87x as outputs stretch 1 -> 1024 (prefill/decode overlap)",
        &format!(
            "{:.2}x (output 16 -> 1024 at input 128)",
            tbt_short / tbt_long
        ),
    );
    claim(
        "fig17 TTFT degradation",
        "only ~3.85x TTFT degradation across the grid, 2.21x better than a GPU",
        &format!(
            "{:.2}x (output 1 -> 1024 at input 128)",
            ttft_long / ttft_short
        ),
    );
    claim(
        "fig17 TTFT grows with input length",
        "longer prompts raise TTFT monotonically",
        "read any output column downward",
    );
}
