//! Figure 11: (a) systolic-array configuration sweep (iso-MAC budget),
//! (b) MAC-tree lane sweep across attention variants, (c) the HDA gain.

use ador_bench::{claim, table};
use ador_core::hw::memory::DramSpec;
use ador_core::hw::{Architecture, MacTree, SystolicArray};
use ador_core::model::{presets, Phase};
use ador_core::perf::{Deployment, Evaluator};
use ador_core::units::{Bandwidth, Bytes, Frequency};

const BUCKETS: [&str; 5] = ["QKV Proj", "MHA", "Out Proj", "MLP1", "MLP2"];

fn build(sa_dim: usize, cores: usize, mt: Option<MacTree>) -> Architecture {
    // Hold the total SRAM budget constant (64 MiB of local memory across
    // the chip) so core-count choices pay their real capacity cost.
    let local_kib = (64 * 1024 / cores as u64).max(64);
    let mut b = Architecture::builder(format!("{sa_dim}x{sa_dim} {cores}-cores"))
        .cores(cores)
        .systolic_array(SystolicArray::square(sa_dim))
        .local_memory(Bytes::from_kib(local_kib))
        .global_memory(Bytes::from_mib(16))
        .dram(DramSpec::hbm2e(
            Bytes::from_gib(80),
            Bandwidth::from_tbps(2.0),
        ))
        .frequency(Frequency::from_mhz(1500.0));
    if let Some(mt) = mt {
        b = b.mac_tree(mt);
    }
    b.build()
}

fn breakdown_row(arch: &Architecture, phase: Phase) -> Vec<String> {
    let model = presets::llama3_8b();
    let eval = Evaluator::new(arch, &model, Deployment::single_device()).expect("fits");
    let step = eval.step(phase).expect("step");
    let mut row = vec![arch.name.clone()];
    for b in BUCKETS {
        row.push(format!("{:.2}", step.bucket(b).as_millis()));
    }
    row.push(format!("{:.2}", step.total.as_millis()));
    row
}

fn fig11a() {
    // Iso-MAC configurations: 32^2*128 = 64^2*32 = 128^2*8 = 131072 MACs.
    let configs = [(32usize, 128usize), (64, 32), (128, 8)];
    let mt = MacTree::new(16, 16);

    let mut rows = Vec::new();
    for (dim, cores) in configs {
        rows.push(breakdown_row(
            &build(dim, cores, Some(mt)),
            Phase::prefill(1, 1024),
        ));
    }
    table(
        "Fig 11a (prefill): LLaMA3 8B, seq 1024, iso-MAC SA sweep (ms)",
        &[
            "config", "QKV Proj", "MHA", "Out Proj", "MLP1", "MLP2", "total",
        ],
        &rows,
    );

    let mut rows = Vec::new();
    for (dim, cores) in configs {
        rows.push(breakdown_row(
            &build(dim, cores, Some(mt)),
            Phase::decode(32, 1024),
        ));
    }
    table(
        "Fig 11a (decode): LLaMA3 8B, batch 32, seq 1024 (ms)",
        &[
            "config", "QKV Proj", "MHA", "Out Proj", "MLP1", "MLP2", "total",
        ],
        &rows,
    );
    claim(
        "fig11a mid-size arrays balance",
        "64x64 x 32 cores is the chosen setup: small arrays need 4x the cores/SRAM plumbing for their cycle win, huge arrays underutilize during tiling",
        "prefill: fill/drain overhead grows with array size; decode: 128x128 pays the worst MHA/GEMV utilization; 64x64 holds both within a practical SRAM budget (known deviation: raw prefill cycles alone favor 32x32, see EXPERIMENTS.md)",
    );
}

fn fig11b() {
    let models = [
        ("LLaMA2 7B (MHA)", presets::llama2_7b()),
        ("LLaMA3 8B (GQA)", presets::llama3_8b()),
        ("Falcon 7B (MQA)", presets::falcon_7b()),
    ];
    let lanes = [1usize, 8, 16];
    let mut rows = Vec::new();
    for (label, model) in &models {
        let mut row = vec![label.to_string()];
        for &l in &lanes {
            let arch = build(64, 32, Some(MacTree::new(16, l)));
            let eval = Evaluator::new(&arch, model, Deployment::single_device()).expect("fits");
            let step = eval.step(Phase::decode(32, 1024)).expect("decode");
            row.push(format!("{:.2}", step.bucket("MHA").as_millis()));
        }
        rows.push(row);
    }
    table(
        "Fig 11b: self-attention latency vs MT lanes (2 TB/s, batch 32, seq 1024, ms)",
        &["model", "MT 16x1", "MT 16x8", "MT 16x16"],
        &rows,
    );
    let mqa_1: f64 = rows[2][1].parse().unwrap();
    let mqa_16: f64 = rows[2][3].parse().unwrap();
    let mha_1: f64 = rows[0][1].parse().unwrap();
    let mha_16: f64 = rows[0][3].parse().unwrap();
    claim(
        "fig11b lanes matter most for MQA",
        "KV-reusing attention (MQA) is compute-dense, so more lanes cut latency; MHA stays bandwidth-bound",
        &format!(
            "MQA gain {:.1}x vs MHA gain {:.2}x from 1 -> 16 lanes",
            mqa_1 / mqa_16,
            mha_1 / mha_16
        ),
    );
}

fn fig11c() {
    let sa_only = build(64, 32, None);
    let hda = build(64, 32, Some(MacTree::new(16, 16)));
    let mut rows = Vec::new();
    for arch in [&sa_only, &hda] {
        let mut row = breakdown_row(arch, Phase::decode(32, 1024));
        row[0] = if arch.mt.is_some() {
            "SA+MT (HDA)".into()
        } else {
            "SA only".into()
        };
        rows.push(row);
    }
    table(
        "Fig 11c: decode latency breakdown, SA-only vs HDA (LLaMA3 8B, batch 32, ms)",
        &[
            "design", "QKV Proj", "MHA", "Out Proj", "MLP1", "MLP2", "total",
        ],
        &rows,
    );
    let sa_total: f64 = rows[0][6].parse().unwrap();
    let hda_total: f64 = rows[1][6].parse().unwrap();
    claim(
        "fig11c HDA gain",
        "adding the MAC tree cuts decode latency (esp. attention) at negligible area",
        &format!(
            "{sa_total:.2} ms -> {hda_total:.2} ms ({:.2}x)",
            sa_total / hda_total
        ),
    );
}

fn main() {
    fig11a();
    fig11b();
    fig11c();
}
