//! Fleet-driver wall-clock baseline: the discrete-event core vs the
//! lockstep oracle over a replicas × requests grid.
//!
//! Both drivers produce identical per-request outcomes (pinned by
//! `tests/cluster_serving.rs`; re-verified here on every measured run),
//! so the only thing this bench measures is driver overhead: lockstep
//! sweeps all N replicas on every arrival, the event core touches only
//! the replicas that actually have work. The grid scales the offered
//! load with the fleet ([`scenarios::scale_mix`]) so each cell isolates
//! driver cost on a healthy fleet rather than queueing collapse.
//!
//! Writes the machine-readable grid to `BENCH_cluster.json` at the
//! workspace root (schema-checked by `tests/bench_artifact.rs` via
//! `ador_bench::schema::validate_bench_cluster`) and mirrors it as an
//! `artifact:` line. Pass `--quick` for the CI smoke grid.

use std::time::Instant;

use ador_bench::{artifact, f, json, table};
use ador_core::baselines;
use ador_core::cluster::scenarios::{scale_fleet, scale_mix, SCALE_RATE_PER_REPLICA, SCALE_SEED};
use ador_core::cluster::{ClusterSim, DriveMode, FleetReport};
use ador_core::model::presets;
use ador_core::perf::Deployment;

/// The full grid: small fleets where the event core must merely not lose,
/// up to the 128-replica / 100k-request cell where lockstep's
/// O(replicas)-per-arrival sweep dominates.
const FULL_GRID: [(usize, usize); 4] = [(4, 4_000), (16, 16_000), (64, 64_000), (128, 100_000)];

/// The `--quick` smoke grid: exercises the same code path (both drivers,
/// equivalence check, JSON write) in seconds.
const QUICK_GRID: [(usize, usize); 2] = [(2, 300), (4, 600)];

/// Runs one cell `runs` times and keeps the fastest wall-clock (the
/// usual minimum-of-N noise damper; the report is identical across
/// repeats — the simulation is deterministic).
fn run_cell(replicas: usize, requests: usize, drive: DriveMode, runs: usize) -> (f64, FleetReport) {
    let arch = baselines::ador_table3();
    let model = presets::llama3_8b();
    let mix = scale_mix(replicas);
    let stream = mix.generate(requests, SCALE_SEED);
    let mut best: Option<(f64, FleetReport)> = None;
    for _ in 0..runs {
        let sim = ClusterSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            scale_fleet(replicas, drive),
        )
        .expect("fleet builds");
        let start = Instant::now();
        let report = sim.run_stream(&mix, stream.clone()).expect("fleet runs");
        let elapsed = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(t, _)| elapsed < *t) {
            best = Some((elapsed, report));
        }
    }
    best.expect("at least one run")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let grid: &[(usize, usize)] = if quick { &QUICK_GRID } else { &FULL_GRID };

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let runs = if quick { 1 } else { 3 };
    for &(replicas, requests) in grid {
        let (lockstep_s, lockstep_report) = run_cell(replicas, requests, DriveMode::Lockstep, runs);
        let (event_s, event_report) = run_cell(replicas, requests, DriveMode::EventDriven, runs);
        let reports_equal = event_report == lockstep_report;
        assert!(
            reports_equal,
            "drivers diverged at {replicas} replicas x {requests} requests"
        );
        let speedup = lockstep_s / event_s;
        rows.push(vec![
            replicas.to_string(),
            requests.to_string(),
            f(lockstep_s, 3),
            f(event_s, 3),
            format!("{}x", f(speedup, 2)),
            reports_equal.to_string(),
        ]);
        cells.push(json::object(&[
            ("replicas", json::num(replicas as f64)),
            ("requests", json::num(requests as f64)),
            ("lockstep_s", json::num(lockstep_s)),
            ("event_s", json::num(event_s)),
            ("speedup", json::num(speedup)),
            ("reports_equal", reports_equal.to_string()),
        ]));
    }
    table(
        "Fleet driver wall-clock: lockstep vs event-driven",
        &[
            "replicas",
            "requests",
            "lockstep (s)",
            "event (s)",
            "speedup",
            "reports equal",
        ],
        &rows,
    );

    let doc = json::object(&[
        ("name", json::string("bench_cluster")),
        ("rate_per_replica", json::num(SCALE_RATE_PER_REPLICA)),
        ("seed", json::num(SCALE_SEED as f64)),
        ("cells", json::array(&cells)),
    ]);
    ador_bench::schema::validate_bench_cluster(&doc).expect("emitted grid passes its own schema");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_cluster.json");
    println!("wrote {path}");
    artifact("bench_cluster", &doc);
}
