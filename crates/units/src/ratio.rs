//! Dimensionless utilization in `[0, 1]`.

use core::fmt;
use core::ops::Mul;

use serde::{Deserialize, Serialize};

/// A utilization or efficiency fraction, statically guaranteed to lie in
/// `[0, 1]`.
///
/// The ADOR models derate peak bandwidth and peak FLOPS by measured
/// utilizations (paper Fig. 4b, Fig. 10); wrapping the fraction prevents a
/// stray `1.1` or `-0.2` from silently inflating performance.
///
/// # Examples
///
/// ```
/// use ador_units::Utilization;
///
/// let gpu_hbm = Utilization::new(0.55);
/// let combined = gpu_hbm * Utilization::new(0.5);
/// assert_eq!(combined.get(), 0.275);
/// assert_eq!(format!("{gpu_hbm}"), "55.0%");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Utilization(f64);

impl Utilization {
    /// Zero utilization (fully idle).
    pub const IDLE: Self = Self(0.0);

    /// Full utilization.
    pub const FULL: Self = Self(1.0);

    /// Creates a utilization of `frac`.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `[0, 1]` or not finite.
    #[inline]
    pub fn new(frac: f64) -> Self {
        assert!(
            frac.is_finite() && (0.0..=1.0).contains(&frac),
            "utilization must lie in [0, 1], got {frac}"
        );
        Self(frac)
    }

    /// Creates a utilization, clamping out-of-range values into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is NaN.
    #[inline]
    pub fn new_clamped(frac: f64) -> Self {
        assert!(!frac.is_nan(), "utilization must not be NaN");
        Self(frac.clamp(0.0, 1.0))
    }

    /// Returns the fraction in `[0, 1]`.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Returns the fraction as a percentage in `[0, 100]`.
    #[inline]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Returns the larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl Default for Utilization {
    /// Defaults to full utilization (the ideal, underated model).
    fn default() -> Self {
        Self::FULL
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.as_percent())
    }
}

/// Utilizations compose multiplicatively (independent derating stages).
impl Mul for Utilization {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(self.0 * rhs.0)
    }
}

impl Mul<f64> for Utilization {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bounds_enforced() {
        assert_eq!(Utilization::new(0.0), Utilization::IDLE);
        assert_eq!(Utilization::new(1.0), Utilization::FULL);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn above_one_rejected() {
        let _ = Utilization::new(1.01);
    }

    #[test]
    fn clamped_constructor_saturates() {
        assert_eq!(Utilization::new_clamped(3.0), Utilization::FULL);
        assert_eq!(Utilization::new_clamped(-3.0), Utilization::IDLE);
    }

    #[test]
    fn default_is_ideal() {
        assert_eq!(Utilization::default(), Utilization::FULL);
    }

    proptest! {
        #[test]
        fn product_stays_in_range(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let p = Utilization::new(a) * Utilization::new(b);
            prop_assert!((0.0..=1.0).contains(&p.get()));
            prop_assert!(p <= Utilization::new(a));
        }
    }
}
