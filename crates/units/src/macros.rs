//! Internal boilerplate for scalar `f64`-backed quantities.

/// Implements the shared surface of an `f64`-backed quantity newtype:
/// accessors, `Add`/`Sub` with itself, `Mul`/`Div` by `f64`, `Sum`, and the
/// ratio `Div` returning a plain `f64`.
macro_rules! scalar_quantity {
    ($ty:ident, $unit:literal) => {
        impl $ty {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw magnitude in the base unit ($unit).
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns `true` if the magnitude is exactly zero.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl core::ops::Add for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $ty {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $ty {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$ty> for f64 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $ty {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Ratio of two quantities of the same dimension is dimensionless.
        impl core::ops::Div for $ty {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $ty {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, x| acc + x)
            }
        }

        impl<'a> core::iter::Sum<&'a $ty> for $ty {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, x| acc + *x)
            }
        }
    };
}
