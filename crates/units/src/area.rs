//! Silicon die area ([`Area`]) and power draw ([`Power`]).

use core::fmt;

use serde::{Deserialize, Serialize};

/// A silicon area in square millimetres.
///
/// # Examples
///
/// ```
/// use ador_units::Area;
///
/// let a100 = Area::from_mm2(826.0);
/// let ador = Area::from_mm2(516.0);
/// assert!((a100 / ador - 1.6) < 0.01);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Area(f64);

scalar_quantity!(Area, "square millimetres");

impl Area {
    /// Creates an area of `mm2` square millimetres.
    ///
    /// # Panics
    ///
    /// Panics if `mm2` is negative or not finite.
    #[inline]
    pub fn from_mm2(mm2: f64) -> Self {
        assert!(
            mm2.is_finite() && mm2 >= 0.0,
            "area must be finite and non-negative, got {mm2}"
        );
        Self(mm2)
    }

    /// Returns the area in mm².
    #[inline]
    pub const fn as_mm2(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} mm2", self.0)
    }
}

/// Electrical power in watts (e.g. a device TDP).
///
/// # Examples
///
/// ```
/// use ador_units::Power;
///
/// let h100 = Power::from_watts(700.0);
/// assert_eq!(h100.as_watts(), 700.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Power(f64);

scalar_quantity!(Power, "watts");

impl Power {
    /// Creates a power of `watts` W.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or not finite.
    #[inline]
    pub fn from_watts(watts: f64) -> Self {
        assert!(
            watts.is_finite() && watts >= 0.0,
            "power must be finite and non-negative, got {watts}"
        );
        Self(watts)
    }

    /// Returns the power in watts.
    #[inline]
    pub const fn as_watts(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} W", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn area_ratio_is_dimensionless() {
        assert_eq!(Area::from_mm2(800.0) / Area::from_mm2(400.0), 2.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Area::from_mm2(516.0)), "516.0 mm2");
        assert_eq!(format!("{}", Power::from_watts(300.0)), "300 W");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_area_rejected() {
        let _ = Area::from_mm2(-1.0);
    }

    proptest! {
        #[test]
        fn area_sum_of_parts(parts in proptest::collection::vec(0.0f64..1e4, 0..16)) {
            let total: Area = parts.iter().map(|&p| Area::from_mm2(p)).sum();
            let expect: f64 = parts.iter().sum();
            prop_assert!((total.as_mm2() - expect).abs() < 1e-6);
        }
    }
}
