//! Checked-by-construction numeric conversions.
//!
//! The sim crates are forbidden (by `ador-lint`'s `as-cast` rule) from
//! writing raw numeric `as` casts in library code: `as` silently
//! truncates, wraps or rounds, which is exactly the failure mode a
//! token/time-accounting simulator cannot afford. These helpers give the
//! sim crates named, documented conversions instead. Each one either
//! cannot lose information (widening into `f64`/`u64`) or documents the
//! saturation it performs.
//!
//! # Examples
//!
//! ```
//! use ador_units::conv;
//!
//! assert_eq!(conv::f64_from_usize(3), 3.0);
//! assert_eq!(conv::usize_from_f64(2.9), 2);
//! assert_eq!(conv::usize_from_f64(-1.0), 0); // saturates at zero
//! assert_eq!(conv::u64_from_f64(7.0_f64.ceil()), 7);
//! ```

/// Widens a `usize` count into `f64`.
///
/// Counts above 2^53 lose precision (they round to the nearest
/// representable `f64`), which is far beyond any token or request count
/// the simulator produces.
#[inline]
#[must_use]
pub fn f64_from_usize(n: usize) -> f64 {
    n as f64
}

/// Widens a `u64` count into `f64` (rounding above 2^53, as
/// [`f64_from_usize`]).
#[inline]
#[must_use]
pub fn f64_from_u64(n: u64) -> f64 {
    n as f64
}

/// Converts a `usize` count to `u64`. Lossless on every supported
/// platform (`usize` is at most 64 bits).
#[inline]
#[must_use]
pub fn u64_from_usize(n: usize) -> u64 {
    n as u64
}

/// Narrows a `usize` count to `u32`, saturating at `u32::MAX`.
///
/// Used for compact per-event token counts: a single event never
/// carries more than a prompt's worth of tokens, far below 2^32, so
/// saturation is a theoretical backstop rather than an expected path.
#[inline]
#[must_use]
pub fn u32_from_usize(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Widens a `u32` count to `usize`. Lossless on every supported
/// platform (`usize` is at least 32 bits).
#[inline]
#[must_use]
pub fn usize_from_u32(n: u32) -> usize {
    n as usize
}

/// Converts an `f64` to a `usize` count, truncating toward zero.
///
/// Saturates: negative values and NaN become `0`, values above
/// `usize::MAX` become `usize::MAX` (the semantics of Rust's float→int
/// `as`, made explicit here).
#[inline]
#[must_use]
pub fn usize_from_f64(x: f64) -> usize {
    x as usize
}

/// Converts an `f64` to a `u64` count, truncating toward zero.
///
/// Saturates exactly like [`usize_from_f64`].
#[inline]
#[must_use]
pub fn u64_from_f64(x: f64) -> u64 {
    x as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn float_to_int_saturates() {
        assert_eq!(usize_from_f64(f64::NAN), 0);
        assert_eq!(usize_from_f64(-7.5), 0);
        assert_eq!(usize_from_f64(f64::INFINITY), usize::MAX);
        assert_eq!(u64_from_f64(f64::NAN), 0);
        assert_eq!(u64_from_f64(1e300), u64::MAX);
    }

    #[test]
    fn widening_is_exact_below_2_pow_53() {
        assert_eq!(f64_from_usize(1 << 52), 4_503_599_627_370_496.0);
        assert_eq!(f64_from_u64(1 << 52), 4_503_599_627_370_496.0);
        assert_eq!(u64_from_usize(usize::MAX), usize::MAX as u64);
    }

    #[test]
    fn u32_narrowing_saturates_and_round_trips() {
        assert_eq!(u32_from_usize(12_345), 12_345);
        assert_eq!(u32_from_usize(usize::MAX), u32::MAX);
        assert_eq!(usize_from_u32(u32::MAX), u32::MAX as usize);
        assert_eq!(usize_from_u32(u32_from_usize(77)), 77);
    }

    proptest! {
        /// Counts in the simulator's operating range round-trip exactly.
        #[test]
        fn usize_round_trips_through_f64(n in 0usize..1 << 50) {
            prop_assert_eq!(usize_from_f64(f64_from_usize(n)), n);
        }

        /// Truncation never exceeds the input.
        #[test]
        fn truncation_is_monotone(x in 0.0f64..1e15) {
            prop_assert!(f64_from_u64(u64_from_f64(x)) <= x);
        }
    }
}
