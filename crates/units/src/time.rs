//! Wall-clock time ([`Seconds`]), clock cycles ([`Cycles`]) and clock rate
//! ([`Frequency`]).

use core::fmt;
use core::ops::Div;

use serde::{Deserialize, Serialize};

/// A span of wall-clock time in seconds.
///
/// # Examples
///
/// ```
/// use ador_units::Seconds;
///
/// let ttft = Seconds::from_millis(24.0);
/// let tbt = Seconds::from_millis(18.0);
/// assert_eq!((ttft + tbt).as_millis(), 42.0);
/// assert!(ttft > tbt);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Seconds(f64);

scalar_quantity!(Seconds, "seconds");

impl Seconds {
    /// Creates a span of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite — negative latencies always
    /// indicate a modelling bug upstream.
    #[inline]
    pub fn new(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time span must be finite and non-negative, got {secs}"
        );
        Self(secs)
    }

    /// Creates a span of `ms` milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }

    /// Creates a span of `us` microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// Returns the span in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the span in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Events per second at one event per span (e.g. tokens/s from TBT).
    ///
    /// # Panics
    ///
    /// Panics if the span is zero.
    #[inline]
    pub fn recip_rate(self) -> f64 {
        assert!(self.0 > 0.0, "cannot invert a zero time span");
        1.0 / self.0
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.as_millis())
        } else {
            write!(f, "{:.3} us", self.as_micros())
        }
    }
}

/// A count of hardware clock cycles.
///
/// # Examples
///
/// ```
/// use ador_units::{Cycles, Frequency};
///
/// let gemm = Cycles::new(1_500_000);
/// let t = gemm / Frequency::from_ghz(1.5);
/// assert_eq!(t.as_millis(), 1.0);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Self = Self(0);

    /// Creates a count of `n` cycles.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Self(n)
    }

    /// Rounds a fractional cycle estimate up to whole cycles.
    #[inline]
    pub fn from_f64_ceil(n: f64) -> Self {
        Self(n.max(0.0).ceil() as u64)
    }

    /// Returns the raw count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if the count is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Saturating subtraction; clamps at zero.
    #[inline]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl core::ops::Add for Cycles {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl core::ops::Mul<u64> for Cycles {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl core::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, x| acc + x)
    }
}

/// A clock rate in hertz.
///
/// # Examples
///
/// ```
/// use ador_units::Frequency;
///
/// let a100 = Frequency::from_mhz(1500.0);
/// assert_eq!(a100.as_ghz(), 1.5);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a rate of `hz` hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not finite or not strictly positive.
    #[inline]
    pub fn from_hz(hz: f64) -> Self {
        assert!(
            hz.is_finite() && hz > 0.0,
            "frequency must be finite and positive, got {hz}"
        );
        Self(hz)
    }

    /// Creates a rate of `mhz` megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_hz(mhz * 1e6)
    }

    /// Creates a rate of `ghz` gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Self::from_hz(ghz * 1e9)
    }

    /// Returns the rate in hertz.
    #[inline]
    pub const fn as_hz(self) -> f64 {
        self.0
    }

    /// Returns the rate in megahertz.
    #[inline]
    pub fn as_mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Returns the rate in gigahertz.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// The duration of a single cycle.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.0)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2} GHz", self.as_ghz())
        } else {
            write!(f, "{:.0} MHz", self.as_mhz())
        }
    }
}

/// Elapsed time: cycle count divided by clock rate.
impl Div<Frequency> for Cycles {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Frequency) -> Seconds {
        Seconds::new(self.0 as f64 / rhs.as_hz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn millis_roundtrip() {
        let t = Seconds::from_millis(12.5);
        assert!((t.as_millis() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Seconds::new(2.0)), "2.000 s");
        assert_eq!(format!("{}", Seconds::from_millis(3.5)), "3.500 ms");
        assert_eq!(format!("{}", Seconds::from_micros(7.0)), "7.000 us");
        assert_eq!(format!("{}", Frequency::from_mhz(1593.0)), "1.59 GHz");
        assert_eq!(format!("{}", Frequency::from_mhz(950.0)), "950 MHz");
        assert_eq!(format!("{}", Cycles::new(3)), "3 cycles");
    }

    #[test]
    fn cycles_over_frequency_is_time() {
        let t = Cycles::new(3_000_000) / Frequency::from_ghz(1.0);
        assert!((t.as_millis() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn period_inverts_frequency() {
        let f = Frequency::from_ghz(2.0);
        assert!((f.period().get() - 0.5e-9).abs() < 1e-21);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = Seconds::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_hz(0.0);
    }

    proptest! {
        #[test]
        fn ceil_cycles_never_lose_work(x in 0.0f64..1e15) {
            prop_assert!(Cycles::from_f64_ceil(x).get() as f64 >= x);
        }

        #[test]
        fn higher_clock_is_faster(n in 1u64..1u64 << 40, ghz in 0.1f64..5.0) {
            let slow = Cycles::new(n) / Frequency::from_ghz(ghz);
            let fast = Cycles::new(n) / Frequency::from_ghz(ghz * 1.5);
            prop_assert!(fast < slow);
        }
    }
}
