//! Typed physical quantities used throughout the ADOR framework.
//!
//! Analytical accelerator models juggle bytes, bandwidths, cycle counts,
//! frequencies, FLOP counts and die areas. Mixing those up silently is the
//! classic source of simulator bugs, so every quantity gets a newtype
//! ([C-NEWTYPE]) with only the arithmetic that is dimensionally meaningful:
//!
//! * [`Bytes`] ÷ [`Bandwidth`] → [`Seconds`]
//! * [`Cycles`] ÷ [`Frequency`] → [`Seconds`]
//! * [`FlopCount`] ÷ [`FlopRate`] → [`Seconds`]
//! * scaling by dimensionless `f64` / [`Utilization`] everywhere.
//!
//! # Examples
//!
//! ```
//! use ador_units::{Bandwidth, Bytes, Frequency, Cycles};
//!
//! let weights = Bytes::from_gib(16);
//! let hbm = Bandwidth::from_tbps(2.0);
//! let stream_time = weights / hbm;
//! assert!((stream_time.as_millis() - 8.59).abs() < 0.01);
//!
//! let fill = Cycles::new(128) / Frequency::from_ghz(1.5);
//! assert!(fill.as_micros() < 0.1);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod macros;

mod area;
mod bytes;
mod compute;
pub mod conv;
mod ratio;
mod time;

pub use area::{Area, Power};
pub use bytes::{Bandwidth, Bytes};
pub use compute::{FlopCount, FlopRate, TokensPerSecond};
pub use ratio::Utilization;
pub use time::{Cycles, Frequency, Seconds};

#[cfg(test)]
mod conversion_tests {
    //! Cross-type conversions and the `scalar_quantity!`-generated surface.
    //! Every `f64`-backed quantity gets its arithmetic from that one macro,
    //! so exercising one instantiation per operator family covers them all;
    //! the conversion identities pin the unit definitions (KiB vs KB, Gb vs
    //! GB) that the rest of the framework silently relies on.

    use proptest::prelude::*;

    use crate::*;

    #[test]
    fn byte_prefixes_are_binary() {
        assert_eq!(Bytes::from_kib(1).get(), 1 << 10);
        assert_eq!(Bytes::from_mib(1).get(), 1 << 20);
        assert_eq!(Bytes::from_gib(1).get(), 1 << 30);
        assert_eq!(Bytes::from_gib(3).as_mib(), 3.0 * 1024.0);
        assert_eq!(Bytes::from_kib(2048).as_mib(), 2.0);
    }

    #[test]
    fn bandwidth_prefixes_are_decimal() {
        // Link/DRAM bandwidths are vendor-sheet GB/s, not GiB/s.
        assert_eq!(Bandwidth::from_gbps(1.0).as_bytes_per_sec(), 1e9);
        assert_eq!(Bandwidth::from_tbps(2.0).as_gbps(), 2000.0);
    }

    #[test]
    fn time_conversions_round_trip() {
        let s = Seconds::from_millis(1.5);
        assert_eq!(s.as_micros(), 1500.0);
        assert_eq!(Seconds::from_micros(250.0).as_millis(), 0.25);
        assert_eq!(Frequency::from_ghz(1.0).as_mhz(), 1000.0);
        assert_eq!(Frequency::from_mhz(500.0).period().as_micros(), 0.002);
    }

    #[test]
    fn flop_conversions_round_trip() {
        assert_eq!(FlopCount::from_macs(5).get(), 10.0); // 1 MAC = 2 FLOPs
        assert_eq!(FlopCount::from_tera(2.0).as_giga(), 2000.0);
        assert_eq!(FlopRate::from_tflops(1.5).as_gflops(), 1500.0);
        let tps = TokensPerSecond::from_interval(Seconds::from_millis(25.0));
        assert_eq!(tps.get(), 40.0);
        assert_eq!(tps.interval(), Seconds::from_millis(25.0));
    }

    #[test]
    fn dimensional_divisions_yield_seconds() {
        assert_eq!(
            Bytes::from_gib(2) / Bandwidth::from_bytes_per_sec(Bytes::from_gib(1).get() as f64),
            Seconds::new(2.0)
        );
        assert_eq!(
            Cycles::new(3_000_000) / Frequency::from_mhz(1500.0),
            Seconds::from_millis(2.0)
        );
        assert_eq!(
            FlopCount::from_tera(3.0) / FlopRate::from_tflops(1.0),
            Seconds::new(3.0)
        );
    }

    #[test]
    fn macro_generated_arithmetic_surface() {
        // One instantiation of `scalar_quantity!` (Seconds) exercised op by op.
        let a = Seconds::new(2.0);
        let b = Seconds::new(0.5);
        assert_eq!(a + b, Seconds::new(2.5));
        assert_eq!(a - b, Seconds::new(1.5));
        assert_eq!(a * 3.0, Seconds::new(6.0));
        assert_eq!(3.0 * a, Seconds::new(6.0));
        assert_eq!(a / 4.0, b);
        assert_eq!(a / b, 4.0); // same-dimension ratio is dimensionless
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert!(Seconds::ZERO.is_zero() && !a.is_zero());

        let mut acc = Seconds::ZERO;
        acc += a;
        acc -= b;
        assert_eq!(acc, Seconds::new(1.5));

        let owned: Seconds = [a, b, b].into_iter().sum();
        let by_ref: Seconds = [a, b, b].iter().sum();
        assert_eq!(owned, Seconds::new(3.0));
        assert_eq!(owned, by_ref);
    }

    #[test]
    fn derating_composes() {
        let half = Utilization::new(0.5);
        let fifth = Utilization::new(0.2);
        assert_eq!((half * fifth).get(), 0.1);
        assert_eq!(Bandwidth::from_gbps(100.0).derated(half).as_gbps(), 50.0);
        assert_eq!(FlopRate::from_tflops(10.0).derated(fifth).as_tflops(), 2.0);
        assert_eq!(Utilization::new_clamped(7.0), Utilization::FULL);
        assert_eq!(Utilization::new_clamped(-1.0), Utilization::IDLE);
    }

    #[test]
    fn saturating_and_checked_integer_ops() {
        assert_eq!(Bytes::new(5).saturating_sub(Bytes::new(9)), Bytes::ZERO);
        assert_eq!(Bytes::new(u64::MAX).checked_add(Bytes::new(1)), None);
        assert_eq!(
            Cycles::new(4).saturating_sub(Cycles::new(6)),
            Cycles::new(0)
        );
        assert_eq!(Cycles::from_f64_ceil(2.1).get(), 3);
    }

    proptest! {
        /// a·t streamed at rate b takes a·(t/b): time scales linearly in
        /// traffic for any bandwidth — the identity the roofline model uses.
        #[test]
        fn streaming_time_is_linear(gib in 1u64..64, scale in 1.0f64..8.0, gbps in 100.0f64..4000.0) {
            let bw = Bandwidth::from_gbps(gbps);
            let one = Bytes::from_gib(gib) / bw;
            let many = Bytes::from_f64(Bytes::from_gib(gib).get() as f64 * scale) / bw;
            prop_assert!((many.get() - one.get() * scale).abs() <= one.get() * scale * 1e-9);
        }

        /// Tokens/s ↔ interval is an exact involution away from zero.
        #[test]
        fn tps_interval_round_trips(ms in 0.1f64..500.0) {
            let interval = Seconds::from_millis(ms);
            let back = TokensPerSecond::from_interval(interval).interval();
            prop_assert!((back.as_millis() - ms).abs() < 1e-9);
        }
    }
}
