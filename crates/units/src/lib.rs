//! Typed physical quantities used throughout the ADOR framework.
//!
//! Analytical accelerator models juggle bytes, bandwidths, cycle counts,
//! frequencies, FLOP counts and die areas. Mixing those up silently is the
//! classic source of simulator bugs, so every quantity gets a newtype
//! ([C-NEWTYPE]) with only the arithmetic that is dimensionally meaningful:
//!
//! * [`Bytes`] ÷ [`Bandwidth`] → [`Seconds`]
//! * [`Cycles`] ÷ [`Frequency`] → [`Seconds`]
//! * [`FlopCount`] ÷ [`FlopRate`] → [`Seconds`]
//! * scaling by dimensionless `f64` / [`Utilization`] everywhere.
//!
//! # Examples
//!
//! ```
//! use ador_units::{Bandwidth, Bytes, Frequency, Cycles};
//!
//! let weights = Bytes::from_gib(16);
//! let hbm = Bandwidth::from_tbps(2.0);
//! let stream_time = weights / hbm;
//! assert!((stream_time.as_millis() - 8.59).abs() < 0.01);
//!
//! let fill = Cycles::new(128) / Frequency::from_ghz(1.5);
//! assert!(fill.as_micros() < 0.1);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod macros;

mod area;
mod bytes;
mod compute;
mod ratio;
mod time;

pub use area::{Area, Power};
pub use bytes::{Bandwidth, Bytes};
pub use compute::{FlopCount, FlopRate, TokensPerSecond};
pub use ratio::Utilization;
pub use time::{Cycles, Frequency, Seconds};
