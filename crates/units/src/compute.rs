//! Compute work ([`FlopCount`]), compute rate ([`FlopRate`]) and token
//! throughput ([`TokensPerSecond`]).

use core::fmt;
use core::ops::{Div, Mul};

use serde::{Deserialize, Serialize};

use crate::{Seconds, Utilization};

/// A count of floating-point operations (one multiply-accumulate = 2 FLOPs,
/// following datasheet convention).
///
/// # Examples
///
/// ```
/// use ador_units::FlopCount;
///
/// // One decoder GEMV: 2 * K * N FLOPs.
/// let gemv = FlopCount::from_macs(4096 * 14336);
/// assert_eq!(gemv.get(), 2.0 * 4096.0 * 14336.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct FlopCount(f64);

scalar_quantity!(FlopCount, "flops");

impl FlopCount {
    /// Creates a count of `flops` floating-point operations.
    ///
    /// # Panics
    ///
    /// Panics if `flops` is negative or not finite.
    #[inline]
    pub fn new(flops: f64) -> Self {
        assert!(
            flops.is_finite() && flops >= 0.0,
            "flop count must be finite and non-negative, got {flops}"
        );
        Self(flops)
    }

    /// Creates a count from `macs` multiply-accumulates (2 FLOPs each).
    #[inline]
    pub fn from_macs(macs: u64) -> Self {
        Self(macs as f64 * 2.0)
    }

    /// Creates a count of `tflops` · 10¹² operations.
    #[inline]
    pub fn from_tera(tflops: f64) -> Self {
        Self::new(tflops * 1e12)
    }

    /// Returns the count as multiply-accumulates.
    #[inline]
    pub fn as_macs(self) -> f64 {
        self.0 / 2.0
    }

    /// Returns the count in units of 10⁹ operations.
    #[inline]
    pub fn as_giga(self) -> f64 {
        self.0 / 1e9
    }

    /// Returns the count in units of 10¹² operations.
    #[inline]
    pub fn as_tera(self) -> f64 {
        self.0 / 1e12
    }
}

impl fmt::Display for FlopCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e12 {
            write!(f, "{:.2} TFLOP", self.as_tera())
        } else if self.0 >= 1e9 {
            write!(f, "{:.2} GFLOP", self.as_giga())
        } else {
            write!(f, "{:.0} FLOP", self.0)
        }
    }
}

/// A compute rate in FLOP/s.
///
/// # Examples
///
/// ```
/// use ador_units::{FlopCount, FlopRate};
///
/// let a100 = FlopRate::from_tflops(312.0);
/// let prefill = FlopCount::from_tera(16.4);
/// assert!((prefill / a100).as_millis() - 52.6 < 0.1);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct FlopRate(f64);

scalar_quantity!(FlopRate, "flops per second");

impl FlopRate {
    /// Creates a rate of `fps` FLOP/s.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is negative or not finite.
    #[inline]
    pub fn new(fps: f64) -> Self {
        assert!(
            fps.is_finite() && fps >= 0.0,
            "flop rate must be finite and non-negative, got {fps}"
        );
        Self(fps)
    }

    /// Creates a rate of `tflops` TFLOP/s.
    #[inline]
    pub fn from_tflops(tflops: f64) -> Self {
        Self::new(tflops * 1e12)
    }

    /// Returns the rate in TFLOP/s.
    #[inline]
    pub fn as_tflops(self) -> f64 {
        self.0 / 1e12
    }

    /// Returns the rate in GFLOP/s.
    #[inline]
    pub fn as_gflops(self) -> f64 {
        self.0 / 1e9
    }

    /// Derates this rate by a measured [`Utilization`].
    #[inline]
    pub fn derated(self, util: Utilization) -> Self {
        Self(self.0 * util.get())
    }
}

impl fmt::Display for FlopRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e12 {
            write!(f, "{:.1} TFLOPS", self.as_tflops())
        } else {
            write!(f, "{:.1} GFLOPS", self.as_gflops())
        }
    }
}

/// Execution time: work divided by rate.
impl Div<FlopRate> for FlopCount {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: FlopRate) -> Seconds {
        Seconds::new(self.0 / rhs.0)
    }
}

/// Work done in a time window.
impl Mul<Seconds> for FlopRate {
    type Output = FlopCount;
    #[inline]
    fn mul(self, rhs: Seconds) -> FlopCount {
        FlopCount::new(self.0 * rhs.get())
    }
}

/// Achieved rate: work divided by elapsed time.
impl Div<Seconds> for FlopCount {
    type Output = FlopRate;
    #[inline]
    fn div(self, rhs: Seconds) -> FlopRate {
        FlopRate::new(self.0 / rhs.get())
    }
}

/// Token generation throughput (the paper's TBT axis unit, tokens/s).
///
/// # Examples
///
/// ```
/// use ador_units::{Seconds, TokensPerSecond};
///
/// let tbt = Seconds::from_millis(20.0);
/// let rate = TokensPerSecond::from_interval(tbt);
/// assert_eq!(rate.get(), 50.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct TokensPerSecond(f64);

scalar_quantity!(TokensPerSecond, "tokens per second");

impl TokensPerSecond {
    /// Creates a throughput of `tps` tokens per second.
    ///
    /// # Panics
    ///
    /// Panics if `tps` is negative or not finite.
    #[inline]
    pub fn new(tps: f64) -> Self {
        assert!(
            tps.is_finite() && tps >= 0.0,
            "token rate must be finite and non-negative, got {tps}"
        );
        Self(tps)
    }

    /// Converts a time-between-tokens interval into tokens/s.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[inline]
    pub fn from_interval(interval: Seconds) -> Self {
        Self::new(interval.recip_rate())
    }

    /// Converts back into a time-between-tokens interval.
    ///
    /// # Panics
    ///
    /// Panics if the throughput is zero.
    #[inline]
    pub fn interval(self) -> Seconds {
        assert!(self.0 > 0.0, "cannot invert a zero token rate");
        Seconds::new(1.0 / self.0)
    }
}

impl fmt::Display for TokensPerSecond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} tok/s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn macs_are_two_flops() {
        assert_eq!(FlopCount::from_macs(10).get(), 20.0);
        assert_eq!(FlopCount::from_macs(10).as_macs(), 10.0);
    }

    #[test]
    fn work_over_rate_is_time() {
        let t = FlopCount::from_tera(312.0) / FlopRate::from_tflops(312.0);
        assert!((t.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn achieved_rate_roundtrip() {
        let work = FlopCount::from_tera(1.0);
        let rate = work / Seconds::from_millis(10.0);
        assert!((rate.as_tflops() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn tokens_per_second_inverts_tbt() {
        let rate = TokensPerSecond::from_interval(Seconds::from_millis(25.0));
        assert_eq!(rate.get(), 40.0);
        assert!((rate.interval().as_millis() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", FlopRate::from_tflops(312.0)), "312.0 TFLOPS");
        assert_eq!(format!("{}", TokensPerSecond::new(42.25)), "42.2 tok/s");
    }

    proptest! {
        #[test]
        fn derated_rate_never_exceeds_peak(tf in 0.1f64..2000.0, u in 0.0f64..=1.0) {
            let peak = FlopRate::from_tflops(tf);
            let derated = peak.derated(Utilization::new(u));
            prop_assert!(derated <= peak);
        }

        #[test]
        fn time_monotone_in_work(a in 1.0f64..1e15, b in 1.0f64..1e15, r in 1.0f64..1e15) {
            let rate = FlopRate::new(r);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(FlopCount::new(lo) / rate <= FlopCount::new(hi) / rate);
        }
    }
}
