//! Data volume ([`Bytes`]) and transfer rate ([`Bandwidth`]).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::{Seconds, Utilization};

/// A volume of data in bytes.
///
/// Backed by `u64` so that model/KV-cache sizes stay exact; fractional
/// intermediate results only appear once a [`Bandwidth`] is involved.
///
/// # Examples
///
/// ```
/// use ador_units::Bytes;
///
/// let kv_per_token = Bytes::from_kib(128);
/// let cache = kv_per_token * 1024;
/// assert_eq!(cache, Bytes::from_mib(128));
/// assert_eq!(format!("{cache}"), "128.00 MiB");
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Self = Self(0);

    /// Creates a quantity of `n` bytes.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Self(n)
    }

    /// Creates a quantity of `n` kibibytes (1024 B).
    #[inline]
    pub const fn from_kib(n: u64) -> Self {
        Self(n * 1024)
    }

    /// Creates a quantity of `n` mebibytes (1024 KiB).
    #[inline]
    pub const fn from_mib(n: u64) -> Self {
        Self(n * 1024 * 1024)
    }

    /// Creates a quantity of `n` gibibytes (1024 MiB).
    #[inline]
    pub const fn from_gib(n: u64) -> Self {
        Self(n * 1024 * 1024 * 1024)
    }

    /// Rounds a fractional byte count to the nearest whole byte.
    ///
    /// Useful when scaling a volume by a dimensionless factor.
    #[inline]
    pub fn from_f64(n: f64) -> Self {
        Self(n.max(0.0).round() as u64)
    }

    /// Returns the raw byte count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the volume in KiB.
    #[inline]
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Returns the volume in MiB.
    #[inline]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Returns the volume in GiB.
    #[inline]
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Returns `true` if the volume is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    #[inline]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Self) -> Option<Self> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Self(v)),
            None => None,
        }
    }

    /// Returns the larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB", self.as_gib())
        } else if b >= 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", self.as_mib())
        } else if b >= 1024.0 {
            write!(f, "{:.2} KiB", self.as_kib())
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl Add for Bytes {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Self;
    /// # Panics
    ///
    /// Panics in debug builds if the result would underflow (as `u64` does).
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Mul<Bytes> for u64 {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: Bytes) -> Bytes {
        Bytes(self * rhs.0)
    }
}

impl Mul<f64> for Bytes {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self::from_f64(self.0 as f64 * rhs)
    }
}

impl Div<u64> for Bytes {
    type Output = Self;
    #[inline]
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

/// Ratio of two volumes is dimensionless.
impl Div for Bytes {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Self) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl core::iter::Sum for Bytes {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, x| acc + x)
    }
}

impl<'a> core::iter::Sum<&'a Bytes> for Bytes {
    fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, x| acc + *x)
    }
}

impl From<u64> for Bytes {
    fn from(n: u64) -> Self {
        Self(n)
    }
}

/// A data-transfer rate.
///
/// Stored internally as bytes per second. Decimal (SI) units are used for the
/// rate constructors, matching hardware datasheets ("2 TB/s HBM" means
/// 2·10¹² B/s).
///
/// # Examples
///
/// ```
/// use ador_units::{Bandwidth, Bytes};
///
/// let hbm = Bandwidth::from_gbps(3350.0); // H100 HBM3e
/// let t = Bytes::from_gib(80) / hbm;
/// assert!((t.as_millis() - 25.6).abs() < 0.1);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a rate from raw bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is negative or not finite.
    #[inline]
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec >= 0.0,
            "bandwidth must be finite and non-negative, got {bytes_per_sec}"
        );
        Self(bytes_per_sec)
    }

    /// Creates a rate of `gbps` gigabytes (10⁹ B) per second.
    #[inline]
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bytes_per_sec(gbps * 1e9)
    }

    /// Creates a rate of `tbps` terabytes (10¹² B) per second.
    #[inline]
    pub fn from_tbps(tbps: f64) -> Self {
        Self::from_bytes_per_sec(tbps * 1e12)
    }

    /// Returns the rate in bytes per second.
    #[inline]
    pub const fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Returns the rate in GB/s (10⁹).
    #[inline]
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Returns the rate in TB/s (10¹²).
    #[inline]
    pub fn as_tbps(self) -> f64 {
        self.0 / 1e12
    }

    /// Bytes delivered per hardware cycle at clock `freq`.
    #[inline]
    pub fn bytes_per_cycle(self, freq: crate::Frequency) -> f64 {
        self.0 / freq.as_hz()
    }

    /// Derates this bandwidth by a measured [`Utilization`].
    #[inline]
    pub fn derated(self, util: Utilization) -> Self {
        Self(self.0 * util.get())
    }

    /// Returns `true` if the rate is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns the larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e12 {
            write!(f, "{:.2} TB/s", self.as_tbps())
        } else {
            write!(f, "{:.1} GB/s", self.as_gbps())
        }
    }
}

impl Add for Bandwidth {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for Bandwidth {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

/// Ratio of two rates is dimensionless.
impl Div for Bandwidth {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Self) -> f64 {
        self.0 / rhs.0
    }
}

/// Transfer time: volume divided by rate.
impl Div<Bandwidth> for Bytes {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Bandwidth) -> Seconds {
        Seconds::new(self.0 as f64 / rhs.0)
    }
}

/// Volume moved in a time window (fractional bytes rounded to nearest).
impl Mul<Seconds> for Bandwidth {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: Seconds) -> Bytes {
        Bytes::from_f64(self.0 * rhs.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn byte_constructors_compose() {
        assert_eq!(Bytes::from_kib(1), Bytes::new(1024));
        assert_eq!(Bytes::from_mib(1), Bytes::from_kib(1024));
        assert_eq!(Bytes::from_gib(1), Bytes::from_mib(1024));
    }

    #[test]
    fn byte_display_picks_scale() {
        assert_eq!(format!("{}", Bytes::new(17)), "17 B");
        assert_eq!(format!("{}", Bytes::from_kib(2)), "2.00 KiB");
        assert_eq!(format!("{}", Bytes::from_gib(3)), "3.00 GiB");
    }

    #[test]
    fn transfer_time_is_volume_over_rate() {
        let t = Bytes::new(2_000_000_000) / Bandwidth::from_gbps(2.0);
        assert!((t.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_derating_scales_linearly() {
        let bw = Bandwidth::from_tbps(2.0);
        let derated = bw.derated(Utilization::new(0.55));
        assert!((derated.as_tbps() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn bytes_per_cycle_matches_paper_formula() {
        // Paper §V-A: data_size_per_cycle = memory_bandwidth / core_frequency.
        let per_cycle = Bandwidth::from_tbps(2.0).bytes_per_cycle(crate::Frequency::from_ghz(1.5));
        assert!((per_cycle - 1333.33).abs() < 0.01);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Bytes::new(1).saturating_sub(Bytes::new(5)), Bytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bandwidth_rejected() {
        let _ = Bandwidth::from_bytes_per_sec(-1.0);
    }

    proptest! {
        #[test]
        fn bytes_add_commutes(a in 0u64..1 << 40, b in 0u64..1 << 40) {
            prop_assert_eq!(Bytes::new(a) + Bytes::new(b), Bytes::new(b) + Bytes::new(a));
        }

        #[test]
        fn transfer_time_positive(vol in 1u64..1 << 45, gbps in 1.0f64..10_000.0) {
            let t = Bytes::new(vol) / Bandwidth::from_gbps(gbps);
            prop_assert!(t.get() > 0.0);
        }

        #[test]
        fn faster_link_never_slower(vol in 1u64..1 << 45, gbps in 1.0f64..5_000.0) {
            let slow = Bytes::new(vol) / Bandwidth::from_gbps(gbps);
            let fast = Bytes::new(vol) / Bandwidth::from_gbps(gbps * 2.0);
            prop_assert!(fast.get() <= slow.get());
        }

        #[test]
        fn roundtrip_bandwidth_volume(gbps in 0.001f64..10_000.0, secs in 0.001f64..100.0) {
            let bw = Bandwidth::from_gbps(gbps);
            let moved = bw * Seconds::new(secs);
            let back = moved / bw;
            // Rounding to whole bytes costs at most one byte of error.
            prop_assert!((back.get() - secs).abs() <= 1.0 / bw.as_bytes_per_sec() + 1e-9);
        }
    }
}
