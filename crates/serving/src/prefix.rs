//! Prefix-aware KV cache reuse: a trie over token-block hashes with
//! refcounted shared blocks and LRU eviction.
//!
//! Production engines (vLLM's automatic prefix caching, SGLang's
//! RadixAttention) skip the prefill of prompt prefixes whose KV is already
//! resident — system prompts and multi-turn chat histories make this a
//! first-order lever on prefill cost. The simulator models the same
//! mechanism at token-block granularity:
//!
//! - A prompt's content is identified by its
//!   [`Request::prefix_group`](crate::Request::prefix_group): requests in
//!   the same group share a
//!   deterministic per-block hash chain, so a follow-up turn whose prompt
//!   extends the previous turn's context matches the previous turns'
//!   blocks exactly.
//! - Blocks live in a trie keyed by successive block hashes. Matching a
//!   prefix acquires a reference on every matched block; shared blocks are
//!   charged against the KV budget **once**, no matter how many live
//!   requests hold them.
//! - Blocks released by completed (or preempted) requests stay resident
//!   with refcount 0 until KV pressure evicts them, least-recently-used
//!   leaf first. Because every holder of a block also holds all its
//!   ancestors, a refcount-0 block never has a referenced descendant, so
//!   leaf-first eviction can always free the entire dead tail of a chain.
//!
//! The cache deliberately owns no budget of its own: it shares the
//! engine's token-granular KV budget, and the [`Engine`](crate::Engine)
//! drives eviction (`evict`) before resorting to preemption.

use std::collections::BTreeMap;

use ador_units::conv;

use serde::Serialize;

/// Tokens per prefix-cache block. Matching, sharing and eviction all
/// happen at this granularity; a prompt's trailing partial block is never
/// shared.
pub const PREFIX_BLOCK_TOKENS: usize = 64;

/// Root sentinel index: the trie node that holds no block.
const ROOT: usize = 0;

/// Free-slot marker for recycled trie nodes.
const DEAD: u64 = u64::MAX;

/// Lifetime counters of a [`PrefixCache`], in tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct PrefixCacheStats {
    /// Prompt tokens whose prefill was skipped because their block was
    /// already resident at admission.
    pub hit_tokens: usize,
    /// Full-block prompt tokens looked up but not found (the shareable
    /// part of every cache-visible prompt that had to be prefilled).
    pub miss_tokens: usize,
    /// Tokens of cached blocks evicted under KV pressure.
    pub evicted_tokens: usize,
    /// Tokens of blocks inserted into the cache.
    pub inserted_tokens: usize,
}

impl PrefixCacheStats {
    /// Block hit rate over the shareable (full-block) prompt tokens seen
    /// so far: `hit / (hit + miss)`, or 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let seen = self.hit_tokens + self.miss_tokens;
        if seen == 0 {
            0.0
        } else {
            conv::f64_from_usize(self.hit_tokens) / conv::f64_from_usize(seen)
        }
    }
}

/// One cached block: a node of the prefix trie.
#[derive(Debug, Clone)]
struct Node {
    /// Block hash (position in the owning group's chain is implied by
    /// trie depth). [`DEAD`] marks a recycled slab slot.
    hash: u64,
    parent: usize,
    /// Children keyed by block hash. A `BTreeMap` so any future walk
    /// of a node's children is order-defined (the determinism
    /// contract; see `ador-lint`) — lookups here are by exact hash.
    children: BTreeMap<u64, usize>,
    /// Live requests holding this block. Every holder of a block holds
    /// all its ancestors too, so `refs == 0` implies no descendant is
    /// referenced.
    refs: usize,
    /// Logical LRU clock value of the last acquire/insert touching this
    /// block.
    last_use: u64,
}

/// A trie of refcounted, LRU-evictable KV blocks shared across requests.
///
/// See the module-level docs above for the sharing and eviction model.
/// All sizes are in tokens; every resident block accounts for exactly
/// [`PREFIX_BLOCK_TOKENS`] of the engine's KV budget.
#[derive(Debug, Clone)]
pub struct PrefixCache {
    /// Node slab; index [`ROOT`] is the sentinel root (no block).
    nodes: Vec<Node>,
    /// Recycled slab slots.
    free_slots: Vec<usize>,
    /// Live (resident) blocks.
    live: usize,
    /// Live blocks with `refs > 0`.
    referenced: usize,
    /// Logical clock for LRU ordering; bumped once per acquire/extend.
    clock: u64,
    stats: PrefixCacheStats,
}

impl Default for PrefixCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixCache {
    /// Handle of the empty prefix: the trie root, which holds no block.
    /// [`PrefixCache::release`] on it is a no-op, so requests that match
    /// nothing can hold it unconditionally.
    pub const ROOT: usize = ROOT;

    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node {
                hash: 0,
                parent: ROOT,
                children: BTreeMap::new(),
                refs: 0,
                last_use: 0,
            }],
            free_slots: Vec::new(),
            live: 0,
            referenced: 0,
            clock: 0,
            stats: PrefixCacheStats::default(),
        }
    }

    /// Tokens of all resident blocks (shared blocks counted once) — the
    /// cache's contribution to the engine's `kv_in_use`.
    pub fn resident_tokens(&self) -> usize {
        self.live * PREFIX_BLOCK_TOKENS
    }

    /// Tokens of resident blocks no live request references — what
    /// [`PrefixCache::evict`] could free right now.
    pub fn evictable_tokens(&self) -> usize {
        (self.live - self.referenced) * PREFIX_BLOCK_TOKENS
    }

    /// Lifetime hit/miss/evict/insert counters.
    pub fn stats(&self) -> PrefixCacheStats {
        self.stats
    }

    /// Matches `group`'s hash chain against the trie, acquiring a
    /// reference on every matched block, and returns the matched token
    /// count plus the deepest matched node (the handle later passed to
    /// [`PrefixCache::extend`] and [`PrefixCache::release`]).
    ///
    /// At most `want_tokens` rounded down to whole blocks is matched; the
    /// engine passes `input_tokens - 1` so at least one prompt token is
    /// always recomputed (the token whose logits produce the first output
    /// token cannot be skipped).
    ///
    /// Hit/miss counters are **not** bumped here — the engine may roll an
    /// acquire back (via [`PrefixCache::release`]) when the matched job
    /// cannot be admitted this iteration, so it reports the lookup with
    /// [`PrefixCache::record_lookup`] only once admission sticks.
    pub fn acquire(&mut self, group: u64, want_tokens: usize) -> (usize, usize) {
        self.clock += 1;
        let want_blocks = want_tokens / PREFIX_BLOCK_TOKENS;
        let mut node = ROOT;
        let mut matched = 0usize;
        while matched < want_blocks {
            let Some(&child) = self.nodes[node].children.get(&block_hash(group, matched)) else {
                break;
            };
            node = child;
            if self.nodes[node].refs == 0 {
                self.referenced += 1;
            }
            self.nodes[node].refs += 1;
            self.nodes[node].last_use = self.clock;
            matched += 1;
        }
        (matched * PREFIX_BLOCK_TOKENS, node)
    }

    /// Records the outcome of one admission-time lookup in the lifetime
    /// counters: `hit_tokens` skipped by resident blocks, `miss_tokens`
    /// of shareable prompt that had to be prefilled.
    pub fn record_lookup(&mut self, hit_tokens: usize, miss_tokens: usize) {
        self.stats.hit_tokens += hit_tokens;
        self.stats.miss_tokens += miss_tokens;
    }

    /// Extends the chain held at `node` (depth `held_tokens /
    /// [`PREFIX_BLOCK_TOKENS`]`) with `group`'s blocks up to
    /// `context_tokens`, acquiring a reference on each. Returns the new
    /// deepest node and the tokens of **freshly created** blocks — blocks
    /// another request already inserted are deduplicated (the caller's
    /// private copy of those tokens is redundant and must be released
    /// from the KV ledger).
    pub fn extend(
        &mut self,
        group: u64,
        node: usize,
        held_tokens: usize,
        context_tokens: usize,
    ) -> (usize, usize) {
        self.clock += 1;
        let mut depth = held_tokens / PREFIX_BLOCK_TOKENS;
        debug_assert_eq!(held_tokens % PREFIX_BLOCK_TOKENS, 0);
        let target = context_tokens / PREFIX_BLOCK_TOKENS;
        let mut node = node;
        let mut fresh = 0usize;
        while depth < target {
            let hash = block_hash(group, depth);
            let child = match self.nodes[node].children.get(&hash) {
                Some(&c) => c,
                None => {
                    let c = self.alloc(hash, node);
                    self.nodes[node].children.insert(hash, c);
                    self.live += 1;
                    fresh += 1;
                    self.stats.inserted_tokens += PREFIX_BLOCK_TOKENS;
                    c
                }
            };
            node = child;
            if self.nodes[node].refs == 0 {
                self.referenced += 1;
            }
            self.nodes[node].refs += 1;
            self.nodes[node].last_use = self.clock;
            depth += 1;
        }
        (node, fresh * PREFIX_BLOCK_TOKENS)
    }

    /// Releases one reference on every block from `node` up to the root
    /// (the holder is dropping its whole chain). Released blocks stay
    /// resident until evicted.
    pub fn release(&mut self, mut node: usize) {
        while node != ROOT {
            let n = &mut self.nodes[node];
            debug_assert!(n.refs > 0, "prefix block released more times than held");
            n.refs -= 1;
            if n.refs == 0 {
                self.referenced -= 1;
            }
            node = n.parent;
        }
    }

    /// Evicts least-recently-used unreferenced leaf blocks until at least
    /// `want_tokens` are freed or nothing evictable remains. Returns the
    /// tokens actually freed.
    ///
    /// One slab scan seeds a min-heap of evictable leaves; evicting a
    /// leaf that exposes its parent pushes the parent, so a whole dead
    /// chain drains in LRU order without rescanning — `O(n)` once per
    /// call instead of per block.
    pub fn evict(&mut self, want_tokens: usize) -> usize {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        if want_tokens == 0 || self.live == self.referenced {
            return 0;
        }
        let mut candidates: BinaryHeap<Reverse<(u64, usize)>> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|&(i, n)| i != ROOT && n.hash != DEAD && n.refs == 0 && n.children.is_empty())
            .map(|(i, n)| Reverse((n.last_use, i)))
            .collect();
        let mut freed = 0usize;
        while freed < want_tokens {
            let Some(Reverse((_, v))) = candidates.pop() else {
                break;
            };
            let (hash, parent) = (self.nodes[v].hash, self.nodes[v].parent);
            self.nodes[parent].children.remove(&hash);
            self.nodes[v].hash = DEAD;
            self.nodes[v].children = BTreeMap::new();
            self.free_slots.push(v);
            self.live -= 1;
            freed += PREFIX_BLOCK_TOKENS;
            self.stats.evicted_tokens += PREFIX_BLOCK_TOKENS;
            // The eviction may have exposed a new dead leaf above it.
            let p = &self.nodes[parent];
            if parent != ROOT && p.refs == 0 && p.children.is_empty() {
                candidates.push(Reverse((p.last_use, parent)));
            }
        }
        freed
    }

    fn alloc(&mut self, hash: u64, parent: usize) -> usize {
        let node = Node {
            hash,
            parent,
            children: BTreeMap::new(),
            refs: 0,
            last_use: self.clock,
        };
        match self.free_slots.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }
}

/// The deterministic content hash of `group`'s `index`-th token block
/// (splitmix64 over the pair). Two requests share KV exactly where their
/// groups and block positions coincide — which is how a follow-up turn's
/// prompt, extending the previous turn's context, matches its blocks.
fn block_hash(group: u64, index: usize) -> u64 {
    splitmix64(
        group.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(
            conv::u64_from_usize(index)
                .wrapping_add(1)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9),
        ),
    )
}

/// The splitmix64 finalizer: a cheap, well-mixed `u64 -> u64` hash. The
/// single hashing primitive behind block identities here and session
/// identities in `ador-cluster` — keep it the only copy.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: usize = PREFIX_BLOCK_TOKENS;

    #[test]
    fn cold_lookup_misses_and_insert_then_hits() {
        let mut c = PrefixCache::new();
        let (matched, node) = c.acquire(7, 4 * B);
        assert_eq!(matched, 0);
        assert_eq!(node, PrefixCache::ROOT);

        let (leaf, fresh) = c.extend(7, node, 0, 4 * B);
        assert_eq!(fresh, 4 * B);
        assert_eq!(c.resident_tokens(), 4 * B);
        assert_eq!(c.evictable_tokens(), 0, "holder still references blocks");

        // A second request of the same group now hits the whole span.
        let (matched, node2) = c.acquire(7, 4 * B + B - 1);
        assert_eq!(matched, 4 * B);
        assert_eq!(node2, leaf);
        // Shared blocks stay charged once.
        assert_eq!(c.resident_tokens(), 4 * B);
    }

    #[test]
    fn groups_do_not_share() {
        let mut c = PrefixCache::new();
        let (_, node) = c.acquire(1, 2 * B);
        c.extend(1, node, 0, 2 * B);
        let (matched, _) = c.acquire(2, 2 * B);
        assert_eq!(matched, 0, "distinct groups have distinct hash chains");
        assert_eq!(c.resident_tokens(), 2 * B);
    }

    #[test]
    fn partial_blocks_never_match() {
        let mut c = PrefixCache::new();
        let (_, node) = c.acquire(3, B);
        c.extend(3, node, 0, 3 * B);
        // Wanting less than one block matches nothing.
        let (matched, _) = c.acquire(3, B - 1);
        assert_eq!(matched, 0);
        // Wanting 2.5 blocks matches 2.
        let (matched, _) = c.acquire(3, 2 * B + B / 2);
        assert_eq!(matched, 2 * B);
    }

    #[test]
    fn release_makes_blocks_evictable_lru_leaf_first() {
        let mut c = PrefixCache::new();
        let (_, n) = c.acquire(1, 0);
        let (leaf1, _) = c.extend(1, n, 0, 3 * B);
        let (_, n) = c.acquire(2, 0);
        let (leaf2, _) = c.extend(2, n, 0, 2 * B);
        assert_eq!(c.resident_tokens(), 5 * B);
        assert_eq!(c.evictable_tokens(), 0);
        assert_eq!(c.evict(B), 0, "referenced blocks are not evictable");

        c.release(leaf1); // group 1 (older) fully dead
        assert_eq!(c.evictable_tokens(), 3 * B);
        // Touch group 2's chain so it is recent, then free it too.
        let (m, h2) = c.acquire(2, 2 * B);
        assert_eq!(m, 2 * B);
        c.release(h2);
        c.release(leaf2);
        assert_eq!(c.evictable_tokens(), 5 * B);

        // Evicting 3 blocks takes group 1's chain (least recently used),
        // leaf first, leaving group 2 intact.
        assert_eq!(c.evict(3 * B), 3 * B);
        let (matched, _) = c.acquire(2, 2 * B);
        assert_eq!(matched, 2 * B, "group 2 survived");
        let (matched, _) = c.acquire(1, 3 * B);
        assert_eq!(matched, 0, "group 1 was evicted");
    }

    #[test]
    fn eviction_never_frees_more_chains_than_needed() {
        let mut c = PrefixCache::new();
        let (_, n) = c.acquire(9, 0);
        let (leaf, _) = c.extend(9, n, 0, 4 * B);
        c.release(leaf);
        // Ask for half a block: one block is evicted (block granularity).
        assert_eq!(c.evict(B / 2), B);
        assert_eq!(c.resident_tokens(), 3 * B);
        // The surviving prefix still matches.
        let (matched, h) = c.acquire(9, 4 * B);
        assert_eq!(matched, 3 * B);
        c.release(h);
    }

    #[test]
    fn extend_deduplicates_concurrent_inserts() {
        let mut c = PrefixCache::new();
        let (_, a) = c.acquire(5, 0);
        let (_, b) = c.acquire(5, 0);
        let (_, fresh_a) = c.extend(5, a, 0, 3 * B);
        let (_, fresh_b) = c.extend(5, b, 0, 3 * B);
        assert_eq!(fresh_a, 3 * B);
        assert_eq!(fresh_b, 0, "second insert found every block resident");
        assert_eq!(c.resident_tokens(), 3 * B);
        assert_eq!(c.stats().inserted_tokens, 3 * B);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut c = PrefixCache::new();
        for round in 0..4u64 {
            let (_, n) = c.acquire(round, 0);
            let (leaf, _) = c.extend(round, n, 0, 2 * B);
            c.release(leaf);
            assert_eq!(c.evict(2 * B), 2 * B);
        }
        // 4 rounds of 2 blocks reused the same two slots (plus root).
        assert!(c.nodes.len() <= 3, "slab grew to {}", c.nodes.len());
        assert_eq!(c.resident_tokens(), 0);
        assert_eq!(c.stats().evicted_tokens, 8 * B);
    }

    #[test]
    fn hit_rate_tracks_recorded_lookups() {
        let mut c = PrefixCache::new();
        assert_eq!(c.stats().hit_rate(), 0.0);
        let (matched, n) = c.acquire(1, 2 * B);
        c.record_lookup(matched, 2 * B - matched); // 2 blocks missed
        c.extend(1, n, 0, 2 * B);
        let (matched, _) = c.acquire(1, 2 * B);
        c.record_lookup(matched, 2 * B - matched); // 2 blocks hit
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.stats().hit_tokens, 2 * B);
        assert_eq!(c.stats().miss_tokens, 2 * B);
    }
}
