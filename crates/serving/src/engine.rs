//! The incremental engine core: the continuous-batching scheduler of
//! [`ServingSim`](crate::ServingSim), exposed one iteration at a time.
//!
//! [`ServingSim::run_requests`](crate::ServingSim::run_requests) drives an
//! [`Engine`] to completion internally; multi-replica drivers (the
//! `ador-cluster` crate) instead interleave several engines on a shared
//! event clock: submit a request to one replica, [`Engine::step_until`]
//! the others up to the next arrival, and route based on the live
//! [`Engine::queue_depth`] / [`Engine::kv_in_use`] state.
//!
//! The scheduling semantics — chunked prefill against a shared
//! per-iteration token budget, token-granular KV accounting, and
//! youngest-first preemption with recompute-on-resume — are documented on
//! [`crate::ServingSim`]; this module only changes *who advances the
//! clock*, not what one iteration does.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use ador_perf::Evaluator;
use ador_spec::{DraftStream, SpeculationPolicy, Verify};
use ador_telemetry::{
    Event, EventDetail, EventKind, EventSink, EventSinkKind, FlightRecorder, SeriesCollector,
    SeriesSample, VecSink,
};
use ador_units::{conv, Seconds};

use crate::prefix::{PrefixCache, PrefixCacheStats, PREFIX_BLOCK_TOKENS};
use crate::sim::{SchedulerPolicy, SimConfig, SimError};
use crate::{EngineCounters, QosReport, Request, RequestOutcome};

const CTX_BUCKET: usize = 128;

/// Per-request scheduler state that survives preemption.
#[derive(Debug)]
struct Job {
    request: Request,
    /// Tokens generated so far. Survives preemption: the tokens are not
    /// re-emitted, but their KV is recomputed on resume.
    generated: usize,
    first_token_at: Option<Seconds>,
    last_token_at: Option<Seconds>,
    tbt_sum: Seconds,
    tbt_max: Seconds,
    tbt_count: usize,
    /// The request's seeded speculative-decoding acceptance stream.
    /// Survives preemption with the job, so a resumed request continues
    /// its draw sequence instead of replaying it.
    draft: DraftStream,
    /// Whether the job has ever been preempted — a later admission is a
    /// resume, not a first admit (telemetry only; scheduling ignores it).
    preempted: bool,
}

impl Job {
    fn new(request: Request, spec_seed: u64) -> Self {
        let draft = DraftStream::new(spec_seed, request.id);
        Self {
            request,
            generated: 0,
            first_token_at: None,
            last_token_at: None,
            tbt_sum: Seconds::ZERO,
            tbt_max: Seconds::ZERO,
            tbt_count: 0,
            draft,
            preempted: false,
        }
    }

    /// Mean inter-token gap observed so far, or `None` until the job has
    /// emitted a second token — the slack signal `SloAdaptive`
    /// speculation budgets depth against.
    fn mean_tbt_so_far(&self) -> Option<Seconds> {
        (self.tbt_count > 0).then(|| self.tbt_sum / conv::f64_from_usize(self.tbt_count))
    }

    /// Tokens a (re)admission must prefill before decoding: the prompt plus
    /// any previously generated tokens whose KV was dropped at preemption.
    fn prefill_target(&self) -> usize {
        self.request.input_tokens + self.generated
    }

    /// Records one emitted token at `now`. The first token sets TTFT; every
    /// later one contributes the gap since the previous token to the TBT
    /// stats — including any preemption stall.
    fn emit_token(&mut self, now: Seconds) {
        if self.first_token_at.is_none() {
            self.first_token_at = Some(now);
        } else if let Some(last) = self.last_token_at {
            let gap = now - last;
            self.tbt_sum += gap;
            self.tbt_max = self.tbt_max.max(gap);
            self.tbt_count += 1;
        }
        self.last_token_at = Some(now);
        self.generated += 1;
    }

    fn done(&self) -> bool {
        self.generated >= self.request.output_tokens
    }
}

/// An admitted request: its job plus prefill progress and resident KV.
#[derive(Debug)]
struct Active {
    job: Job,
    /// Tokens prefilled so far in the current pass.
    prefilled: usize,
    /// Tokens the current pass must prefill before decoding (prompt plus
    /// preemption recompute, minus the prefix-cache hit at admission).
    prefill_target: usize,
    /// Private KV tokens resident for this request: prefilled tokens not
    /// covered by shared cache blocks, plus decoded tokens.
    kv_held: usize,
    /// Tokens covered by the prefix-cache blocks this request references
    /// (charged to the shared pool, not to `kv_held`).
    cached_tokens: usize,
    /// Deepest prefix-cache block held ([`PrefixCache::ROOT`] when the
    /// request holds none).
    cache_node: usize,
    /// Whether a `Commit` event was emitted since this admission or
    /// resume — telemetry-only (never read by the scheduler): under
    /// [`EventDetail::Lifecycle`] only the phase-boundary commit and
    /// draft-carrying verify steps reach the sink.
    traced_commit: bool,
}

impl Active {
    /// `imported` tokens arrive with their KV already materialized (a
    /// disaggregated handoff): they join `kv_held` at admission and are
    /// excluded from the prefill pass alongside the prefix-cache hit.
    fn admit(job: Job, cached_tokens: usize, cache_node: usize, imported: usize) -> Self {
        let prefill_target = job.prefill_target() - cached_tokens - imported;
        Self {
            job,
            prefilled: 0,
            prefill_target,
            kv_held: imported,
            cached_tokens,
            cache_node,
            traced_commit: false,
        }
    }

    fn is_decoding(&self) -> bool {
        self.prefilled == self.prefill_target
    }

    /// Full resident context: private KV plus shared prefix blocks.
    fn context(&self) -> usize {
        self.kv_held + self.cached_tokens
    }
}

/// What one [`Engine::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepEvent {
    /// Nothing to do: the engine is fully drained, or (under
    /// [`Engine::step_bounded`]) its next arrival lies beyond the horizon.
    Idle,
    /// The engine was empty and its clock jumped to the next pending
    /// arrival; no work was performed.
    Jumped,
    /// One fused engine iteration ran.
    Worked {
        /// Wall-clock duration of the iteration.
        step_time: Seconds,
        /// Requests that emitted their final token this iteration.
        completed: usize,
    },
}

/// The incremental scheduler core: the state of one engine replica,
/// advanced one continuous-batching iteration per [`Engine::step`] call.
///
/// Obtained from [`ServingSim::engine`](crate::ServingSim::engine).
/// Requests enter via [`Engine::submit`] (any time, in any arrival order)
/// and leave as [`RequestOutcome`]s once their final token is emitted.
///
/// # Examples
///
/// ```
/// use ador_serving::{Request, ServingSim, SimConfig, StepEvent};
/// use ador_perf::Deployment;
/// use ador_units::Seconds;
///
/// let arch = ador_baselines::ador_table3();
/// let model = ador_model::presets::llama3_8b();
/// let sim = ServingSim::new(&arch, &model, Deployment::single_device(),
///                           SimConfig::new(1.0, 8))?;
/// let mut engine = sim.engine();
/// engine.submit(Request::new(0, Seconds::ZERO, 128, 4))?;
/// while engine.step()? != StepEvent::Idle {}
/// assert_eq!(engine.completed(), 1);
/// # Ok::<(), ador_serving::SimError>(())
/// ```
pub struct Engine<'a> {
    evaluator: Evaluator<'a>,
    cfg: SimConfig,
    kv_budget_tokens: usize,
    /// Memoized step-latency evaluations keyed by (batch, context
    /// bucket). `BTreeMap`s by the determinism contract (`ador-lint`):
    /// only exact-key lookups today, but an unordered map here is one
    /// refactor away from order-dependent replay.
    decode_cache: BTreeMap<(usize, usize), Seconds>,
    prefill_cache: BTreeMap<(usize, usize), Seconds>,

    /// Submitted requests that have not yet reached the admission queue
    /// (their arrival lies at or beyond the current clock), sorted by
    /// arrival.
    pending: VecDeque<Request>,
    /// The admission queue: arrived but not yet admitted jobs. Preempted
    /// jobs re-enter at the front.
    waiting: VecDeque<Job>,
    active: Vec<Active>,
    outcomes: Vec<RequestOutcome>,
    now: Seconds,
    kv_in_use: usize,
    submitted: usize,

    /// Prefix-aware KV reuse (`None` when [`SimConfig::prefix_caching`]
    /// is off). Resident cache blocks are part of `kv_in_use`.
    cache: Option<PrefixCache>,

    steps: usize,
    batch_samples: f64,
    queue_samples: f64,
    peak_batch: usize,
    peak_queue: usize,
    peak_kv: usize,
    preemptions: usize,
    prefilled_tokens: usize,
    generated_tokens: usize,
    drafted_tokens: usize,
    accepted_tokens: usize,
    rejected_tokens: usize,
    prev_step_prefilled: bool,

    /// Running total of committed-but-not-resident prefill demand, kept in
    /// lockstep with every queue transition so [`Engine::backlog_tokens`]
    /// is O(1). Debug builds check it against a recompute-from-scratch
    /// oracle after every iteration.
    backlog: usize,

    /// Telemetry event sink — `None` when tracing is off, in which case
    /// the engine performs no per-event work at all.
    sink: Option<EngineSink>,
    /// Windowed time-series collector — `None` when off.
    series: Option<SeriesCollector>,
    /// Span-scoped self-profile of the step stages (compiled out — and
    /// therefore bit-identical — without the `profile` feature).
    #[cfg(feature = "profile")]
    profile: crate::profile::StepProfile,
}

/// Monomorphized storage for the built-in sinks. The engine emits one
/// event per committed token, so at fleet scale `record` runs tens of
/// millions of times: keeping the built-ins as concrete variants lets
/// that call inline instead of going through `Box<dyn EventSink>`
/// virtual dispatch (measured ~2x wall-clock on traced 128-replica
/// runs). Caller-installed sinks still ride along boxed.
#[derive(Debug)]
enum EngineSink {
    Log(VecSink),
    Ring(FlightRecorder),
    Custom(Box<dyn EventSink>),
}

impl EngineSink {
    #[inline]
    fn record(&mut self, event: &Event) {
        match self {
            EngineSink::Log(sink) => sink.record(event),
            EngineSink::Ring(sink) => sink.record(event),
            EngineSink::Custom(sink) => sink.record(event),
        }
    }

    fn as_dyn_mut(&mut self) -> &mut (dyn EventSink + 'static) {
        match self {
            EngineSink::Log(sink) => sink,
            EngineSink::Ring(sink) => sink,
            EngineSink::Custom(sink) => sink.as_mut(),
        }
    }

    fn into_boxed(self) -> Box<dyn EventSink> {
        match self {
            EngineSink::Log(sink) => Box::new(sink),
            EngineSink::Ring(sink) => Box::new(sink),
            EngineSink::Custom(sink) => sink,
        }
    }
}

impl<'a> Engine<'a> {
    pub(crate) fn from_parts(
        evaluator: Evaluator<'a>,
        cfg: SimConfig,
        kv_budget_tokens: usize,
    ) -> Self {
        Self {
            evaluator,
            cfg,
            kv_budget_tokens,
            decode_cache: BTreeMap::new(),
            prefill_cache: BTreeMap::new(),
            pending: VecDeque::new(),
            waiting: VecDeque::new(),
            active: Vec::new(),
            outcomes: Vec::new(),
            now: Seconds::ZERO,
            kv_in_use: 0,
            submitted: 0,
            cache: cfg.prefix_caching.then(PrefixCache::new),
            steps: 0,
            batch_samples: 0.0,
            queue_samples: 0.0,
            peak_batch: 0,
            peak_queue: 0,
            peak_kv: 0,
            preemptions: 0,
            prefilled_tokens: 0,
            generated_tokens: 0,
            drafted_tokens: 0,
            accepted_tokens: 0,
            rejected_tokens: 0,
            prev_step_prefilled: false,
            backlog: 0,
            sink: match cfg.telemetry.events {
                EventSinkKind::Off => None,
                EventSinkKind::Log => Some(EngineSink::Log(VecSink::new())),
                EventSinkKind::Ring { capacity } => {
                    Some(EngineSink::Ring(FlightRecorder::new(capacity)))
                }
            },
            series: cfg.telemetry.series_interval.map(SeriesCollector::new),
            #[cfg(feature = "profile")]
            profile: crate::profile::StepProfile::default(),
        }
    }

    /// The accumulated per-stage self-profile of every step this engine
    /// ran (see [`crate::profile`]).
    #[cfg(feature = "profile")]
    pub fn step_profile(&self) -> &crate::profile::StepProfile {
        &self.profile
    }

    /// Records `kind` for `request` at sim time `time` — a no-op (not even
    /// an allocation) when tracing is off. Free-standing over the sink
    /// field so call sites holding `&mut self.active[i]` can still emit.
    #[inline]
    fn emit(sink: &mut Option<EngineSink>, time: Seconds, request: u64, kind: EventKind) {
        if let Some(sink) = sink.as_mut() {
            sink.record(&Event {
                time,
                request,
                kind,
            });
        }
    }

    /// Submits a request. Arrivals may be submitted in any order (the
    /// pending set stays sorted) and may lie in the engine's past, in which
    /// case the request joins the admission queue at the next step.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] for a zero-length prompt or
    /// response and [`SimError::NoKvHeadroom`] if the request's full
    /// context can never fit the KV budget (admitting it would wedge the
    /// queue).
    pub fn submit(&mut self, request: Request) -> Result<(), SimError> {
        if request.input_tokens == 0 || request.output_tokens == 0 {
            return Err(SimError::InvalidRequest { id: request.id });
        }
        if request.total_tokens() > self.kv_budget_tokens {
            return Err(SimError::NoKvHeadroom {
                budget_tokens: self.kv_budget_tokens,
            });
        }
        let pos = self
            .pending
            .partition_point(|q| q.arrival <= request.arrival);
        self.backlog += request.input_tokens;
        self.pending.insert(pos, request);
        self.submitted += 1;
        Ok(())
    }

    /// The engine clock: time consumed by iterations so far (plus idle
    /// jumps to arrivals).
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Requests submitted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Requests that have emitted their final token.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Requests inside the engine: pending + queued + admitted.
    pub fn in_flight(&self) -> usize {
        debug_assert_eq!(
            self.pending.len() + self.waiting.len() + self.active.len(),
            self.submitted - self.outcomes.len(),
            "engine request ledger out of balance"
        );
        self.pending.len() + self.waiting.len() + self.active.len()
    }

    /// Requests waiting for an engine slot (queued or not yet arrived) —
    /// the load signal a join-shortest-queue router balances.
    pub fn queue_depth(&self) -> usize {
        self.pending.len() + self.waiting.len()
    }

    /// Requests currently admitted (prefilling or decoding).
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// KV-cache tokens currently resident.
    pub fn kv_in_use(&self) -> usize {
        self.kv_in_use
    }

    /// Committed-but-not-yet-resident KV demand: prompt (plus
    /// recompute-on-resume) tokens of every queued request and the
    /// remaining prefill of every admitted one. Resident KV alone is a
    /// lagging load signal — a replica that just received a burst still
    /// looks empty until the prefills land — so token-backlog-aware
    /// routers balance `kv_in_use + backlog_tokens` instead.
    ///
    /// O(1): maintained incrementally across submissions, admissions,
    /// prefill chunks and preemptions rather than recomputed by scanning
    /// the queues (routers poll this every routing decision).
    pub fn backlog_tokens(&self) -> usize {
        self.backlog
    }

    /// Recompute-from-scratch definition of [`Engine::backlog_tokens`] —
    /// the oracle the incremental sum is checked against (debug asserts
    /// and the property tests).
    fn backlog_oracle(&self) -> usize {
        let pending: usize = self.pending.iter().map(|r| r.input_tokens).sum();
        let waiting: usize = self.waiting.iter().map(Job::prefill_target).sum();
        let active: usize = self
            .active
            .iter()
            .map(|a| a.prefill_target - a.prefilled)
            .sum();
        pending + waiting + active
    }

    /// The KV budget in tokens (across the whole deployment).
    pub fn kv_budget_tokens(&self) -> usize {
        self.kv_budget_tokens
    }

    /// Tokens held by resident prefix-cache blocks — shared blocks
    /// counted once, completed requests' retained prefixes included.
    /// Always 0 when prefix caching is off. Part of
    /// [`Engine::kv_in_use`].
    pub fn prefix_resident_tokens(&self) -> usize {
        self.cache.as_ref().map_or(0, PrefixCache::resident_tokens)
    }

    /// Lifetime prefix-cache counters, or `None` when caching is off.
    pub fn prefix_stats(&self) -> Option<PrefixCacheStats> {
        self.cache.as_ref().map(PrefixCache::stats)
    }

    /// Whether every submitted request has completed.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty() && self.waiting.is_empty() && self.active.is_empty()
    }

    /// When this engine next has work to do, on its own clock: `now` if a
    /// request is admitted or queued (the next iteration runs immediately),
    /// the earliest pending arrival if the engine is empty but a future
    /// submission is parked, or `None` once drained.
    ///
    /// This is the peek an event-driven fleet driver keys its event queue
    /// on: an idle replica never needs to be stepped before this instant,
    /// and a drained one never again. Calling [`Engine::step`] at (or
    /// after) this time always makes progress; the returned time is
    /// monotone across steps.
    pub fn next_event_time(&self) -> Option<Seconds> {
        if !self.active.is_empty() || !self.waiting.is_empty() {
            return Some(self.now);
        }
        self.pending.front().map(|r| self.now.max(r.arrival))
    }

    /// Completed-request outcomes so far, in completion order.
    pub fn outcomes(&self) -> &[RequestOutcome] {
        &self.outcomes
    }

    /// Consumes the engine, returning the completed outcomes.
    pub fn into_outcomes(self) -> Vec<RequestOutcome> {
        self.outcomes
    }

    /// Engine-level counters accumulated so far.
    pub fn counters(&self) -> EngineCounters {
        let per_step = |sum: f64| {
            if self.steps == 0 {
                0.0
            } else {
                sum / conv::f64_from_usize(self.steps)
            }
        };
        let cache = self.prefix_stats().unwrap_or_default();
        EngineCounters {
            mean_batch: per_step(self.batch_samples),
            peak_batch: self.peak_batch,
            preemptions: self.preemptions,
            mean_queue_depth: per_step(self.queue_samples),
            peak_queue_depth: self.peak_queue,
            peak_kv_tokens: self.peak_kv,
            prefilled_tokens: self.prefilled_tokens,
            prefix_hit_tokens: cache.hit_tokens,
            prefix_miss_tokens: cache.miss_tokens,
            prefix_evicted_tokens: cache.evicted_tokens,
            generated_tokens: self.generated_tokens,
            drafted_tokens: self.drafted_tokens,
            accepted_tokens: self.accepted_tokens,
            rejected_tokens: self.rejected_tokens,
        }
    }

    /// The QoS report over the outcomes so far, or `None` if no request
    /// has completed yet (a replica may legitimately receive no traffic).
    pub fn report(&self) -> Option<QosReport> {
        if self.outcomes.is_empty() {
            return None;
        }
        Some(QosReport::from_outcomes(
            &self.outcomes,
            self.now,
            self.counters(),
        ))
    }

    /// Advances the engine by one iteration (or one idle jump to the next
    /// arrival). Returns [`StepEvent::Idle`] once drained.
    ///
    /// # Errors
    ///
    /// Propagates performance-model errors ([`SimError::Perf`]).
    pub fn step(&mut self) -> Result<StepEvent, SimError> {
        self.step_inner(None)
    }

    /// Like [`Engine::step`], but an empty engine will not jump its clock
    /// to an arrival beyond `horizon` (it reports [`StepEvent::Idle`]
    /// instead). A busy engine still runs its iteration to completion even
    /// if that carries the clock past `horizon`.
    ///
    /// # Errors
    ///
    /// Propagates performance-model errors ([`SimError::Perf`]).
    pub fn step_bounded(&mut self, horizon: Seconds) -> Result<StepEvent, SimError> {
        self.step_inner(Some(horizon))
    }

    /// Steps until the clock reaches `horizon` or no work remains before
    /// it. Used by cluster drivers to advance every replica to the next
    /// routing decision point.
    ///
    /// # Errors
    ///
    /// Propagates performance-model errors ([`SimError::Perf`]).
    pub fn step_until(&mut self, horizon: Seconds) -> Result<(), SimError> {
        while self.now < horizon {
            if self.step_bounded(horizon)? == StepEvent::Idle {
                break;
            }
        }
        Ok(())
    }

    fn step_inner(&mut self, horizon: Option<Seconds>) -> Result<StepEvent, SimError> {
        #[cfg(feature = "profile")]
        let mut profile_mark = crate::profile::probe_now();
        loop {
            // Move arrivals into the admission queue (preempted jobs were
            // pushed to the front and resume first).
            while self.pending.front().is_some_and(|r| r.arrival <= self.now) {
                // ador-lint: allow(panic) — invariant: front() was Some on the line above
                let request = self.pending.pop_front().expect("peeked");
                Self::emit(
                    &mut self.sink,
                    request.arrival,
                    request.id,
                    EventKind::Enqueue,
                );
                self.waiting
                    .push_back(Job::new(request, self.cfg.speculation.seed));
            }
            #[cfg(feature = "profile")]
            self.profile
                .record(crate::profile::Stage::Arrivals, &mut profile_mark);
            if self.active.is_empty() && self.waiting.is_empty() {
                match self.pending.front() {
                    Some(next) if horizon.is_none_or(|h| next.arrival <= h) => {
                        self.now = next.arrival;
                        return Ok(StepEvent::Jumped);
                    }
                    _ => return Ok(StepEvent::Idle),
                }
            }

            // Speculation plan: assign each decoding request a draft
            // depth, run its seeded verify draw, and commit
            // `accepted + 1` tokens this step — exactly 1 with
            // speculation off. Planned before the KV-pressure check
            // because multi-token commits are this step's KV growth.
            let mut decoders = self.active.iter().filter(|a| a.is_decoding()).count();
            let spec = self.cfg.speculation;
            let mut depths = vec![0usize; self.active.len()];
            match spec.policy {
                _ if !spec.speculates() => {}
                SpeculationPolicy::Off => {}
                SpeculationPolicy::Fixed(k) => {
                    // Naive fleet-wide speculation: every decoder drafts k
                    // tokens, whatever its SLO slack or the batch load.
                    let k = k.min(spec.max_depth);
                    for (i, a) in self.active.iter().enumerate() {
                        if a.is_decoding() {
                            depths[i] = k;
                        }
                    }
                }
                SpeculationPolicy::SloAdaptive => {
                    // SLO-customized speculation: latency-contracted
                    // decoders bid with their TBT urgency, and the
                    // per-step verify-token budget is spent
                    // most-urgent-first (ties toward the older request),
                    // so throughput tenants never pay latency tenants'
                    // verify overhead.
                    let mut bids: Vec<(usize, f64, usize)> = self
                        .active
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.is_decoding())
                        .filter_map(|(i, a)| {
                            let urgency = spec.urgency(
                                a.job.request.slo.and_then(|s| s.tbt_max),
                                a.job.mean_tbt_so_far(),
                            )?;
                            let room = a.job.request.output_tokens - a.job.generated - 1;
                            Some((i, urgency, room))
                        })
                        .collect();
                    bids.sort_by(|a, b| {
                        b.1.partial_cmp(&a.1)
                            // ador-lint: allow(panic) — invariant: urgency is a ratio of finite positive times
                            .expect("urgency is never NaN")
                            .then(a.0.cmp(&b.0))
                    });
                    let mut budget = spec.budget_tokens(self.cfg.max_batch);
                    for (i, urgency, room) in bids {
                        if budget == 0 {
                            break;
                        }
                        let depth = spec.slack_depth(urgency).min(budget).min(room);
                        depths[i] = depth;
                        budget -= depth;
                    }
                }
            }
            let mut plan: Vec<Option<Verify>> = Vec::with_capacity(self.active.len());
            let mut growth = 0usize;
            for (i, a) in self.active.iter_mut().enumerate() {
                if !a.is_decoding() {
                    plan.push(None);
                    continue;
                }
                let job = &mut a.job;
                let remaining = job.request.output_tokens - job.generated;
                let rate = job.request.accept_rate.unwrap_or(spec.default_acceptance);
                let verify = job.draft.verify(depths[i], remaining, rate);
                growth += verify.committed;
                plan.push(Some(verify));
            }
            #[cfg(feature = "profile")]
            self.profile
                .record(crate::profile::Stage::Speculation, &mut profile_mark);

            // KV pressure: this step grows every decoding context by its
            // committed run. Evict cold cached prefix blocks first; only
            // then preempt youngest-first — never the oldest, so the
            // engine always drains — until the growth fits the budget.
            loop {
                let over = (self.kv_in_use + growth).saturating_sub(self.kv_budget_tokens);
                if over == 0 {
                    break;
                }
                if let Some(cache) = &mut self.cache {
                    let freed = cache.evict(over);
                    self.kv_in_use -= freed;
                    if freed >= over {
                        break;
                    }
                }
                if self.active.len() <= 1 {
                    break;
                }
                let was_decoding = self.preempt_youngest();
                // ador-lint: allow(panic) — invariant: plan has one entry per active job by construction
                let victim = plan.pop().expect("plan is aligned with active");
                debug_assert_eq!(was_decoding, victim.is_some());
                if let Some(v) = victim {
                    decoders -= 1;
                    growth -= v.committed;
                }
            }

            // Prefill schedule: continue in-flight prefills oldest-first,
            // then admit from the queue head, sharing one `prefill_chunk`
            // token budget. A chunk that completes a pass also reserves the
            // +1 KV token of the first token it emits.
            let prefill_allowed = match self.cfg.policy {
                SchedulerPolicy::Fused => true,
                SchedulerPolicy::DecodePrioritized => decoders == 0 || !self.prev_step_prefilled,
            };
            let mut chunk_budget = if prefill_allowed {
                self.cfg.prefill_chunk
            } else {
                0
            };
            // Headroom for fresh KV growth: free budget plus whatever
            // eviction could reclaim. Growth granted against the
            // evictable share is collected lazily by `charge_kv`.
            let evictable = self.cache.as_ref().map_or(0, PrefixCache::evictable_tokens);
            let mut kv_headroom =
                (self.kv_budget_tokens + evictable).saturating_sub(self.kv_in_use + growth);
            let mut chunks: Vec<(usize, usize)> = Vec::new();
            for (i, a) in self.active.iter().enumerate() {
                if chunk_budget == 0 {
                    break;
                }
                if a.is_decoding() {
                    continue;
                }
                let remaining = a.prefill_target - a.prefilled;
                let take = chunk_take(remaining, chunk_budget, kv_headroom);
                if take == 0 {
                    break;
                }
                chunk_budget -= take;
                kv_headroom -= take + usize::from(take == remaining);
                chunks.push((i, take));
            }
            while chunk_budget > 0 && self.active.len() < self.cfg.max_batch {
                let Some(job) = self.waiting.front() else {
                    break;
                };
                // Imported context (a disaggregated KV handoff): the
                // transferred tokens' KV is allocated outright — no prefill
                // compute, no prefix-cache interaction — leaving at least
                // the final prompt token to recompute. Preemption dropped
                // any imported KV with the rest of the context, so a
                // resumed job recomputes everything.
                let imported = if job.preempted {
                    0
                } else {
                    job.request
                        .imported_context
                        .min(job.request.input_tokens - 1)
                };
                if imported > kv_headroom {
                    break;
                }
                // Match the prompt against the prefix cache before sizing
                // the chunk: matched blocks are skipped entirely (at least
                // one prompt token is always recomputed — its logits emit
                // the first output token). Acquiring pins the matched
                // blocks (they stop being evictable), which consumes the
                // same headroom fresh growth does.
                let (cached, cache_node) = match (&mut self.cache, job.request.prefix_group) {
                    (Some(cache), Some(group)) if imported == 0 => {
                        let before = cache.evictable_tokens();
                        let (cached, node) = cache.acquire(group, job.request.input_tokens - 1);
                        let pinned = before - cache.evictable_tokens();
                        if pinned > kv_headroom {
                            cache.release(node);
                            break;
                        }
                        kv_headroom -= pinned;
                        (cached, node)
                    }
                    _ => (0, PrefixCache::ROOT),
                };
                let remaining = job.prefill_target() - cached - imported;
                let take = chunk_take(remaining, chunk_budget, kv_headroom - imported);
                if take == 0 {
                    if let Some(cache) = &mut self.cache {
                        cache.release(cache_node);
                    }
                    break;
                }
                // ador-lint: allow(panic) — invariant: the admission loop peeked front() above
                let job = self.waiting.pop_front().expect("peeked");
                if let Some(cache) = &mut self.cache {
                    if imported == 0 && job.request.prefix_group.is_some() {
                        let shareable = ((job.request.input_tokens - 1) / PREFIX_BLOCK_TOKENS)
                            * PREFIX_BLOCK_TOKENS;
                        cache.record_lookup(cached, shareable - cached);
                    }
                }
                chunk_budget -= take;
                kv_headroom -= imported + take + usize::from(take == remaining);
                // Cached and imported tokens never prefill, so they leave
                // the backlog the moment the admission decision skips them;
                // imported KV becomes resident right here.
                self.backlog -= cached + imported;
                self.charge_kv(imported);
                let kind = if job.preempted {
                    EventKind::Resume
                } else {
                    // The request-alone prefill lower bound for the
                    // remaining prompt: what attribution measures the
                    // admission-to-first-commit span against. Priced
                    // only when tracing is on, so the untraced path
                    // stays bit-identical.
                    let ideal_us = if self.sink.is_some() {
                        let alone = self.prefill_time(1, remaining)?;
                        conv::u32_from_usize(conv::usize_from_f64(alone.as_micros().round()))
                    } else {
                        0
                    };
                    EventKind::Admit {
                        cached_tokens: conv::u32_from_usize(cached),
                        ideal_us,
                    }
                };
                Self::emit(&mut self.sink, self.now, job.request.id, kind);
                chunks.push((self.active.len(), take));
                self.active
                    .push(Active::admit(job, cached, cache_node, imported));
            }
            #[cfg(feature = "profile")]
            self.profile
                .record(crate::profile::Stage::Admission, &mut profile_mark);

            // All actives mid-prefill with zero headroom and nobody
            // decoding: evict the youngest so the oldest can proceed.
            if decoders == 0 && chunks.is_empty() && self.active.len() > 1 {
                self.preempt_youngest();
                #[cfg(feature = "profile")]
                self.profile
                    .record(crate::profile::Stage::Admission, &mut profile_mark);
                continue;
            }

            // Timing: one fused engine iteration. The verify pass prices
            // `decoders + drafted` token positions through the decode
            // model with the per-sequence context scaled down so the
            // resident KV total is unchanged (draft tokens attend to the
            // *same* contexts, they do not bring their own). Token-level
            // parallelism rides the same roofline as batch parallelism:
            // verification is nearly free while the step is weight-bound
            // and costs real compute once it is not. On top of that,
            // drafting is priced per drafted token — `draft_time_ratio`
            // of a target token's step share, i.e. mean depth × base —
            // the batched-drafter amortization, not a per-step charge in
            // the deepest request's depth.
            let prefill_tokens: usize = chunks.iter().map(|&(_, t)| t).sum();
            let drafted_total: usize = plan.iter().flatten().map(|v| v.drafted).sum();
            let mut step_time = Seconds::ZERO;
            if prefill_tokens > 0 {
                let mean_chunk = (prefill_tokens / chunks.len()).max(1);
                step_time += self.prefill_time(chunks.len(), mean_chunk)?;
            }
            if decoders > 0 {
                let ctx_sum: usize = self
                    .active
                    .iter()
                    .filter(|a| a.is_decoding())
                    .map(Active::context)
                    .sum();
                let ctx = ctx_sum.checked_div(decoders).map_or(1, |c| c.max(1));
                if drafted_total == 0 {
                    step_time += self.decode_time(decoders, ctx)?;
                } else {
                    let verify_tokens = decoders + drafted_total;
                    let ctx_eq = (ctx_sum / verify_tokens).max(1);
                    step_time += self.decode_time(verify_tokens, ctx_eq)?;
                    let base = self.decode_time(decoders, ctx)?;
                    let mean_depth =
                        conv::f64_from_usize(drafted_total) / conv::f64_from_usize(decoders);
                    step_time += base * (spec.draft_time_ratio * mean_depth);
                }
            }
            self.now += step_time;
            self.steps += 1;
            self.prev_step_prefilled = prefill_tokens > 0;
            #[cfg(feature = "profile")]
            self.profile
                .record(crate::profile::Stage::Timing, &mut profile_mark);

            // Apply prefill progress token-granularly; prompts whose pass
            // completed publish their full-block prefix into the cache so
            // later requests of the same group (and later session turns)
            // can share it.
            let mut received = vec![0usize; self.active.len()];
            for &(i, take) in &chunks {
                received[i] = take;
                self.charge_kv(take);
                self.prefilled_tokens += take;
                self.backlog -= take;
                let a = &mut self.active[i];
                a.prefilled += take;
                a.kv_held += take;
                let id = a.job.request.id;
                Self::emit(
                    &mut self.sink,
                    self.now,
                    id,
                    EventKind::PrefillChunk {
                        tokens: conv::u32_from_usize(take),
                    },
                );
            }
            for &(i, _) in &chunks {
                if self.active[i].is_decoding() {
                    self.cache_publish(i);
                }
            }

            // Token emission: every request that decoded this step commits
            // its verified run (exactly one token with speculation off),
            // plus every request whose prefill pass just completed emits
            // its first — or, after preemption, next — token out of the
            // fused step. This is also the decode-batch occupancy sample,
            // taken after same-step admissions so fresh decoders are
            // counted. All tokens of one commit share the step-end
            // timestamp: the verify pass reveals them at once, so the
            // first carries the whole inter-step gap and the rest are
            // free — exactly how speculation buys mean TBT.
            let per_token_events = self.cfg.telemetry.detail == EventDetail::PerToken;
            let mut batch_now = 0usize;
            let mut finished: Vec<usize> = Vec::new();
            for (i, &got) in received.iter().enumerate() {
                let verify = plan.get(i).copied().flatten();
                let commit = match verify {
                    Some(v) => v.committed,
                    None => usize::from(got > 0 && self.active[i].is_decoding()),
                };
                if commit == 0 {
                    continue;
                }
                batch_now += 1;
                self.charge_kv(commit);
                let a = &mut self.active[i];
                a.kv_held += commit;
                for _ in 0..commit {
                    a.job.emit_token(self.now);
                }
                debug_assert!(
                    a.job.generated <= a.job.request.output_tokens,
                    "request {} committed past its stop boundary",
                    a.job.request.id
                );
                self.generated_tokens += commit;
                if let Some(v) = verify {
                    self.drafted_tokens += v.drafted;
                    self.accepted_tokens += v.accepted;
                    self.rejected_tokens += v.rejected();
                }
                let id = a.job.request.id;
                let done = a.job.done();
                let (drafted, accepted) = verify.map_or((0, 0), |v| (v.drafted, v.accepted));
                // Under Lifecycle detail only the phase-boundary commit
                // (first tokens after admit/resume) and draft-carrying
                // verify steps reach the sink — steady one-token decode
                // steps are the event flood the overhead budget elides.
                let boundary = !a.traced_commit;
                a.traced_commit = true;
                if per_token_events || boundary || drafted > 0 {
                    Self::emit(
                        &mut self.sink,
                        self.now,
                        id,
                        EventKind::Commit {
                            committed: conv::u32_from_usize(commit),
                            drafted: conv::u32_from_usize(drafted),
                            accepted: conv::u32_from_usize(accepted),
                        },
                    );
                }
                if done {
                    finished.push(i);
                }
            }
            let completed = finished.len();
            for &i in finished.iter().rev() {
                // Publish the finished context (prompt + response) into
                // the cache — the follow-up turn of a session prompts with
                // exactly this context — then drop the private remainder.
                self.cache_publish(i);
                let a = self.active.remove(i);
                if let Some(cache) = &mut self.cache {
                    cache.release(a.cache_node);
                }
                self.kv_in_use -= a.kv_held;
                Self::emit(
                    &mut self.sink,
                    self.now,
                    a.job.request.id,
                    EventKind::Complete,
                );
                self.outcomes.push(finish(a.job, self.now));
            }

            self.batch_samples += conv::f64_from_usize(batch_now);
            self.peak_batch = self.peak_batch.max(batch_now);
            self.queue_samples += conv::f64_from_usize(self.waiting.len());
            self.peak_queue = self.peak_queue.max(self.waiting.len());
            self.peak_kv = self.peak_kv.max(self.kv_in_use);
            self.sample_series();
            debug_assert_eq!(
                self.backlog,
                self.backlog_oracle(),
                "incremental token backlog drifted from the queue scan"
            );
            debug_assert_eq!(
                self.kv_in_use,
                self.active.iter().map(|a| a.kv_held).sum::<usize>()
                    + self.prefix_resident_tokens(),
                "KV ledger must equal private contexts plus resident cache blocks"
            );
            debug_assert!(
                self.kv_in_use <= self.kv_budget_tokens,
                "KV in use ({}) exceeded the budget ({})",
                self.kv_in_use,
                self.kv_budget_tokens
            );
            #[cfg(feature = "profile")]
            {
                self.profile
                    .record(crate::profile::Stage::Commit, &mut profile_mark);
                self.profile.steps += 1;
            }
            return Ok(StepEvent::Worked {
                step_time,
                completed,
            });
        }
    }

    /// Pauses the youngest admitted request: releases its private KV back
    /// to the pool (its cached prefix blocks merely lose a reference and
    /// stay resident — resuming will likely re-match them, making the
    /// recompute cheap) and returns its job to the head of the admission
    /// queue for resume. Returns whether the victim was decoding (so
    /// callers can adjust their decoder count). The caller guarantees
    /// `active` is non-empty and never preempts down to zero, preserving
    /// forward progress for the oldest.
    fn preempt_youngest(&mut self) -> bool {
        // ador-lint: allow(panic) — invariant: documented caller contract (active is non-empty)
        let mut victim = self.active.pop().expect("caller checks non-empty");
        let was_decoding = victim.is_decoding();
        self.kv_in_use -= victim.kv_held;
        if let Some(cache) = &mut self.cache {
            cache.release(victim.cache_node);
        }
        self.preemptions += 1;
        // The victim re-enters the queue owing a full recompute (prompt
        // plus generated-so-far), where as an active it owed only its
        // remaining prefill.
        self.backlog += victim.job.prefill_target();
        self.backlog -= victim.prefill_target - victim.prefilled;
        victim.job.preempted = true;
        Self::emit(
            &mut self.sink,
            self.now,
            victim.job.request.id,
            EventKind::Preempt,
        );
        self.waiting.push_front(victim.job);
        was_decoding
    }

    /// Feeds the windowed time-series collector one post-iteration sample
    /// (no-op when collection is off).
    fn sample_series(&mut self) {
        let Some(series) = self.series.as_mut() else {
            return;
        };
        let cache = self
            .cache
            .as_ref()
            .map(PrefixCache::stats)
            .unwrap_or_default();
        series.observe(
            self.now,
            &SeriesSample {
                queue_depth: self.waiting.len(),
                active: self.active.len(),
                kv_in_use: self.kv_in_use,
                hit_tokens: conv::u64_from_usize(cache.hit_tokens),
                seen_tokens: conv::u64_from_usize(cache.hit_tokens + cache.miss_tokens),
                accepted: conv::u64_from_usize(self.accepted_tokens),
                drafted: conv::u64_from_usize(self.drafted_tokens),
                completed_tokens: conv::u64_from_usize(self.generated_tokens),
            },
        );
    }

    /// Charges `tokens` of fresh KV growth to the ledger, evicting cold
    /// cached prefix blocks when the free budget does not cover it. The
    /// scheduler only grants growth that budget-plus-evictable headroom
    /// can absorb, so eviction always reclaims enough.
    fn charge_kv(&mut self, tokens: usize) {
        let over = (self.kv_in_use + tokens).saturating_sub(self.kv_budget_tokens);
        if over > 0 {
            let freed = self.cache.as_mut().map_or(0, |c| c.evict(over));
            debug_assert!(freed >= over, "scheduler granted KV growth beyond headroom");
            self.kv_in_use -= freed;
        }
        self.kv_in_use += tokens;
    }

    /// Publishes `active[idx]`'s resident context into the prefix cache,
    /// block-aligned: newly created blocks transfer ownership of their
    /// tokens from the request's private KV to the shared pool (no ledger
    /// change), while blocks a concurrent request already published are
    /// deduplicated — the private copies are returned to the ledger.
    fn cache_publish(&mut self, idx: usize) {
        let Some(cache) = self.cache.as_mut() else {
            return;
        };
        let a = &mut self.active[idx];
        let Some(group) = a.job.request.prefix_group else {
            return;
        };
        let context = a.job.request.input_tokens + a.job.generated;
        let aligned = (context / PREFIX_BLOCK_TOKENS) * PREFIX_BLOCK_TOKENS;
        if aligned <= a.cached_tokens {
            return;
        }
        let (node, fresh) = cache.extend(group, a.cache_node, a.cached_tokens, context);
        let moved = aligned - a.cached_tokens;
        a.kv_held -= moved;
        a.cached_tokens = aligned;
        a.cache_node = node;
        self.kv_in_use -= moved - fresh;
    }

    fn decode_time(&mut self, batch: usize, context: usize) -> Result<Seconds, SimError> {
        let key = (batch, context.div_ceil(CTX_BUCKET) * CTX_BUCKET);
        if let Some(&t) = self.decode_cache.get(&key) {
            return Ok(t);
        }
        let t = self.evaluator.decode_interval(batch, key.1)?;
        self.decode_cache.insert(key, t);
        Ok(t)
    }

    fn prefill_time(&mut self, batch: usize, prompt: usize) -> Result<Seconds, SimError> {
        let key = (batch, prompt.div_ceil(CTX_BUCKET) * CTX_BUCKET);
        if let Some(&t) = self.prefill_cache.get(&key) {
            return Ok(t);
        }
        let t = self.evaluator.ttft(batch, key.1)?;
        self.prefill_cache.insert(key, t);
        Ok(t)
    }

    /// The live event sink, if tracing is on — fleet drivers use this to
    /// record their own lifecycle events (request shedding happens at the
    /// router, not in the engine) into the same stream.
    pub fn event_sink_mut(&mut self) -> Option<&mut (dyn EventSink + 'static)> {
        self.sink.as_mut().map(EngineSink::as_dyn_mut)
    }

    /// Detaches and returns the event sink (subsequent steps trace
    /// nothing), or `None` when tracing was off.
    pub fn take_event_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take().map(EngineSink::into_boxed)
    }

    /// Installs `sink` as the event sink, returning the previous one.
    pub fn set_event_sink(&mut self, sink: Box<dyn EventSink>) -> Option<Box<dyn EventSink>> {
        self.sink
            .replace(EngineSink::Custom(sink))
            .map(EngineSink::into_boxed)
    }

    /// Detaches and returns the time-series collector, or `None` when
    /// collection was off.
    pub fn take_series(&mut self) -> Option<SeriesCollector> {
        self.series.take()
    }
}

impl fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("arch", &self.evaluator.architecture().name)
            .field("model", &self.evaluator.model().name)
            .field("cfg", &self.cfg)
            .field("kv_budget_tokens", &self.kv_budget_tokens)
            .field("now", &self.now)
            .field("submitted", &self.submitted)
            .field("completed", &self.outcomes.len())
            .finish()
    }
}

/// Prefill tokens to grant a pass with `remaining` tokens to go, given
/// the iteration's remaining chunk budget and KV headroom. Completing
/// the pass needs one extra headroom token for the emitted token's KV.
fn chunk_take(remaining: usize, chunk_budget: usize, kv_headroom: usize) -> usize {
    let mut take = remaining.min(chunk_budget).min(kv_headroom);
    if take == remaining && take + 1 > kv_headroom {
        take = take.saturating_sub(1);
    }
    take
}

fn finish(job: Job, now: Seconds) -> RequestOutcome {
    let mean_tbt = if job.tbt_count == 0 {
        Seconds::ZERO
    } else {
        job.tbt_sum / conv::f64_from_usize(job.tbt_count)
    };
    RequestOutcome {
        // ador-lint: allow(panic) — invariant: finish() is only called after the last output token
        ttft: job.first_token_at.expect("finished jobs emitted a token") - job.request.arrival,
        mean_tbt,
        max_tbt: job.tbt_max,
        e2e: now - job.request.arrival,
        request: job.request,
    }
}

#[cfg(test)]
mod tests {
    // tests may unwrap: a failed unwrap is exactly the test failing
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::{ServingSim, TraceProfile};
    use ador_baselines::ador_table3;
    use ador_model::presets;
    use ador_perf::Deployment;
    use proptest::prelude::*;

    fn engine<'a>(
        arch: &'a ador_hw::Architecture,
        model: &'a ador_model::ModelConfig,
        cfg: SimConfig,
    ) -> Engine<'a> {
        ServingSim::new(arch, model, Deployment::single_device(), cfg)
            .unwrap()
            .engine()
    }

    #[test]
    fn stepwise_drive_matches_run_to_completion() {
        // Driving the engine one step at a time is exactly the
        // run-to-completion loop: same outcomes, same counters.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(4.0, 32).with_requests(40).with_seed(11);
        let requests =
            crate::RequestGenerator::new(4.0, TraceProfile::ultrachat_like(), 11).take(40);

        let (report, outcomes) = ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run_requests(requests.clone())
            .unwrap();

        let mut eng = engine(&arch, &model, cfg);
        for r in requests {
            eng.submit(r).unwrap();
        }
        while eng.step().unwrap() != StepEvent::Idle {}
        assert_eq!(eng.outcomes(), &outcomes[..]);
        assert_eq!(eng.report().unwrap(), report);
    }

    #[test]
    fn conservation_at_every_step() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(8.0, 8);
        let mut eng = engine(&arch, &model, cfg);
        for r in crate::RequestGenerator::new(8.0, TraceProfile::short_chat(), 3).take(30) {
            eng.submit(r).unwrap();
            assert_eq!(eng.submitted(), eng.completed() + eng.in_flight());
        }
        loop {
            assert_eq!(eng.submitted(), eng.completed() + eng.in_flight());
            if eng.step().unwrap() == StepEvent::Idle {
                break;
            }
        }
        assert!(eng.is_drained());
        assert_eq!(eng.completed(), 30);
    }

    #[test]
    fn bounded_step_respects_the_horizon() {
        // An empty engine must not jump past the horizon: a router needs
        // the replica parked at the routing decision point, not warped to
        // its own next arrival.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mut eng = engine(&arch, &model, SimConfig::new(1.0, 8));
        eng.submit(Request::new(0, Seconds::new(5.0), 64, 4))
            .unwrap();
        eng.step_until(Seconds::new(2.0)).unwrap();
        assert_eq!(eng.now(), Seconds::ZERO, "must not jump to t=5 arrival");
        assert_eq!(eng.completed(), 0);
        // Unbounded stepping then drains it.
        while eng.step().unwrap() != StepEvent::Idle {}
        assert_eq!(eng.completed(), 1);
        assert!(eng.now() >= Seconds::new(5.0));
    }

    #[test]
    fn next_event_time_tracks_work_and_arrivals() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mut eng = engine(&arch, &model, SimConfig::new(1.0, 8));
        // Drained engine: no next event.
        assert_eq!(eng.next_event_time(), None);
        // Empty engine with a future submission: the pending arrival.
        eng.submit(Request::new(0, Seconds::new(3.0), 64, 4))
            .unwrap();
        assert_eq!(eng.next_event_time(), Some(Seconds::new(3.0)));
        // Stepping at that instant makes progress (the clock jumps), and
        // from then on the next event is the engine's own clock until the
        // request drains.
        assert_eq!(eng.step().unwrap(), StepEvent::Jumped);
        while let Some(t) = eng.next_event_time() {
            assert_eq!(t, eng.now(), "busy engine works at its own clock");
            eng.step().unwrap();
        }
        assert!(eng.is_drained());
        assert_eq!(eng.completed(), 1);
    }

    #[test]
    fn next_event_time_never_runs_backwards() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mut eng = engine(&arch, &model, SimConfig::new(4.0, 4));
        for r in crate::RequestGenerator::new(4.0, TraceProfile::short_chat(), 9).take(20) {
            eng.submit(r).unwrap();
        }
        let mut last = Seconds::ZERO;
        while let Some(t) = eng.next_event_time() {
            assert!(t >= last, "next event {t} regressed below {last}");
            last = t;
            eng.step().unwrap();
        }
        assert_eq!(eng.completed(), 20);
    }

    #[test]
    fn out_of_order_submission_is_resorted() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mut eng = engine(&arch, &model, SimConfig::new(1.0, 8));
        eng.submit(Request::new(1, Seconds::new(1.0), 64, 4))
            .unwrap();
        eng.submit(Request::new(0, Seconds::ZERO, 64, 4)).unwrap();
        while eng.step().unwrap() != StepEvent::Idle {}
        // Request 0 arrived first and must complete first.
        assert_eq!(eng.outcomes()[0].request.id, 0);
    }

    #[test]
    fn imported_context_skips_prefill_compute() {
        // A disaggregated decode-side continuation: all but one prompt
        // token arrive as transferred KV. TTFT collapses to roughly one
        // decode-sized step, and the prefill counter records only the
        // recomputed tail token.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(1.0, 8);

        let mut cold = engine(&arch, &model, cfg);
        cold.submit(Request::new(0, Seconds::ZERO, 2048, 8))
            .unwrap();
        while cold.step().unwrap() != StepEvent::Idle {}

        let mut warm = engine(&arch, &model, cfg);
        warm.submit(Request::new(0, Seconds::ZERO, 2048, 8).with_imported_context(2047))
            .unwrap();
        while warm.step().unwrap() != StepEvent::Idle {}

        assert_eq!(warm.counters().prefilled_tokens, 1);
        assert_eq!(cold.counters().prefilled_tokens, 2048);
        let (cold, warm) = (&cold.outcomes()[0], &warm.outcomes()[0]);
        assert!(
            warm.ttft < cold.ttft / 4.0,
            "imported context must skip the prefill wall: {} vs {}",
            warm.ttft,
            cold.ttft
        );
        // The imported KV is still resident context: decode steps attend
        // to the full 2048-token prompt either way, so generation length
        // and totals match.
        assert_eq!(warm.request.total_tokens(), cold.request.total_tokens());
    }

    #[test]
    fn imported_context_charges_kv_at_admission() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mut eng = engine(&arch, &model, SimConfig::new(1.0, 8));
        eng.submit(Request::new(0, Seconds::ZERO, 1024, 4).with_imported_context(1023))
            .unwrap();
        // First step admits and prefills the single recomputed token; the
        // imported 1023 tokens must already sit in the KV ledger.
        eng.step().unwrap();
        assert!(
            eng.kv_in_use() >= 1023,
            "imported KV not resident: {} tokens in use",
            eng.kv_in_use()
        );
        while eng.step().unwrap() != StepEvent::Idle {}
        assert_eq!(eng.completed(), 1);
        assert_eq!(eng.kv_in_use(), 0, "completion releases imported KV too");
    }

    #[test]
    fn imported_context_is_recomputed_after_preemption() {
        // Starve the KV budget so the youngest import gets preempted: the
        // transferred KV is dropped with the rest of its context, and the
        // resume prefills the full prompt (imported_context is ignored for
        // resumed jobs). The engine must still drain with exact ledgers —
        // the debug asserts in step() check backlog and KV each iteration.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(1.0, 8).with_kv_memory_fraction(0.006);
        let mut eng = engine(&arch, &model, cfg);
        let budget = eng.kv_budget_tokens();
        let input = budget * 2 / 5;
        let output = budget / 8;
        for id in 0..4u64 {
            eng.submit(Request::new(id, Seconds::ZERO, input, output).with_imported_context(input))
                .unwrap();
        }
        while eng.step().unwrap() != StepEvent::Idle {}
        assert_eq!(eng.completed(), 4);
        assert!(
            eng.counters().preemptions > 0,
            "scenario must actually exercise preemption of imported contexts"
        );
        assert!(
            eng.counters().prefilled_tokens > 4,
            "resumed imports recompute their prompts"
        );
    }

    #[test]
    fn empty_replica_reports_none() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let eng = engine(&arch, &model, SimConfig::new(1.0, 8));
        assert!(eng.report().is_none());
        assert!(eng.is_drained());
    }

    #[test]
    fn prefix_cache_reuses_session_context() {
        // Turn 1: 1024-token prompt, 64-token response (context 1088 = 17
        // exact blocks). Turn 2 prompts with that full context plus 64 new
        // tokens, long after turn 1 completed.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let run = |caching: bool| {
            let cfg = SimConfig::new(1.0, 8).with_prefix_caching(caching);
            let mut eng = engine(&arch, &model, cfg);
            eng.submit(Request::new(0, Seconds::ZERO, 1024, 64).with_prefix_group(42))
                .unwrap();
            eng.submit(Request::new(1, Seconds::new(100.0), 1152, 64).with_prefix_group(42))
                .unwrap();
            while eng.step().unwrap() != StepEvent::Idle {}
            (eng.counters(), eng.outcomes().to_vec(), eng.kv_in_use())
        };
        let (cold, cold_outcomes, cold_kv) = run(false);
        let (warm, warm_outcomes, warm_kv) = run(true);

        // Cache off: every prompt token is prefilled; no cache residue.
        assert_eq!(cold.prefilled_tokens, 1024 + 1152);
        assert_eq!(cold.prefix_hit_tokens, 0);
        assert_eq!(cold_kv, 0, "no cache => nothing resident after drain");

        // Cache on: turn 2 skips the 17 published context blocks and
        // prefills only its 64 fresh tokens.
        assert_eq!(warm.prefilled_tokens, 1024 + 64);
        assert_eq!(warm.prefix_hit_tokens, 1088);
        // Turn 1's shareable span (960 tokens: input − 1 rounded down to
        // blocks) was a cold miss; turn 2 missed nothing.
        assert_eq!(warm.prefix_miss_tokens, 960);
        assert!(
            warm_outcomes[1].ttft < cold_outcomes[1].ttft,
            "warm turn-2 TTFT {} must beat cold {}",
            warm_outcomes[1].ttft,
            cold_outcomes[1].ttft
        );
        // After drain only retained cache blocks remain: turn 2's full
        // context, block-aligned ((1152 + 64) / 64 = 19 blocks).
        assert_eq!(warm_kv, 19 * PREFIX_BLOCK_TOKENS);
    }

    #[test]
    fn prefix_cache_shares_blocks_across_concurrent_requests() {
        // Two identical-group prompts in flight together: the second
        // matches whatever the first published, and shared blocks are
        // charged once — peak KV stays below two full private contexts.
        // A 2048-token chunk staggers the admissions, so the first prompt
        // publishes its blocks one iteration before the second is sized.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(1.0, 8)
            .with_prefix_caching(true)
            .with_prefill_chunk(2048);
        let mut eng = engine(&arch, &model, cfg);
        for id in 0..2 {
            eng.submit(Request::new(id, Seconds::ZERO, 2048, 32).with_prefix_group(7))
                .unwrap();
        }
        while eng.step().unwrap() != StepEvent::Idle {}
        assert_eq!(eng.completed(), 2);
        let counters = eng.counters();
        assert!(
            counters.prefix_hit_tokens > 0,
            "the later admission must reuse the earlier prompt's blocks"
        );
        assert!(
            counters.peak_kv_tokens < 2 * (2048 + 32),
            "shared blocks must not be double-charged (peak {})",
            counters.peak_kv_tokens
        );
    }

    #[test]
    fn prefix_caching_is_deterministic_and_leaves_uncached_requests_alone() {
        // Untagged requests bypass the cache entirely: a cache-enabled
        // engine produces the exact same outcomes as a cache-free one.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let requests =
            crate::RequestGenerator::new(6.0, TraceProfile::ultrachat_like(), 3).take(30);
        let run = |caching: bool| {
            let cfg = SimConfig::new(6.0, 16).with_prefix_caching(caching);
            let mut eng = engine(&arch, &model, cfg);
            for r in requests.clone() {
                eng.submit(r).unwrap();
            }
            while eng.step().unwrap() != StepEvent::Idle {}
            (eng.outcomes().to_vec(), eng.report().unwrap())
        };
        let (outcomes_off, report_off) = run(false);
        let (outcomes_on, report_on) = run(true);
        assert_eq!(outcomes_off, outcomes_on);
        assert_eq!(report_off, report_on);
        assert_eq!(
            report_on.prefix_hit_tokens + report_on.prefix_miss_tokens,
            0
        );
    }

    #[test]
    fn submit_validates_requests() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mut eng = engine(&arch, &model, SimConfig::new(1.0, 8));
        let mut bad = Request::new(3, Seconds::ZERO, 10, 10);
        bad.output_tokens = 0;
        assert_eq!(
            eng.submit(bad).unwrap_err(),
            SimError::InvalidRequest { id: 3 }
        );
        let budget = eng.kv_budget_tokens();
        let big = Request::new(4, Seconds::ZERO, budget, budget);
        assert!(matches!(
            eng.submit(big).unwrap_err(),
            SimError::NoKvHeadroom { .. }
        ));
        assert_eq!(eng.submitted(), 0, "rejected submissions are not counted");
    }

    #[test]
    fn backlog_is_maintained_incrementally() {
        // The O(1) counter must track the queue-scan definition at every
        // step (including through preemptions) and drain to zero.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(6.0, 8).with_kv_memory_fraction(0.05);
        let mut eng = engine(&arch, &model, cfg);
        for r in crate::RequestGenerator::new(6.0, TraceProfile::ultrachat_like(), 5).take(40) {
            eng.submit(r).unwrap();
            assert_eq!(eng.backlog_tokens(), eng.backlog_oracle());
        }
        loop {
            assert_eq!(eng.backlog_tokens(), eng.backlog_oracle());
            if eng.step().unwrap() == StepEvent::Idle {
                break;
            }
        }
        assert_eq!(eng.backlog_tokens(), 0, "drained engine has no backlog");
    }

    proptest! {
        /// Seed-swept version of the incremental-backlog pin, over varied
        /// load and KV pressure.
        #[test]
        fn backlog_matches_the_scan_oracle(
            seed in 0u64..12,
            rate in 1.0f64..12.0,
        ) {
            let arch = ador_table3();
            let model = presets::llama3_8b();
            let cfg = SimConfig::new(rate, 8).with_kv_memory_fraction(0.04);
            let mut eng = engine(&arch, &model, cfg);
            for r in crate::RequestGenerator::new(rate, TraceProfile::short_chat(), seed).take(25)
            {
                eng.submit(r).unwrap();
            }
            loop {
                prop_assert_eq!(eng.backlog_tokens(), eng.backlog_oracle());
                if eng.step().unwrap() == StepEvent::Idle {
                    break;
                }
            }
            prop_assert_eq!(eng.backlog_tokens(), 0);
        }

        /// Telemetry must be pure observation: enabling it changes no
        /// outcome, report field or counter, for any seed.
        #[test]
        fn telemetry_never_perturbs_the_simulation(seed in 0u64..12) {
            let arch = ador_table3();
            let model = presets::llama3_8b();
            let cfg = SimConfig::new(5.0, 16).with_requests(30).with_seed(seed);
            let run = |cfg: SimConfig| {
                let requests = crate::RequestGenerator::new(
                    5.0, TraceProfile::ultrachat_like(), seed).take(30);
                let mut eng = engine(&arch, &model, cfg);
                for r in requests {
                    eng.submit(r).unwrap();
                }
                while eng.step().unwrap() != StepEvent::Idle {}
                (eng.report().unwrap(), eng.into_outcomes())
            };
            let off = run(cfg);
            let traced = run(cfg.with_telemetry(
                ador_telemetry::TelemetryConfig::trace()
                    .with_series(Seconds::from_millis(50.0)),
            ));
            prop_assert_eq!(off, traced);
        }
    }

    #[test]
    fn trace_captures_the_request_lifecycle() {
        // One lone request: the event stream is exactly
        // enqueue → admit → prefill chunks → commits → complete.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(1.0, 8)
            .with_prefill_chunk(512)
            .with_telemetry(ador_telemetry::TelemetryConfig::trace());
        let mut eng = engine(&arch, &model, cfg);
        eng.submit(Request::new(7, Seconds::ZERO, 1024, 4)).unwrap();
        while eng.step().unwrap() != StepEvent::Idle {}
        let events = eng.take_event_sink().unwrap().drain();
        assert!(eng.take_event_sink().is_none(), "sink was detached");
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds[0], EventKind::Enqueue);
        assert!(
            matches!(
                kinds[1],
                EventKind::Admit {
                    cached_tokens: 0,
                    ideal_us
                } if ideal_us > 0
            ),
            "admit carries the request-alone prefill bound: {:?}",
            kinds[1]
        );
        assert_eq!(
            kinds[2..4],
            [
                EventKind::PrefillChunk { tokens: 512 },
                EventKind::PrefillChunk { tokens: 512 },
            ]
        );
        assert_eq!(*kinds.last().unwrap(), EventKind::Complete);
        let commits = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Commit { committed, .. } => Some(committed),
                _ => None,
            })
            .sum::<u32>();
        assert_eq!(commits, 4, "every generated token is committed");
        assert!(events.iter().all(|e| e.request == 7));
        let times: Vec<Seconds> = events.iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "times are monotone");
    }

    #[test]
    fn lifecycle_detail_elides_steady_commits_but_keeps_the_phase_structure() {
        // Lifecycle detail drops only the steady one-token decode
        // commits: what remains is a subset of the per-token stream,
        // the non-commit events are untouched, and the phase spans —
        // which only need the boundary commit — come out identical.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let run = |detail: EventDetail| {
            let cfg = SimConfig::new(4.0, 16)
                .with_telemetry(ador_telemetry::TelemetryConfig::trace().with_detail(detail));
            let mut eng = engine(&arch, &model, cfg);
            for r in crate::RequestGenerator::new(4.0, TraceProfile::short_chat(), 3).take(12) {
                eng.submit(r).unwrap();
            }
            while eng.step().unwrap() != StepEvent::Idle {}
            eng.take_event_sink().unwrap().drain()
        };
        let full = run(EventDetail::PerToken);
        let lean = run(EventDetail::Lifecycle);

        let is_commit = |e: &Event| matches!(e.kind, EventKind::Commit { .. });
        let full_commits = full.iter().filter(|e| is_commit(e)).count();
        let lean_commits = lean.iter().filter(|e| is_commit(e)).count();
        assert!(
            lean_commits < full_commits,
            "steady commits are elided ({lean_commits} vs {full_commits})"
        );
        let non_commit = |events: &[Event]| -> Vec<Event> {
            events.iter().filter(|e| !is_commit(e)).copied().collect()
        };
        assert_eq!(
            non_commit(&full),
            non_commit(&lean),
            "only commit events differ between details"
        );
        let mut cursor = full.iter();
        assert!(
            lean.iter().all(|e| cursor.any(|f| f == e)),
            "the lifecycle stream is an ordered subset of the per-token stream"
        );
        assert_eq!(
            ador_telemetry::PhaseHistograms::from_events(&full),
            ador_telemetry::PhaseHistograms::from_events(&lean),
            "phase decomposition only needs the boundary commits"
        );
    }

    #[test]
    fn preemption_traces_a_preempt_then_resume() {
        // Starve the KV budget so decode growth must evict the youngest;
        // its trace shows Preempt followed by Resume, and the stream still
        // completes every request.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(1.0, 8)
            .with_kv_memory_fraction(0.005)
            .with_telemetry(ador_telemetry::TelemetryConfig::trace());
        let mut eng = engine(&arch, &model, cfg);
        let budget = eng.kv_budget_tokens();
        let slice = budget / 3;
        for id in 0..4u64 {
            eng.submit(Request::new(id, Seconds::ZERO, slice / 4, slice))
                .unwrap();
        }
        while eng.step().unwrap() != StepEvent::Idle {}
        assert!(
            eng.counters().preemptions > 0,
            "config must force preemption"
        );
        let events = eng.take_event_sink().unwrap().drain();
        let victim = events
            .iter()
            .find(|e| e.kind == EventKind::Preempt)
            .unwrap()
            .request;
        let kinds: Vec<EventKind> = events
            .iter()
            .filter(|e| e.request == victim)
            .map(|e| e.kind)
            .collect();
        let preempt_at = kinds.iter().position(|k| *k == EventKind::Preempt).unwrap();
        assert!(
            kinds[preempt_at..].contains(&EventKind::Resume),
            "a preempted request resumes: {kinds:?}"
        );
        assert_eq!(*kinds.last().unwrap(), EventKind::Complete);
    }

    #[test]
    fn flight_recorder_keeps_only_the_tail() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(4.0, 16)
            .with_telemetry(ador_telemetry::TelemetryConfig::flight_recorder(16));
        let mut eng = engine(&arch, &model, cfg);
        for r in crate::RequestGenerator::new(4.0, TraceProfile::short_chat(), 2).take(20) {
            eng.submit(r).unwrap();
        }
        while eng.step().unwrap() != StepEvent::Idle {}
        let events = eng.take_event_sink().unwrap().drain();
        assert_eq!(events.len(), 16, "ring is bounded at its capacity");
        assert!(
            events.iter().any(|e| e.kind == EventKind::Complete),
            "the tail of the run includes the last completions"
        );
    }

    #[test]
    fn series_collector_samples_the_run() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(4.0, 16).with_telemetry(
            ador_telemetry::TelemetryConfig::OFF.with_series(Seconds::from_millis(20.0)),
        );
        let mut eng = engine(&arch, &model, cfg);
        for r in crate::RequestGenerator::new(4.0, TraceProfile::ultrachat_like(), 3).take(20) {
            eng.submit(r).unwrap();
        }
        while eng.step().unwrap() != StepEvent::Idle {}
        assert!(eng.take_event_sink().is_none(), "no event sink requested");
        let series = eng.take_series().unwrap().finish();
        assert!(series.points.len() > 1, "a multi-second run yields points");
        let t: Vec<Seconds> = series.points.iter().map(|p| p.time).collect();
        assert!(t.windows(2).all(|w| w[0] < w[1]), "sample times increase");
        assert!(series
            .points
            .iter()
            .any(|p| p.active > 0 && p.kv_in_use > 0));
    }
}
