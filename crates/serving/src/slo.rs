//! Service-level objectives (paper Fig. 16: "Number of requests that can be
//! maximally processed under a given SLO").

use ador_units::Seconds;
use serde::{Deserialize, Serialize};

use crate::QosReport;

/// A QoS target: p95 bounds on TTFT and/or TBT.
///
/// # Examples
///
/// ```
/// use ador_serving::Slo;
/// use ador_units::Seconds;
///
/// let strict = Slo::strict();
/// let relaxed = Slo::relaxed();
/// assert!(strict.tbt_max.unwrap() < relaxed.tbt_max.unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// Maximum acceptable p95 time-to-first-token.
    pub ttft_max: Option<Seconds>,
    /// Maximum acceptable p95 time-between-tokens.
    pub tbt_max: Option<Seconds>,
}

impl Slo {
    /// The paper's strict chatbot SLO: 25 ms TBT.
    pub fn strict() -> Self {
        Self {
            ttft_max: Some(Seconds::from_millis(2000.0)),
            tbt_max: Some(Seconds::from_millis(25.0)),
        }
    }

    /// The paper's relaxed SLO: 50 ms TBT.
    pub fn relaxed() -> Self {
        Self {
            ttft_max: Some(Seconds::from_millis(4000.0)),
            tbt_max: Some(Seconds::from_millis(50.0)),
        }
    }

    /// An SLO bounding only TBT (the Fig. 16 sweep axis).
    pub fn tbt_only(tbt: Seconds) -> Self {
        Self {
            ttft_max: None,
            tbt_max: Some(tbt),
        }
    }

    /// Whether `report` meets this SLO at the 95th percentile.
    pub fn attained(&self, report: &QosReport) -> bool {
        let ttft_ok = self.ttft_max.is_none_or(|max| report.ttft.p95 <= max);
        let tbt_ok = self.tbt_max.is_none_or(|max| report.tbt.p95 <= max);
        ttft_ok && tbt_ok
    }

    /// Whether a single request's measured lifecycle meets this SLO
    /// (TTFT and mean TBT within the bounds). Per-tenant fleet attainment
    /// is the fraction of a tenant's requests for which this holds.
    pub fn met(&self, outcome: &crate::RequestOutcome) -> bool {
        let ttft_ok = self.ttft_max.is_none_or(|max| outcome.ttft <= max);
        let tbt_ok = self.tbt_max.is_none_or(|max| outcome.mean_tbt <= max);
        ttft_ok && tbt_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LatencyStats, QosReport};

    fn report(ttft_ms: f64, tbt_ms: f64) -> QosReport {
        let stat = |ms: f64| {
            let s = Seconds::from_millis(ms);
            LatencyStats {
                mean: s,
                p50: s,
                p95: s,
                p99: s,
                max: s,
            }
        };
        QosReport {
            completed: 10,
            makespan: Seconds::new(1.0),
            ttft: stat(ttft_ms),
            tbt: stat(tbt_ms),
            e2e: stat(ttft_ms + 100.0 * tbt_ms),
            requests_per_sec: 10.0,
            tokens_per_sec: 1000.0,
            goodput_tokens_per_sec: 1000.0,
            mean_batch: 8.0,
            peak_batch: 16,
            preemptions: 0,
            mean_queue_depth: 0.0,
            peak_queue_depth: 0,
            peak_kv_tokens: 0,
            prefilled_tokens: 0,
            prefix_hit_tokens: 0,
            prefix_miss_tokens: 0,
            prefix_evicted_tokens: 0,
            generated_tokens: 0,
            drafted_tokens: 0,
            accepted_tokens: 0,
            rejected_tokens: 0,
            ttft_hist: Default::default(),
            tbt_hist: Default::default(),
            e2e_hist: Default::default(),
        }
    }

    #[test]
    fn strict_rejects_slow_tbt() {
        assert!(Slo::strict().attained(&report(100.0, 20.0)));
        assert!(!Slo::strict().attained(&report(100.0, 30.0)));
        assert!(Slo::relaxed().attained(&report(100.0, 30.0)));
    }

    #[test]
    fn ttft_bound_applies() {
        assert!(!Slo::strict().attained(&report(3000.0, 10.0)));
    }

    #[test]
    fn per_request_check_matches_bounds() {
        use crate::{Request, RequestOutcome};
        let outcome = |ttft_ms: f64, tbt_ms: f64| RequestOutcome {
            request: Request::new(0, Seconds::ZERO, 10, 10),
            ttft: Seconds::from_millis(ttft_ms),
            mean_tbt: Seconds::from_millis(tbt_ms),
            max_tbt: Seconds::from_millis(tbt_ms),
            e2e: Seconds::from_millis(ttft_ms + 10.0 * tbt_ms),
        };
        assert!(Slo::strict().met(&outcome(100.0, 20.0)));
        assert!(!Slo::strict().met(&outcome(100.0, 30.0)));
        assert!(!Slo::strict().met(&outcome(3000.0, 20.0)));
        assert!(Slo::tbt_only(Seconds::from_millis(40.0)).met(&outcome(60_000.0, 39.0)));
    }

    #[test]
    fn tbt_only_ignores_ttft() {
        let slo = Slo::tbt_only(Seconds::from_millis(40.0));
        assert!(slo.attained(&report(60_000.0, 39.0)));
        assert!(!slo.attained(&report(1.0, 41.0)));
    }
}
