//! Serving requests and their measured outcomes.

use ador_units::Seconds;
use serde::{Deserialize, Serialize};

use crate::Slo;

/// One user request: arrival time plus prompt/response token lengths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Monotonic request id (arrival order).
    pub id: u64,
    /// Arrival time since simulation start.
    pub arrival: Seconds,
    /// Prompt length in tokens.
    pub input_tokens: usize,
    /// Response length in tokens.
    pub output_tokens: usize,
    /// Content identity for prefix caching. Requests sharing a group share
    /// one deterministic token-block hash chain, so their prompts have a
    /// common prefix of `min(input_tokens, other.input_tokens)` tokens —
    /// exactly the shape of a multi-turn session, where each turn's prompt
    /// extends the previous turn's full context. `None` (the default)
    /// means unique content: the prompt shares KV with nothing and
    /// bypasses the prefix cache.
    pub prefix_group: Option<u64>,
    /// The latency contract this request is judged against (usually its
    /// tenant class's [`Slo`]). Feeds two consumers: per-request goodput
    /// accounting ([`QosReport::goodput_tokens_per_sec`](crate::QosReport::goodput_tokens_per_sec)
    /// counts only SLO-met requests' tokens, requests without a contract
    /// counting as met) and the `SloAdaptive` speculation policy, which
    /// derives each request's speculation depth from its measured slack
    /// against `slo.tbt_max`. `None` means no contract: always "met",
    /// never speculated on under `SloAdaptive`.
    pub slo: Option<Slo>,
    /// Per-token draft acceptance probability for speculative decoding
    /// (usually the tenant class's acceptance profile — how predictable
    /// this traffic is to the draft model). `None` falls back to
    /// [`SpeculationConfig::default_acceptance`](ador_spec::SpeculationConfig::default_acceptance).
    /// Ignored unless the engine speculates.
    pub accept_rate: Option<f64>,
    /// Leading prompt tokens whose KV arrives with the request instead of
    /// being computed here — the receiving side of a prefill/decode
    /// disaggregated handoff. At admission the engine allocates their KV
    /// directly (no prefill compute, no prefix-cache interaction) and
    /// prefills only the remainder; at least the final prompt token is
    /// always recomputed (its logits seed generation), so values are
    /// clamped to `input_tokens - 1`. A preempted request loses the
    /// imported KV with the rest of its context and recomputes everything
    /// on resume. `0` (the default) means a normal request.
    pub imported_context: usize,
}

impl Request {
    /// Creates a request with unique (unshared) prompt content.
    ///
    /// # Panics
    ///
    /// Panics if either token count is zero.
    pub fn new(id: u64, arrival: Seconds, input_tokens: usize, output_tokens: usize) -> Self {
        assert!(
            input_tokens > 0 && output_tokens > 0,
            "requests must have at least one input and output token"
        );
        Self {
            id,
            arrival,
            input_tokens,
            output_tokens,
            prefix_group: None,
            slo: None,
            accept_rate: None,
            imported_context: 0,
        }
    }

    /// Marks the leading `tokens` prompt tokens as context imported from
    /// another engine (a disaggregated KV handoff): their KV is allocated
    /// at admission without prefill compute. Values are clamped to
    /// `input_tokens - 1` — the final prompt token is always recomputed.
    pub fn with_imported_context(mut self, tokens: usize) -> Self {
        self.imported_context = tokens.min(self.input_tokens - 1);
        self
    }

    /// Tags the request's prompt content as belonging to `group` (a
    /// session id, say), making its prefix shareable with other requests
    /// of the same group under a prefix-caching engine.
    pub fn with_prefix_group(mut self, group: u64) -> Self {
        self.prefix_group = Some(group);
        self
    }

    /// Attaches the latency contract the request is judged against (and
    /// that `SloAdaptive` speculation budgets depth for).
    pub fn with_slo(mut self, slo: Slo) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Sets the request's draft acceptance probability for speculative
    /// decoding.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate ≤ 1`.
    pub fn with_accept_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "acceptance must be a probability, got {rate}"
        );
        self.accept_rate = Some(rate);
        self
    }

    /// Total KV-cache tokens this request will eventually hold.
    pub fn total_tokens(&self) -> usize {
        self.input_tokens + self.output_tokens
    }
}

/// The measured lifecycle of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// The request this outcome belongs to.
    pub request: Request,
    /// Time from arrival to first token (queueing + prefill).
    pub ttft: Seconds,
    /// Mean interval between generated tokens.
    pub mean_tbt: Seconds,
    /// Worst single token interval.
    pub max_tbt: Seconds,
    /// Time from arrival to final token.
    pub e2e: Seconds,
}

impl RequestOutcome {
    /// Generation throughput for this request, in tokens per second.
    pub fn decode_rate(&self) -> f64 {
        if self.mean_tbt.is_zero() {
            return 0.0;
        }
        1.0 / self.mean_tbt.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let r = Request::new(1, Seconds::ZERO, 100, 50);
        assert_eq!(r.total_tokens(), 150);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_output_rejected() {
        let _ = Request::new(1, Seconds::ZERO, 100, 0);
    }

    #[test]
    fn decode_rate_inverts_tbt() {
        let out = RequestOutcome {
            request: Request::new(1, Seconds::ZERO, 10, 10),
            ttft: Seconds::from_millis(50.0),
            mean_tbt: Seconds::from_millis(20.0),
            max_tbt: Seconds::from_millis(30.0),
            e2e: Seconds::from_millis(250.0),
        };
        assert_eq!(out.decode_rate(), 50.0);
    }
}
