//! Token-length distributions for synthetic chat traces.
//!
//! The paper reconstructs input/output token patterns from
//! `HuggingFaceH4/ultrachat_200k`. Offline we sample a log-normal fit of
//! that dataset's marginals (median prompt ≈ 330 tokens, median response ≈
//! 270 tokens, heavy right tails), which preserves exactly what the
//! simulator consumes: the joint arrival/length workload.

use ador_units::conv;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A log-normal token-length model for prompts and responses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Mean of `ln(input_tokens)`.
    pub input_mu: f64,
    /// Std-dev of `ln(input_tokens)`.
    pub input_sigma: f64,
    /// Mean of `ln(output_tokens)`.
    pub output_mu: f64,
    /// Std-dev of `ln(output_tokens)`.
    pub output_sigma: f64,
    /// Hard cap on either length (the serving window).
    pub max_tokens: usize,
}

impl TraceProfile {
    /// The ultrachat_200k-like chatbot profile used for Fig. 16
    /// (median prompt ≈ 330, median response ≈ 270, capped at 4 K).
    pub fn ultrachat_like() -> Self {
        Self {
            input_mu: 330.0_f64.ln(),
            input_sigma: 0.85,
            output_mu: 270.0_f64.ln(),
            output_sigma: 0.70,
            max_tokens: 4096,
        }
    }

    /// A short-interaction profile (classification-style prompts).
    pub fn short_chat() -> Self {
        Self {
            input_mu: 64.0_f64.ln(),
            input_sigma: 0.6,
            output_mu: 48.0_f64.ln(),
            output_sigma: 0.5,
            max_tokens: 1024,
        }
    }

    /// A long-document summarization profile (Fig. 17's long-input regime).
    pub fn summarization() -> Self {
        Self {
            input_mu: 2048.0_f64.ln(),
            input_sigma: 0.5,
            output_mu: 256.0_f64.ln(),
            output_sigma: 0.5,
            max_tokens: 8192,
        }
    }

    /// Fixed lengths (the Fig. 17 grid sweeps use degenerate profiles).
    pub fn fixed(input_tokens: usize, output_tokens: usize) -> Self {
        Self {
            input_mu: conv::f64_from_usize(input_tokens).ln(),
            input_sigma: 0.0,
            output_mu: conv::f64_from_usize(output_tokens).ln(),
            output_sigma: 0.0,
            max_tokens: input_tokens + output_tokens,
        }
    }

    /// Samples a prompt length.
    pub fn sample_input<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        sample_lognormal(rng, self.input_mu, self.input_sigma, self.max_tokens)
    }

    /// Samples a response length.
    pub fn sample_output<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        sample_lognormal(rng, self.output_mu, self.output_sigma, self.max_tokens)
    }
}

/// Log-normal sampling via Box–Muller (keeps the dependency surface at
/// plain `rand`).
fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64, cap: usize) -> usize {
    let z = if sigma == 0.0 {
        0.0
    } else {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let len = (mu + sigma * z).exp().round();
    conv::usize_from_f64(len.max(1.0)).min(cap.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn summarize(samples: &mut [usize]) -> (usize, f64) {
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        (median, mean)
    }

    #[test]
    fn ultrachat_medians_match_calibration() {
        let profile = TraceProfile::ultrachat_like();
        let mut rng = StdRng::seed_from_u64(42);
        let mut inputs: Vec<usize> = (0..20_000)
            .map(|_| profile.sample_input(&mut rng))
            .collect();
        let mut outputs: Vec<usize> = (0..20_000)
            .map(|_| profile.sample_output(&mut rng))
            .collect();
        let (in_med, in_mean) = summarize(&mut inputs);
        let (out_med, _) = summarize(&mut outputs);
        assert!((280..=380).contains(&in_med), "input median {in_med}");
        assert!((230..=310).contains(&out_med), "output median {out_med}");
        // Log-normal right tail: mean well above median.
        assert!(in_mean > in_med as f64);
    }

    #[test]
    fn samples_respect_cap_and_floor() {
        let profile = TraceProfile::ultrachat_like();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = profile.sample_input(&mut rng);
            assert!(s >= 1 && s <= profile.max_tokens);
        }
    }

    #[test]
    fn fixed_profile_is_deterministic() {
        let profile = TraceProfile::fixed(512, 128);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(profile.sample_input(&mut rng), 512);
            assert_eq!(profile.sample_output(&mut rng), 128);
        }
    }

    #[test]
    fn seeded_sampling_reproduces() {
        let profile = TraceProfile::ultrachat_like();
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| profile.sample_input(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| profile.sample_input(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
