//! Deterministic self-profiler for the engine hot path (`profile`
//! feature only).
//!
//! The ROADMAP's per-step allocation audit needs to know *where inside
//! [`crate::Engine::step`]* allocations happen, not just how many the
//! process makes. This module provides span-scoped counters around the
//! step's stages without breaking two contracts:
//!
//! * **Determinism** — nothing here reads a wall clock. The only probe
//!   is an allocation *count*, which is a pure function of the work the
//!   deterministic simulator does, so profiled runs replay exactly.
//! * **`forbid(unsafe_code)`** — a counting [`std::alloc::GlobalAlloc`]
//!   is unavoidably `unsafe`, so it cannot live in this crate. Instead
//!   the harness that owns the `#[global_allocator]` (a bench or test
//!   binary) installs a probe callback via [`install_alloc_probe`]; the
//!   engine only ever calls the safe `fn() -> u64`.
//!
//! Everything is compiled out without the feature: the engine gains no
//! field, no branch, and no code, keeping the default build
//! bit-identical.

use std::sync::OnceLock;

/// The process-wide allocation-count probe (monotone counter reads).
static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Installs the allocation-count probe the engine's stage counters
/// read. Call once from the binary that owns the counting
/// `#[global_allocator]`; returns `false` if a probe was already
/// installed (the existing one wins — probes are process-global).
pub fn install_alloc_probe(probe: fn() -> u64) -> bool {
    ALLOC_PROBE.set(probe).is_ok()
}

/// Current allocation count, or 0 when no probe is installed.
#[must_use]
pub fn probe_now() -> u64 {
    ALLOC_PROBE.get().map_or(0, |probe| probe())
}

/// The stages of one [`crate::Engine::step`] iteration, in execution
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Moving arrived requests into the admission queue.
    Arrivals,
    /// Speculation depth planning and acceptance draws.
    Speculation,
    /// KV-pressure preemption, prefill continuation and admission.
    Admission,
    /// Step-latency evaluation through the cost model.
    Timing,
    /// Token commits, completions and telemetry sampling.
    Commit,
}

/// Every stage, in execution order (the report layout).
pub const STAGES: [Stage; 5] = [
    Stage::Arrivals,
    Stage::Speculation,
    Stage::Admission,
    Stage::Timing,
    Stage::Commit,
];

impl Stage {
    /// Position in [`STAGES`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::Arrivals => 0,
            Self::Speculation => 1,
            Self::Admission => 2,
            Self::Timing => 3,
            Self::Commit => 4,
        }
    }

    /// Stable label for tables and JSON artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Arrivals => "arrivals",
            Self::Speculation => "speculation",
            Self::Admission => "admission",
            Self::Timing => "timing",
            Self::Commit => "commit",
        }
    }
}

/// One stage's accumulated counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageCounters {
    /// Times the stage ran (≥ steps: the scheduler loop can retry).
    pub calls: u64,
    /// Heap allocations attributed to the stage (0 without a probe).
    pub allocs: u64,
}

/// Accumulated per-stage profile of every step the engine ran.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StepProfile {
    /// Productive steps profiled.
    pub steps: u64,
    /// Per-stage counters, indexed like [`STAGES`].
    pub stages: [StageCounters; STAGES.len()],
}

impl StepProfile {
    /// Charges the allocations since `mark` to `stage` and re-arms the
    /// mark for the next stage.
    pub(crate) fn record(&mut self, stage: Stage, mark: &mut u64) {
        let now = probe_now();
        let s = &mut self.stages[stage.index()];
        s.calls += 1;
        s.allocs += now.saturating_sub(*mark);
        *mark = now;
    }

    /// One stage's counters.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> StageCounters {
        self.stages[stage.index()]
    }

    /// Total allocations across all stages.
    #[must_use]
    pub fn total_allocs(&self) -> u64 {
        self.stages.iter().map(|s| s.allocs).sum()
    }

    /// Mean allocations per profiled step (0 when nothing ran).
    #[must_use]
    pub fn allocs_per_step(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        ador_units::conv::f64_from_u64(self.total_allocs())
            / ador_units::conv::f64_from_u64(self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_match_the_layout() {
        for (i, stage) in STAGES.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert!(!stage.label().is_empty());
        }
    }

    #[test]
    fn record_charges_the_delta_and_rearms_the_mark() {
        // No probe installed in unit tests: probe_now() is 0, so the
        // deltas are zero but calls still count.
        let mut profile = StepProfile::default();
        let mut mark = 0u64;
        profile.record(Stage::Arrivals, &mut mark);
        profile.record(Stage::Commit, &mut mark);
        assert_eq!(profile.stage(Stage::Arrivals).calls, 1);
        assert_eq!(profile.stage(Stage::Commit).calls, 1);
        assert_eq!(profile.total_allocs(), 0);
        assert_eq!(profile.allocs_per_step(), 0.0);
    }
}
