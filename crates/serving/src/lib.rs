//! Discrete-event LLM serving simulation (paper §V-D, Fig. 14b):
//! Poisson request arrivals, continuous batching, and QoS measurement.
//!
//! The simulator replicates the paper's serving environment: a request
//! generator draws arrival times from a Poisson process and prompt/response
//! lengths from a chat-trace distribution; a continuous-batching scheduler
//! (Fig. 2b) admits prefills alongside running decodes; per-step latencies
//! come from the [`ador_perf`] analytical model; and a QoS calculator
//! reports TTFT / TBT / end-to-end percentiles, SLO attainment and the
//! maximum sustainable request rate (Fig. 16).
//!
//! The scheduler models three behaviours production engines (vLLM, TGI)
//! treat as baseline:
//!
//! - **Chunked prefill** — prompts larger than
//!   [`SimConfig::prefill_chunk`] are prefilled over several engine
//!   iterations, bounding the prefill time a single long prompt can inject
//!   into running requests' inter-token gaps.
//! - **Token-granular KV accounting** — KV memory is charged as contexts
//!   actually grow (chunk by chunk during prefill, one token per decode
//!   step), not reserved for a request's whole lifetime at admission.
//! - **Preemption** — under KV pressure the youngest request is paused,
//!   its KV released, and its context recomputed on resume; the
//!   [`QosReport`] counts these events alongside queue-depth stats.
//! - **Prefix caching** (opt-in via [`SimConfig::prefix_caching`]) —
//!   requests tagged with a [`Request::prefix_group`] share KV blocks
//!   with earlier requests of the same group ([`PrefixCache`]): admission
//!   skips the prefill of blocks already resident, shared blocks are
//!   charged against the KV budget once, and cold blocks are LRU-evicted
//!   before the scheduler resorts to preemption. This is the vLLM /
//!   RadixAttention mechanism that makes multi-turn sessions cheap.
//! - **Speculative decoding** (opt-in via [`SimConfig::speculation`]) —
//!   each decode step drafts up to `k` tokens per request, verifies them
//!   in one parallel pass, and commits the accepted run plus the verify
//!   pass's own token; KV grows by committed tokens only. The
//!   [`ador_spec`] crate holds the policy ([`SpeculationPolicy`]:
//!   off / fixed depth / SLO-adaptive per-request depth), the seeded
//!   deterministic acceptance process, and the draft/verify cost knobs;
//!   realized drafted/accepted/rejected token counts land in
//!   [`EngineCounters`] and [`QosReport`].
//!
//! [`SchedulerPolicy`] selects how prefill and decode share iterations:
//! fused (every iteration may carry a chunk) or decode-prioritized (at most
//! every other decode step pays prefill interference).
//!
//! The paper pulls `HuggingFaceH4/ultrachat_200k` from the hub to
//! reconstruct token-length patterns; offline, we substitute a seeded
//! log-normal fit of the same marginals (see `DESIGN.md` §2.7).
//!
//! # Examples
//!
//! ```
//! use ador_serving::{ServingSim, SimConfig, TraceProfile};
//! use ador_perf::Deployment;
//! use ador_model::presets;
//!
//! let arch = ador_baselines::ador_table3();
//! let model = presets::llama3_8b();
//! let cfg = SimConfig::new(2.0, 64).with_requests(40).with_seed(7);
//! let report = ServingSim::new(&arch, &model, Deployment::single_device(), cfg)?
//!     .run(TraceProfile::ultrachat_like())?;
//! assert_eq!(report.completed, 40);
//! assert!(report.tbt.p50.as_millis() > 1.0);
//! # Ok::<(), ador_serving::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity;
mod engine;
mod generator;
mod prefix;
#[cfg(feature = "profile")]
pub mod profile;
mod qos;
mod request;
mod sim;
mod slo;
mod sweep;
mod trace;

pub use capacity::{bisect_rate, max_capacity, CapacityResult};
pub use engine::{Engine, StepEvent};
pub use generator::RequestGenerator;
pub use prefix::{splitmix64, PrefixCache, PrefixCacheStats, PREFIX_BLOCK_TOKENS};
pub use qos::{EngineCounters, LatencyStats, QosReport};
pub use request::{Request, RequestOutcome};
pub use sim::{SchedulerPolicy, ServingSim, SimConfig, SimError};
pub use slo::Slo;
pub use sweep::{saturation_knee, sweep_rates, SweepPoint};
pub use trace::TraceProfile;

// Speculative decoding lives in its own engine-independent crate
// (`ador-spec`); re-export the configuration surface so `SimConfig`
// users need not name a second crate.
pub use ador_spec::{SpeculationConfig, SpeculationPolicy};
pub use ador_telemetry::{EventDetail, TelemetryConfig};
