//! Poisson request generation (paper Fig. 14b: "A Request Generator
//! simulates user requests with a Poisson distribution").

use ador_units::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Request, TraceProfile};

/// Generates a request stream with exponential inter-arrival times and
/// trace-profile token lengths. Fully deterministic under a seed.
///
/// # Examples
///
/// ```
/// use ador_serving::{RequestGenerator, TraceProfile};
///
/// let reqs = RequestGenerator::new(5.0, TraceProfile::ultrachat_like(), 11).take(100);
/// assert_eq!(reqs.len(), 100);
/// // Arrivals are sorted and average ~0.2 s apart at 5 req/s.
/// assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    rate_per_sec: f64,
    profile: TraceProfile,
    rng: StdRng,
    now: Seconds,
    next_id: u64,
}

impl RequestGenerator {
    /// Creates a generator with mean arrival rate `rate_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not finite and positive.
    pub fn new(rate_per_sec: f64, profile: TraceProfile, seed: u64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive, got {rate_per_sec}"
        );
        Self {
            rate_per_sec,
            profile,
            rng: StdRng::seed_from_u64(seed),
            now: Seconds::ZERO,
            next_id: 0,
        }
    }

    /// The configured mean arrival rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Draws the next request.
    pub fn next_request(&mut self) -> Request {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = -u.ln() / self.rate_per_sec;
        self.now += Seconds::new(gap);
        let input = self.profile.sample_input(&mut self.rng);
        let output = self.profile.sample_output(&mut self.rng);
        let req = Request::new(self.next_id, self.now, input, output);
        self.next_id += 1;
        req
    }

    /// Draws the next `n` requests.
    pub fn take(mut self, n: usize) -> Vec<Request> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    // tests may unwrap: a failed unwrap is exactly the test failing
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn mean_rate_converges() {
        let reqs = RequestGenerator::new(10.0, TraceProfile::short_chat(), 5).take(5000);
        let span = reqs.last().unwrap().arrival.get();
        let measured = reqs.len() as f64 / span;
        assert!(
            (measured - 10.0).abs() < 1.0,
            "measured {measured:.2} req/s"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = RequestGenerator::new(3.0, TraceProfile::ultrachat_like(), 17).take(50);
        let b = RequestGenerator::new(3.0, TraceProfile::ultrachat_like(), 17).take(50);
        assert_eq!(a, b);
        let c = RequestGenerator::new(3.0, TraceProfile::ultrachat_like(), 18).take(50);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_are_sequential() {
        let reqs = RequestGenerator::new(1.0, TraceProfile::short_chat(), 0).take(10);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = RequestGenerator::new(0.0, TraceProfile::short_chat(), 0);
    }
}
