//! Load sweeps: QoS as a function of offered load — the raw material for
//! capacity planning and the Fig. 16 curves.

use ador_hw::Architecture;
use ador_model::ModelConfig;
use ador_perf::Deployment;
use serde::Serialize;

use crate::{QosReport, ServingSim, SimConfig, SimError, TraceProfile};

/// One point of a load sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Offered arrival rate (req/s).
    pub rate: f64,
    /// Measured QoS at that rate.
    pub report: QosReport,
}

impl SweepPoint {
    /// Goodput ratio: completed throughput over offered load (≈1 below
    /// saturation, falling once the queue grows within the horizon).
    pub fn goodput_ratio(&self) -> f64 {
        self.report.requests_per_sec / self.rate
    }
}

/// Runs the serving simulation at each rate in `rates`.
///
/// `base_cfg` carries every scheduler knob — batch cap, prefill chunk,
/// KV memory fraction and [`crate::SchedulerPolicy`] — so a sweep compares
/// rates under one fixed scheduling regime.
///
/// # Errors
///
/// Propagates simulator errors from any point of the sweep.
///
/// # Examples
///
/// ```
/// use ador_serving::{sweep_rates, SimConfig, TraceProfile};
/// use ador_perf::Deployment;
///
/// let arch = ador_baselines::ador_table3();
/// let model = ador_model::presets::llama3_8b();
/// let points = sweep_rates(
///     &arch, &model, Deployment::single_device(),
///     SimConfig::new(1.0, 64).with_requests(40),
///     TraceProfile::short_chat(),
///     &[1.0, 4.0, 16.0],
/// )?;
/// assert_eq!(points.len(), 3);
/// // TTFT p95 is non-decreasing in offered load.
/// assert!(points[0].report.ttft.p95 <= points[2].report.ttft.p95);
/// # Ok::<(), ador_serving::SimError>(())
/// ```
pub fn sweep_rates(
    arch: &Architecture,
    model: &ModelConfig,
    deployment: Deployment,
    base_cfg: SimConfig,
    profile: TraceProfile,
    rates: &[f64],
) -> Result<Vec<SweepPoint>, SimError> {
    rates
        .iter()
        .map(|&rate| {
            let cfg = base_cfg.with_arrival_rate(rate);
            let report = ServingSim::new(arch, model, deployment, cfg)?.run(profile)?;
            Ok(SweepPoint { rate, report })
        })
        .collect()
}

/// Finds the saturation knee: the first rate at which the p95 TTFT exceeds
/// `knee_factor` times the lightest-load p95 TTFT. Returns `None` if the
/// sweep never saturates.
pub fn saturation_knee(points: &[SweepPoint], knee_factor: f64) -> Option<f64> {
    let baseline = points.first()?.report.ttft.p95;
    points
        .iter()
        .find(|p| p.report.ttft.p95.get() > baseline.get() * knee_factor)
        .map(|p| p.rate)
}

#[cfg(test)]
mod tests {
    // tests may unwrap: a failed unwrap is exactly the test failing
    #![allow(clippy::unwrap_used)]

    use super::*;
    use ador_model::presets;

    fn sweep() -> Vec<SweepPoint> {
        let arch = ador_baselines::ador_table3();
        let model = presets::llama3_8b();
        sweep_rates(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 32).with_requests(64).with_seed(31),
            TraceProfile::ultrachat_like(),
            &[1.0, 4.0, 16.0, 64.0],
        )
        .unwrap()
    }

    #[test]
    fn ttft_degrades_with_load() {
        let pts = sweep();
        assert!(pts[0].report.ttft.p95 <= pts[3].report.ttft.p95);
    }

    #[test]
    fn knee_detected_under_overload() {
        let pts = sweep();
        let knee = saturation_knee(&pts, 3.0);
        assert!(knee.is_some(), "64 req/s must saturate a 32-slot engine");
        assert!(knee.unwrap() > 1.0);
    }

    #[test]
    fn goodput_near_one_below_saturation() {
        let pts = sweep();
        // Completed/offered within the horizon at light load.
        assert!(
            (0.5..=1.5).contains(&pts[0].goodput_ratio()),
            "{}",
            pts[0].goodput_ratio()
        );
    }
}
