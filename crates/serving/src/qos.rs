//! QoS aggregation: the "QoS Calculator" of Fig. 14b.

use ador_telemetry::LatencyHistogram;
use ador_units::{conv, Seconds};
use serde::Serialize;

use crate::RequestOutcome;

/// Percentile summary of a latency population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencyStats {
    /// Arithmetic mean.
    pub mean: Seconds,
    /// Median.
    pub p50: Seconds,
    /// 95th percentile.
    pub p95: Seconds,
    /// 99th percentile.
    pub p99: Seconds,
    /// Maximum.
    pub max: Seconds,
}

impl LatencyStats {
    /// Computes stats over `samples` (unsorted). Percentiles use ceil-based
    /// nearest-rank: the q-quantile is the smallest sample with at least
    /// ⌈q·n⌉ of the population at or below it, so a reported p99 is never
    /// below the requested quantile.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[Seconds]) -> Self {
        assert!(
            !samples.is_empty(),
            "cannot summarize an empty latency population"
        );
        let mut sorted: Vec<Seconds> = samples.to_vec();
        // ador-lint: allow(panic) — invariant: latencies are differences of finite sim times
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
        let pick = |q: f64| {
            let rank = conv::usize_from_f64((q * conv::f64_from_usize(sorted.len())).ceil());
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        let mean = sorted.iter().copied().sum::<Seconds>() / conv::f64_from_usize(sorted.len());
        Self {
            mean,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            // The 1.0-quantile is the last (largest) sample.
            max: pick(1.0),
        }
    }

    /// Merges per-group summaries (each with its sample count) into one
    /// fleet-wide summary, without access to the raw populations.
    ///
    /// `mean` is the exact count-weighted mean and `max` is exact. The
    /// percentiles are the **maximum over groups** — a sound upper bound
    /// on the union percentile (at least a q-fraction of every group lies
    /// at or below its own q-quantile, so at least a q-fraction of the
    /// union lies at or below the largest group q-quantile), but biased
    /// upward when the groups are imbalanced. Fleet-level SLO checks on a
    /// merged summary are therefore conservative: a pass is trustworthy, a
    /// narrow miss may be a merge artifact.
    ///
    /// Use this bound-based path only when the raw per-request outcomes
    /// are unavailable (pre-aggregated summaries, external data). A caller
    /// that still holds the outcomes — the cluster driver does — should
    /// recompute from the pooled population instead
    /// ([`QosReport::merge_exact`]), which makes the fleet percentiles
    /// exact rather than an upper bound.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the counts sum to zero.
    pub fn merge(parts: &[(Self, usize)]) -> Self {
        let total: usize = parts.iter().map(|&(_, n)| n).sum();
        assert!(
            !parts.is_empty() && total > 0,
            "cannot merge an empty latency population"
        );
        let weighted_mean = parts
            .iter()
            .map(|&(s, n)| s.mean * (conv::f64_from_usize(n) / conv::f64_from_usize(total)))
            .sum::<Seconds>();
        let fold = |pick: fn(&Self) -> Seconds| {
            parts
                .iter()
                .filter(|&&(_, n)| n > 0)
                .map(|(s, _)| pick(s))
                .fold(Seconds::ZERO, Seconds::max)
        };
        Self {
            mean: weighted_mean,
            p50: fold(|s| s.p50),
            p95: fold(|s| s.p95),
            p99: fold(|s| s.p99),
            max: fold(|s| s.max),
        }
    }
}

/// Engine-level counters the scheduler accumulates across its iterations,
/// reported alongside the per-request latency populations.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct EngineCounters {
    /// Mean decode-batch occupancy (token-producing requests per step).
    pub mean_batch: f64,
    /// Peak decode-batch occupancy.
    pub peak_batch: usize,
    /// KV-pressure preemption events.
    pub preemptions: usize,
    /// Mean admission-queue depth sampled per engine step.
    pub mean_queue_depth: f64,
    /// Peak admission-queue depth.
    pub peak_queue_depth: usize,
    /// Peak KV tokens resident across the run.
    pub peak_kv_tokens: usize,
    /// Prompt tokens actually prefilled (recomputes after preemption
    /// included, prefix-cache hits excluded). Without prefix caching this
    /// is the total prompt-token demand admitted so far.
    pub prefilled_tokens: usize,
    /// Prompt tokens whose prefill was skipped by a prefix-cache hit.
    pub prefix_hit_tokens: usize,
    /// Shareable (full-block) prompt tokens that missed the prefix cache.
    pub prefix_miss_tokens: usize,
    /// Tokens of cached prefix blocks evicted under KV pressure.
    pub prefix_evicted_tokens: usize,
    /// Output tokens actually committed by decode/verify steps. Equals
    /// the summed declared response lengths once every request completes
    /// — the invariant the stop-boundary clamp protects under
    /// speculation's multi-token commits.
    pub generated_tokens: usize,
    /// Draft-model tokens proposed across all verify steps (0 with
    /// speculation off).
    pub drafted_tokens: usize,
    /// Drafted tokens the target model accepted
    /// (`drafted == accepted + rejected` always holds).
    pub accepted_tokens: usize,
    /// Drafted tokens the target model rejected — work burnt without a
    /// committed token.
    pub rejected_tokens: usize,
}

/// The full QoS report of one serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QosReport {
    /// Completed requests.
    pub completed: usize,
    /// Wall-clock span of the simulation.
    pub makespan: Seconds,
    /// Time-to-first-token stats.
    pub ttft: LatencyStats,
    /// Time-between-tokens stats (per-request means).
    pub tbt: LatencyStats,
    /// End-to-end latency stats.
    pub e2e: LatencyStats,
    /// Sustained request throughput (completed / makespan).
    pub requests_per_sec: f64,
    /// Generated-token throughput across all requests.
    pub tokens_per_sec: f64,
    /// Goodput: generated tokens from SLO-met requests over the makespan.
    /// A request with no attached [`Slo`](crate::Slo) counts as met (no
    /// contract to break); one that missed its contract contributes
    /// nothing — tokens a user had to walk away from are not good
    /// throughput. The headline metric for SLO-customized speculation.
    pub goodput_tokens_per_sec: f64,
    /// Mean decode batch occupancy observed across engine steps.
    pub mean_batch: f64,
    /// Peak decode batch occupancy.
    pub peak_batch: usize,
    /// KV-pressure preemption events across the run.
    pub preemptions: usize,
    /// Mean admission-queue depth across engine steps.
    pub mean_queue_depth: f64,
    /// Peak admission-queue depth.
    pub peak_queue_depth: usize,
    /// Peak KV tokens resident at any step (≤ the simulator's budget).
    pub peak_kv_tokens: usize,
    /// Prompt tokens actually prefilled (prefix-cache hits excluded).
    pub prefilled_tokens: usize,
    /// Prompt tokens whose prefill a prefix-cache hit skipped.
    pub prefix_hit_tokens: usize,
    /// Shareable prompt tokens that missed the prefix cache.
    pub prefix_miss_tokens: usize,
    /// Cached prefix tokens evicted under KV pressure.
    pub prefix_evicted_tokens: usize,
    /// Output tokens committed by decode/verify steps.
    pub generated_tokens: usize,
    /// Draft tokens proposed across all verify steps.
    pub drafted_tokens: usize,
    /// Drafted tokens the target model accepted.
    pub accepted_tokens: usize,
    /// Drafted tokens the target model rejected.
    pub rejected_tokens: usize,
    /// Log-bucketed TTFT population. Unlike the [`LatencyStats`] summary,
    /// histograms merge exactly (bucket counts add), so fleet-level
    /// percentiles derived from the merged histogram are within the bucket
    /// width (6.25 %) of the true union percentile instead of a
    /// max-over-replicas upper bound.
    pub ttft_hist: LatencyHistogram,
    /// Log-bucketed per-request mean-TBT population.
    pub tbt_hist: LatencyHistogram,
    /// Log-bucketed end-to-end latency population.
    pub e2e_hist: LatencyHistogram,
}

impl QosReport {
    /// Builds a report from completed outcomes plus engine-level counters.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty.
    pub fn from_outcomes(
        outcomes: &[RequestOutcome],
        makespan: Seconds,
        counters: EngineCounters,
    ) -> Self {
        assert!(!outcomes.is_empty(), "no completed requests to report on");
        let ttfts: Vec<Seconds> = outcomes.iter().map(|o| o.ttft).collect();
        let tbts: Vec<Seconds> = outcomes.iter().map(|o| o.mean_tbt).collect();
        let e2es: Vec<Seconds> = outcomes.iter().map(|o| o.e2e).collect();
        let tokens: usize = outcomes.iter().map(|o| o.request.output_tokens).sum();
        let good_tokens: usize = outcomes
            .iter()
            .filter(|o| o.request.slo.is_none_or(|slo| slo.met(o)))
            .map(|o| o.request.output_tokens)
            .sum();
        let span = makespan.get().max(1e-12);
        Self {
            completed: outcomes.len(),
            makespan,
            ttft: LatencyStats::from_samples(&ttfts),
            tbt: LatencyStats::from_samples(&tbts),
            e2e: LatencyStats::from_samples(&e2es),
            ttft_hist: LatencyHistogram::from_samples(&ttfts),
            tbt_hist: LatencyHistogram::from_samples(&tbts),
            e2e_hist: LatencyHistogram::from_samples(&e2es),
            requests_per_sec: conv::f64_from_usize(outcomes.len()) / span,
            tokens_per_sec: conv::f64_from_usize(tokens) / span,
            goodput_tokens_per_sec: conv::f64_from_usize(good_tokens) / span,
            mean_batch: counters.mean_batch,
            peak_batch: counters.peak_batch,
            preemptions: counters.preemptions,
            mean_queue_depth: counters.mean_queue_depth,
            peak_queue_depth: counters.peak_queue_depth,
            peak_kv_tokens: counters.peak_kv_tokens,
            prefilled_tokens: counters.prefilled_tokens,
            prefix_hit_tokens: counters.prefix_hit_tokens,
            prefix_miss_tokens: counters.prefix_miss_tokens,
            prefix_evicted_tokens: counters.prefix_evicted_tokens,
            generated_tokens: counters.generated_tokens,
            drafted_tokens: counters.drafted_tokens,
            accepted_tokens: counters.accepted_tokens,
            rejected_tokens: counters.rejected_tokens,
        }
    }

    /// Realized draft acceptance rate: `accepted / drafted`, or 0 when
    /// nothing was drafted (speculation off). With an i.i.d. per-token
    /// acceptance profile the realized rate runs *below* the profile:
    /// leading-run verification discards everything after the first
    /// rejection, so late drafts only count when the whole run before
    /// them survives.
    pub fn acceptance_rate(&self) -> f64 {
        if self.drafted_tokens == 0 {
            0.0
        } else {
            conv::f64_from_usize(self.accepted_tokens) / conv::f64_from_usize(self.drafted_tokens)
        }
    }

    /// Prefix-cache block hit rate over the shareable prompt tokens seen:
    /// `hit / (hit + miss)`, or 0 when caching was off or nothing was
    /// shareable.
    pub fn prefix_hit_rate(&self) -> f64 {
        let seen = self.prefix_hit_tokens + self.prefix_miss_tokens;
        if seen == 0 {
            0.0
        } else {
            conv::f64_from_usize(self.prefix_hit_tokens) / conv::f64_from_usize(seen)
        }
    }

    /// Merges per-replica reports into one fleet-wide report.
    ///
    /// Counts (`completed`, `preemptions`) are summed and peaks are maxed.
    /// `makespan` is the latest replica finish time, and the throughput
    /// figures (requests, tokens, goodput) are recomputed over it from
    /// the summed totals (tokens are recovered as `rate × makespan` per
    /// replica, which is exact). `mean_batch` and `mean_queue_depth` are makespan-weighted,
    /// approximating a fleet-time average across replicas whose step
    /// grids differ.
    ///
    /// Latency populations merge through the log-bucketed histograms,
    /// whose bucket counts add exactly: the fleet percentiles are read
    /// from the merged histogram and land within one bucket (6.25 %)
    /// above the true union percentile — far tighter than the
    /// max-over-replicas upper bound [`LatencyStats::merge`] falls back
    /// on when no histogram is available, yet still never *below* the
    /// exact value, so fleet-level SLO checks stay conservative. Means
    /// and maxima are exact. A single-report merge is the identity.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty or no report completed any request.
    pub fn merge(reports: &[QosReport]) -> Self {
        let completed: usize = reports.iter().map(|r| r.completed).sum();
        assert!(
            !reports.is_empty() && completed > 0,
            "cannot merge reports with no completed requests"
        );
        if let [only] = reports {
            return only.clone();
        }
        let makespan = reports
            .iter()
            .map(|r| r.makespan)
            .fold(Seconds::ZERO, Seconds::max);
        let span = makespan.get().max(1e-12);
        let total_span: f64 = reports.iter().map(|r| r.makespan.get()).sum();
        let time_weighted = |pick: fn(&QosReport) -> f64| {
            if total_span <= 0.0 {
                0.0
            } else {
                reports
                    .iter()
                    .map(|r| pick(r) * r.makespan.get())
                    .sum::<f64>()
                    / total_span
            }
        };
        let pooled = |pick: fn(&QosReport) -> &LatencyHistogram| {
            let mut hist = LatencyHistogram::new();
            for r in reports {
                hist.merge(pick(r));
            }
            hist
        };
        let ttft_hist = pooled(|r| &r.ttft_hist);
        let tbt_hist = pooled(|r| &r.tbt_hist);
        let e2e_hist = pooled(|r| &r.e2e_hist);
        let stats = |hist: &LatencyHistogram| LatencyStats {
            mean: hist.mean(),
            p50: hist.percentile(0.50),
            p95: hist.percentile(0.95),
            p99: hist.percentile(0.99),
            max: hist.max(),
        };
        let tokens: f64 = reports
            .iter()
            .map(|r| r.tokens_per_sec * r.makespan.get())
            .sum();
        let good_tokens: f64 = reports
            .iter()
            .map(|r| r.goodput_tokens_per_sec * r.makespan.get())
            .sum();
        Self {
            completed,
            makespan,
            ttft: stats(&ttft_hist),
            tbt: stats(&tbt_hist),
            e2e: stats(&e2e_hist),
            ttft_hist,
            tbt_hist,
            e2e_hist,
            requests_per_sec: conv::f64_from_usize(completed) / span,
            tokens_per_sec: tokens / span,
            goodput_tokens_per_sec: good_tokens / span,
            mean_batch: time_weighted(|r| r.mean_batch),
            peak_batch: reports.iter().map(|r| r.peak_batch).max().unwrap_or(0),
            preemptions: reports.iter().map(|r| r.preemptions).sum(),
            mean_queue_depth: time_weighted(|r| r.mean_queue_depth),
            peak_queue_depth: reports
                .iter()
                .map(|r| r.peak_queue_depth)
                .max()
                .unwrap_or(0),
            peak_kv_tokens: reports.iter().map(|r| r.peak_kv_tokens).max().unwrap_or(0),
            prefilled_tokens: reports.iter().map(|r| r.prefilled_tokens).sum(),
            prefix_hit_tokens: reports.iter().map(|r| r.prefix_hit_tokens).sum(),
            prefix_miss_tokens: reports.iter().map(|r| r.prefix_miss_tokens).sum(),
            prefix_evicted_tokens: reports.iter().map(|r| r.prefix_evicted_tokens).sum(),
            generated_tokens: reports.iter().map(|r| r.generated_tokens).sum(),
            drafted_tokens: reports.iter().map(|r| r.drafted_tokens).sum(),
            accepted_tokens: reports.iter().map(|r| r.accepted_tokens).sum(),
            rejected_tokens: reports.iter().map(|r| r.rejected_tokens).sum(),
        }
    }

    /// Merges per-replica reports like [`QosReport::merge`], then replaces
    /// every population-derived figure with the exact value recomputed
    /// from the pooled per-request `outcomes` on the shared fleet clock:
    /// latency percentiles are the true union percentiles (not the
    /// bound-based maximum over replicas — see [`LatencyStats::merge`]),
    /// and the throughput figures divide the pooled token totals by the
    /// fleet makespan (the latest replica finish time) directly instead of
    /// recovering them from per-replica rates.
    ///
    /// Counter aggregates that have no per-request population — summed
    /// token/preemption counters, maxed peaks, makespan-weighted step
    /// means — keep their [`QosReport::merge`] semantics.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty, nothing completed, or `outcomes` does
    /// not hold exactly the requests the reports counted.
    pub fn merge_exact(reports: &[QosReport], outcomes: &[RequestOutcome]) -> Self {
        let merged = Self::merge(reports);
        assert_eq!(
            outcomes.len(),
            merged.completed,
            "pooled outcomes must cover exactly the merged reports' requests"
        );
        let exact = Self::from_outcomes(outcomes, merged.makespan, EngineCounters::default());
        Self {
            ttft: exact.ttft,
            tbt: exact.tbt,
            e2e: exact.e2e,
            ttft_hist: exact.ttft_hist,
            tbt_hist: exact.tbt_hist,
            e2e_hist: exact.e2e_hist,
            requests_per_sec: exact.requests_per_sec,
            tokens_per_sec: exact.tokens_per_sec,
            goodput_tokens_per_sec: exact.goodput_tokens_per_sec,
            ..merged
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Request;

    fn outcome(id: u64, ttft_ms: f64, tbt_ms: f64) -> RequestOutcome {
        RequestOutcome {
            request: Request::new(id, Seconds::ZERO, 100, 10),
            ttft: Seconds::from_millis(ttft_ms),
            mean_tbt: Seconds::from_millis(tbt_ms),
            max_tbt: Seconds::from_millis(tbt_ms * 1.5),
            e2e: Seconds::from_millis(ttft_ms + 10.0 * tbt_ms),
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let samples: Vec<Seconds> = (1..=100).map(|i| Seconds::from_millis(i as f64)).collect();
        let s = LatencyStats::from_samples(&samples);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((s.p50.as_millis() - 50.0).abs() <= 1.5);
        assert!((s.p95.as_millis() - 95.0).abs() <= 1.5);
    }

    #[test]
    fn nearest_rank_is_exact_on_known_populations() {
        // n = 100, values 1..=100 ms: the q-quantile is exactly q·100 ms.
        let samples: Vec<Seconds> = (1..=100).map(|i| Seconds::from_millis(i as f64)).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.p50.as_millis(), 50.0);
        assert_eq!(s.p95.as_millis(), 95.0);
        assert_eq!(s.p99.as_millis(), 99.0);

        // n = 10: ⌈0.5·10⌉ = 5, ⌈0.95·10⌉ = ⌈0.99·10⌉ = 10.
        let samples: Vec<Seconds> = (1..=10).map(|i| Seconds::from_millis(i as f64)).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.p50.as_millis(), 5.0);
        assert_eq!(s.p95.as_millis(), 10.0);
        assert_eq!(s.p99.as_millis(), 10.0);
    }

    #[test]
    fn nearest_rank_never_selects_below_the_quantile() {
        // n = 67 is the `.round()` regression: (66·0.99).round() = 65 picks
        // the 66th value, below the 99th percentile. Ceil-based nearest
        // rank picks ⌈0.99·67⌉ = 67.
        let samples: Vec<Seconds> = (1..=67).map(|i| Seconds::from_millis(i as f64)).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.p99.as_millis(), 67.0);
        for n in 1..=300usize {
            let samples: Vec<Seconds> = (1..=n).map(|i| Seconds::from_millis(i as f64)).collect();
            let s = LatencyStats::from_samples(&samples);
            for (q, v) in [(0.50, s.p50), (0.95, s.p95), (0.99, s.p99)] {
                let at_or_below = v.as_millis() as usize;
                assert!(
                    at_or_below as f64 >= (q * n as f64).ceil() - 0.5,
                    "n={n} q={q}: picked {at_or_below}"
                );
            }
        }
    }

    #[test]
    fn report_counts_throughput() {
        let outcomes: Vec<RequestOutcome> = (0..10).map(|i| outcome(i, 50.0, 20.0)).collect();
        let counters = EngineCounters {
            mean_batch: 4.0,
            peak_batch: 8,
            preemptions: 2,
            mean_queue_depth: 1.5,
            peak_queue_depth: 4,
            peak_kv_tokens: 9000,
            ..Default::default()
        };
        let report = QosReport::from_outcomes(&outcomes, Seconds::new(5.0), counters);
        assert_eq!(report.completed, 10);
        assert!((report.requests_per_sec - 2.0).abs() < 1e-9);
        assert!((report.tokens_per_sec - 20.0).abs() < 1e-9);
        assert_eq!(report.preemptions, 2);
        assert_eq!(report.peak_queue_depth, 4);
        assert_eq!(report.peak_kv_tokens, 9000);
    }

    #[test]
    fn goodput_counts_only_slo_met_requests() {
        use crate::Slo;
        // Four 10-token requests over 1 s: one meets its strict SLO, one
        // misses it on TBT, one misses on TTFT, one has no contract (and
        // therefore counts as met).
        let tag = |o: RequestOutcome| RequestOutcome {
            request: o.request.with_slo(Slo::strict()),
            ..o
        };
        let outcomes = vec![
            tag(outcome(0, 100.0, 20.0)),
            tag(outcome(1, 100.0, 40.0)),
            tag(outcome(2, 3000.0, 20.0)),
            outcome(3, 60_000.0, 500.0),
        ];
        let report =
            QosReport::from_outcomes(&outcomes, Seconds::new(1.0), EngineCounters::default());
        assert!((report.tokens_per_sec - 40.0).abs() < 1e-9);
        assert!((report.goodput_tokens_per_sec - 20.0).abs() < 1e-9);
        assert!(report.goodput_tokens_per_sec <= report.tokens_per_sec);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_population_rejected() {
        let _ = LatencyStats::from_samples(&[]);
    }

    #[test]
    fn latency_merge_bounds_the_union() {
        // Two imbalanced groups: the merged percentiles must upper-bound
        // the exact union percentiles, and the merged mean must equal the
        // exact union mean.
        let a: Vec<Seconds> = (1..=90).map(|i| Seconds::from_millis(i as f64)).collect();
        let b: Vec<Seconds> = (91..=100).map(|i| Seconds::from_millis(i as f64)).collect();
        let merged = LatencyStats::merge(&[
            (LatencyStats::from_samples(&a), a.len()),
            (LatencyStats::from_samples(&b), b.len()),
        ]);
        let union: Vec<Seconds> = a.iter().chain(&b).copied().collect();
        let exact = LatencyStats::from_samples(&union);
        assert!((merged.mean.get() - exact.mean.get()).abs() < 1e-12);
        assert!(merged.p50 >= exact.p50);
        assert!(merged.p95 >= exact.p95);
        assert!(merged.p99 >= exact.p99);
        assert_eq!(merged.max, exact.max);
    }

    #[test]
    fn latency_merge_of_identical_groups_is_identity() {
        let s: Vec<Seconds> = (1..=50).map(|i| Seconds::from_millis(i as f64)).collect();
        let stats = LatencyStats::from_samples(&s);
        let merged = LatencyStats::merge(&[(stats, 50), (stats, 50)]);
        assert_eq!(merged, stats);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn latency_merge_rejects_empty() {
        let _ = LatencyStats::merge(&[]);
    }

    #[test]
    fn report_merge_sums_counts_and_maxes_peaks() {
        let mk = |n: usize, makespan: f64, batch: f64| {
            let outcomes: Vec<RequestOutcome> =
                (0..n as u64).map(|i| outcome(i, 50.0, 20.0)).collect();
            QosReport::from_outcomes(
                &outcomes,
                Seconds::new(makespan),
                EngineCounters {
                    mean_batch: batch,
                    peak_batch: n,
                    preemptions: 1,
                    mean_queue_depth: batch / 2.0,
                    peak_queue_depth: n / 2,
                    peak_kv_tokens: 100 * n,
                    prefilled_tokens: 50 * n,
                    prefix_hit_tokens: 10 * n,
                    prefix_miss_tokens: 30 * n,
                    prefix_evicted_tokens: n,
                    generated_tokens: 10 * n,
                    drafted_tokens: 20 * n,
                    accepted_tokens: 15 * n,
                    rejected_tokens: 5 * n,
                },
            )
        };
        let a = mk(10, 5.0, 4.0);
        let b = mk(30, 10.0, 8.0);
        let fleet = QosReport::merge(&[a.clone(), b.clone()]);
        assert_eq!(fleet.completed, 40);
        assert_eq!(fleet.makespan, Seconds::new(10.0));
        assert_eq!(fleet.preemptions, 2);
        assert_eq!(fleet.peak_batch, 30);
        assert_eq!(fleet.peak_kv_tokens, 3000);
        // Prefix/prefill token counters sum across replicas.
        assert_eq!(fleet.prefilled_tokens, 50 * 40);
        assert_eq!(fleet.prefix_hit_tokens, 10 * 40);
        assert_eq!(fleet.prefix_miss_tokens, 30 * 40);
        assert_eq!(fleet.prefix_evicted_tokens, 40);
        assert!((fleet.prefix_hit_rate() - 0.25).abs() < 1e-12);
        // Speculation counters sum; realized acceptance is their ratio.
        assert_eq!(fleet.generated_tokens, 10 * 40);
        assert_eq!(fleet.drafted_tokens, 20 * 40);
        assert_eq!(
            fleet.drafted_tokens,
            fleet.accepted_tokens + fleet.rejected_tokens
        );
        assert!((fleet.acceptance_rate() - 0.75).abs() < 1e-12);
        // Goodput merges like tokens: every outcome here meets (or has
        // no) SLO, so goodput equals token throughput.
        assert!((fleet.goodput_tokens_per_sec - fleet.tokens_per_sec).abs() < 1e-9);
        // 40 requests over the 10 s fleet makespan.
        assert!((fleet.requests_per_sec - 4.0).abs() < 1e-9);
        // Tokens: 10·10 over 5 s plus 30·10 over 10 s, replayed over 10 s.
        assert!((fleet.tokens_per_sec - 40.0).abs() < 1e-9);
        // Makespan-weighted means: (4·5 + 8·10)/15.
        assert!((fleet.mean_batch - 100.0 / 15.0).abs() < 1e-9);
        // A single-report merge is the identity.
        assert_eq!(QosReport::merge(std::slice::from_ref(&a)), a);
    }

    #[test]
    #[should_panic(expected = "no completed requests")]
    fn report_merge_rejects_empty() {
        let _ = QosReport::merge(&[]);
    }

    #[test]
    fn merge_exact_recovers_the_union_population() {
        // Two deliberately imbalanced replicas: one holds the fast 90 % of
        // the population, the other the slow tail. The bound-based merge
        // overstates the union p50/p95; the exact merge must equal a
        // single-engine report over the pooled population on the fleet
        // makespan.
        let fast: Vec<RequestOutcome> = (1..=90).map(|i| outcome(i, i as f64, 10.0)).collect();
        let slow: Vec<RequestOutcome> = (91..=100)
            .map(|i| outcome(i, i as f64 * 10.0, 10.0))
            .collect();
        let a = QosReport::from_outcomes(&fast, Seconds::new(4.0), EngineCounters::default());
        let b = QosReport::from_outcomes(&slow, Seconds::new(9.0), EngineCounters::default());
        let pooled: Vec<RequestOutcome> = fast.iter().chain(&slow).copied().collect();

        let bound = QosReport::merge(&[a.clone(), b.clone()]);
        let exact = QosReport::merge_exact(&[a, b], &pooled);
        let truth = QosReport::from_outcomes(&pooled, Seconds::new(9.0), EngineCounters::default());

        assert_eq!(exact.ttft, truth.ttft);
        assert_eq!(exact.tbt, truth.tbt);
        assert_eq!(exact.e2e, truth.e2e);
        assert_eq!(exact.makespan, Seconds::new(9.0));
        assert!((exact.tokens_per_sec - truth.tokens_per_sec).abs() < 1e-12);
        assert!((exact.goodput_tokens_per_sec - truth.goodput_tokens_per_sec).abs() < 1e-12);
        assert!((exact.requests_per_sec - truth.requests_per_sec).abs() < 1e-12);
        // The imbalance makes the bound strictly loose here — the exact
        // path is a real improvement, not a rename.
        assert!(bound.ttft.p50 > exact.ttft.p50);
        assert!(bound.ttft.p95 > exact.ttft.p95);
        // Counter aggregates keep their merge semantics.
        assert_eq!(exact.completed, bound.completed);
        assert_eq!(exact.peak_batch, bound.peak_batch);
        assert_eq!(exact.preemptions, bound.preemptions);
    }

    #[test]
    fn merged_histogram_percentiles_bracket_the_exact_union() {
        // The histogram-backed merge must land between the exact union
        // percentile and one bucket (6.25 %) above it — strictly tighter
        // than the old max-over-replicas bound on imbalanced groups.
        let fast: Vec<RequestOutcome> = (1..=90).map(|i| outcome(i, i as f64, 10.0)).collect();
        let slow: Vec<RequestOutcome> = (91..=100)
            .map(|i| outcome(i, i as f64 * 10.0, 10.0))
            .collect();
        let a = QosReport::from_outcomes(&fast, Seconds::new(4.0), EngineCounters::default());
        let b = QosReport::from_outcomes(&slow, Seconds::new(9.0), EngineCounters::default());
        let pooled: Vec<RequestOutcome> = fast.iter().chain(&slow).copied().collect();
        let truth = QosReport::from_outcomes(&pooled, Seconds::new(9.0), EngineCounters::default());

        let bound = LatencyStats::merge(&[(a.ttft, a.completed), (b.ttft, b.completed)]);
        let merged = QosReport::merge(&[a, b]);
        for (m, t) in [
            (merged.ttft, truth.ttft),
            (merged.tbt, truth.tbt),
            (merged.e2e, truth.e2e),
        ] {
            for (got, exact) in [(m.p50, t.p50), (m.p95, t.p95), (m.p99, t.p99)] {
                assert!(
                    got >= exact && got <= exact * 1.0625,
                    "merged percentile {got} must bracket exact {exact}"
                );
            }
            assert_eq!(m.max, t.max, "maxima merge exactly");
            assert!(
                (m.mean.get() - t.mean.get()).abs() < 1e-9,
                "means are exact"
            );
        }
        // Strictly tighter than the max-over-replicas bound: the old path
        // reported the slow replica's p50 (≈ 955 ms) as the fleet p50; the
        // histogram stays within a bucket of the true 50 ms.
        assert!(merged.ttft.p50 < bound.p50);
        assert!(merged.ttft.p95 < bound.p95);
    }

    #[test]
    #[should_panic(expected = "pooled outcomes")]
    fn merge_exact_rejects_mismatched_outcomes() {
        let outcomes: Vec<RequestOutcome> = (0..4).map(|i| outcome(i, 50.0, 20.0)).collect();
        let report =
            QosReport::from_outcomes(&outcomes, Seconds::new(1.0), EngineCounters::default());
        let _ = QosReport::merge_exact(&[report], &outcomes[..2]);
    }
}
