//! QoS aggregation: the "QoS Calculator" of Fig. 14b.

use ador_units::Seconds;
use serde::Serialize;

use crate::RequestOutcome;

/// Percentile summary of a latency population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencyStats {
    /// Arithmetic mean.
    pub mean: Seconds,
    /// Median.
    pub p50: Seconds,
    /// 95th percentile.
    pub p95: Seconds,
    /// 99th percentile.
    pub p99: Seconds,
    /// Maximum.
    pub max: Seconds,
}

impl LatencyStats {
    /// Computes stats over `samples` (unsorted).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[Seconds]) -> Self {
        assert!(
            !samples.is_empty(),
            "cannot summarize an empty latency population"
        );
        let mut sorted: Vec<Seconds> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
        let pick = |q: f64| {
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            sorted[idx]
        };
        let mean = sorted.iter().copied().sum::<Seconds>() / sorted.len() as f64;
        Self {
            mean,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: *sorted.last().unwrap(),
        }
    }
}

/// The full QoS report of one serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QosReport {
    /// Completed requests.
    pub completed: usize,
    /// Wall-clock span of the simulation.
    pub makespan: Seconds,
    /// Time-to-first-token stats.
    pub ttft: LatencyStats,
    /// Time-between-tokens stats (per-request means).
    pub tbt: LatencyStats,
    /// End-to-end latency stats.
    pub e2e: LatencyStats,
    /// Sustained request throughput (completed / makespan).
    pub requests_per_sec: f64,
    /// Generated-token throughput across all requests.
    pub tokens_per_sec: f64,
    /// Mean decode batch occupancy observed across engine steps.
    pub mean_batch: f64,
    /// Peak decode batch occupancy.
    pub peak_batch: usize,
}

impl QosReport {
    /// Builds a report from completed outcomes plus engine-level counters.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty.
    pub fn from_outcomes(
        outcomes: &[RequestOutcome],
        makespan: Seconds,
        mean_batch: f64,
        peak_batch: usize,
    ) -> Self {
        assert!(!outcomes.is_empty(), "no completed requests to report on");
        let ttfts: Vec<Seconds> = outcomes.iter().map(|o| o.ttft).collect();
        let tbts: Vec<Seconds> = outcomes.iter().map(|o| o.mean_tbt).collect();
        let e2es: Vec<Seconds> = outcomes.iter().map(|o| o.e2e).collect();
        let tokens: usize = outcomes.iter().map(|o| o.request.output_tokens).sum();
        let span = makespan.get().max(1e-12);
        Self {
            completed: outcomes.len(),
            makespan,
            ttft: LatencyStats::from_samples(&ttfts),
            tbt: LatencyStats::from_samples(&tbts),
            e2e: LatencyStats::from_samples(&e2es),
            requests_per_sec: outcomes.len() as f64 / span,
            tokens_per_sec: tokens as f64 / span,
            mean_batch,
            peak_batch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Request;

    fn outcome(id: u64, ttft_ms: f64, tbt_ms: f64) -> RequestOutcome {
        RequestOutcome {
            request: Request::new(id, Seconds::ZERO, 100, 10),
            ttft: Seconds::from_millis(ttft_ms),
            mean_tbt: Seconds::from_millis(tbt_ms),
            max_tbt: Seconds::from_millis(tbt_ms * 1.5),
            e2e: Seconds::from_millis(ttft_ms + 10.0 * tbt_ms),
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let samples: Vec<Seconds> = (1..=100).map(|i| Seconds::from_millis(i as f64)).collect();
        let s = LatencyStats::from_samples(&samples);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((s.p50.as_millis() - 50.0).abs() <= 1.5);
        assert!((s.p95.as_millis() - 95.0).abs() <= 1.5);
    }

    #[test]
    fn report_counts_throughput() {
        let outcomes: Vec<RequestOutcome> = (0..10).map(|i| outcome(i, 50.0, 20.0)).collect();
        let report = QosReport::from_outcomes(&outcomes, Seconds::new(5.0), 4.0, 8);
        assert_eq!(report.completed, 10);
        assert!((report.requests_per_sec - 2.0).abs() < 1e-9);
        assert!((report.tokens_per_sec - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_population_rejected() {
        let _ = LatencyStats::from_samples(&[]);
    }
}
