//! The serving engine: a continuous-batching scheduler over the analytical
//! performance model (paper Fig. 2b, Fig. 14b).
//!
//! Each engine iteration fuses up to [`SimConfig::prefill_chunk`] tokens of
//! prefill work with one decode step of the running batch — the
//! continuous-batching behaviour whose QoS side-effects (prefill time
//! bleeding into TBT, queueing inflating TTFT) the paper's Fig. 2b
//! illustrates. Three properties make the scheduler faithful to production
//! engines (vLLM-style chunked prefill, token-granular paged KV):
//!
//! - **Chunked prefill**: a prompt larger than the chunk budget is
//!   prefilled across several iterations, so a 32 K-token prompt adds at
//!   most one chunk's prefill time to any running request's inter-token
//!   gap per iteration instead of stalling the whole batch once.
//! - **Token-granular KV accounting**: `kv_tokens_in_use` is the sum of
//!   live contexts and grows one token per decode step (and chunk by chunk
//!   during prefill), instead of reserving a request's entire
//!   prompt+response footprint at admission.
//! - **Preemption**: when decode-step growth would overflow the KV budget,
//!   the youngest request is paused and its KV released; it re-enters the
//!   queue head and recomputes its context (prompt plus already-generated
//!   tokens) on resume. The oldest request is never preempted, so the
//!   engine always makes forward progress.
//!
//! Chunk cost is modeled as a fresh prefill pass of the chunk length; the
//! attention cost over earlier chunks' KV is folded into the analytical
//! model's bucketing rather than accounted per chunk.

use std::collections::VecDeque;
use std::fmt;

use ador_hw::Architecture;
use ador_model::ModelConfig;
use ador_perf::{Deployment, Evaluator, PerfError};
use ador_units::Seconds;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::{EngineCounters, QosReport, Request, RequestGenerator, RequestOutcome, TraceProfile};

/// How the scheduler shares engine iterations between prefill and decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Every iteration carries up to one prefill chunk alongside the decode
    /// step (fused continuous batching). Fastest admission and best TTFT;
    /// every chunk stretches that iteration's TBT.
    #[default]
    Fused,
    /// Prefill runs only on iterations where no decode is in flight or the
    /// previous iteration was prefill-free, so at most every other decode
    /// step pays prefill interference. Lower TBT jitter, slower admission.
    DecodePrioritized,
}

/// Serving-simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Mean Poisson arrival rate, requests/s.
    pub arrival_rate: f64,
    /// Maximum concurrent requests in the engine (prefilling + decoding).
    pub max_batch: usize,
    /// Requests to simulate.
    pub requests: usize,
    /// RNG seed (arrivals and lengths).
    pub seed: u64,
    /// Prefill token budget per engine iteration, shared by in-flight
    /// chunked prefills and new admissions.
    pub prefill_chunk: usize,
    /// Fraction of post-weight device memory usable for KV cache.
    pub kv_memory_fraction: f64,
    /// Prefill/decode interleaving policy.
    pub policy: SchedulerPolicy,
}

impl SimConfig {
    /// Creates a config with `arrival_rate` req/s and `max_batch` engine
    /// slots; 200 requests, seed 0, 4096-token prefill chunks, 90 % KV
    /// memory fraction, fused scheduling.
    pub fn new(arrival_rate: f64, max_batch: usize) -> Self {
        Self {
            arrival_rate,
            max_batch,
            requests: 200,
            seed: 0,
            prefill_chunk: 4096,
            kv_memory_fraction: 0.9,
            policy: SchedulerPolicy::Fused,
        }
    }

    /// Sets the simulated request count.
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the arrival rate.
    pub fn with_arrival_rate(mut self, rate: f64) -> Self {
        self.arrival_rate = rate;
        self
    }

    /// Sets the per-iteration prefill token budget.
    pub fn with_prefill_chunk(mut self, prefill_chunk: usize) -> Self {
        self.prefill_chunk = prefill_chunk;
        self
    }

    /// Sets the fraction of post-weight memory granted to the KV cache.
    pub fn with_kv_memory_fraction(mut self, fraction: f64) -> Self {
        self.kv_memory_fraction = fraction;
        self
    }

    /// Sets the prefill/decode interleaving policy.
    pub fn with_policy(mut self, policy: SchedulerPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The performance model rejected the configuration.
    Perf(PerfError),
    /// The configuration admits no requests (zero batch, requests or
    /// prefill chunk).
    EmptyConfig,
    /// The device cannot hold a request's KV cache.
    NoKvHeadroom {
        /// Tokens of KV budget available.
        budget_tokens: usize,
    },
    /// A capacity search was given a bad rate bracket.
    InvalidBounds {
        /// Lower bracket end (req/s).
        lo: f64,
        /// Upper bracket end (req/s).
        hi: f64,
    },
    /// A replayed request has a zero-length prompt or response.
    InvalidRequest {
        /// Id of the offending request.
        id: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Perf(e) => write!(f, "performance model error: {e}"),
            SimError::EmptyConfig => write!(f, "simulation admits no requests"),
            SimError::NoKvHeadroom { budget_tokens } => {
                write!(
                    f,
                    "KV budget of {budget_tokens} tokens cannot hold a single request"
                )
            }
            SimError::InvalidBounds { lo, hi } => {
                write!(f, "invalid capacity bounds ({lo}, {hi}): need 0 < lo < hi")
            }
            SimError::InvalidRequest { id } => {
                write!(f, "request {id} has a zero-length prompt or response")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Perf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PerfError> for SimError {
    fn from(e: PerfError) -> Self {
        SimError::Perf(e)
    }
}

/// Per-request scheduler state that survives preemption.
#[derive(Debug)]
struct Job {
    request: Request,
    /// Tokens generated so far. Survives preemption: the tokens are not
    /// re-emitted, but their KV is recomputed on resume.
    generated: usize,
    first_token_at: Option<Seconds>,
    last_token_at: Option<Seconds>,
    tbt_sum: Seconds,
    tbt_max: Seconds,
    tbt_count: usize,
}

impl Job {
    fn new(request: Request) -> Self {
        Self {
            request,
            generated: 0,
            first_token_at: None,
            last_token_at: None,
            tbt_sum: Seconds::ZERO,
            tbt_max: Seconds::ZERO,
            tbt_count: 0,
        }
    }

    /// Tokens a (re)admission must prefill before decoding: the prompt plus
    /// any previously generated tokens whose KV was dropped at preemption.
    fn prefill_target(&self) -> usize {
        self.request.input_tokens + self.generated
    }

    /// Records one emitted token at `now`. The first token sets TTFT; every
    /// later one contributes the gap since the previous token to the TBT
    /// stats — including any preemption stall.
    fn emit_token(&mut self, now: Seconds) {
        if self.first_token_at.is_none() {
            self.first_token_at = Some(now);
        } else if let Some(last) = self.last_token_at {
            let gap = now - last;
            self.tbt_sum += gap;
            self.tbt_max = self.tbt_max.max(gap);
            self.tbt_count += 1;
        }
        self.last_token_at = Some(now);
        self.generated += 1;
    }

    fn done(&self) -> bool {
        self.generated >= self.request.output_tokens
    }
}

/// An admitted request: its job plus prefill progress and resident KV.
#[derive(Debug)]
struct Active {
    job: Job,
    /// Tokens prefilled so far in the current pass.
    prefilled: usize,
    /// Tokens the current pass must prefill before decoding.
    prefill_target: usize,
    /// KV tokens currently resident for this request.
    kv_held: usize,
}

impl Active {
    fn admit(job: Job) -> Self {
        let prefill_target = job.prefill_target();
        Self {
            job,
            prefilled: 0,
            prefill_target,
            kv_held: 0,
        }
    }

    fn is_decoding(&self) -> bool {
        self.prefilled == self.prefill_target
    }
}

/// The serving simulator: binds an architecture, model and deployment, and
/// replays a Poisson request stream through the continuous-batching
/// scheduler.
pub struct ServingSim<'a> {
    evaluator: Evaluator<'a>,
    cfg: SimConfig,
    kv_budget_tokens: usize,
    decode_cache: HashMap<(usize, usize), Seconds>,
    prefill_cache: HashMap<(usize, usize), Seconds>,
}

const CTX_BUCKET: usize = 128;

impl<'a> ServingSim<'a> {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Perf`] if the model does not fit the deployment,
    /// [`SimError::EmptyConfig`] for a zero batch/request/chunk count, or
    /// [`SimError::NoKvHeadroom`] if no KV space remains after weights.
    pub fn new(
        arch: &'a Architecture,
        model: &'a ModelConfig,
        deployment: Deployment,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        if cfg.max_batch == 0 || cfg.requests == 0 || cfg.prefill_chunk == 0 {
            return Err(SimError::EmptyConfig);
        }
        let evaluator = Evaluator::new(arch, model, deployment)?;
        let devices = deployment.devices as u64;
        let weights_per_dev = model.weight_bytes().get() / devices;
        let available = arch.dram.capacity.get().saturating_sub(weights_per_dev) as f64
            * cfg.kv_memory_fraction;
        let kv_per_token_per_dev = model.kv_bytes_per_token().get() as f64 / devices as f64;
        let budget_tokens = (available / kv_per_token_per_dev) as usize;
        if budget_tokens < model.max_seq_len.min(1024) {
            return Err(SimError::NoKvHeadroom { budget_tokens });
        }
        Ok(Self {
            evaluator,
            cfg,
            kv_budget_tokens: budget_tokens,
            decode_cache: HashMap::new(),
            prefill_cache: HashMap::new(),
        })
    }

    /// The KV budget in tokens (across the whole deployment).
    pub fn kv_budget_tokens(&self) -> usize {
        self.kv_budget_tokens
    }

    /// Runs the simulation over requests drawn from `profile`.
    ///
    /// # Errors
    ///
    /// Propagates performance-model errors ([`SimError::Perf`]) and
    /// [`SimError::NoKvHeadroom`] if a sampled request can never fit the
    /// KV budget.
    pub fn run(self, profile: TraceProfile) -> Result<QosReport, SimError> {
        let requests = RequestGenerator::new(self.cfg.arrival_rate, profile, self.cfg.seed)
            .take(self.cfg.requests);
        self.run_requests(requests).map(|(report, _)| report)
    }

    /// Replays an explicit request list (a recorded trace, say) through the
    /// scheduler and also returns the per-request outcomes.
    ///
    /// Requests are sorted by arrival time internally; `cfg.requests` is
    /// ignored in favour of the list length.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyConfig`] for an empty list,
    /// [`SimError::InvalidRequest`] for a zero-length prompt or response
    /// (possible on `Request` values built without [`Request::new`]),
    /// [`SimError::NoKvHeadroom`] if any single request's full context can
    /// never fit the KV budget, and propagates [`SimError::Perf`].
    pub fn run_requests(
        mut self,
        mut requests: Vec<Request>,
    ) -> Result<(QosReport, Vec<RequestOutcome>), SimError> {
        if requests.is_empty() {
            return Err(SimError::EmptyConfig);
        }
        if let Some(r) = requests
            .iter()
            .find(|r| r.input_tokens == 0 || r.output_tokens == 0)
        {
            // A zero-length prompt can never be admitted (its prefill pass
            // has no tokens to schedule) and would wedge the queue.
            return Err(SimError::InvalidRequest { id: r.id });
        }
        if requests
            .iter()
            .any(|r| r.total_tokens() > self.kv_budget_tokens)
        {
            // Such a request could never complete even alone on the device;
            // admitting it would wedge the queue.
            return Err(SimError::NoKvHeadroom {
                budget_tokens: self.kv_budget_tokens,
            });
        }
        requests.sort_by(|a, b| {
            a.arrival
                .partial_cmp(&b.arrival)
                .expect("arrival times are never NaN")
        });
        let total = requests.len();
        let mut pending: VecDeque<Request> = requests.into();
        let mut waiting: VecDeque<Job> = VecDeque::new();
        let mut active: Vec<Active> = Vec::new();
        let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(total);
        let mut now = Seconds::ZERO;
        let mut kv_in_use = 0usize;
        let mut steps = 0usize;
        let mut batch_samples = 0.0f64;
        let mut queue_samples = 0.0f64;
        let mut peak_batch = 0usize;
        let mut peak_queue = 0usize;
        let mut peak_kv = 0usize;
        let mut preemptions = 0usize;
        let mut prev_step_prefilled = false;

        while outcomes.len() < total {
            // Move arrivals into the admission queue (preempted jobs were
            // pushed to the front and resume first).
            while pending.front().is_some_and(|r| r.arrival <= now) {
                waiting.push_back(Job::new(pending.pop_front().expect("peeked")));
            }
            if active.is_empty() && waiting.is_empty() {
                match pending.front() {
                    Some(next) => {
                        now = next.arrival;
                        continue;
                    }
                    None => break,
                }
            }

            // KV pressure: one decode step grows every decoding context by
            // a token. Preempt youngest-first — never the oldest, so the
            // engine always drains — until the growth fits the budget.
            let mut decoders = active.iter().filter(|a| a.is_decoding()).count();
            while kv_in_use + decoders > self.kv_budget_tokens && active.len() > 1 {
                if preempt_youngest(&mut active, &mut waiting, &mut kv_in_use, &mut preemptions) {
                    decoders -= 1;
                }
            }

            // Prefill schedule: continue in-flight prefills oldest-first,
            // then admit from the queue head, sharing one `prefill_chunk`
            // token budget. A chunk that completes a pass also reserves the
            // +1 KV token of the first token it emits.
            let prefill_allowed = match self.cfg.policy {
                SchedulerPolicy::Fused => true,
                SchedulerPolicy::DecodePrioritized => decoders == 0 || !prev_step_prefilled,
            };
            let mut chunk_budget = if prefill_allowed {
                self.cfg.prefill_chunk
            } else {
                0
            };
            let mut kv_headroom = self.kv_budget_tokens - kv_in_use - decoders;
            let mut chunks: Vec<(usize, usize)> = Vec::new();
            for (i, a) in active.iter().enumerate() {
                if chunk_budget == 0 {
                    break;
                }
                if a.is_decoding() {
                    continue;
                }
                let remaining = a.prefill_target - a.prefilled;
                let take = Self::chunk_take(remaining, chunk_budget, kv_headroom);
                if take == 0 {
                    break;
                }
                chunk_budget -= take;
                kv_headroom -= take + usize::from(take == remaining);
                chunks.push((i, take));
            }
            while chunk_budget > 0 && active.len() < self.cfg.max_batch {
                let Some(job) = waiting.front() else { break };
                let take = Self::chunk_take(job.prefill_target(), chunk_budget, kv_headroom);
                if take == 0 {
                    break;
                }
                let job = waiting.pop_front().expect("peeked");
                let remaining = job.prefill_target();
                chunk_budget -= take;
                kv_headroom -= take + usize::from(take == remaining);
                chunks.push((active.len(), take));
                active.push(Active::admit(job));
            }

            // All actives mid-prefill with zero headroom and nobody
            // decoding: evict the youngest so the oldest can proceed.
            if decoders == 0 && chunks.is_empty() && active.len() > 1 {
                preempt_youngest(&mut active, &mut waiting, &mut kv_in_use, &mut preemptions);
                continue;
            }

            // Timing: one fused engine iteration.
            let prefill_tokens: usize = chunks.iter().map(|&(_, t)| t).sum();
            let decoding_now: Vec<bool> = active.iter().map(Active::is_decoding).collect();
            let mut step_time = Seconds::ZERO;
            if prefill_tokens > 0 {
                let mean_chunk = (prefill_tokens / chunks.len()).max(1);
                step_time += self.prefill_time(chunks.len(), mean_chunk)?;
            }
            if decoders > 0 {
                let ctx_sum: usize = active
                    .iter()
                    .filter(|a| a.is_decoding())
                    .map(|a| a.kv_held)
                    .sum();
                step_time += self.decode_time(decoders, (ctx_sum / decoders).max(1))?;
            }
            now += step_time;
            steps += 1;
            prev_step_prefilled = prefill_tokens > 0;

            // Apply prefill progress token-granularly.
            let mut received = vec![0usize; active.len()];
            for &(i, take) in &chunks {
                received[i] = take;
                let a = &mut active[i];
                a.prefilled += take;
                a.kv_held += take;
                kv_in_use += take;
            }

            // Token emission: every request that decoded this step, plus
            // every request whose prefill pass just completed (its first —
            // or, after preemption, next — token comes out of the fused
            // step). This is also the decode-batch occupancy sample, taken
            // after same-step admissions so fresh decoders are counted.
            let mut batch_now = 0usize;
            let mut finished: Vec<usize> = Vec::new();
            for i in 0..active.len() {
                let emitted = decoding_now[i] || (received[i] > 0 && active[i].is_decoding());
                if !emitted {
                    continue;
                }
                batch_now += 1;
                let a = &mut active[i];
                a.kv_held += 1;
                kv_in_use += 1;
                a.job.emit_token(now);
                if a.job.done() {
                    finished.push(i);
                }
            }
            for &i in finished.iter().rev() {
                let a = active.remove(i);
                kv_in_use -= a.kv_held;
                outcomes.push(finish(a.job, now));
            }

            batch_samples += batch_now as f64;
            peak_batch = peak_batch.max(batch_now);
            queue_samples += waiting.len() as f64;
            peak_queue = peak_queue.max(waiting.len());
            peak_kv = peak_kv.max(kv_in_use);
            debug_assert_eq!(
                kv_in_use,
                active.iter().map(|a| a.kv_held).sum::<usize>(),
                "KV ledger must equal the sum of live contexts"
            );
            debug_assert!(
                kv_in_use <= self.kv_budget_tokens,
                "KV in use ({kv_in_use}) exceeded the budget ({})",
                self.kv_budget_tokens
            );
        }

        let per_step = |sum: f64| if steps == 0 { 0.0 } else { sum / steps as f64 };
        let counters = EngineCounters {
            mean_batch: per_step(batch_samples),
            peak_batch,
            preemptions,
            mean_queue_depth: per_step(queue_samples),
            peak_queue_depth: peak_queue,
            peak_kv_tokens: peak_kv,
        };
        Ok((QosReport::from_outcomes(&outcomes, now, counters), outcomes))
    }

    /// Prefill tokens to grant a pass with `remaining` tokens to go, given
    /// the iteration's remaining chunk budget and KV headroom. Completing
    /// the pass needs one extra headroom token for the emitted token's KV.
    fn chunk_take(remaining: usize, chunk_budget: usize, kv_headroom: usize) -> usize {
        let mut take = remaining.min(chunk_budget).min(kv_headroom);
        if take == remaining && take + 1 > kv_headroom {
            take = take.saturating_sub(1);
        }
        take
    }

    fn decode_time(&mut self, batch: usize, context: usize) -> Result<Seconds, SimError> {
        let key = (batch, context.div_ceil(CTX_BUCKET) * CTX_BUCKET);
        if let Some(&t) = self.decode_cache.get(&key) {
            return Ok(t);
        }
        let t = self.evaluator.decode_interval(batch, key.1)?;
        self.decode_cache.insert(key, t);
        Ok(t)
    }

    fn prefill_time(&mut self, batch: usize, prompt: usize) -> Result<Seconds, SimError> {
        let key = (batch, prompt.div_ceil(CTX_BUCKET) * CTX_BUCKET);
        if let Some(&t) = self.prefill_cache.get(&key) {
            return Ok(t);
        }
        let t = self.evaluator.ttft(batch, key.1)?;
        self.prefill_cache.insert(key, t);
        Ok(t)
    }
}

impl fmt::Debug for ServingSim<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServingSim")
            .field("arch", &self.evaluator.architecture().name)
            .field("model", &self.evaluator.model().name)
            .field("cfg", &self.cfg)
            .field("kv_budget_tokens", &self.kv_budget_tokens)
            .finish()
    }
}

/// Pauses the youngest admitted request: releases its KV back to the pool
/// and returns its job to the head of the admission queue for resume.
/// Returns whether the victim was decoding (so callers can adjust their
/// decoder count). The caller guarantees `active` is non-empty and never
/// preempts down to zero, preserving forward progress for the oldest.
fn preempt_youngest(
    active: &mut Vec<Active>,
    waiting: &mut VecDeque<Job>,
    kv_in_use: &mut usize,
    preemptions: &mut usize,
) -> bool {
    let victim = active.pop().expect("caller checks non-empty");
    let was_decoding = victim.is_decoding();
    *kv_in_use -= victim.kv_held;
    *preemptions += 1;
    waiting.push_front(victim.job);
    was_decoding
}

fn finish(job: Job, now: Seconds) -> RequestOutcome {
    let mean_tbt = if job.tbt_count == 0 {
        Seconds::ZERO
    } else {
        job.tbt_sum / job.tbt_count as f64
    };
    RequestOutcome {
        ttft: job.first_token_at.expect("finished jobs emitted a token") - job.request.arrival,
        mean_tbt,
        max_tbt: job.tbt_max,
        e2e: now - job.request.arrival,
        request: job.request,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_baselines::{a100, ador_table3};
    use ador_model::presets;

    fn run(rate: f64, requests: usize, seed: u64) -> QosReport {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(rate, 64)
            .with_requests(requests)
            .with_seed(seed);
        ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run(TraceProfile::ultrachat_like())
            .unwrap()
    }

    #[test]
    fn completes_every_request() {
        let report = run(2.0, 50, 1);
        assert_eq!(report.completed, 50);
        assert!(report.makespan > Seconds::ZERO);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run(2.0, 30, 9);
        let b = run(2.0, 30, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_actually_reaches_the_trace() {
        // Guards against a config plumbing regression where the seed is
        // dropped and every run sees the same arrivals: distinct seeds must
        // produce distinct workloads (and therefore distinct reports).
        let a = run(2.0, 30, 9);
        let c = run(2.0, 30, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn determinism_survives_config_reuse() {
        // `SimConfig` is `Copy`; reusing one value across several sims (as
        // the capacity bisection does) must not thread RNG state between
        // runs.
        let cfg = SimConfig::new(3.0, 64).with_requests(25).with_seed(21);
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let go = || {
            ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run(TraceProfile::ultrachat_like())
                .unwrap()
        };
        let first = go();
        let second = go();
        assert_eq!(first, second);
    }

    #[test]
    fn ttft_never_exceeds_e2e() {
        let report = run(4.0, 60, 2);
        assert!(report.ttft.p99 <= report.e2e.max);
        assert!(report.ttft.mean <= report.e2e.mean);
    }

    #[test]
    fn overload_degrades_qos() {
        // Past saturation, queueing blows up TTFT and batches fill up.
        let light = run(1.0, 60, 3);
        let heavy = run(50.0, 60, 3);
        assert!(heavy.ttft.p95 > light.ttft.p95);
        assert!(heavy.mean_batch > light.mean_batch);
        assert!(heavy.tbt.p50 >= light.tbt.p50);
        assert!(heavy.mean_queue_depth > light.mean_queue_depth);
        assert!(heavy.peak_queue_depth > light.peak_queue_depth);
    }

    #[test]
    fn a100_serves_fewer_tokens_than_ador() {
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(8.0, 64).with_requests(60).with_seed(4);
        let mk = |arch: &Architecture| {
            ServingSim::new(arch, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run(TraceProfile::ultrachat_like())
                .unwrap()
        };
        let gpu = mk(&a100());
        let ador = mk(&ador_table3());
        assert!(ador.tokens_per_sec > gpu.tokens_per_sec);
        assert!(ador.tbt.p50 < gpu.tbt.p50);
    }

    #[test]
    fn kv_budget_positive() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let sim = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 16),
        )
        .unwrap();
        // 80 GiB − 16 GB of weights leaves room for ~450 K tokens at 128 KiB.
        assert!(
            sim.kv_budget_tokens() > 300_000,
            "{}",
            sim.kv_budget_tokens()
        );
    }

    #[test]
    fn rejects_empty_config() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let err = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 0),
        )
        .unwrap_err();
        assert_eq!(err, SimError::EmptyConfig);
        let err = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 16).with_prefill_chunk(0),
        )
        .unwrap_err();
        assert_eq!(err, SimError::EmptyConfig);
    }

    #[test]
    fn model_that_does_not_fit_is_reported() {
        let arch = ador_table3();
        let model = presets::llama3_70b();
        let err = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 16),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::Perf(PerfError::ModelTooLarge { .. })
        ));
    }

    #[test]
    fn oversized_request_is_rejected_up_front() {
        // A request whose full context exceeds the KV budget would wedge
        // the queue forever; the run reports NoKvHeadroom instead.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let sim = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 8).with_kv_memory_fraction(0.005),
        )
        .unwrap();
        let budget = sim.kv_budget_tokens();
        let big = Request::new(0, Seconds::ZERO, budget, budget);
        let err = sim.run_requests(vec![big]).unwrap_err();
        assert!(matches!(err, SimError::NoKvHeadroom { .. }));
    }

    #[test]
    fn zero_token_request_is_rejected_up_front() {
        // `Request`'s fields are public (and Deserialize-able), so a
        // replayed trace can bypass `Request::new`'s assert; the scheduler
        // must refuse such entries instead of spinning forever.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mk = || {
            ServingSim::new(
                &arch,
                &model,
                Deployment::single_device(),
                SimConfig::new(1.0, 8),
            )
            .unwrap()
        };
        let mut bad = Request::new(7, Seconds::ZERO, 100, 10);
        bad.input_tokens = 0;
        let err = mk().run_requests(vec![bad]).unwrap_err();
        assert_eq!(err, SimError::InvalidRequest { id: 7 });
        let mut bad = Request::new(8, Seconds::ZERO, 100, 10);
        bad.output_tokens = 0;
        let err = mk().run_requests(vec![bad]).unwrap_err();
        assert_eq!(err, SimError::InvalidRequest { id: 8 });
    }

    #[test]
    fn single_request_has_full_batch_occupancy() {
        // A lone request occupies the engine on every step — including the
        // fused step that emits its first token. Guards the mean-batch
        // undercount where same-step admissions were never sampled.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let (report, outcomes) = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 8),
        )
        .unwrap()
        .run_requests(vec![Request::new(0, Seconds::ZERO, 128, 8)])
        .unwrap();
        assert_eq!(report.completed, 1);
        assert_eq!(outcomes.len(), 1);
        assert!(
            (report.mean_batch - 1.0).abs() < 1e-12,
            "{}",
            report.mean_batch
        );
    }

    #[test]
    fn long_prompt_is_prefilled_in_chunks() {
        // An 8×chunk prompt takes 8 iterations of prefill, so its TTFT far
        // exceeds a one-chunk prompt's, and the engine records no stall
        // longer than decode + one chunk for a concurrent decoder.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(1.0, 8).with_prefill_chunk(512);
        let (_, outcomes) = ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run_requests(vec![Request::new(0, Seconds::ZERO, 4096, 4)])
            .unwrap();
        let long_ttft = outcomes[0].ttft;
        let (_, outcomes) = ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run_requests(vec![Request::new(0, Seconds::ZERO, 512, 4)])
            .unwrap();
        let short_ttft = outcomes[0].ttft;
        assert!(
            long_ttft.get() > short_ttft.get() * 4.0,
            "chunked long prompt must span several iterations: {long_ttft} vs {short_ttft}"
        );
    }

    use ador_hw::Architecture;
}
