//! The serving engine: a continuous-batching scheduler over the analytical
//! performance model (paper Fig. 2b, Fig. 14b).
//!
//! Each engine iteration fuses up to [`SimConfig::prefill_chunk`] tokens of
//! prefill work with one decode step of the running batch — the
//! continuous-batching behaviour whose QoS side-effects (prefill time
//! bleeding into TBT, queueing inflating TTFT) the paper's Fig. 2b
//! illustrates. Three properties make the scheduler faithful to production
//! engines (vLLM-style chunked prefill, token-granular paged KV):
//!
//! - **Chunked prefill**: a prompt larger than the chunk budget is
//!   prefilled across several iterations, so a 32 K-token prompt adds at
//!   most one chunk's prefill time to any running request's inter-token
//!   gap per iteration instead of stalling the whole batch once.
//! - **Token-granular KV accounting**: `kv_tokens_in_use` is the sum of
//!   live contexts and grows one token per decode step (and chunk by chunk
//!   during prefill), instead of reserving a request's entire
//!   prompt+response footprint at admission.
//! - **Preemption**: when decode-step growth would overflow the KV budget,
//!   the youngest request is paused and its KV released; it re-enters the
//!   queue head and recomputes its context (prompt plus already-generated
//!   tokens) on resume. The oldest request is never preempted, so the
//!   engine always makes forward progress. With prefix caching on, cold
//!   cached blocks are LRU-evicted before any request is preempted.
//! - **Prefix caching** (opt-in, [`SimConfig::prefix_caching`]): prompts
//!   tagged with a [`Request::prefix_group`](crate::Request::prefix_group)
//!   skip the prefill of token blocks already resident in the
//!   [`PrefixCache`](crate::PrefixCache); shared blocks are charged once.
//!
//! Chunk cost is modeled as a fresh prefill pass of the chunk length; the
//! attention cost over earlier chunks' KV is folded into the analytical
//! model's bucketing rather than accounted per chunk.

use std::fmt;

use ador_hw::Architecture;
use ador_model::ModelConfig;
use ador_perf::{Deployment, Evaluator, PerfError};
use ador_spec::SpeculationConfig;
use ador_telemetry::TelemetryConfig;
use ador_units::conv;
use serde::{Deserialize, Serialize};

use crate::engine::{Engine, StepEvent};
use crate::{QosReport, Request, RequestGenerator, RequestOutcome, TraceProfile};

/// How the scheduler shares engine iterations between prefill and decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Every iteration carries up to one prefill chunk alongside the decode
    /// step (fused continuous batching). Fastest admission and best TTFT;
    /// every chunk stretches that iteration's TBT.
    #[default]
    Fused,
    /// Prefill runs only on iterations where no decode is in flight or the
    /// previous iteration was prefill-free, so at most every other decode
    /// step pays prefill interference. Lower TBT jitter, slower admission.
    DecodePrioritized,
}

/// Serving-simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Mean Poisson arrival rate, requests/s.
    pub arrival_rate: f64,
    /// Maximum concurrent requests in the engine (prefilling + decoding).
    pub max_batch: usize,
    /// Requests to simulate.
    pub requests: usize,
    /// RNG seed (arrivals and lengths).
    pub seed: u64,
    /// Prefill token budget per engine iteration, shared by in-flight
    /// chunked prefills and new admissions.
    pub prefill_chunk: usize,
    /// Fraction of post-weight device memory usable for KV cache.
    pub kv_memory_fraction: f64,
    /// Prefill/decode interleaving policy.
    pub policy: SchedulerPolicy,
    /// Prefix-aware KV reuse: when `true`, requests tagged with a
    /// [`Request::prefix_group`](crate::Request::prefix_group) skip the
    /// prefill of prompt blocks already resident in the engine's
    /// [`PrefixCache`](crate::PrefixCache), shared blocks are charged
    /// against the KV budget once, and cold blocks are LRU-evicted before
    /// the scheduler resorts to preemption.
    pub prefix_caching: bool,
    /// Speculative decoding: draft-and-verify multi-token commits per
    /// decode step ([`SpeculationConfig::off`] by default, which is
    /// bit-identical to the pre-speculation engine). See
    /// [`ador_spec`] for the policy/acceptance/cost model.
    pub speculation: SpeculationConfig,
    /// Observability: event tracing and time-series collection
    /// ([`TelemetryConfig::OFF`] by default, which is bit-identical to an
    /// untraced engine). See [`ador_telemetry`] for the sinks.
    pub telemetry: TelemetryConfig,
}

impl SimConfig {
    /// Creates a config with `arrival_rate` req/s and `max_batch` engine
    /// slots; 200 requests, seed 0, 4096-token prefill chunks, 90 % KV
    /// memory fraction, fused scheduling, prefix caching off.
    pub fn new(arrival_rate: f64, max_batch: usize) -> Self {
        Self {
            arrival_rate,
            max_batch,
            requests: 200,
            seed: 0,
            prefill_chunk: 4096,
            kv_memory_fraction: 0.9,
            policy: SchedulerPolicy::Fused,
            prefix_caching: false,
            speculation: SpeculationConfig::off(),
            telemetry: TelemetryConfig::OFF,
        }
    }

    /// Sets the simulated request count.
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the arrival rate.
    pub fn with_arrival_rate(mut self, rate: f64) -> Self {
        self.arrival_rate = rate;
        self
    }

    /// Sets the per-iteration prefill token budget.
    pub fn with_prefill_chunk(mut self, prefill_chunk: usize) -> Self {
        self.prefill_chunk = prefill_chunk;
        self
    }

    /// Sets the fraction of post-weight memory granted to the KV cache.
    pub fn with_kv_memory_fraction(mut self, fraction: f64) -> Self {
        self.kv_memory_fraction = fraction;
        self
    }

    /// Sets the prefill/decode interleaving policy.
    pub fn with_policy(mut self, policy: SchedulerPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables prefix-aware KV cache reuse.
    pub fn with_prefix_caching(mut self, enabled: bool) -> Self {
        self.prefix_caching = enabled;
        self
    }

    /// Sets the speculative-decoding configuration.
    pub fn with_speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.speculation = speculation;
        self
    }

    /// Sets the telemetry configuration (event sink and series interval).
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The performance model rejected the configuration.
    Perf(PerfError),
    /// The configuration admits no requests (zero batch, requests or
    /// prefill chunk).
    EmptyConfig,
    /// The device cannot hold a request's KV cache.
    NoKvHeadroom {
        /// Tokens of KV budget available.
        budget_tokens: usize,
    },
    /// A capacity search was given a bad rate bracket.
    InvalidBounds {
        /// Lower bracket end (req/s).
        lo: f64,
        /// Upper bracket end (req/s).
        hi: f64,
    },
    /// A replayed request has a zero-length prompt or response.
    InvalidRequest {
        /// Id of the offending request.
        id: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Perf(e) => write!(f, "performance model error: {e}"),
            SimError::EmptyConfig => write!(f, "simulation admits no requests"),
            SimError::NoKvHeadroom { budget_tokens } => {
                write!(
                    f,
                    "KV budget of {budget_tokens} tokens cannot hold a single request"
                )
            }
            SimError::InvalidBounds { lo, hi } => {
                write!(f, "invalid capacity bounds ({lo}, {hi}): need 0 < lo < hi")
            }
            SimError::InvalidRequest { id } => {
                write!(f, "request {id} has a zero-length prompt or response")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Perf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PerfError> for SimError {
    fn from(e: PerfError) -> Self {
        SimError::Perf(e)
    }
}

/// The serving simulator: binds an architecture, model and deployment, and
/// replays a Poisson request stream through the continuous-batching
/// scheduler.
///
/// The scheduler itself lives in [`Engine`], which exposes the same loop
/// one iteration at a time; `ServingSim` validates the configuration and
/// offers the run-to-completion drivers ([`ServingSim::run`],
/// [`ServingSim::run_requests`]). Multi-replica drivers call
/// [`ServingSim::engine`] and interleave the replicas themselves.
pub struct ServingSim<'a> {
    evaluator: Evaluator<'a>,
    cfg: SimConfig,
    kv_budget_tokens: usize,
}

impl<'a> ServingSim<'a> {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Perf`] if the model does not fit the deployment,
    /// [`SimError::EmptyConfig`] for a zero batch/request/chunk count, or
    /// [`SimError::NoKvHeadroom`] if no KV space remains after weights.
    pub fn new(
        arch: &'a Architecture,
        model: &'a ModelConfig,
        deployment: Deployment,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        if cfg.max_batch == 0 || cfg.requests == 0 || cfg.prefill_chunk == 0 {
            return Err(SimError::EmptyConfig);
        }
        let evaluator = Evaluator::new(arch, model, deployment)?;
        let devices = conv::u64_from_usize(deployment.devices);
        let weights_per_dev = model.weight_bytes().get() / devices;
        let available =
            conv::f64_from_u64(arch.dram.capacity.get().saturating_sub(weights_per_dev))
                * cfg.kv_memory_fraction;
        let kv_per_token_per_dev =
            conv::f64_from_u64(model.kv_bytes_per_token().get()) / conv::f64_from_u64(devices);
        let budget_tokens = conv::usize_from_f64(available / kv_per_token_per_dev);
        if budget_tokens < model.max_seq_len.min(1024) {
            return Err(SimError::NoKvHeadroom { budget_tokens });
        }
        Ok(Self {
            evaluator,
            cfg,
            kv_budget_tokens: budget_tokens,
        })
    }

    /// The KV budget in tokens (across the whole deployment).
    pub fn kv_budget_tokens(&self) -> usize {
        self.kv_budget_tokens
    }

    /// Consumes the simulator into its incremental [`Engine`], for drivers
    /// that interleave several replicas (or inspect state mid-run) instead
    /// of running one request list to completion.
    pub fn engine(self) -> Engine<'a> {
        Engine::from_parts(self.evaluator, self.cfg, self.kv_budget_tokens)
    }

    /// Runs the simulation over requests drawn from `profile`.
    ///
    /// # Errors
    ///
    /// Propagates performance-model errors ([`SimError::Perf`]) and
    /// [`SimError::NoKvHeadroom`] if a sampled request can never fit the
    /// KV budget.
    pub fn run(self, profile: TraceProfile) -> Result<QosReport, SimError> {
        let requests = RequestGenerator::new(self.cfg.arrival_rate, profile, self.cfg.seed)
            .take(self.cfg.requests);
        self.run_requests(requests).map(|(report, _)| report)
    }

    /// Replays an explicit request list (a recorded trace, say) through the
    /// scheduler and also returns the per-request outcomes.
    ///
    /// Requests are sorted by arrival time internally; `cfg.requests` is
    /// ignored in favour of the list length.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyConfig`] for an empty list,
    /// [`SimError::InvalidRequest`] for a zero-length prompt or response
    /// (possible on `Request` values built without [`Request::new`]),
    /// [`SimError::NoKvHeadroom`] if any single request's full context can
    /// never fit the KV budget, and propagates [`SimError::Perf`].
    pub fn run_requests(
        self,
        requests: Vec<Request>,
    ) -> Result<(QosReport, Vec<RequestOutcome>), SimError> {
        if requests.is_empty() {
            return Err(SimError::EmptyConfig);
        }
        let mut engine = self.engine();
        for r in requests {
            // `Engine::submit` rejects zero-length and over-budget
            // requests (either would wedge the queue forever); the error
            // names the first offender in list order.
            engine.submit(r)?;
        }
        while engine.step()? != StepEvent::Idle {}
        let report = engine
            .report()
            // ador-lint: allow(panic) — invariant: a non-empty request list completes something
            .expect("a non-empty request list always completes something");
        Ok((report, engine.into_outcomes()))
    }
}

impl fmt::Debug for ServingSim<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServingSim")
            .field("arch", &self.evaluator.architecture().name)
            .field("model", &self.evaluator.model().name)
            .field("cfg", &self.cfg)
            .field("kv_budget_tokens", &self.kv_budget_tokens)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    // tests may unwrap: a failed unwrap is exactly the test failing
    #![allow(clippy::unwrap_used)]

    use super::*;
    use ador_baselines::{a100, ador_table3};
    use ador_model::presets;
    use ador_units::Seconds;

    fn run(rate: f64, requests: usize, seed: u64) -> QosReport {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(rate, 64)
            .with_requests(requests)
            .with_seed(seed);
        ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run(TraceProfile::ultrachat_like())
            .unwrap()
    }

    #[test]
    fn completes_every_request() {
        let report = run(2.0, 50, 1);
        assert_eq!(report.completed, 50);
        assert!(report.makespan > Seconds::ZERO);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run(2.0, 30, 9);
        let b = run(2.0, 30, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_actually_reaches_the_trace() {
        // Guards against a config plumbing regression where the seed is
        // dropped and every run sees the same arrivals: distinct seeds must
        // produce distinct workloads (and therefore distinct reports).
        let a = run(2.0, 30, 9);
        let c = run(2.0, 30, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn determinism_survives_config_reuse() {
        // `SimConfig` is `Copy`; reusing one value across several sims (as
        // the capacity bisection does) must not thread RNG state between
        // runs.
        let cfg = SimConfig::new(3.0, 64).with_requests(25).with_seed(21);
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let go = || {
            ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run(TraceProfile::ultrachat_like())
                .unwrap()
        };
        let first = go();
        let second = go();
        assert_eq!(first, second);
    }

    #[test]
    fn ttft_never_exceeds_e2e() {
        let report = run(4.0, 60, 2);
        assert!(report.ttft.p99 <= report.e2e.max);
        assert!(report.ttft.mean <= report.e2e.mean);
    }

    #[test]
    fn overload_degrades_qos() {
        // Past saturation, queueing blows up TTFT and batches fill up.
        let light = run(1.0, 60, 3);
        let heavy = run(50.0, 60, 3);
        assert!(heavy.ttft.p95 > light.ttft.p95);
        assert!(heavy.mean_batch > light.mean_batch);
        assert!(heavy.tbt.p50 >= light.tbt.p50);
        assert!(heavy.mean_queue_depth > light.mean_queue_depth);
        assert!(heavy.peak_queue_depth > light.peak_queue_depth);
    }

    #[test]
    fn a100_serves_fewer_tokens_than_ador() {
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(8.0, 64).with_requests(60).with_seed(4);
        let mk = |arch: &Architecture| {
            ServingSim::new(arch, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run(TraceProfile::ultrachat_like())
                .unwrap()
        };
        let gpu = mk(&a100());
        let ador = mk(&ador_table3());
        assert!(ador.tokens_per_sec > gpu.tokens_per_sec);
        assert!(ador.tbt.p50 < gpu.tbt.p50);
    }

    #[test]
    fn kv_budget_positive() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let sim = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 16),
        )
        .unwrap();
        // 80 GiB − 16 GB of weights leaves room for ~450 K tokens at 128 KiB.
        assert!(
            sim.kv_budget_tokens() > 300_000,
            "{}",
            sim.kv_budget_tokens()
        );
    }

    #[test]
    fn rejects_empty_config() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let err = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 0),
        )
        .unwrap_err();
        assert_eq!(err, SimError::EmptyConfig);
        let err = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 16).with_prefill_chunk(0),
        )
        .unwrap_err();
        assert_eq!(err, SimError::EmptyConfig);
    }

    #[test]
    fn model_that_does_not_fit_is_reported() {
        let arch = ador_table3();
        let model = presets::llama3_70b();
        let err = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 16),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::Perf(PerfError::ModelTooLarge { .. })
        ));
    }

    #[test]
    fn oversized_request_is_rejected_up_front() {
        // A request whose full context exceeds the KV budget would wedge
        // the queue forever; the run reports NoKvHeadroom instead.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let sim = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 8).with_kv_memory_fraction(0.005),
        )
        .unwrap();
        let budget = sim.kv_budget_tokens();
        let big = Request::new(0, Seconds::ZERO, budget, budget);
        let err = sim.run_requests(vec![big]).unwrap_err();
        assert!(matches!(err, SimError::NoKvHeadroom { .. }));
    }

    #[test]
    fn zero_token_request_is_rejected_up_front() {
        // `Request`'s fields are public (and Deserialize-able), so a
        // replayed trace can bypass `Request::new`'s assert; the scheduler
        // must refuse such entries instead of spinning forever.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mk = || {
            ServingSim::new(
                &arch,
                &model,
                Deployment::single_device(),
                SimConfig::new(1.0, 8),
            )
            .unwrap()
        };
        let mut bad = Request::new(7, Seconds::ZERO, 100, 10);
        bad.input_tokens = 0;
        let err = mk().run_requests(vec![bad]).unwrap_err();
        assert_eq!(err, SimError::InvalidRequest { id: 7 });
        let mut bad = Request::new(8, Seconds::ZERO, 100, 10);
        bad.output_tokens = 0;
        let err = mk().run_requests(vec![bad]).unwrap_err();
        assert_eq!(err, SimError::InvalidRequest { id: 8 });
    }

    #[test]
    fn single_request_has_full_batch_occupancy() {
        // A lone request occupies the engine on every step — including the
        // fused step that emits its first token. Guards the mean-batch
        // undercount where same-step admissions were never sampled.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let (report, outcomes) = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 8),
        )
        .unwrap()
        .run_requests(vec![Request::new(0, Seconds::ZERO, 128, 8)])
        .unwrap();
        assert_eq!(report.completed, 1);
        assert_eq!(outcomes.len(), 1);
        assert!(
            (report.mean_batch - 1.0).abs() < 1e-12,
            "{}",
            report.mean_batch
        );
    }

    #[test]
    fn long_prompt_is_prefilled_in_chunks() {
        // An 8×chunk prompt takes 8 iterations of prefill, so its TTFT far
        // exceeds a one-chunk prompt's, and the engine records no stall
        // longer than decode + one chunk for a concurrent decoder.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(1.0, 8).with_prefill_chunk(512);
        let (_, outcomes) = ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run_requests(vec![Request::new(0, Seconds::ZERO, 4096, 4)])
            .unwrap();
        let long_ttft = outcomes[0].ttft;
        let (_, outcomes) = ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run_requests(vec![Request::new(0, Seconds::ZERO, 512, 4)])
            .unwrap();
        let short_ttft = outcomes[0].ttft;
        assert!(
            long_ttft.get() > short_ttft.get() * 4.0,
            "chunked long prompt must span several iterations: {long_ttft} vs {short_ttft}"
        );
    }

    use ador_hw::Architecture;
}
