//! The serving engine: continuous batching over the analytical performance
//! model (paper Fig. 2b, Fig. 14b).
//!
//! Each engine iteration fuses the prefill of newly admitted requests with
//! one decode step of the running batch — the continuous-batching behaviour
//! whose QoS side-effects (prefill time bleeding into TBT, queueing
//! inflating TTFT) the paper's Fig. 2b illustrates.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use ador_hw::Architecture;
use ador_model::ModelConfig;
use ador_perf::{Deployment, Evaluator, PerfError};
use ador_units::Seconds;
use serde::{Deserialize, Serialize};

use crate::{QosReport, Request, RequestGenerator, RequestOutcome, TraceProfile};

/// Serving-simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Mean Poisson arrival rate, requests/s.
    pub arrival_rate: f64,
    /// Maximum concurrent requests in the decode batch.
    pub max_batch: usize,
    /// Requests to simulate.
    pub requests: usize,
    /// RNG seed (arrivals and lengths).
    pub seed: u64,
    /// Maximum prompt tokens coalesced into one prefill step.
    pub prefill_chunk: usize,
    /// Fraction of post-weight device memory usable for KV cache.
    pub kv_memory_fraction: f64,
}

impl SimConfig {
    /// Creates a config with `arrival_rate` req/s and `max_batch` decode
    /// slots; 200 requests, seed 0, 4096-token prefill chunks, 90 % KV
    /// memory fraction.
    pub fn new(arrival_rate: f64, max_batch: usize) -> Self {
        Self {
            arrival_rate,
            max_batch,
            requests: 200,
            seed: 0,
            prefill_chunk: 4096,
            kv_memory_fraction: 0.9,
        }
    }

    /// Sets the simulated request count.
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the arrival rate.
    pub fn with_arrival_rate(mut self, rate: f64) -> Self {
        self.arrival_rate = rate;
        self
    }
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The performance model rejected the configuration.
    Perf(PerfError),
    /// The configuration admits no requests (zero batch or requests).
    EmptyConfig,
    /// The device cannot hold even one request's KV cache.
    NoKvHeadroom {
        /// Tokens of KV budget available.
        budget_tokens: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Perf(e) => write!(f, "performance model error: {e}"),
            SimError::EmptyConfig => write!(f, "simulation admits no requests"),
            SimError::NoKvHeadroom { budget_tokens } => {
                write!(
                    f,
                    "KV budget of {budget_tokens} tokens cannot hold a single request"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Perf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PerfError> for SimError {
    fn from(e: PerfError) -> Self {
        SimError::Perf(e)
    }
}

#[derive(Debug)]
struct Active {
    request: Request,
    context: usize,
    generated: usize,
    first_token_at: Seconds,
    tbt_sum: Seconds,
    tbt_max: Seconds,
    tbt_count: usize,
}

/// The serving simulator: binds an architecture, model and deployment, and
/// replays a Poisson request stream through continuous batching.
pub struct ServingSim<'a> {
    evaluator: Evaluator<'a>,
    cfg: SimConfig,
    kv_budget_tokens: usize,
    decode_cache: HashMap<(usize, usize), Seconds>,
    prefill_cache: HashMap<(usize, usize), Seconds>,
}

const CTX_BUCKET: usize = 128;

impl<'a> ServingSim<'a> {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Perf`] if the model does not fit the deployment,
    /// [`SimError::EmptyConfig`] for a zero batch/request count, or
    /// [`SimError::NoKvHeadroom`] if no KV space remains after weights.
    pub fn new(
        arch: &'a Architecture,
        model: &'a ModelConfig,
        deployment: Deployment,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        if cfg.max_batch == 0 || cfg.requests == 0 {
            return Err(SimError::EmptyConfig);
        }
        let evaluator = Evaluator::new(arch, model, deployment)?;
        let devices = deployment.devices as u64;
        let weights_per_dev = model.weight_bytes().get() / devices;
        let available = arch.dram.capacity.get().saturating_sub(weights_per_dev) as f64
            * cfg.kv_memory_fraction;
        let kv_per_token_per_dev = model.kv_bytes_per_token().get() as f64 / devices as f64;
        let budget_tokens = (available / kv_per_token_per_dev) as usize;
        if budget_tokens < model.max_seq_len.min(1024) {
            return Err(SimError::NoKvHeadroom { budget_tokens });
        }
        Ok(Self {
            evaluator,
            cfg,
            kv_budget_tokens: budget_tokens,
            decode_cache: HashMap::new(),
            prefill_cache: HashMap::new(),
        })
    }

    /// The KV budget in tokens (across the whole deployment).
    pub fn kv_budget_tokens(&self) -> usize {
        self.kv_budget_tokens
    }

    /// Runs the simulation over requests drawn from `profile`.
    ///
    /// # Errors
    ///
    /// Propagates performance-model errors ([`SimError::Perf`]).
    pub fn run(mut self, profile: TraceProfile) -> Result<QosReport, SimError> {
        let mut pending: VecDeque<Request> =
            RequestGenerator::new(self.cfg.arrival_rate, profile, self.cfg.seed)
                .take(self.cfg.requests)
                .into();
        let mut waiting: VecDeque<Request> = VecDeque::new();
        let mut running: Vec<Active> = Vec::new();
        let mut outcomes: Vec<RequestOutcome> = Vec::new();
        let mut now = Seconds::ZERO;
        let mut kv_tokens_in_use = 0usize;
        let mut batch_samples = 0.0f64;
        let mut steps = 0usize;
        let mut peak_batch = 0usize;
        let total = self.cfg.requests;

        while outcomes.len() < total {
            // Admit arrivals.
            while pending.front().is_some_and(|r| r.arrival <= now) {
                waiting.push_back(pending.pop_front().expect("peeked"));
            }
            if running.is_empty() && waiting.is_empty() {
                match pending.front() {
                    Some(next) => {
                        now = next.arrival;
                        continue;
                    }
                    None => break,
                }
            }

            // Pick prefill admissions for this iteration.
            let mut admitted: Vec<Request> = Vec::new();
            let mut prefill_tokens = 0usize;
            while let Some(w) = waiting.front() {
                let slot_ok = running.len() + admitted.len() < self.cfg.max_batch;
                let kv_ok = kv_tokens_in_use + w.total_tokens() <= self.kv_budget_tokens;
                let chunk_ok = admitted.is_empty()
                    || prefill_tokens + w.input_tokens <= self.cfg.prefill_chunk;
                if !(slot_ok && kv_ok && chunk_ok) {
                    break;
                }
                prefill_tokens += w.input_tokens;
                kv_tokens_in_use += w.total_tokens();
                admitted.push(waiting.pop_front().expect("peeked"));
            }

            // Fused engine iteration: prefill the admitted chunk, then one
            // decode step of the running batch.
            let mut step_time = Seconds::ZERO;
            if !admitted.is_empty() {
                let mean_prompt = (prefill_tokens / admitted.len()).max(1);
                step_time += self.prefill_time(admitted.len(), mean_prompt)?;
            }
            if !running.is_empty() {
                let mean_ctx = running.iter().map(|a| a.context).sum::<usize>() / running.len();
                step_time += self.decode_time(running.len(), mean_ctx.max(1))?;
            }
            now += step_time;
            steps += 1;
            batch_samples += running.len() as f64;
            peak_batch = peak_batch.max(running.len() + admitted.len());

            // Pre-existing running requests each produced one token.
            let mut i = 0;
            while i < running.len() {
                let a = &mut running[i];
                a.generated += 1;
                a.context += 1;
                a.tbt_sum += step_time;
                a.tbt_max = a.tbt_max.max(step_time);
                a.tbt_count += 1;
                if a.generated >= a.request.output_tokens {
                    let a = running.swap_remove(i);
                    kv_tokens_in_use = kv_tokens_in_use.saturating_sub(a.request.total_tokens());
                    outcomes.push(finish(a, now));
                } else {
                    i += 1;
                }
            }

            // Admitted requests emitted their first token at the end of the
            // fused step.
            for request in admitted {
                let ttft = now - request.arrival;
                if request.output_tokens == 1 {
                    kv_tokens_in_use = kv_tokens_in_use.saturating_sub(request.total_tokens());
                    outcomes.push(RequestOutcome {
                        request,
                        ttft,
                        mean_tbt: Seconds::ZERO,
                        max_tbt: Seconds::ZERO,
                        e2e: ttft,
                    });
                } else {
                    running.push(Active {
                        context: request.input_tokens + 1,
                        generated: 1,
                        first_token_at: now,
                        tbt_sum: Seconds::ZERO,
                        tbt_max: Seconds::ZERO,
                        tbt_count: 0,
                        request,
                    });
                }
            }
        }

        let mean_batch = if steps == 0 {
            0.0
        } else {
            batch_samples / steps as f64
        };
        Ok(QosReport::from_outcomes(
            &outcomes, now, mean_batch, peak_batch,
        ))
    }

    fn decode_time(&mut self, batch: usize, context: usize) -> Result<Seconds, SimError> {
        let key = (batch, context.div_ceil(CTX_BUCKET) * CTX_BUCKET);
        if let Some(&t) = self.decode_cache.get(&key) {
            return Ok(t);
        }
        let t = self.evaluator.decode_interval(batch, key.1)?;
        self.decode_cache.insert(key, t);
        Ok(t)
    }

    fn prefill_time(&mut self, batch: usize, prompt: usize) -> Result<Seconds, SimError> {
        let key = (batch, prompt.div_ceil(CTX_BUCKET) * CTX_BUCKET);
        if let Some(&t) = self.prefill_cache.get(&key) {
            return Ok(t);
        }
        let t = self.evaluator.ttft(batch, key.1)?;
        self.prefill_cache.insert(key, t);
        Ok(t)
    }
}

impl fmt::Debug for ServingSim<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServingSim")
            .field("arch", &self.evaluator.architecture().name)
            .field("model", &self.evaluator.model().name)
            .field("cfg", &self.cfg)
            .field("kv_budget_tokens", &self.kv_budget_tokens)
            .finish()
    }
}

fn finish(a: Active, now: Seconds) -> RequestOutcome {
    let mean_tbt = if a.tbt_count == 0 {
        Seconds::ZERO
    } else {
        a.tbt_sum / a.tbt_count as f64
    };
    RequestOutcome {
        ttft: a.first_token_at - a.request.arrival,
        mean_tbt,
        max_tbt: a.tbt_max,
        e2e: now - a.request.arrival,
        request: a.request,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_baselines::{a100, ador_table3};
    use ador_model::presets;

    fn run(rate: f64, requests: usize, seed: u64) -> QosReport {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(rate, 64)
            .with_requests(requests)
            .with_seed(seed);
        ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run(TraceProfile::ultrachat_like())
            .unwrap()
    }

    #[test]
    fn completes_every_request() {
        let report = run(2.0, 50, 1);
        assert_eq!(report.completed, 50);
        assert!(report.makespan > Seconds::ZERO);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run(2.0, 30, 9);
        let b = run(2.0, 30, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_actually_reaches_the_trace() {
        // Guards against a config plumbing regression where the seed is
        // dropped and every run sees the same arrivals: distinct seeds must
        // produce distinct workloads (and therefore distinct reports).
        let a = run(2.0, 30, 9);
        let c = run(2.0, 30, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn determinism_survives_config_reuse() {
        // `SimConfig` is `Copy`; reusing one value across several sims (as
        // the capacity bisection does) must not thread RNG state between
        // runs.
        let cfg = SimConfig::new(3.0, 64).with_requests(25).with_seed(21);
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let go = || {
            ServingSim::new(&arch, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run(TraceProfile::ultrachat_like())
                .unwrap()
        };
        let first = go();
        let second = go();
        assert_eq!(first, second);
    }

    #[test]
    fn ttft_never_exceeds_e2e() {
        let report = run(4.0, 60, 2);
        assert!(report.ttft.p99 <= report.e2e.max);
        assert!(report.ttft.mean <= report.e2e.mean);
    }

    #[test]
    fn overload_degrades_qos() {
        // Past saturation, queueing blows up TTFT and batches fill up.
        let light = run(1.0, 60, 3);
        let heavy = run(50.0, 60, 3);
        assert!(heavy.ttft.p95 > light.ttft.p95);
        assert!(heavy.mean_batch > light.mean_batch);
        assert!(heavy.tbt.p50 >= light.tbt.p50);
    }

    #[test]
    fn a100_serves_fewer_tokens_than_ador() {
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(8.0, 64).with_requests(60).with_seed(4);
        let mk = |arch: &Architecture| {
            ServingSim::new(arch, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run(TraceProfile::ultrachat_like())
                .unwrap()
        };
        let gpu = mk(&a100());
        let ador = mk(&ador_table3());
        assert!(ador.tokens_per_sec > gpu.tokens_per_sec);
        assert!(ador.tbt.p50 < gpu.tbt.p50);
    }

    #[test]
    fn kv_budget_positive() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let sim = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 16),
        )
        .unwrap();
        // 80 GiB − 16 GB of weights leaves room for ~450 K tokens at 128 KiB.
        assert!(
            sim.kv_budget_tokens() > 300_000,
            "{}",
            sim.kv_budget_tokens()
        );
    }

    #[test]
    fn rejects_empty_config() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let err = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 0),
        )
        .unwrap_err();
        assert_eq!(err, SimError::EmptyConfig);
    }

    #[test]
    fn model_that_does_not_fit_is_reported() {
        let arch = ador_table3();
        let model = presets::llama3_70b();
        let err = ServingSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            SimConfig::new(1.0, 16),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::Perf(PerfError::ModelTooLarge { .. })
        ));
    }

    use ador_hw::Architecture;
}
