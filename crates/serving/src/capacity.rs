//! Maximum-capacity search: the largest sustainable request rate under an
//! SLO (paper Fig. 16).

use ador_hw::Architecture;
use ador_model::ModelConfig;
use ador_perf::Deployment;
use serde::Serialize;

use crate::{QosReport, ServingSim, SimConfig, SimError, Slo, TraceProfile};

/// Result of a capacity search.
#[derive(Debug, Clone, Serialize)]
pub struct CapacityResult {
    /// Largest arrival rate (req/s) that met the SLO.
    pub rate: f64,
    /// The QoS report measured at that rate.
    pub report: QosReport,
}

/// Bisects the Poisson arrival rate for the largest load that still meets
/// `slo` (p95), between `lo` and `hi` req/s.
///
/// `lo` must be sustainable; if even `lo` violates the SLO the result rate
/// is `0.0` with the `lo` report attached so callers can inspect why.
///
/// # Errors
///
/// Returns [`SimError::InvalidBounds`] unless `0 < lo < hi`, and propagates
/// simulator construction/run errors.
///
/// # Examples
///
/// ```no_run
/// use ador_serving::{max_capacity, SimConfig, Slo, TraceProfile};
/// use ador_perf::Deployment;
///
/// let arch = ador_baselines::ador_table3();
/// let model = ador_model::presets::llama3_8b();
/// let cfg = SimConfig::new(1.0, 128).with_requests(150);
/// let cap = max_capacity(
///     &arch, &model, Deployment::single_device(), cfg,
///     TraceProfile::ultrachat_like(), Slo::relaxed(), (0.5, 40.0), 6,
/// )?;
/// assert!(cap.rate > 0.0);
/// # Ok::<(), ador_serving::SimError>(())
/// ```
#[allow(clippy::too_many_arguments)]
pub fn max_capacity(
    arch: &Architecture,
    model: &ModelConfig,
    deployment: Deployment,
    base_cfg: SimConfig,
    profile: TraceProfile,
    slo: Slo,
    bounds: (f64, f64),
    iterations: usize,
) -> Result<CapacityResult, SimError> {
    let (rate, report) = bisect_rate(bounds, iterations, |rate| -> Result<_, SimError> {
        let cfg = base_cfg.with_arrival_rate(rate);
        let report = ServingSim::new(arch, model, deployment, cfg)?.run(profile)?;
        Ok((slo.attained(&report), report))
    })?;
    Ok(CapacityResult { rate, report })
}

/// Bisects an arrival-rate bracket for the largest rate whose probe
/// passes. The generic core of [`max_capacity`], shared with fleet-level
/// searches (`ador-cluster`'s `cluster_capacity`): `probe(rate)` runs a
/// simulation at that rate and returns whether its QoS criterion held,
/// plus the measurement to hand back to the caller.
///
/// `lo` must be sustainable; if even `lo` fails the probe, the result rate
/// is `0.0` with the `lo` measurement attached so callers can inspect why.
///
/// # Errors
///
/// Returns [`SimError::InvalidBounds`] (via `E: From<SimError>`) unless
/// `0 < lo < hi`, and propagates probe errors.
pub fn bisect_rate<T, E: From<SimError>>(
    (lo, hi): (f64, f64),
    iterations: usize,
    mut probe: impl FnMut(f64) -> Result<(bool, T), E>,
) -> Result<(f64, T), E> {
    if !(lo > 0.0 && hi > lo) {
        return Err(SimError::InvalidBounds { lo, hi }.into());
    }
    let (lo_ok, lo_measurement) = probe(lo)?;
    if !lo_ok {
        return Ok((0.0, lo_measurement));
    }
    let mut best = (lo, lo_measurement);
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        let (ok, measurement) = probe(mid)?;
        if ok {
            best = (mid, measurement);
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    // tests may unwrap: a failed unwrap is exactly the test failing
    #![allow(clippy::unwrap_used)]

    use super::*;
    use ador_baselines::ador_table3;
    use ador_model::presets;

    fn capacity(slo: Slo) -> CapacityResult {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = SimConfig::new(1.0, 128).with_requests(80).with_seed(5);
        max_capacity(
            &arch,
            &model,
            Deployment::single_device(),
            cfg,
            TraceProfile::ultrachat_like(),
            slo,
            (0.5, 60.0),
            5,
        )
        .unwrap()
    }

    #[test]
    fn relaxed_slo_allows_more_load_than_strict() {
        let strict = capacity(Slo::strict());
        let relaxed = capacity(Slo::relaxed());
        assert!(
            relaxed.rate >= strict.rate,
            "strict {:.1} vs relaxed {:.1}",
            strict.rate,
            relaxed.rate
        );
        assert!(relaxed.rate > 1.0, "{:.2}", relaxed.rate);
    }

    #[test]
    fn capacity_search_is_deterministic() {
        // The bisection replays the same seeded trace at every probe rate,
        // so the whole search is a pure function of its inputs.
        let a = capacity(Slo::strict());
        let b = capacity(Slo::strict());
        assert_eq!(a.rate, b.rate);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn impossible_slo_reports_zero() {
        let r = capacity(Slo::tbt_only(ador_units::Seconds::from_micros(1.0)));
        assert_eq!(r.rate, 0.0);
    }

    #[test]
    fn bad_bounds_are_an_error_not_a_panic() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        for bounds in [(5.0, 2.0), (0.0, 10.0), (-1.0, 1.0), (3.0, 3.0)] {
            let err = max_capacity(
                &arch,
                &model,
                Deployment::single_device(),
                SimConfig::new(1.0, 8),
                TraceProfile::short_chat(),
                Slo::strict(),
                bounds,
                3,
            )
            .unwrap_err();
            assert!(
                matches!(err, SimError::InvalidBounds { .. }),
                "{bounds:?} -> {err}"
            );
        }
    }
}
