//! Speculative decoding for the ADOR serving engine: a draft-and-verify
//! model with SLO-customized speculation depth.
//!
//! Speculative decoding (Leviathan et al., AdaServe) lets a decode step
//! commit several tokens at once: a cheap draft model proposes `k` tokens,
//! the target model verifies them in one parallel pass, and the leading
//! run of accepted tokens — plus the verify pass's own token (the
//! correction after the first rejection, or the bonus token when all `k`
//! survive) — is committed. Per-step cost rises (the verify pass processes
//! `k + 1` tokens per sequence, and the batched draft model charges per
//! drafted token), but when the draft's acceptance rate is high enough the
//! committed run outpaces the overhead and time-between-tokens drops — the
//! biggest unmodeled lever on the latency/throughput frontier the ADOR
//! paper explores.
//!
//! This crate holds the engine-independent half of the model:
//!
//! - [`SpeculationPolicy`] — `Off`, `Fixed(k)`, or [`SloAdaptive`]
//!   (`SloAdaptive` picks a per-request depth each step from the request's
//!   measured TBT slack against its SLO target, throttled under batch
//!   pressure so throughput tenants don't pay latency tenants' verify
//!   overhead).
//! - [`SpeculationConfig`] — the policy plus the acceptance/cost knobs and
//!   the seed of the acceptance process.
//! - [`DraftStream`] — a per-request, seeded, deterministic acceptance
//!   sampler: the number of accepted draft tokens in each verify step is a
//!   leading-run draw under the request's acceptance rate, reproducible
//!   from `(seed, request id, draw index)` regardless of how the engine
//!   interleaves requests.
//! - [`Verify`] — one verify step's outcome (drafted / accepted /
//!   committed), with the accepted run clamped at the request's stop
//!   boundary so a request can never commit past its declared response
//!   length.
//!
//! The serving engine (`ador-serving`) consumes these pieces inside
//! `Engine::step`; the cluster layer plumbs per-tenant-class acceptance
//! profiles into each request.
//!
//! [`SloAdaptive`]: SpeculationPolicy::SloAdaptive
//!
//! # Examples
//!
//! ```
//! use ador_spec::{DraftStream, SpeculationConfig, SpeculationPolicy};
//!
//! let cfg = SpeculationConfig::new(SpeculationPolicy::Fixed(3));
//! let mut stream = DraftStream::new(cfg.seed, 42);
//! let v = stream.verify(3, 100, 0.8);
//! assert!(v.accepted <= v.drafted);
//! assert_eq!(v.committed, v.accepted + 1); // the verify pass's own token
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ador_units::{conv, Seconds};
use serde::{Deserialize, Serialize};

/// Default ceiling on speculation depth (draft tokens per verify step).
pub const DEFAULT_MAX_DEPTH: usize = 4;

/// Default per-token draft acceptance probability, used for requests that
/// carry no per-class acceptance profile. 0.7 is a mid-range figure for a
/// well-trained drafter on chat text.
pub const DEFAULT_ACCEPTANCE: f64 = 0.7;

/// Default cost of one drafted token, as a fraction of one target-model
/// token's share of the decode interval at the same batch and context.
pub const DEFAULT_DRAFT_TIME_RATIO: f64 = 0.1;

/// Default [`SloAdaptive`] verify-token budget, as a fraction of the
/// engine's batch slots: the drafted tokens all requests may add to one
/// verify pass together. A full batch already amortizes weight reads, so
/// extra verify tokens there cost real compute that every co-batched
/// request pays for; capping the drafted total (and spending it urgent
/// requests first) is what keeps throughput tenants from paying latency
/// tenants' verify overhead. `Fixed(k)` deliberately ignores the budget —
/// that unbounded overhead under load is its failure mode.
///
/// [`SloAdaptive`]: SpeculationPolicy::SloAdaptive
pub const DEFAULT_VERIFY_BUDGET: f64 = 0.5;

/// TBT-slack floor of the [`SloAdaptive`] depth map: a request whose
/// measured mean TBT sits below this fraction of its target has latency to
/// spare and gets depth 0; between the floor and [`URGENT_CEIL`] the depth
/// rises linearly to the configured maximum.
///
/// [`SloAdaptive`]: SpeculationPolicy::SloAdaptive
pub const SLACK_FLOOR: f64 = 0.5;

/// Urgency at which the [`SloAdaptive`] depth map saturates at
/// [`SpeculationConfig::max_depth`]. Deliberately below 1.0 (the SLO
/// boundary itself): the controller steers requests toward a margin
/// *under* their target rather than letting them ride the boundary where
/// a single slow step tips them into a miss.
///
/// [`SloAdaptive`]: SpeculationPolicy::SloAdaptive
pub const URGENT_CEIL: f64 = 0.9;

/// How the engine picks a speculation depth for each decoding request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SpeculationPolicy {
    /// No speculation: every decode step commits exactly one token — the
    /// engine's historical behaviour, bit-identical.
    #[default]
    Off,
    /// Every decoding request drafts exactly `k` tokens per step
    /// (capped at [`SpeculationConfig::max_depth`]). `Fixed(0)` is
    /// equivalent to `Off`.
    Fixed(usize),
    /// SLO-customized depth (AdaServe): each request's depth is derived
    /// from its measured mean-TBT slack against its SLO target — requests
    /// at or past [`URGENT_CEIL`] of their target get the full
    /// [`SpeculationConfig::max_depth`], requests below [`SLACK_FLOOR`]
    /// of it get none — and the per-step drafted total is capped by the
    /// verify-token budget ([`SpeculationConfig::verify_budget`]), spent
    /// most-urgent-first. Requests without a TBT target (throughput
    /// tenants) never speculate.
    SloAdaptive,
}

impl std::fmt::Display for SpeculationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpeculationPolicy::Off => f.write_str("off"),
            SpeculationPolicy::Fixed(k) => write!(f, "fixed({k})"),
            SpeculationPolicy::SloAdaptive => f.write_str("slo-adaptive"),
        }
    }
}

/// Speculative-decoding parameters: the policy plus the acceptance process
/// seed and the draft/verify cost knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeculationConfig {
    /// The depth policy.
    pub policy: SpeculationPolicy,
    /// Seed of the deterministic acceptance process. Independent of the
    /// workload seed so acceptance luck can be varied without moving the
    /// arrivals.
    pub seed: u64,
    /// Hard ceiling on per-request speculation depth.
    pub max_depth: usize,
    /// Per-token acceptance probability for requests that carry no
    /// per-class profile ([`DEFAULT_ACCEPTANCE`]).
    pub default_acceptance: f64,
    /// Cost of one drafted token as a fraction of one target-model
    /// token's share of the decode interval at the same batch/context
    /// ([`DEFAULT_DRAFT_TIME_RATIO`]). A step drafting a mean depth of
    /// `k̄` across its batch adds `k̄ × draft_time_ratio` decode
    /// intervals of draft time — the amortized cost of a *batched*
    /// drafter (weights shared across sequences, per-token compute
    /// dominating), not a per-step charge in the deepest request's
    /// depth. The verify cost itself is priced by the engine's
    /// analytical model, which evaluates the decode pass at
    /// `batch + drafted` token positions.
    pub draft_time_ratio: f64,
    /// [`SloAdaptive`](SpeculationPolicy::SloAdaptive) verify-token
    /// budget as a fraction of the engine's batch slots
    /// ([`DEFAULT_VERIFY_BUDGET`]): the drafted-token total one step may
    /// carry, allocated most-urgent-first. Ignored by `Fixed`.
    pub verify_budget: f64,
}

impl SpeculationConfig {
    /// Creates a config under `policy` with the default knobs: seed 0,
    /// depth ceiling [`DEFAULT_MAX_DEPTH`], acceptance
    /// [`DEFAULT_ACCEPTANCE`], draft cost [`DEFAULT_DRAFT_TIME_RATIO`].
    pub fn new(policy: SpeculationPolicy) -> Self {
        Self {
            policy,
            seed: 0,
            max_depth: DEFAULT_MAX_DEPTH,
            default_acceptance: DEFAULT_ACCEPTANCE,
            draft_time_ratio: DEFAULT_DRAFT_TIME_RATIO,
            verify_budget: DEFAULT_VERIFY_BUDGET,
        }
    }

    /// Speculation disabled (the engine default).
    pub fn off() -> Self {
        Self::new(SpeculationPolicy::Off)
    }

    /// Sets the acceptance-process seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the depth ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is zero while the policy speculates.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        assert!(
            max_depth > 0 || self.policy == SpeculationPolicy::Off,
            "a speculating policy needs a positive depth ceiling"
        );
        self.max_depth = max_depth;
        self
    }

    /// Sets the default per-token acceptance probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate ≤ 1`.
    pub fn with_default_acceptance(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "acceptance must be a probability, got {rate}"
        );
        self.default_acceptance = rate;
        self
    }

    /// Sets the draft-step cost ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is negative or not finite.
    pub fn with_draft_time_ratio(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio >= 0.0,
            "draft cost ratio must be finite and non-negative, got {ratio}"
        );
        self.draft_time_ratio = ratio;
        self
    }

    /// Sets the `SloAdaptive` verify-token budget (as a fraction of the
    /// engine's batch slots).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is negative or not finite.
    pub fn with_verify_budget(mut self, budget: f64) -> Self {
        assert!(
            budget.is_finite() && budget >= 0.0,
            "verify budget must be finite and non-negative, got {budget}"
        );
        self.verify_budget = budget;
        self
    }

    /// Whether any request can ever draft a token under this config.
    pub fn speculates(&self) -> bool {
        match self.policy {
            SpeculationPolicy::Off | SpeculationPolicy::Fixed(0) => false,
            SpeculationPolicy::Fixed(_) | SpeculationPolicy::SloAdaptive => self.max_depth > 0,
        }
    }

    /// The `SloAdaptive` urgency of one request: its measured mean TBT
    /// over its SLO target. `None` when the request carries no (positive)
    /// TBT target — throughput tenants never speculate. A request that
    /// has not measured a gap yet (`measured_tbt` is `None`) is treated
    /// as sitting exactly at its target, so a fresh latency-bound request
    /// speculates immediately rather than waiting to fall behind.
    pub fn urgency(
        &self,
        tbt_target: Option<Seconds>,
        measured_tbt: Option<Seconds>,
    ) -> Option<f64> {
        let target = tbt_target.filter(|t| !t.is_zero())?;
        Some(measured_tbt.map_or(1.0, |m| m.get() / target.get()))
    }

    /// The `SloAdaptive` slack-to-depth map: 0 at or below [`SLACK_FLOOR`]
    /// of the target, the full [`SpeculationConfig::max_depth`] at or
    /// above [`URGENT_CEIL`], linear in between. The per-step verify
    /// budget is applied by the engine on top of this, most-urgent-first.
    pub fn slack_depth(&self, urgency: f64) -> usize {
        if urgency >= URGENT_CEIL {
            self.max_depth
        } else if urgency <= SLACK_FLOOR {
            0
        } else {
            conv::usize_from_f64(
                (conv::f64_from_usize(self.max_depth) * (urgency - SLACK_FLOOR)
                    / (URGENT_CEIL - SLACK_FLOOR))
                    .floor(),
            )
        }
    }

    /// The per-step drafted-token budget for an engine with `max_batch`
    /// slots (`Fixed` ignores it; see [`DEFAULT_VERIFY_BUDGET`]).
    pub fn budget_tokens(&self, max_batch: usize) -> usize {
        conv::usize_from_f64((self.verify_budget * conv::f64_from_usize(max_batch)).floor())
    }
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// One verify step's outcome for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Verify {
    /// Draft tokens proposed (after clamping the requested depth at the
    /// request's stop boundary).
    pub drafted: usize,
    /// Leading run of drafted tokens the target model accepted
    /// (`accepted ≤ drafted`).
    pub accepted: usize,
    /// Tokens committed: the accepted run plus the verify pass's own
    /// token (correction or bonus), never past the stop boundary.
    pub committed: usize,
}

impl Verify {
    /// Drafted tokens the target model rejected
    /// (`drafted == accepted + rejected` always holds).
    pub fn rejected(&self) -> usize {
        self.drafted - self.accepted
    }

    /// The wasted share of the verify step's wall time as an exact
    /// rational `(rejected, drafted + 1)`: the pass processed
    /// `drafted + 1` candidate positions (the drafts plus its own
    /// correction/bonus token), of which `rejected` bought nothing.
    ///
    /// This is the ratio time-loss attribution charges to speculative
    /// waste — kept as an integer pair (not an `f64`) so a step
    /// duration multiplied through it partitions exactly, preserving
    /// the conservation invariant of
    /// `ador_telemetry::attribution`.
    pub fn waste_ratio(&self) -> (usize, usize) {
        (self.rejected(), self.drafted + 1)
    }
}

/// The per-request acceptance process: a counter-mode SplitMix64 stream
/// keyed by `(seed, request id)`, drawn once per drafted token. Fully
/// deterministic and independent of engine interleaving: the `n`-th draw
/// of request `r` is the same in a solo engine and in a 16-replica fleet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DraftStream {
    key: u64,
    draws: u64,
}

impl DraftStream {
    /// Creates the stream for `request_id` under the acceptance-process
    /// `seed`.
    pub fn new(seed: u64, request_id: u64) -> Self {
        Self {
            key: mix(seed ^ mix(request_id.wrapping_add(0xA076_1D64_78BD_642F))),
            draws: 0,
        }
    }

    /// Runs one verify step: drafts up to `depth` tokens (clamped so the
    /// committed run can never pass the `remaining` tokens the request may
    /// still emit), samples the leading accepted run under `accept_rate`,
    /// and returns the outcome. With `depth == 0` (or `remaining <= 1`)
    /// this draws nothing and commits exactly one token — the
    /// speculation-off path.
    ///
    /// # Panics
    ///
    /// Panics if `remaining` is zero (a finished request must not decode)
    /// or `accept_rate` is not a probability.
    pub fn verify(&mut self, depth: usize, remaining: usize, accept_rate: f64) -> Verify {
        assert!(remaining > 0, "cannot verify a finished request");
        assert!(
            (0.0..=1.0).contains(&accept_rate),
            "acceptance must be a probability, got {accept_rate}"
        );
        // The verify pass itself always commits one token, so drafting
        // more than `remaining - 1` could only overshoot the stop
        // boundary: clamp the depth, not the commit.
        let drafted = depth.min(remaining - 1);
        let mut accepted = 0;
        while accepted < drafted && self.draw() < accept_rate {
            accepted += 1;
        }
        // Rejected drafts still consumed their draws only up to the first
        // rejection (leading-run semantics): skip the draws the remaining
        // drafts would have used so the stream position depends only on
        // the drafted count, not on where the run broke.
        self.draws += conv::u64_from_usize((drafted - accepted).saturating_sub(1));
        Verify {
            drafted,
            accepted,
            committed: accepted + 1,
        }
    }

    /// One uniform draw in `[0, 1)`.
    fn draw(&mut self) -> f64 {
        let word = mix(self
            .key
            .wrapping_add(self.draws.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        self.draws += 1;
        conv::f64_from_u64(word >> 11) * (1.0 / conv::f64_from_u64(1u64 << 53))
    }
}

/// SplitMix64 finalizer: the bijective mixer behind the acceptance stream.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    // tests may unwrap: a failed unwrap is exactly the test failing
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn waste_ratio_is_the_rejected_share_of_verify_positions() {
        let verify = Verify {
            drafted: 3,
            accepted: 1,
            committed: 2,
        };
        assert_eq!(verify.rejected(), 2);
        assert_eq!(verify.waste_ratio(), (2, 4));
        let clean = Verify {
            drafted: 0,
            accepted: 0,
            committed: 1,
        };
        assert_eq!(clean.waste_ratio(), (0, 1), "plain decode wastes nothing");
    }

    #[test]
    fn off_and_fixed_zero_never_speculate() {
        assert!(!SpeculationConfig::off().speculates());
        assert!(!SpeculationConfig::new(SpeculationPolicy::Fixed(0)).speculates());
        assert!(SpeculationConfig::new(SpeculationPolicy::Fixed(2)).speculates());
        assert!(SpeculationConfig::new(SpeculationPolicy::SloAdaptive).speculates());
    }

    #[test]
    fn urgency_needs_a_positive_target() {
        let cfg = SpeculationConfig::new(SpeculationPolicy::SloAdaptive);
        let target = Some(Seconds::from_millis(25.0));
        assert_eq!(cfg.urgency(None, None), None, "no contract, no urgency");
        assert_eq!(cfg.urgency(Some(Seconds::ZERO), None), None);
        // A fresh latency-bound request sits exactly at its target.
        assert_eq!(cfg.urgency(target, None), Some(1.0));
        let u = cfg
            .urgency(target, Some(Seconds::from_millis(20.0)))
            .unwrap();
        assert!((u - 0.8).abs() < 1e-12);
    }

    #[test]
    fn slack_depth_scales_with_urgency() {
        let cfg = SpeculationConfig::new(SpeculationPolicy::SloAdaptive);
        // Past the urgent ceiling: full depth. Lots of slack: none.
        assert_eq!(cfg.slack_depth(1.2), DEFAULT_MAX_DEPTH);
        assert_eq!(cfg.slack_depth(URGENT_CEIL), DEFAULT_MAX_DEPTH);
        assert_eq!(cfg.slack_depth(SLACK_FLOOR), 0);
        assert_eq!(cfg.slack_depth(0.2), 0);
        // In between: monotone non-decreasing.
        let depths: Vec<usize> = [0.55, 0.65, 0.75, 0.85]
            .map(|u| cfg.slack_depth(u))
            .to_vec();
        assert!(depths.windows(2).all(|w| w[0] <= w[1]), "{depths:?}");
        assert!(depths[3] > 0);
    }

    #[test]
    fn verify_budget_scales_with_batch_slots() {
        let cfg = SpeculationConfig::new(SpeculationPolicy::SloAdaptive);
        assert_eq!(cfg.budget_tokens(64), 32);
        assert_eq!(cfg.with_verify_budget(0.25).budget_tokens(64), 16);
        assert_eq!(cfg.with_verify_budget(0.0).budget_tokens(64), 0);
    }

    #[test]
    fn verify_conserves_tokens_and_respects_the_stop_boundary() {
        let mut s = DraftStream::new(7, 1);
        for remaining in 1..20usize {
            let v = s.verify(8, remaining, 0.9);
            assert!(v.accepted <= v.drafted);
            assert_eq!(v.drafted, v.accepted + v.rejected());
            assert_eq!(v.committed, v.accepted + 1);
            assert!(v.committed <= remaining, "commit past the stop boundary");
            assert!(v.drafted <= remaining.saturating_sub(1));
        }
    }

    #[test]
    fn acceptance_extremes_are_exact() {
        let mut s = DraftStream::new(3, 9);
        let sure = s.verify(4, 100, 1.0);
        assert_eq!((sure.drafted, sure.accepted, sure.committed), (4, 4, 5));
        let never = s.verify(4, 100, 0.0);
        assert_eq!((never.drafted, never.accepted, never.committed), (4, 0, 1));
        let off = s.verify(0, 100, 1.0);
        assert_eq!((off.drafted, off.accepted, off.committed), (0, 0, 1));
    }

    #[test]
    fn streams_are_deterministic_and_request_independent() {
        let run = |seed: u64, id: u64| {
            let mut s = DraftStream::new(seed, id);
            (0..32)
                .map(|_| s.verify(4, 100, 0.6).accepted)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1, 5), run(1, 5));
        assert_ne!(run(1, 5), run(1, 6), "ids decorrelate");
        assert_ne!(run(1, 5), run(2, 5), "seeds decorrelate");
    }

    #[test]
    fn acceptance_rate_converges_to_the_profile() {
        // Mean accepted per k=1 verify ≈ p.
        let mut s = DraftStream::new(11, 0);
        let n = 20_000;
        let accepted: usize = (0..n).map(|_| s.verify(1, 100, 0.7).accepted).sum();
        let mean = accepted as f64 / n as f64;
        assert!((mean - 0.7).abs() < 0.02, "measured {mean:.3}");
    }

    #[test]
    #[should_panic(expected = "finished request")]
    fn verifying_a_finished_request_panics() {
        let _ = DraftStream::new(0, 0).verify(2, 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn non_probability_acceptance_rejected() {
        let _ = SpeculationConfig::off().with_default_acceptance(1.5);
    }
}
