//! Baseline serving hardware: every device the paper compares against,
//! expressed in the ADOR architecture template (Table I, Table III, Fig. 4).
//!
//! Devices whose fabric we decompose (the Table III LLMCompass and ADOR
//! designs) get real SA/MT configurations and run on the cycle models;
//! devices we treat as black boxes (A100, H100, TPUv4, Groq TSP) carry
//! datasheet peak-FLOPS/die-area overrides plus calibrated efficiency
//! profiles (see `DESIGN.md` §2.4).
//!
//! # Examples
//!
//! ```
//! use ador_baselines::{a100, ador_table3, registry};
//!
//! assert_eq!(a100().peak_flops().as_tflops(), 312.0);
//! assert!((ador_table3().peak_flops().as_tflops() - 417.0).abs() < 2.0);
//! assert!(registry().len() >= 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ador_hw::memory::DramSpec;
use ador_hw::{Architecture, DramKind, MacTree, PerfProfile, ProcessNode, SystolicArray};
use ador_units::{Area, Bandwidth, Bytes, FlopRate, Frequency, Power};

/// NVIDIA A100 80 GB SXM (Table III's comparison column; FP16 tensor peak).
pub fn a100() -> Architecture {
    Architecture::builder("NVIDIA A100")
        .cores(108)
        .peak_flops_override(FlopRate::from_tflops(312.0))
        .die_area_override(Area::from_mm2(826.0))
        .dram(DramSpec::hbm2e(
            Bytes::from_gib(80),
            Bandwidth::from_tbps(2.0),
        ))
        .p2p_bandwidth(Bandwidth::from_gbps(600.0))
        .frequency(Frequency::from_mhz(1410.0))
        .process(ProcessNode::N7)
        .profile(PerfProfile::gpu())
        .tdp(Power::from_watts(400.0))
        .build()
}

/// NVIDIA H100 SXM (Table I: 1000 TFLOPS FP16, 3.35 TB/s HBM3, 700 W,
/// 814 mm² at 4 nm).
pub fn h100() -> Architecture {
    Architecture::builder("NVIDIA H100")
        .cores(132)
        .peak_flops_override(FlopRate::from_tflops(1000.0))
        .die_area_override(Area::from_mm2(814.0))
        .dram(DramSpec::hbm3(
            Bytes::from_gib(80),
            Bandwidth::from_gbps(3350.0),
        ))
        .p2p_bandwidth(Bandwidth::from_gbps(900.0))
        .frequency(Frequency::from_mhz(1593.0))
        .process(ProcessNode::N4)
        .profile(PerfProfile::gpu())
        .tdp(Power::from_watts(700.0))
        .build()
}

/// Google TPUv4 (Table I: 275 TFLOPS, 1.2 TB/s HBM2, 32 GB, 400 mm² at
/// 7 nm) — modeled as 8 MXUs of 128×128 at 1050 MHz, which reproduces the
/// datasheet peak exactly.
pub fn tpuv4() -> Architecture {
    Architecture::builder("Google TPUv4")
        .cores(8)
        .systolic_array(SystolicArray::square(128))
        .local_memory(Bytes::from_mib(16))
        .global_memory(Bytes::from_mib(32))
        .die_area_override(Area::from_mm2(400.0))
        .dram(DramSpec::hbm2(
            Bytes::from_gib(32),
            Bandwidth::from_gbps(1200.0),
        ))
        .p2p_bandwidth(Bandwidth::from_gbps(200.0))
        .frequency(Frequency::from_mhz(1050.0))
        .process(ProcessNode::N7)
        .profile(PerfProfile::systolic_npu())
        .tdp(Power::from_watts(275.0))
        .build()
}

/// Groq TSP (Table I: 205 TFLOPS, all-SRAM 220 MB at 80 TB/s, 725 mm² at
/// 14 nm). Serving a multi-GB model requires `ceil(weights / 220 MB)`
/// devices — the paper's Fig. 4a uses 576 devices for LLaMA3-8B.
pub fn groq_tsp() -> Architecture {
    Architecture::builder("Groq TSP")
        .cores(1)
        .peak_flops_override(FlopRate::from_tflops(205.0))
        .die_area_override(Area::from_mm2(725.0))
        .dram(DramSpec::new(
            DramKind::OnChipSram,
            Bytes::from_mib(220),
            Bandwidth::from_tbps(80.0),
        ))
        .p2p_bandwidth(Bandwidth::from_gbps(330.0))
        .frequency(Frequency::from_mhz(1000.0))
        .process(ProcessNode::N14)
        .profile(PerfProfile::streaming_sram())
        .tdp(Power::from_watts(300.0))
        .build()
}

/// Devices needed to hold `weight_bytes` entirely in TSP SRAM (Fig. 4a's
/// "×576 devices" annotation for LLaMA3-8B-class models).
pub fn tsp_devices_for(weight_bytes: Bytes) -> usize {
    let capacity = groq_tsp().dram.capacity;
    (weight_bytes.get() as f64 / capacity.get() as f64).ceil() as usize
}

/// LLMCompass latency-optimized design (Table III column "L"): 64 cores ×
/// 4 lanes of 16×16 SAs, 2 TB/s HBM2e.
pub fn llmcompass_l() -> Architecture {
    Architecture::builder("LLMCompass-L")
        .cores(64)
        .systolic_array(SystolicArray::square(16))
        .sa_per_core(4)
        .local_memory(Bytes::from_kib(192))
        .global_memory(Bytes::from_mib(24))
        .dram(DramSpec::hbm2e(
            Bytes::from_gib(80),
            Bandwidth::from_tbps(2.0),
        ))
        .p2p_bandwidth(Bandwidth::from_gbps(600.0))
        .frequency(Frequency::from_mhz(1500.0))
        .process(ProcessNode::N7)
        .profile(PerfProfile::systolic_npu())
        .build()
}

/// LLMCompass throughput-optimized design (Table III column "T"): 64 cores
/// × 4 lanes of 32×32 SAs, 512 GB of capacity memory at 1 TB/s.
pub fn llmcompass_t() -> Architecture {
    Architecture::builder("LLMCompass-T")
        .cores(64)
        .systolic_array(SystolicArray::square(32))
        .sa_per_core(4)
        .local_memory(Bytes::from_kib(768))
        .global_memory(Bytes::from_mib(48))
        .dram(DramSpec::new(
            DramKind::Lpddr,
            Bytes::from_gib(512),
            Bandwidth::from_tbps(1.0),
        ))
        .p2p_bandwidth(Bandwidth::from_gbps(600.0))
        .frequency(Frequency::from_mhz(1500.0))
        .process(ProcessNode::N7)
        .profile(PerfProfile::systolic_npu())
        .build()
}

/// The ADOR design the paper's search proposes under A100-like constraints
/// (Table III right column): 32 cores of 64×64 SA + 16×16 MT, 2 MiB local /
/// 16 MiB global SRAM, 2 TB/s HBM2e, 64 GB/s P2P.
pub fn ador_table3() -> Architecture {
    Architecture::builder("ADOR Design")
        .cores(32)
        .systolic_array(SystolicArray::square(64))
        .mac_tree(MacTree::new(16, 16))
        .local_memory(Bytes::from_kib(2048))
        .global_memory(Bytes::from_mib(16))
        .dram(DramSpec::hbm2e(
            Bytes::from_gib(80),
            Bandwidth::from_tbps(2.0),
        ))
        .noc_bandwidth(Bandwidth::from_gbps(256.0))
        .p2p_bandwidth(Bandwidth::from_gbps(64.0))
        .frequency(Frequency::from_mhz(1500.0))
        .process(ProcessNode::N7)
        .profile(PerfProfile::ador_template())
        .build()
}

/// Prefill-optimized ADOR variant for disaggregated fleets: the Table III
/// fabric grown to 48 cores (1.5× the MAC budget, ~627 TFLOPS) on the
/// *same* 2 TB/s HBM2e stack. Prefill is compute-bound, so the extra
/// arrays convert directly into TTFT; the unchanged DRAM makes it a poor
/// decode chip, which is the point of pairing it with
/// [`decode_optimized`].
pub fn prefill_optimized() -> Architecture {
    Architecture::builder("Prefill-Optimized")
        .cores(48)
        .systolic_array(SystolicArray::square(64))
        .mac_tree(MacTree::new(16, 16))
        .local_memory(Bytes::from_kib(2048))
        .global_memory(Bytes::from_mib(16))
        .dram(DramSpec::hbm2e(
            Bytes::from_gib(80),
            Bandwidth::from_tbps(2.0),
        ))
        .noc_bandwidth(Bandwidth::from_gbps(256.0))
        .p2p_bandwidth(Bandwidth::from_gbps(64.0))
        .frequency(Frequency::from_mhz(1500.0))
        .process(ProcessNode::N7)
        .profile(PerfProfile::ador_template())
        .build()
}

/// Decode-optimized ADOR variant for disaggregated fleets: a 16-core
/// fabric (~209 TFLOPS — decode GEMV never fills the arrays anyway) under
/// a 3.2 TB/s HBM3 stack with wider MAC trees. Batched decode is
/// DRAM-bandwidth-bound, so the 1.6× stack buys TBT directly; the thin
/// compute makes it a poor prefill chip.
pub fn decode_optimized() -> Architecture {
    Architecture::builder("Decode-Optimized")
        .cores(16)
        .systolic_array(SystolicArray::square(64))
        .mac_tree(MacTree::new(16, 32))
        .local_memory(Bytes::from_kib(2048))
        .global_memory(Bytes::from_mib(16))
        .dram(DramSpec::hbm3(
            Bytes::from_gib(96),
            Bandwidth::from_tbps(3.2),
        ))
        .noc_bandwidth(Bandwidth::from_gbps(256.0))
        .p2p_bandwidth(Bandwidth::from_gbps(64.0))
        .frequency(Frequency::from_mhz(1500.0))
        .process(ProcessNode::N7)
        .profile(PerfProfile::ador_template())
        .build()
}

/// Every baseline, for registry-style iteration (Fig. 4 sweeps). The
/// disaggregation specials ([`prefill_optimized`], [`decode_optimized`])
/// are deliberately *not* here — they are fleet-role chips, not paper
/// comparison columns — but [`by_name`] finds them.
pub fn registry() -> Vec<Architecture> {
    vec![
        a100(),
        h100(),
        tpuv4(),
        groq_tsp(),
        llmcompass_l(),
        llmcompass_t(),
        ador_table3(),
    ]
}

/// Looks up a device by (case-insensitive) name: the [`registry`]
/// baselines plus the disaggregation specials.
///
/// # Examples
///
/// ```
/// assert!(ador_baselines::by_name("nvidia a100").is_some());
/// assert!(ador_baselines::by_name("decode-optimized").is_some());
/// assert!(ador_baselines::by_name("unknown").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Architecture> {
    let needle = name.to_ascii_lowercase();
    registry()
        .into_iter()
        .chain([prefill_optimized(), decode_optimized()])
        .find(|a| a.name.to_ascii_lowercase() == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_hw::AreaModel;

    #[test]
    fn table1_specs_encoded() {
        let h = h100();
        assert_eq!(h.peak_flops().as_tflops(), 1000.0);
        assert!((h.dram.bandwidth.as_gbps() - 3350.0).abs() < 1e-9);
        assert_eq!(h.tdp.unwrap().as_watts(), 700.0);

        let t = tpuv4();
        assert!((t.peak_flops().as_tflops() - 275.0).abs() < 1.0);
        assert_eq!(t.dram.capacity, Bytes::from_gib(32));

        let g = groq_tsp();
        assert_eq!(g.dram.kind, DramKind::OnChipSram);
        assert!((g.dram.bandwidth.as_tbps() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn table3_peaks_match() {
        assert!((llmcompass_l().peak_flops().as_tflops() - 196.6).abs() < 1.0);
        assert!((llmcompass_t().peak_flops().as_tflops() - 786.4).abs() < 1.0);
        assert!((ador_table3().peak_flops().as_tflops() - 417.8).abs() < 1.0);
    }

    #[test]
    fn table3_die_areas_match() {
        let model = AreaModel::default();
        for (arch, expect) in [
            (llmcompass_l(), 478.0),
            (llmcompass_t(), 787.0),
            (ador_table3(), 516.0),
        ] {
            let got = model.estimate(&arch).total().as_mm2();
            assert!(
                (got - expect).abs() / expect < 0.01,
                "{}: {got:.1}",
                arch.name
            );
        }
    }

    #[test]
    fn fig4a_tsp_needs_hundreds_of_devices() {
        // LLaMA3-8B at FP16 ≈ 16 GB of weights → 73+ TSPs at 220 MB each;
        // the paper's 576 counts the full rack configuration. Our lower
        // bound already demolishes area efficiency.
        let n = tsp_devices_for(Bytes::from_gib(16));
        assert!(n >= 73, "{n}");
    }

    #[test]
    fn registry_is_complete_and_valid() {
        let all = registry();
        assert_eq!(all.len(), 7);
        for arch in &all {
            assert!(arch.validate().is_ok(), "{}", arch.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("ador design").unwrap().cores, 32);
        assert!(by_name("LLMCompass-T").is_some());
        assert_eq!(by_name("prefill-optimized").unwrap().cores, 48);
        assert_eq!(by_name("Decode-Optimized").unwrap().cores, 16);
    }

    #[test]
    fn disagg_specials_are_valid_and_specialized() {
        let p = prefill_optimized();
        let d = decode_optimized();
        assert!(p.validate().is_ok() && d.validate().is_ok());
        // The prefill chip out-computes; the decode chip out-streams.
        assert!(p.peak_flops() > d.peak_flops());
        assert!(d.dram.bandwidth > p.dram.bandwidth);
        // Neither leaks into the pinned paper registry.
        assert!(registry()
            .iter()
            .all(|a| a.name != p.name && a.name != d.name));
    }
}
