//! ADOR: Automatic Dataflow Optimization and ExploRation for LLM serving.
//!
//! This is the facade crate of the ADOR reproduction (ISPASS 2025). It
//! re-exports every subsystem and offers the high-level [`Ador`] entry
//! point that mirrors the paper's Fig. 9 flow: feed in vendor constraints,
//! user SLAs and a workload; get back a proposed architecture with
//! predicted QoS; optionally validate it in the serving simulator.
//!
//! Subsystem tour:
//!
//! * [`units`] — typed quantities (bytes, bandwidth, time, FLOPs, area);
//! * [`model`] — LLM configurations, operator graphs, workload statistics;
//! * [`hw`] — the architecture template: systolic arrays, MAC trees,
//!   vector units, memory system, area model;
//! * [`noc`] — collectives, overlap analysis, ring NoC, P2P links;
//! * [`parallel`] — tensor/pipeline parallelism planning and scaling;
//! * [`perf`] — the operator-level performance model and compiler stack;
//! * [`serving`] — the discrete-event serving simulator and QoS metrics;
//! * [`spec`] — speculative decoding: draft/verify cost accounting and
//!   SLO-customized speculation depth;
//! * [`cluster`] — multi-replica fleets: routing policies, multi-tenant
//!   traffic and fleet-wide QoS;
//! * [`search`] — the design-space search;
//! * [`baselines`] — A100 / H100 / TPUv4 / Groq TSP / LLMCompass designs;
//! * [`analysis`] — `ador-lint`, the static-analysis pass that enforces
//!   the simulator's determinism and panic-safety contracts.
//!
//! # Examples
//!
//! ```
//! use ador_core::prelude::*;
//!
//! // Explore: what should an A100-class chip look like for LLaMA3-8B?
//! let outcome = Ador::new(presets::llama3_8b())
//!     .batch(128)
//!     .seq_len(1024)
//!     .explore()?;
//! assert!(outcome.architecture.is_hda());
//!
//! // Evaluate: how does the proposal compare with the A100 at the
//! // operating point?
//! let comparison = Ador::new(presets::llama3_8b())
//!     .batch(128)
//!     .seq_len(1024)
//!     .compare(&outcome.architecture, &baselines::a100())?;
//! assert!(comparison.tbt_ratio > 1.0); // the proposal generates faster
//! # Ok::<(), ador_core::AdorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ador_analysis as analysis;
pub use ador_baselines as baselines;
pub use ador_cluster as cluster;
pub use ador_hw as hw;
pub use ador_model as model;
pub use ador_noc as noc;
pub use ador_parallel as parallel;
pub use ador_perf as perf;
pub use ador_search as search;
pub use ador_serving as serving;
pub use ador_spec as spec;
pub use ador_telemetry as telemetry;
pub use ador_units as units;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use crate::baselines;
    pub use crate::model::{presets, ModelConfig, Phase};
    pub use crate::perf::{Deployment, Evaluator};
    pub use crate::search::{SearchInput, UserRequirements, VendorConstraints, Workload};
    pub use crate::serving::{ServingSim, SimConfig, Slo, TraceProfile};
    pub use crate::units::{Bandwidth, Bytes, Seconds};
    pub use crate::{Ador, AdorError, Comparison};
}

use core::fmt;

use ador_model::ModelConfig;
use ador_perf::{Deployment, Evaluator};
use ador_search::{SearchInput, SearchOutcome, UserRequirements, VendorConstraints, Workload};
use ador_serving::{QosReport, ServingSim, SimConfig, TraceProfile};
use ador_units::Seconds;

/// Top-level error for the facade API.
#[derive(Debug)]
pub enum AdorError {
    /// The design search failed.
    Search(ador_search::SearchError),
    /// The performance model rejected a configuration.
    Perf(ador_perf::PerfError),
    /// The serving simulator failed.
    Serving(ador_serving::SimError),
}

impl fmt::Display for AdorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdorError::Search(e) => write!(f, "search: {e}"),
            AdorError::Perf(e) => write!(f, "perf: {e}"),
            AdorError::Serving(e) => write!(f, "serving: {e}"),
        }
    }
}

impl std::error::Error for AdorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdorError::Search(e) => Some(e),
            AdorError::Perf(e) => Some(e),
            AdorError::Serving(e) => Some(e),
        }
    }
}

impl From<ador_search::SearchError> for AdorError {
    fn from(e: ador_search::SearchError) -> Self {
        AdorError::Search(e)
    }
}

impl From<ador_perf::PerfError> for AdorError {
    fn from(e: ador_perf::PerfError) -> Self {
        AdorError::Perf(e)
    }
}

impl From<ador_serving::SimError> for AdorError {
    fn from(e: ador_serving::SimError) -> Self {
        AdorError::Serving(e)
    }
}

/// Head-to-head comparison of two architectures at one operating point.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Challenger TTFT.
    pub ttft_a: Seconds,
    /// Reference TTFT.
    pub ttft_b: Seconds,
    /// Challenger TBT.
    pub tbt_a: Seconds,
    /// Reference TBT.
    pub tbt_b: Seconds,
    /// `ttft_b / ttft_a` — above 1 means the challenger is faster to first
    /// token.
    pub ttft_ratio: f64,
    /// `tbt_b / tbt_a` — above 1 means the challenger generates faster.
    pub tbt_ratio: f64,
}

/// The high-level framework handle: a builder over the Fig. 9 inputs.
///
/// See the [crate-level examples](crate).
#[derive(Debug, Clone)]
pub struct Ador {
    model: ModelConfig,
    vendor: VendorConstraints,
    user: UserRequirements,
    batch: usize,
    seq_len: usize,
}

impl Ador {
    /// Starts a session targeting `model` with A100-class vendor
    /// constraints and the chatbot SLA.
    pub fn new(model: ModelConfig) -> Self {
        Self {
            model,
            vendor: VendorConstraints::a100_class(),
            user: UserRequirements::chatbot(),
            batch: 64,
            seq_len: 1024,
        }
    }

    /// Sets the vendor constraints.
    pub fn vendor(mut self, vendor: VendorConstraints) -> Self {
        self.vendor = vendor;
        self
    }

    /// Sets the user requirements.
    pub fn user(mut self, user: UserRequirements) -> Self {
        self.user = user;
        self
    }

    /// Sets the operating-point batch size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the operating-point sequence length.
    pub fn seq_len(mut self, seq_len: usize) -> Self {
        self.seq_len = seq_len;
        self
    }

    fn search_input(&self) -> SearchInput {
        SearchInput {
            vendor: self.vendor,
            user: self.user,
            workload: Workload::new(self.model.clone(), self.batch, self.seq_len),
        }
    }

    /// Runs the design search (Fig. 9).
    ///
    /// # Errors
    ///
    /// Returns [`AdorError::Search`] when no candidate fits the budget.
    pub fn explore(&self) -> Result<SearchOutcome, AdorError> {
        Ok(ador_search::search(&self.search_input())?)
    }

    /// Evaluates an architecture at this session's operating point,
    /// returning `(ttft, tbt)`.
    ///
    /// # Errors
    ///
    /// Returns [`AdorError::Perf`] when the model does not fit.
    pub fn evaluate(&self, arch: &ador_hw::Architecture) -> Result<(Seconds, Seconds), AdorError> {
        let deployment = self.deployment()?;
        let eval = Evaluator::new(arch, &self.model, deployment)?;
        Ok((
            eval.ttft(1, self.seq_len)?,
            eval.decode_interval(self.batch, self.seq_len)?,
        ))
    }

    /// Compares challenger `a` against reference `b` at the operating
    /// point.
    ///
    /// # Errors
    ///
    /// Returns [`AdorError::Perf`] when either architecture cannot serve
    /// the model.
    pub fn compare(
        &self,
        a: &ador_hw::Architecture,
        b: &ador_hw::Architecture,
    ) -> Result<Comparison, AdorError> {
        let (ttft_a, tbt_a) = self.evaluate(a)?;
        let (ttft_b, tbt_b) = self.evaluate(b)?;
        Ok(Comparison {
            ttft_a,
            ttft_b,
            tbt_a,
            tbt_b,
            ttft_ratio: ttft_b.get() / ttft_a.get(),
            tbt_ratio: tbt_b.get() / tbt_a.get(),
        })
    }

    /// Validates an architecture in the serving simulator (Fig. 14b).
    ///
    /// # Errors
    ///
    /// Returns [`AdorError::Serving`] on simulator failures.
    pub fn simulate_serving(
        &self,
        arch: &ador_hw::Architecture,
        cfg: SimConfig,
        profile: TraceProfile,
    ) -> Result<QosReport, AdorError> {
        let deployment = self.deployment()?;
        Ok(ServingSim::new(arch, &self.model, deployment, cfg)?.run(profile)?)
    }

    fn deployment(&self) -> Result<Deployment, AdorError> {
        Workload::new(self.model.clone(), self.batch, self.seq_len)
            .deployment(&self.vendor)
            .map_err(AdorError::Search)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_model::presets;

    #[test]
    fn explore_then_compare_beats_a100() {
        let session = Ador::new(presets::llama3_8b()).batch(128).seq_len(1024);
        let outcome = session.explore().unwrap();
        let cmp = session
            .compare(&outcome.architecture, &baselines::a100())
            .unwrap();
        assert!(cmp.tbt_ratio > 1.0, "{cmp:?}");
    }

    #[test]
    fn evaluate_rejects_oversized_model() {
        let mut session = Ador::new(presets::llama3_70b()).batch(32).seq_len(512);
        session.vendor.max_devices = 1;
        let err = session.evaluate(&baselines::ador_table3()).unwrap_err();
        assert!(matches!(err, AdorError::Search(_)));
    }

    #[test]
    fn serving_validation_runs() {
        let session = Ador::new(presets::llama3_8b()).batch(64).seq_len(1024);
        let report = session
            .simulate_serving(
                &baselines::ador_table3(),
                SimConfig::new(2.0, 64).with_requests(20),
                TraceProfile::short_chat(),
            )
            .unwrap();
        assert_eq!(report.completed, 20);
    }

    #[test]
    fn errors_chain_sources() {
        let e = AdorError::Perf(ador_perf::PerfError::InvalidArchitecture("x".into()));
        assert!(std::error::Error::source(&e).is_some());
    }
}
