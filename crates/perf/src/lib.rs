//! The ADOR performance model: maps an operator graph onto an
//! [`Architecture`](ador_hw::Architecture) and predicts per-step latency
//! (paper §IV-E, §V-D, Figs. 8, 11, 12, 14).
//!
//! The model follows the paper's heterogeneous-dataflow scheduling (Fig. 8):
//!
//! * **decode weight GEMVs** stream weights straight from DRAM through the
//!   MAC trees (utilization per the Fig. 10 law), with the systolic array
//!   joining once the batch makes them compute-bound;
//! * **decode attention** is serviced by the MAC trees at full DRAM
//!   bandwidth — the per-request KV traffic is the dominant term at batch;
//! * **prefill GEMMs** run on the systolic arrays (weight-stationary,
//!   double-buffered) with the MAC trees assisting, split at compile time;
//! * **prefill attention** reads the running chunk's KV from on-chip global
//!   memory instead of DRAM;
//! * **vector work** (softmax, norms, activations) runs on the vector units;
//! * tensor-parallel devices synchronize per sub-block with exposed wire
//!   time and barriers from [`ador_parallel`].
//!
//! Entry point: [`Evaluator`].
//!
//! # Examples
//!
//! ```
//! use ador_perf::{Deployment, Evaluator};
//! use ador_model::{presets, Phase};
//! use ador_baselines::ador_table3;
//!
//! let model = presets::llama3_8b();
//! let arch = ador_table3();
//! let eval = Evaluator::new(&arch, &model, Deployment::single_device()).unwrap();
//! let decode = eval.step(Phase::decode(16, 1024)).unwrap();
//! let prefill = eval.step(Phase::prefill(1, 1024)).unwrap();
//! assert!(decode.total < prefill.total); // one token vs a thousand
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deploy;
mod error;
mod isa;
pub mod local_mem;
mod lowering;
mod op_latency;
mod schedule;
mod step;

pub use deploy::Deployment;
pub use error::PerfError;
pub use isa::{Bundle, CycleExecutor, ExecutionReport, Instruction, Program};
pub use lowering::lower;
pub use op_latency::{BoundKind, OpLatency};
pub use schedule::{FabricRates, UnitChoice};
pub use step::{Evaluator, StepLatency};
