//! HDA scheduling: which compute unit services which operator, and at what
//! effective rate (paper Fig. 8 and §IV-E).

use ador_hw::Architecture;
use ador_model::{OpClass, Phase};
use ador_units::{FlopRate, Seconds};
use serde::{Deserialize, Serialize};

/// The compute unit(s) assigned to an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnitChoice {
    /// MAC trees only (decode attention: keep DRAM bandwidth saturated).
    MacTree,
    /// Systolic arrays only.
    SystolicArray,
    /// Both, with the compile-time GEMM split of §IV-E.
    Both,
    /// Vector units.
    VectorUnit,
    /// The architecture exposes no decomposed fabric; use its datasheet
    /// peak with the SIMT saturation model.
    Fabric,
}

/// Chooses the unit for an operator class under the Fig. 8 policy.
pub fn choose_unit(arch: &Architecture, phase: Phase, class: OpClass) -> UnitChoice {
    if arch.peak_flops_override.is_some() {
        return match class {
            OpClass::Vector => UnitChoice::VectorUnit,
            _ => UnitChoice::Fabric,
        };
    }
    match class {
        OpClass::Vector => UnitChoice::VectorUnit,
        OpClass::Attention => {
            if arch.mt.is_some() {
                // "MAC trees are used exclusively to perform GEMV operations
                // ... handling the attention with full use of the DRAM
                // bandwidth".
                if phase.is_decode() {
                    UnitChoice::MacTree
                } else if arch.sa.is_some() {
                    UnitChoice::Both
                } else {
                    UnitChoice::MacTree
                }
            } else {
                UnitChoice::SystolicArray
            }
        }
        OpClass::WeightMatMul => match (arch.sa.is_some(), arch.mt.is_some()) {
            // "since MAC trees can also perform GEMM operations, they can be
            // used alongside systolic arrays" — both phases split the weight
            // matmuls at compile time.
            (true, true) => UnitChoice::Both,
            (true, false) => UnitChoice::SystolicArray,
            (false, true) => UnitChoice::MacTree,
            (false, false) => UnitChoice::Fabric,
        },
    }
}

/// Effective compute rates of each fabric on a given matmul shape,
/// accounting for multi-core work splitting (C-INTERMEDIATE: the Fig. 11a
/// sweep reads these directly).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricRates {
    /// Systolic arrays' achieved rate on this shape.
    pub sa: FlopRate,
    /// MAC trees' achieved rate on this shape.
    pub mt: FlopRate,
}

impl FabricRates {
    /// Combined rate when both fabrics work the same operator.
    pub fn combined(&self) -> FlopRate {
        self.sa + self.mt
    }
}

/// Achieved systolic-array rate for `count` GEMMs of `m×k·k×n`, choosing the
/// best compile-time split across the device's SA instances (split output
/// columns, split rows, or split independent GEMMs — §IV-C's two dataflows
/// plus head-parallelism).
///
/// Activation panels larger than the local SRAM stream from the shared
/// global memory (paper §IV-B), so no re-fill penalty applies as long as
/// the NoC keeps up; the SRAM-capacity pressure of many-small-core designs
/// is charged where it physically lands — the SRAM budget in
/// `ador-search::size_memories` and the area model.
pub fn sa_effective_rate(
    arch: &Architecture,
    m: usize,
    k: usize,
    n: usize,
    count: usize,
) -> FlopRate {
    let Some(sa) = arch.sa else {
        return FlopRate::ZERO;
    };
    let instances = (arch.cores * arch.sa_per_core).max(1);
    let ideal_flops = 2.0 * (m as f64) * (k as f64) * (n as f64) * (count as f64);

    let timing = |m_eff: usize, n_eff: usize, c_eff: usize| -> Seconds {
        sa.batched_gemm_timing(m_eff, k, n_eff, c_eff).cycles / arch.frequency
    };

    // Split output columns across instances (latency dataflow, Fig. 6c).
    let mut best = timing(m, n.div_ceil(instances), count);
    // Split rows across instances (throughput dataflow, Fig. 6b).
    best = best.min(timing(m.div_ceil(instances), n, count));
    // Split independent GEMMs (one attention head per instance).
    if count > 1 {
        best = best.min(timing(m, n, count.div_ceil(instances)));
    }
    FlopRate::new(ideal_flops / best.get())
}

/// Achieved MAC-tree rate for the same shape: the per-core banks act as one
/// wide bank (each core owns a slice of the output).
pub fn mt_effective_rate(
    arch: &Architecture,
    m: usize,
    k: usize,
    n: usize,
    count: usize,
) -> FlopRate {
    let Some(mt) = arch.mt else {
        return FlopRate::ZERO;
    };
    let bank = ador_hw::MacTree::new(mt.size(), mt.lanes() * arch.cores);
    let timing = bank.matmul_timing(m, k, n, count);
    let ideal_flops = 2.0 * (m as f64) * (k as f64) * (n as f64) * (count as f64);
    FlopRate::new(ideal_flops / (timing.cycles / arch.frequency).get())
}

/// Rates of both fabrics on one shape.
pub fn fabric_rates(
    arch: &Architecture,
    m: usize,
    k: usize,
    n: usize,
    count: usize,
) -> FabricRates {
    FabricRates {
        sa: sa_effective_rate(arch, m, k, n, count),
        mt: mt_effective_rate(arch, m, k, n, count),
    }
}

/// The SIMT saturation model for fabrics we don't decompose (GPUs): GEMV
/// and small-batch GEMM cannot fill the wide SIMT machine, saturating as
/// `m / (m + 32)`.
pub fn simt_saturation(m: usize) -> f64 {
    m as f64 / (m as f64 + 32.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_baselines::{a100, ador_table3};
    fn a100_like() -> ador_hw::Architecture {
        a100()
    }
    use ador_model::Phase;

    #[test]
    fn fig8_decode_attention_goes_to_mac_tree() {
        let arch = ador_table3();
        let choice = choose_unit(&arch, Phase::decode(32, 1024), OpClass::Attention);
        assert_eq!(choice, UnitChoice::MacTree);
    }

    #[test]
    fn fig8_weight_matmuls_use_both_fabrics() {
        let arch = ador_table3();
        for phase in [Phase::decode(32, 1024), Phase::prefill(1, 1024)] {
            assert_eq!(
                choose_unit(&arch, phase, OpClass::WeightMatMul),
                UnitChoice::Both
            );
        }
    }

    #[test]
    fn override_archs_use_fabric_model() {
        let gpu = a100_like();
        assert_eq!(
            choose_unit(&gpu, Phase::decode(1, 1), OpClass::WeightMatMul),
            UnitChoice::Fabric
        );
        assert_eq!(
            choose_unit(&gpu, Phase::decode(1, 1), OpClass::Vector),
            UnitChoice::VectorUnit
        );
    }

    #[test]
    fn sa_rate_improves_with_batch() {
        let arch = ador_table3();
        let small = sa_effective_rate(&arch, 1, 4096, 4096, 1);
        let large = sa_effective_rate(&arch, 1024, 4096, 4096, 1);
        assert!(large.get() > 10.0 * small.get());
        // Large-batch GEMM approaches a healthy fraction of the 393-TFLOPS
        // SA peak.
        assert!(large.as_tflops() > 0.5 * arch.sa_peak_flops().as_tflops());
    }

    #[test]
    fn mt_rate_stays_high_on_gemv() {
        let arch = ador_table3();
        let rate = mt_effective_rate(&arch, 1, 4096, 4096, 1);
        assert!(rate.as_tflops() > 0.8 * arch.mt_peak_flops().as_tflops());
    }

    #[test]
    fn combined_rate_is_additive() {
        let arch = ador_table3();
        let rates = fabric_rates(&arch, 256, 4096, 4096, 1);
        assert!((rates.combined().get() - (rates.sa + rates.mt).get()).abs() < 1.0);
    }

    #[test]
    fn saturation_monotone() {
        assert!(simt_saturation(1) < simt_saturation(16));
        assert!(simt_saturation(16) < simt_saturation(1024));
        assert!(simt_saturation(100_000) < 1.0);
    }
}
