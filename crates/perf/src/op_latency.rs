//! Per-operator latency under the HDA scheduling policy.

use core::fmt;

use ador_hw::Architecture;
use ador_model::{OpClass, OpKind, Operator, Phase};
use ador_units::{FlopCount, FlopRate, Seconds};
use serde::{Deserialize, Serialize};

use crate::schedule::{self, UnitChoice};
use crate::Deployment;

/// What limited an operator's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundKind {
    /// DRAM streaming (weights or KV) governed.
    Memory,
    /// Compute-unit throughput governed.
    Compute,
    /// Fixed dispatch overhead governed (tiny ops).
    Overhead,
}

impl fmt::Display for BoundKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BoundKind::Memory => "memory-bound",
            BoundKind::Compute => "compute-bound",
            BoundKind::Overhead => "overhead-bound",
        };
        f.write_str(s)
    }
}

/// Latency decomposition of one operator on one device
/// (C-INTERMEDIATE — the Fig. 11 breakdowns read the components).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpLatency {
    /// Compute-side time (the governing fabric's busy window).
    pub compute: Seconds,
    /// Memory-side time (DRAM streaming for this op's traffic share).
    pub memory: Seconds,
    /// Fixed dispatch overhead.
    pub overhead: Seconds,
    /// Which side governed.
    pub bound: BoundKind,
    /// The unit the scheduler picked.
    pub unit: UnitChoice,
}

impl OpLatency {
    /// Wall-clock time: compute and memory overlap (double buffering /
    /// direct streaming), so the op costs their maximum plus dispatch.
    pub fn total(&self) -> Seconds {
        self.compute.max(self.memory) + self.overhead
    }
}

/// Computes the latency of `op` on `arch` for one step of `phase`.
///
/// `step_flops_per_device` is the whole step's per-device work — the
/// argument of the Fig. 10 effective-bandwidth law. `deployment` shards the
/// operator across tensor-parallel devices (weights and heads split; every
/// device processes the full token batch).
pub fn operator_latency(
    arch: &Architecture,
    op: &Operator,
    phase: Phase,
    deployment: Deployment,
    step_flops_per_device: FlopCount,
) -> OpLatency {
    let d = deployment.devices as f64;
    let profile = &arch.profile;
    let unit = schedule::choose_unit(arch, phase, op.class);

    // -- Memory side ------------------------------------------------------
    let weight_share = op.weight_bytes * (1.0 / d);
    let kv_share = op.kv_read_bytes * (1.0 / d) + op.kv_write_bytes * (1.0 / d);
    let weight_bw = profile
        .weight_stream
        .effective(arch.dram.bandwidth, step_flops_per_device);
    let attn_bw = profile
        .attention_stream
        .effective(arch.dram.bandwidth, step_flops_per_device);

    let memory = match op.class {
        OpClass::Attention => {
            // Prefill keeps the running chunk's KV in global memory
            // (paper §IV-B); it only spills to DRAM when the chunk exceeds
            // the global SRAM.
            if phase.is_prefill() && kv_share <= arch.global_mem {
                Seconds::ZERO
            } else {
                kv_share / attn_bw
            }
        }
        _ => {
            let wt = if weight_share.is_zero() {
                Seconds::ZERO
            } else {
                weight_share / weight_bw
            };
            let kt = if kv_share.is_zero() {
                Seconds::ZERO
            } else {
                kv_share / attn_bw
            };
            wt + kt
        }
    };

    // -- Compute side -----------------------------------------------------
    let compute = match &op.kind {
        OpKind::MatMul(shape) => {
            let flops = shape.flops() * (1.0 / d);
            let rate = matmul_rate(
                arch,
                unit,
                phase,
                shape.m,
                shape.k,
                shape.n,
                shape.count,
                deployment.devices,
            );
            if rate.is_zero() {
                Seconds::ZERO
            } else {
                flops / rate
            }
        }
        OpKind::Softmax { elements } => {
            vu_time(arch, arch.vu.softmax_cycles(per_device(*elements, d)))
        }
        OpKind::Norm { elements } => vu_time(arch, arch.vu.norm_cycles(per_device(*elements, d))),
        OpKind::Elementwise { elements } => {
            vu_time(arch, arch.vu.elementwise_cycles(per_device(*elements, d)))
        }
        OpKind::Gather { tokens, hidden } => vu_time(
            arch,
            arch.vu.elementwise_cycles(per_device(tokens * hidden, d)),
        ),
    };

    let overhead = profile.op_overhead;
    let bound = if compute.max(memory) < overhead {
        BoundKind::Overhead
    } else if memory >= compute {
        BoundKind::Memory
    } else {
        BoundKind::Compute
    };

    OpLatency {
        compute,
        memory,
        overhead,
        bound,
        unit,
    }
}

fn per_device(elements: u64, d: f64) -> u64 {
    ((elements as f64 / d).ceil() as u64).max(1)
}

fn vu_time(arch: &Architecture, per_core_equiv: ador_units::Cycles) -> Seconds {
    // The element count was already a device total; spread it over the
    // cores' vector units.
    let cycles = (per_core_equiv.get() as f64 / arch.cores as f64).ceil();
    Seconds::new(cycles / arch.frequency.as_hz())
}

/// Effective matmul rate for the chosen unit. Shapes are the *logical*
/// (whole-model) dimensions; tensor parallelism shards the output dimension
/// (weight ops) or the independent-GEMM count (attention heads), which this
/// resolves before asking the fabric models.
#[allow(clippy::too_many_arguments)] // one parameter per GEMM dimension
fn matmul_rate(
    arch: &Architecture,
    unit: UnitChoice,
    phase: Phase,
    m: usize,
    k: usize,
    n: usize,
    count: usize,
    devices: usize,
) -> FlopRate {
    // Shard across TP devices.
    let (n, count) = if count > 1 {
        (n, count.div_ceil(devices))
    } else {
        (n.div_ceil(devices).max(1), count)
    };
    let eff = arch.profile.gemm_efficiency;
    match unit {
        UnitChoice::Fabric => {
            let sat = schedule::simt_saturation(m);
            arch.peak_flops().derated(eff) * sat
        }
        UnitChoice::MacTree => schedule::mt_effective_rate(arch, m, k, n, count).derated(eff),
        UnitChoice::SystolicArray => schedule::sa_effective_rate(arch, m, k, n, count).derated(eff),
        UnitChoice::Both => {
            let rates = schedule::fabric_rates(arch, m, k, n, count);
            rates.combined().derated(eff)
        }
        UnitChoice::VectorUnit => {
            // A matmul should never be scheduled on the VU; treat as fabric
            // fallback so the model stays total.
            let _ = phase;
            arch.peak_flops().derated(eff)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_baselines::{a100, ador_table3, tpuv4};
    use ador_model::presets;

    fn weight_op(model: &ador_model::ModelConfig, phase: Phase) -> Operator {
        model
            .layer_operators(phase)
            .into_iter()
            .find(|o| o.name == ador_model::OpName::MlpUp)
            .unwrap()
    }

    fn attention_op(model: &ador_model::ModelConfig, phase: Phase) -> Operator {
        model
            .layer_operators(phase)
            .into_iter()
            .find(|o| o.name == ador_model::OpName::AttnScore)
            .unwrap()
    }

    const STEP: FlopCount = FlopCount::ZERO;

    fn big_step() -> FlopCount {
        FlopCount::new(1e12)
    }

    #[test]
    fn decode_weight_op_is_memory_bound_at_small_batch() {
        let model = presets::llama3_8b();
        let arch = ador_table3();
        let op = weight_op(&model, Phase::decode(1, 512));
        let lat = operator_latency(
            &arch,
            &op,
            Phase::decode(1, 512),
            Deployment::single_device(),
            big_step(),
        );
        assert_eq!(lat.bound, BoundKind::Memory);
        // 117 MB of fp16 weights at ≤1.8 TB/s effective: at least 65 µs.
        assert!(lat.total().as_micros() > 60.0, "{:?}", lat);
    }

    #[test]
    fn prefill_weight_op_is_compute_bound() {
        let model = presets::llama3_8b();
        let arch = ador_table3();
        let phase = Phase::prefill(1, 1024);
        let op = weight_op(&model, phase);
        let lat = operator_latency(&arch, &op, phase, Deployment::single_device(), big_step());
        assert_eq!(lat.bound, BoundKind::Compute);
    }

    #[test]
    fn prefill_attention_reads_kv_from_global_memory() {
        let model = presets::llama3_8b();
        let arch = ador_table3();
        let phase = Phase::prefill(1, 1024);
        let op = attention_op(&model, phase);
        let lat = operator_latency(&arch, &op, phase, Deployment::single_device(), big_step());
        assert_eq!(lat.memory, Seconds::ZERO, "chunk KV must stay on-chip");
    }

    #[test]
    fn decode_attention_streams_kv_from_dram() {
        let model = presets::llama3_8b();
        let arch = ador_table3();
        let phase = Phase::decode(32, 1024);
        let op = attention_op(&model, phase);
        let lat = operator_latency(&arch, &op, phase, Deployment::single_device(), big_step());
        assert!(lat.memory > Seconds::ZERO);
        assert_eq!(lat.unit, UnitChoice::MacTree);
    }

    #[test]
    fn gpu_pays_kernel_launch_overhead() {
        let model = presets::llama3_8b();
        let phase = Phase::decode(1, 128);
        let op = weight_op(&model, phase);
        let gpu = operator_latency(&a100(), &op, phase, Deployment::single_device(), STEP);
        let npu = operator_latency(
            &ador_table3(),
            &op,
            phase,
            Deployment::single_device(),
            STEP,
        );
        assert!(gpu.overhead > npu.overhead);
    }

    #[test]
    fn tensor_parallelism_shrinks_op_time() {
        let model = presets::llama3_70b();
        let arch = ador_table3();
        let phase = Phase::decode(16, 1024);
        let op = weight_op(&model, phase);
        let one = operator_latency(&arch, &op, phase, Deployment::single_device(), big_step());
        let eight = operator_latency(
            &arch,
            &op,
            phase,
            Deployment::tensor_parallel(8),
            big_step(),
        );
        let ratio = one.total().get() / eight.total().get();
        assert!(ratio > 5.0, "TP-8 should cut the op ~8x, got {ratio:.2}");
    }

    #[test]
    fn tpu_decode_gemv_underutilizes() {
        // TPUv4's big systolic arrays crawl on GEMV (Table II); the op ends
        // up memory-bound but with dismal compute-side utilization as well.
        let model = presets::llama3_8b();
        let phase = Phase::decode(1, 128);
        let op = weight_op(&model, phase);
        let tpu = operator_latency(&tpuv4(), &op, phase, Deployment::single_device(), STEP);
        let ador = operator_latency(
            &ador_table3(),
            &op,
            phase,
            Deployment::single_device(),
            STEP,
        );
        assert!(tpu.total() > ador.total());
    }

    #[test]
    fn vector_ops_are_cheap() {
        let model = presets::llama3_8b();
        let phase = Phase::decode(32, 1024);
        let op = model
            .layer_operators(phase)
            .into_iter()
            .find(|o| o.name == ador_model::OpName::AttnNorm)
            .unwrap();
        let lat = operator_latency(
            &ador_table3(),
            &op,
            phase,
            Deployment::single_device(),
            STEP,
        );
        assert!(lat.total().as_micros() < 10.0);
    }
}
