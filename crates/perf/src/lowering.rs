//! Lowering: model + phase → instruction [`Program`] (the "model mapper"
//! and "instruction generator" boxes of Fig. 14a).

use ador_hw::Architecture;
use ador_model::workload::StepSummary;
use ador_model::{graph, ModelConfig, OpKind, Operator, Phase};
use ador_units::{Bytes, Seconds};

use crate::isa::{Bundle, Instruction, Program};
use crate::op_latency::operator_latency;
use crate::schedule;
use crate::Deployment;

/// Lowers one inference step of `model` under `phase` into a per-device
/// instruction program for `arch`.
///
/// The decoder stack becomes one bundle per operator with
/// `repeat = model.layers`; the embedding/final-norm/LM-head run once; TP
/// deployments get an explicit `SyncDevices` bundle per layer.
///
/// # Examples
///
/// ```
/// use ador_perf::{lower, Deployment};
/// use ador_model::{presets, Phase};
///
/// let program = lower(
///     &ador_baselines::ador_table3(),
///     &presets::llama3_8b(),
///     Phase::decode(32, 1024),
///     Deployment::single_device(),
/// );
/// assert!(program.dynamic_instruction_count() > 500);
/// ```
pub fn lower(
    arch: &Architecture,
    model: &ModelConfig,
    phase: Phase,
    deployment: Deployment,
) -> Program {
    let mut program = Program::new();

    for op in &graph::layer_operators(model, phase) {
        program.push(lower_op(arch, op, phase, deployment, model.layers));
    }
    if deployment.devices > 1 {
        // The instruction generator schedules communication to pipeline
        // behind compute (Fig. 6d); only the *exposed* remainder is emitted
        // as an explicit sync stall, mirroring the analytical model.
        let msg = Bytes::new((phase.rows() * model.hidden) as u64 * model.dtype.bytes());
        let cost = deployment.strategy.block_cost(deployment.devices, msg);
        let wire = cost.wire_time(deployment.link.bandwidth());
        let window = layer_busy_time(arch, model, phase, deployment) / 2.0;
        let tp = deployment.tensor_parallel_plan();
        let exposed = tp.overlap().exposed(window, wire);
        let exposed_bytes = deployment.link.bandwidth() * exposed;
        program.push(Bundle {
            label: "tp_sync".to_string(),
            bucket: "Others",
            instrs: vec![
                Instruction::SyncDevices {
                    bytes: exposed_bytes,
                    points: cost.sync_points
                };
                2
            ],
            repeat: model.layers,
        });
    }
    for op in &graph::once_operators(model, phase) {
        program.push(lower_op(arch, op, phase, deployment, 1));
    }
    program
}

/// One decoder layer's busy time — the overlap window available per block
/// pair (same quantity the analytical path uses).
fn layer_busy_time(
    arch: &Architecture,
    model: &ModelConfig,
    phase: Phase,
    deployment: Deployment,
) -> Seconds {
    let step_flops = StepSummary::compute(model, phase).flops * (1.0 / deployment.devices as f64);
    graph::layer_operators(model, phase)
        .iter()
        .map(|op| operator_latency(arch, op, phase, deployment, step_flops).total())
        .sum()
}

fn lower_op(
    arch: &Architecture,
    op: &Operator,
    phase: Phase,
    deployment: Deployment,
    repeat: usize,
) -> Bundle {
    let d = deployment.devices;
    let df = d as f64;
    let mut instrs = Vec::with_capacity(4);

    if !op.weight_bytes.is_zero() {
        instrs.push(Instruction::StreamWeights {
            bytes: op.weight_bytes * (1.0 / df),
        });
    }
    if !op.kv_read_bytes.is_zero() {
        let share = op.kv_read_bytes * (1.0 / df);
        let on_chip = phase.is_prefill() && share <= arch.global_mem;
        instrs.push(Instruction::ReadKv {
            bytes: share,
            on_chip,
        });
    }
    if !op.kv_write_bytes.is_zero() {
        instrs.push(Instruction::WriteKv {
            bytes: op.kv_write_bytes * (1.0 / df),
        });
    }

    match &op.kind {
        OpKind::MatMul(shape) => {
            let unit = schedule::choose_unit(arch, phase, op.class);
            let (n, count) = if shape.count > 1 {
                (shape.n, shape.count.div_ceil(d))
            } else {
                (shape.n.div_ceil(d).max(1), shape.count)
            };
            instrs.push(Instruction::MatMul {
                unit,
                m: shape.m,
                k: shape.k,
                n,
                count,
            });
        }
        OpKind::Softmax { elements } => {
            instrs.push(Instruction::Vector {
                passes: 5,
                elements: elements.div_ceil(d as u64),
            });
        }
        OpKind::Norm { elements } => {
            instrs.push(Instruction::Vector {
                passes: 4,
                elements: elements.div_ceil(d as u64),
            });
        }
        OpKind::Elementwise { elements } => {
            instrs.push(Instruction::Vector {
                passes: 1,
                elements: elements.div_ceil(d as u64),
            });
        }
        OpKind::Gather { tokens, hidden } => {
            instrs.push(Instruction::Vector {
                passes: 1,
                elements: (tokens * hidden).div_ceil(d as u64),
            });
        }
    }

    Bundle {
        label: op.name.to_string(),
        bucket: op.name.breakdown_bucket(),
        instrs,
        repeat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CycleExecutor, Evaluator};
    use ador_baselines::{a100, ador_table3};
    use ador_model::presets;
    use ador_model::workload::StepSummary;

    fn cross_validate(arch: &Architecture, phase: Phase, deployment: Deployment, tol: f64) {
        let model = presets::llama3_8b();
        let program = lower(arch, &model, phase, deployment);
        let step_flops =
            StepSummary::compute(&model, phase).flops * (1.0 / deployment.devices as f64);
        let exec = CycleExecutor::new(arch, deployment, phase, step_flops).run(&program);
        let analytical = Evaluator::new(arch, &model, deployment)
            .unwrap()
            .step(phase)
            .unwrap();
        let rel = (exec.total.get() - analytical.total.get()).abs() / analytical.total.get();
        assert!(
            rel < tol,
            "{} {phase}: executor {} vs analytical {} (rel {rel:.3})",
            arch.name,
            exec.total,
            analytical.total
        );
    }

    #[test]
    fn executor_matches_analytical_decode() {
        cross_validate(
            &ador_table3(),
            Phase::decode(32, 1024),
            Deployment::single_device(),
            0.02,
        );
    }

    #[test]
    fn executor_matches_analytical_prefill() {
        cross_validate(
            &ador_table3(),
            Phase::prefill(2, 1024),
            Deployment::single_device(),
            0.02,
        );
    }

    #[test]
    fn executor_matches_analytical_on_gpu() {
        cross_validate(
            &a100(),
            Phase::decode(64, 2048),
            Deployment::single_device(),
            0.02,
        );
    }

    #[test]
    fn tp_lowering_emits_sync_bundles() {
        let model = presets::llama3_70b();
        let program = lower(
            &ador_table3(),
            &model,
            Phase::decode(16, 512),
            Deployment::tensor_parallel(8),
        );
        assert!(program.bundles().iter().any(|b| b.label == "tp_sync"));
    }

    #[test]
    fn decode_program_reads_kv_from_dram() {
        let model = presets::llama3_8b();
        let program = lower(
            &ador_table3(),
            &model,
            Phase::decode(8, 512),
            Deployment::single_device(),
        );
        let has_dram_kv = program
            .bundles()
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instruction::ReadKv { on_chip: false, .. }));
        assert!(has_dram_kv);
    }
}
