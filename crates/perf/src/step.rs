//! Whole-step latency: the quantity behind TTFT, TBT and every Fig. 11/15
//! series.

use ador_hw::Architecture;
use ador_model::workload::StepSummary;
use ador_model::{graph, ModelConfig, Phase};
use ador_units::{Bytes, FlopCount, Seconds, Utilization};
use serde::Serialize;

use crate::op_latency::{operator_latency, OpLatency};
use crate::{Deployment, PerfError};

/// Latency of one inference step (a full prefill pass or one decode step),
/// with the per-bucket breakdown the paper plots in Fig. 11.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StepLatency {
    /// Wall-clock step time (operators + exposed synchronization).
    pub total: Seconds,
    /// Sum of operator times.
    pub ops_time: Seconds,
    /// Exposed tensor-parallel communication (wire + barriers).
    pub sync_time: Seconds,
    /// Sum of the operators' memory-side components (per device).
    pub memory_time: Seconds,
    /// Per-device floating-point work.
    pub flops_per_device: FlopCount,
    /// Per-device DRAM traffic.
    pub dram_bytes_per_device: Bytes,
    /// Time per Fig. 11 breakdown bucket ("QKV Proj", "MHA", "Out Proj",
    /// "MLP1", "MLP2", "LM-Head", "Embed", "Others"), insertion-ordered.
    buckets: Vec<(&'static str, Seconds)>,
}

impl StepLatency {
    /// Time spent in one breakdown bucket (zero if absent).
    pub fn bucket(&self, name: &str) -> Seconds {
        self.buckets
            .iter()
            .find(|(b, _)| *b == name)
            .map(|(_, t)| *t)
            .unwrap_or(Seconds::ZERO)
    }

    /// All buckets in insertion order.
    pub fn buckets(&self) -> &[(&'static str, Seconds)] {
        &self.buckets
    }

    /// Achieved DRAM utilization over the step.
    pub fn dram_utilization(&self, spec: ador_units::Bandwidth) -> Utilization {
        let ideal = Seconds::new(self.dram_bytes_per_device.get() as f64 / spec.as_bytes_per_sec());
        Utilization::new_clamped(ideal.get() / self.total.get())
    }

    /// Achieved fraction of `peak` compute over the step.
    pub fn compute_utilization(&self, peak: ador_units::FlopRate) -> Utilization {
        Utilization::new_clamped(self.flops_per_device.get() / (peak.get() * self.total.get()))
    }

    fn add_bucket(&mut self, name: &'static str, t: Seconds) {
        match self.buckets.iter_mut().find(|(b, _)| *b == name) {
            Some((_, acc)) => *acc += t,
            None => self.buckets.push((name, t)),
        }
    }
}

/// Evaluates a (model, architecture, deployment) triple across phases.
///
/// # Examples
///
/// ```
/// use ador_perf::{Deployment, Evaluator};
/// use ador_model::{presets, Phase};
///
/// let model = presets::llama3_8b();
/// let arch = ador_baselines::ador_table3();
/// let eval = Evaluator::new(&arch, &model, Deployment::single_device())?;
/// let tbt = eval.decode_interval(64, 1024)?;
/// assert!(tbt.as_millis() > 5.0 && tbt.as_millis() < 60.0);
/// # Ok::<(), ador_perf::PerfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    arch: &'a Architecture,
    model: &'a ModelConfig,
    deployment: Deployment,
}

impl<'a> Evaluator<'a> {
    /// Binds an architecture, model and deployment.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InvalidArchitecture`] if the architecture fails
    /// validation, or [`PerfError::ModelTooLarge`] if the per-device weight
    /// shard exceeds device memory.
    pub fn new(
        arch: &'a Architecture,
        model: &'a ModelConfig,
        deployment: Deployment,
    ) -> Result<Self, PerfError> {
        arch.validate().map_err(PerfError::InvalidArchitecture)?;
        let shard = model.weight_bytes() * (1.0 / deployment.devices as f64);
        if shard > arch.dram.capacity {
            return Err(PerfError::ModelTooLarge {
                model: model.name.clone(),
                needed: shard,
                capacity: arch.dram.capacity,
                devices: deployment.devices,
            });
        }
        Ok(Self {
            arch,
            model,
            deployment,
        })
    }

    /// The bound architecture.
    pub fn architecture(&self) -> &Architecture {
        self.arch
    }

    /// The bound model.
    pub fn model(&self) -> &ModelConfig {
        self.model
    }

    /// The bound deployment.
    pub fn deployment(&self) -> Deployment {
        self.deployment
    }

    /// Latency of one step of `phase`.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::KvCacheTooLarge`] if the phase's KV cache does
    /// not fit next to the weight shard.
    pub fn step(&self, phase: Phase) -> Result<StepLatency, PerfError> {
        self.check_kv(phase)?;
        let d = self.deployment.devices as f64;
        let summary = StepSummary::compute(self.model, phase);
        let step_flops = summary.flops * (1.0 / d);

        let mut out = StepLatency {
            total: Seconds::ZERO,
            ops_time: Seconds::ZERO,
            sync_time: Seconds::ZERO,
            memory_time: Seconds::ZERO,
            flops_per_device: step_flops,
            dram_bytes_per_device: summary.dram_bytes() * (1.0 / d),
            buckets: Vec::new(),
        };

        let layer_ops = graph::layer_operators(self.model, phase);
        let mut layer_time = Seconds::ZERO;
        for op in &layer_ops {
            let lat = self.op(op, phase, step_flops);
            layer_time += lat.total();
            out.memory_time += lat.memory * self.model.layers as f64;
            out.add_bucket(
                op.name.breakdown_bucket(),
                lat.total() * self.model.layers as f64,
            );
        }

        let mut once_time = Seconds::ZERO;
        for op in &graph::once_operators(self.model, phase) {
            let lat = self.op(op, phase, step_flops);
            once_time += lat.total();
            out.memory_time += lat.memory;
            out.add_bucket(op.name.breakdown_bucket(), lat.total());
        }

        out.ops_time = layer_time * self.model.layers as f64 + once_time;
        out.sync_time = self.layer_sync_time(phase, layer_time) * self.model.layers as f64;
        out.total = out.ops_time + out.sync_time;
        Ok(out)
    }

    /// Exposed TP synchronization per layer: two Megatron-fusable blocks
    /// (attention, MLP), each syncing the layer's activations.
    fn layer_sync_time(&self, phase: Phase, layer_time: Seconds) -> Seconds {
        if self.deployment.devices == 1 {
            return Seconds::ZERO;
        }
        let msg = Bytes::new((phase.rows() * self.model.hidden) as u64 * self.model.dtype.bytes());
        let tp = self.deployment.tensor_parallel_plan();
        let overlap = tp.overlap();
        let cost = self
            .deployment
            .strategy
            .block_cost(self.deployment.devices, msg);
        let wire = cost.wire_time(self.deployment.link.bandwidth());
        let barriers = self.deployment.link.latency() * cost.sync_points as f64;
        let per_block_window = layer_time / 2.0;
        (overlap.exposed(per_block_window, wire) + barriers) * 2.0
    }

    fn op(&self, op: &ador_model::Operator, phase: Phase, step_flops: FlopCount) -> OpLatency {
        operator_latency(self.arch, op, phase, self.deployment, step_flops)
    }

    fn check_kv(&self, phase: Phase) -> Result<(), PerfError> {
        let d = self.deployment.devices as f64;
        let kv = self
            .model
            .kv_cache_bytes(phase.batch(), self.context_len(phase))
            * (1.0 / d);
        let weights = self.model.weight_bytes() * (1.0 / d);
        let available = self.arch.dram.capacity.saturating_sub(weights);
        if kv > available {
            return Err(PerfError::KvCacheTooLarge { kv, available });
        }
        Ok(())
    }

    fn context_len(&self, phase: Phase) -> usize {
        match phase {
            Phase::Prefill { prompt_len, .. } => prompt_len,
            Phase::Decode { context_len, .. } => context_len,
        }
    }

    /// Time-to-first-token: the prefill pass for `batch` prompts of
    /// `prompt_len` tokens.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::step`] errors.
    pub fn ttft(&self, batch: usize, prompt_len: usize) -> Result<Seconds, PerfError> {
        Ok(self.step(Phase::prefill(batch, prompt_len))?.total)
    }

    /// Time-between-tokens: one decode step at the given batch and context.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::step`] errors.
    pub fn decode_interval(&self, batch: usize, context_len: usize) -> Result<Seconds, PerfError> {
        Ok(self.step(Phase::decode(batch, context_len))?.total)
    }

    /// Aggregate decode throughput in tokens/s across the whole batch.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::step`] errors.
    pub fn decode_throughput(
        &self,
        batch: usize,
        context_len: usize,
    ) -> Result<ador_units::TokensPerSecond, PerfError> {
        let interval = self.decode_interval(batch, context_len)?;
        Ok(ador_units::TokensPerSecond::new(
            batch as f64 / interval.get(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_baselines::{a100, ador_table3, llmcompass_l, llmcompass_t};
    use ador_model::presets;

    fn tbt_tok_per_s(arch: &Architecture, batch: usize) -> f64 {
        let model = presets::llama3_8b();
        let eval = Evaluator::new(arch, &model, Deployment::single_device()).unwrap();
        1.0 / eval.decode_interval(batch, 1024).unwrap().get()
    }

    #[test]
    fn fig15a_tbt_ordering_at_high_batch() {
        // Paper Fig. 15a at batch 150: ADOR best, then LLMCompass-L, then
        // A100 and LLMCompass-T trailing.
        let ador = tbt_tok_per_s(&ador_table3(), 150);
        let l = tbt_tok_per_s(&llmcompass_l(), 150);
        let a = tbt_tok_per_s(&a100(), 150);
        let t = tbt_tok_per_s(&llmcompass_t(), 150);
        assert!(ador > l, "ador {ador:.1} vs L {l:.1}");
        assert!(l > a, "L {l:.1} vs A100 {a:.1}");
        assert!(ador > t, "ador {ador:.1} vs T {t:.1}");
    }

    #[test]
    fn fig15a_ador_beats_a100_tbt_with_growing_gap() {
        let gap16 = tbt_tok_per_s(&ador_table3(), 16) / tbt_tok_per_s(&a100(), 16);
        let gap150 = tbt_tok_per_s(&ador_table3(), 150) / tbt_tok_per_s(&a100(), 150);
        assert!(
            gap150 > gap16,
            "gap should grow with batch: {gap16:.2} -> {gap150:.2}"
        );
        // Paper reports 2.36x at batch 150; accept the right regime.
        assert!((1.5..3.5).contains(&gap150), "{gap150:.2}");
    }

    #[test]
    fn fig15a_ttft_ordering() {
        // LLMCompass-T (786 TFLOPS) prefills fastest; LLMCompass-L
        // (196 TFLOPS) slowest; ADOR beats the A100 by ~1.9x.
        let model = presets::llama3_8b();
        let ttft = |arch: &Architecture| {
            Evaluator::new(arch, &model, Deployment::single_device())
                .unwrap()
                .ttft(1, 1024)
                .unwrap()
        };
        let a = ttft(&a100());
        let ador = ttft(&ador_table3());
        let l = ttft(&llmcompass_l());
        let t = ttft(&llmcompass_t());
        assert!(
            t < ador && ador < a && a < l,
            "t {t} ador {ador} a {a} l {l}"
        );
        let ratio = a.get() / ador.get();
        assert!(
            (1.4..2.6).contains(&ratio),
            "paper reports ~1.93x, got {ratio:.2}"
        );
    }

    #[test]
    fn decode_breakdown_is_attention_heavy_at_long_context() {
        let model = presets::llama3_8b();
        let arch = ador_table3();
        let eval = Evaluator::new(&arch, &model, Deployment::single_device()).unwrap();
        let step = eval.step(Phase::decode(64, 8192)).unwrap();
        let mha = step.bucket("MHA");
        assert!(mha > step.bucket("MLP1") + step.bucket("MLP2"));
    }

    #[test]
    fn buckets_sum_to_ops_time() {
        let model = presets::llama3_8b();
        let arch = ador_table3();
        let eval = Evaluator::new(&arch, &model, Deployment::single_device()).unwrap();
        let step = eval.step(Phase::decode(32, 1024)).unwrap();
        let sum: Seconds = step.buckets().iter().map(|(_, t)| *t).sum();
        assert!((sum.get() - step.ops_time.get()).abs() < 1e-9 * step.ops_time.get().max(1.0));
    }

    #[test]
    fn model_too_large_detected() {
        let model = presets::llama3_70b(); // ~141 GB of fp16 weights
        let arch = ador_table3(); // 80 GiB
        let err = Evaluator::new(&arch, &model, Deployment::single_device()).unwrap_err();
        assert!(matches!(err, PerfError::ModelTooLarge { .. }));
        // Eight devices fit it (Fig. 15b).
        assert!(Evaluator::new(&arch, &model, Deployment::tensor_parallel(8)).is_ok());
    }

    #[test]
    fn kv_cache_overflow_detected() {
        let model = presets::llama3_8b();
        let arch = ador_table3();
        let eval = Evaluator::new(&arch, &model, Deployment::single_device()).unwrap();
        // 4096 requests x 8192 tokens of KV ≈ 4 TB: cannot fit.
        let err = eval.step(Phase::decode(4096, 8192)).unwrap_err();
        assert!(matches!(err, PerfError::KvCacheTooLarge { .. }));
    }

    #[test]
    fn fig15b_70b_on_8_devices() {
        let model = presets::llama3_70b();
        let arch = ador_table3();
        let a100 = a100();
        let mk = |arch| Evaluator::new(arch, &model, Deployment::tensor_parallel(8)).unwrap();
        let ador_tbt = mk(&arch).decode_interval(150, 1024).unwrap();
        let a100_tbt = mk(&a100).decode_interval(150, 1024).unwrap();
        let gap = a100_tbt.get() / ador_tbt.get();
        // Paper reports 2.51x better TBT at batch 150; our identical-link
        // sync model dilutes both sides, so we assert the structural win.
        assert!(gap > 1.4, "{gap:.2}");
    }

    #[test]
    fn decode_throughput_grows_with_batch() {
        let model = presets::llama3_8b();
        let arch = ador_table3();
        let eval = Evaluator::new(&arch, &model, Deployment::single_device()).unwrap();
        let t16 = eval.decode_throughput(16, 1024).unwrap();
        let t128 = eval.decode_throughput(128, 1024).unwrap();
        assert!(t128 > t16);
    }

    #[test]
    fn dram_utilization_reported_in_range() {
        let model = presets::llama3_8b();
        let arch = ador_table3();
        let eval = Evaluator::new(&arch, &model, Deployment::single_device()).unwrap();
        let step = eval.step(Phase::decode(16, 1024)).unwrap();
        let util = step.dram_utilization(arch.dram.bandwidth);
        assert!(util.get() > 0.3 && util.get() <= 0.95, "{util}");
    }
}
