//! A compact instruction IR and cycle-approximate executor — the "compiler
//! stack" of the ADOR simulator (paper Fig. 14a: model mapper → instruction
//! generator → instruction binary → simulator).
//!
//! [`crate::lower`] translates a model + phase into a [`Program`] of
//! per-operator [`Bundle`]s; [`CycleExecutor`] replays the program against
//! an architecture and reports where the time goes. The executor shares the
//! unit models with the analytical path, so its total cross-validates
//! [`crate::Evaluator::step`].

use core::fmt;

use ador_hw::Architecture;
use ador_model::Phase;
use ador_units::{Bytes, FlopCount, Seconds};
use serde::{Deserialize, Serialize};

use crate::schedule::UnitChoice;
use crate::Deployment;

/// One machine-level step of a bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Stream weight bytes from DRAM (shared across the batch).
    StreamWeights {
        /// Bytes to stream (per device).
        bytes: Bytes,
    },
    /// Read KV-cache bytes.
    ReadKv {
        /// Bytes to read (per device).
        bytes: Bytes,
        /// `true` if the data sits in on-chip global memory (prefill chunk).
        on_chip: bool,
    },
    /// Append KV-cache bytes.
    WriteKv {
        /// Bytes to append (per device).
        bytes: Bytes,
    },
    /// A matrix multiplication on the chosen unit.
    MatMul {
        /// Scheduled unit.
        unit: UnitChoice,
        /// Rows.
        m: usize,
        /// Contraction.
        k: usize,
        /// Columns (per device).
        n: usize,
        /// Independent products (per device).
        count: usize,
    },
    /// Vector-unit work.
    Vector {
        /// Number of element passes (1 = elementwise, 4 = norm, 5 = softmax).
        passes: u8,
        /// Elements per pass (per device).
        elements: u64,
    },
    /// Core-level all-gather on the ring NoC.
    SyncCores {
        /// Bytes gathered.
        bytes: Bytes,
    },
    /// Device-level synchronization over P2P.
    SyncDevices {
        /// Wire bytes per device.
        bytes: Bytes,
        /// Serialized barrier count.
        points: usize,
    },
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::StreamWeights { bytes } => write!(f, "stream.w {bytes}"),
            Instruction::ReadKv { bytes, on_chip } => {
                write!(
                    f,
                    "read.kv {bytes}{}",
                    if *on_chip { " (on-chip)" } else { "" }
                )
            }
            Instruction::WriteKv { bytes } => write!(f, "write.kv {bytes}"),
            Instruction::MatMul {
                unit,
                m,
                k,
                n,
                count,
            } => {
                write!(f, "matmul.{unit:?} {count}x[{m}x{k}]x[{k}x{n}]")
            }
            Instruction::Vector { passes, elements } => write!(f, "vec x{passes} {elements}"),
            Instruction::SyncCores { bytes } => write!(f, "sync.cores {bytes}"),
            Instruction::SyncDevices { bytes, points } => {
                write!(f, "sync.devices {bytes} ({points} barriers)")
            }
        }
    }
}

/// A labelled group of instructions that execute as one overlapped unit
/// (memory streams hide under compute within a bundle).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Bundle {
    /// Human-readable label (operator name).
    pub label: String,
    /// Breakdown bucket for reporting.
    pub bucket: &'static str,
    /// The instructions.
    pub instrs: Vec<Instruction>,
    /// Times this bundle repeats back-to-back (decoder layers).
    pub repeat: usize,
}

/// A lowered program: the "instruction binary" of Fig. 14a.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct Program {
    bundles: Vec<Bundle>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a bundle.
    pub fn push(&mut self, bundle: Bundle) {
        self.bundles.push(bundle);
    }

    /// The bundles in execution order.
    pub fn bundles(&self) -> &[Bundle] {
        &self.bundles
    }

    /// Total dynamic instruction count (bundles × repeats).
    pub fn dynamic_instruction_count(&self) -> usize {
        self.bundles.iter().map(|b| b.instrs.len() * b.repeat).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bundles {
            writeln!(f, "{} (x{}):", b.label, b.repeat)?;
            for i in &b.instrs {
                writeln!(f, "  {i}")?;
            }
        }
        Ok(())
    }
}

/// Result of replaying a [`Program`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Total wall-clock time.
    pub total: Seconds,
    /// Time spent memory-bound.
    pub memory_bound: Seconds,
    /// Time spent compute-bound.
    pub compute_bound: Seconds,
    /// Time spent in synchronization bundles.
    pub sync: Seconds,
    /// Dynamic instructions executed.
    pub instructions: usize,
}

/// Replays programs against an architecture with the same unit models the
/// analytical path uses.
#[derive(Debug, Clone)]
pub struct CycleExecutor<'a> {
    arch: &'a Architecture,
    deployment: Deployment,
    phase: Phase,
    step_flops: FlopCount,
}

impl<'a> CycleExecutor<'a> {
    /// Creates an executor for one step of `phase`. `step_flops` is the
    /// per-device work of the whole step (drives the Fig. 10 law).
    pub fn new(
        arch: &'a Architecture,
        deployment: Deployment,
        phase: Phase,
        step_flops: FlopCount,
    ) -> Self {
        Self {
            arch,
            deployment,
            phase,
            step_flops,
        }
    }

    /// Replays `program` and reports timing.
    pub fn run(&self, program: &Program) -> ExecutionReport {
        let mut report = ExecutionReport {
            total: Seconds::ZERO,
            memory_bound: Seconds::ZERO,
            compute_bound: Seconds::ZERO,
            sync: Seconds::ZERO,
            instructions: program.dynamic_instruction_count(),
        };
        for bundle in program.bundles() {
            let (mem, compute, sync) = self.bundle_times(bundle);
            let busy = mem.max(compute) + self.arch.profile.op_overhead;
            let t = (busy + sync) * bundle.repeat as f64;
            report.total += t;
            report.sync += sync * bundle.repeat as f64;
            if mem >= compute {
                report.memory_bound += (busy - compute.min(busy)) * bundle.repeat as f64;
                report.compute_bound += compute * bundle.repeat as f64;
            } else {
                report.compute_bound += (busy - mem.min(busy)) * bundle.repeat as f64;
                report.memory_bound += mem * bundle.repeat as f64;
            }
        }
        report
    }

    fn bundle_times(&self, bundle: &Bundle) -> (Seconds, Seconds, Seconds) {
        let profile = &self.arch.profile;
        let mut mem = Seconds::ZERO;
        let mut compute = Seconds::ZERO;
        let mut sync = Seconds::ZERO;
        for instr in &bundle.instrs {
            match instr {
                Instruction::StreamWeights { bytes } => {
                    let bw = profile
                        .weight_stream
                        .effective(self.arch.dram.bandwidth, self.step_flops);
                    mem += *bytes / bw;
                }
                Instruction::ReadKv { bytes, on_chip } => {
                    if !on_chip {
                        let bw = profile
                            .attention_stream
                            .effective(self.arch.dram.bandwidth, self.step_flops);
                        mem += *bytes / bw;
                    }
                }
                Instruction::WriteKv { bytes } => {
                    let bw = profile
                        .attention_stream
                        .effective(self.arch.dram.bandwidth, self.step_flops);
                    mem += *bytes / bw;
                }
                Instruction::MatMul {
                    unit,
                    m,
                    k,
                    n,
                    count,
                } => {
                    let flops = FlopCount::from_macs((*m * *k * *n * *count) as u64);
                    let rate = match unit {
                        UnitChoice::Fabric | UnitChoice::VectorUnit => {
                            self.arch.peak_flops().derated(profile.gemm_efficiency)
                                * crate::schedule::simt_saturation(*m)
                        }
                        UnitChoice::MacTree => {
                            crate::schedule::mt_effective_rate(self.arch, *m, *k, *n, *count)
                                .derated(profile.gemm_efficiency)
                        }
                        UnitChoice::SystolicArray => {
                            crate::schedule::sa_effective_rate(self.arch, *m, *k, *n, *count)
                                .derated(profile.gemm_efficiency)
                        }
                        UnitChoice::Both => {
                            crate::schedule::fabric_rates(self.arch, *m, *k, *n, *count)
                                .combined()
                                .derated(profile.gemm_efficiency)
                        }
                    };
                    if !rate.is_zero() {
                        compute += flops / rate;
                    }
                }
                Instruction::Vector { passes, elements } => {
                    let cycles = self.arch.vu.elementwise_cycles(*elements * *passes as u64);
                    let spread = (cycles.get() as f64 / self.arch.cores as f64).ceil();
                    compute += Seconds::new(spread / self.arch.frequency.as_hz());
                }
                Instruction::SyncCores { bytes } => {
                    let ring = ador_noc::RingNoc::new(self.arch.cores, self.arch.noc_bandwidth);
                    sync += ring.all_gather_time(*bytes);
                }
                Instruction::SyncDevices { bytes, points } => {
                    sync += *bytes / self.deployment.link.bandwidth()
                        + self.deployment.link.latency() * *points as f64;
                }
            }
        }
        let _ = self.phase;
        (mem, compute, sync)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_accumulates_bundles() {
        let mut p = Program::new();
        p.push(Bundle {
            label: "qkv".into(),
            bucket: "QKV Proj",
            instrs: vec![Instruction::StreamWeights {
                bytes: Bytes::from_mib(1),
            }],
            repeat: 32,
        });
        assert_eq!(p.bundles().len(), 1);
        assert_eq!(p.dynamic_instruction_count(), 32);
    }

    #[test]
    fn display_renders_assembly() {
        let mut p = Program::new();
        p.push(Bundle {
            label: "attn".into(),
            bucket: "MHA",
            instrs: vec![
                Instruction::ReadKv {
                    bytes: Bytes::from_mib(4),
                    on_chip: false,
                },
                Instruction::MatMul {
                    unit: UnitChoice::MacTree,
                    m: 1,
                    k: 128,
                    n: 1024,
                    count: 32,
                },
            ],
            repeat: 1,
        });
        let s = format!("{p}");
        assert!(s.contains("read.kv"), "{s}");
        assert!(s.contains("matmul.MacTree"), "{s}");
    }
}
