//! Multi-device deployment description.

use core::fmt;

use ador_noc::{P2pLink, SyncStrategy};
use ador_parallel::TensorParallel;
use serde::{Deserialize, Serialize};

/// How a model is spread across devices for one evaluation: tensor-parallel
/// width, sync strategy and the P2P link joining the devices.
///
/// # Examples
///
/// ```
/// use ador_perf::Deployment;
///
/// let single = Deployment::single_device();
/// assert_eq!(single.devices, 1);
///
/// let eight = Deployment::tensor_parallel(8); // Fig. 15b's 70B setup
/// assert_eq!(eight.devices, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// Tensor-parallel width.
    pub devices: usize,
    /// Synchronization strategy between dependent GEMMs.
    pub strategy: SyncStrategy,
    /// Inter-device link.
    pub link: P2pLink,
}

impl Deployment {
    /// One device, no synchronization.
    pub fn single_device() -> Self {
        Self {
            devices: 1,
            strategy: SyncStrategy::AllGather,
            link: P2pLink::pcie5_x16(),
        }
    }

    /// `devices`-way tensor parallelism with the paper's recommended
    /// strategy (Megatron ≤2, all-gather ≥4) over PCIe-5 ×16.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn tensor_parallel(devices: usize) -> Self {
        let tp = TensorParallel::recommended(devices);
        Self {
            devices,
            strategy: tp.strategy,
            link: P2pLink::pcie5_x16(),
        }
    }

    /// Replaces the P2P link.
    pub fn with_link(mut self, link: P2pLink) -> Self {
        self.link = link;
        self
    }

    /// Replaces the sync strategy.
    pub fn with_strategy(mut self, strategy: SyncStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The equivalent [`TensorParallel`] plan.
    pub fn tensor_parallel_plan(&self) -> TensorParallel {
        TensorParallel::new(self.devices, self.strategy)
    }
}

impl Default for Deployment {
    fn default() -> Self {
        Self::single_device()
    }
}

impl fmt::Display for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} device(s), {}, {}",
            self.devices, self.strategy, self.link
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_strategy_applied() {
        assert_eq!(
            Deployment::tensor_parallel(2).strategy,
            SyncStrategy::Megatron
        );
        assert_eq!(
            Deployment::tensor_parallel(8).strategy,
            SyncStrategy::AllGather
        );
    }

    #[test]
    fn default_is_single_device() {
        assert_eq!(Deployment::default().devices, 1);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        let _ = Deployment::tensor_parallel(0);
    }
}
