//! Local-memory usage simulation (paper §V-B, Fig. 12).
//!
//! The ADOR search sizes each core's local SRAM from the peak activation
//! footprint of the model's layer types. The paper's Fig. 12 observation:
//! at batch 32 on LLaMA3-8B every layer type stays within ~1.5 MB except
//! the LM head, whose logits buffer (`batch × vocab`) dwarfs everything —
//! which is why the LM head is vocab-tiled in practice.

use core::fmt;

use ador_model::ModelConfig;
use ador_units::Bytes;
use serde::{Deserialize, Serialize};

/// The layer types Fig. 12 plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Token-embedding gather output.
    TokenEmbedding,
    /// Self-attention layer (QKV staging + score tile).
    SelfAttention,
    /// MLP layer (gate/up buffers).
    Mlp,
    /// RMS/LayerNorm.
    RmsNorm,
    /// Residual / elementwise.
    Residual,
    /// LM head (logits buffer).
    LmHead,
}

impl LayerKind {
    /// All kinds in the order Fig. 12 lists them.
    pub fn all() -> [LayerKind; 6] {
        [
            LayerKind::TokenEmbedding,
            LayerKind::SelfAttention,
            LayerKind::Mlp,
            LayerKind::RmsNorm,
            LayerKind::Residual,
            LayerKind::LmHead,
        ]
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerKind::TokenEmbedding => "Token Embedding",
            LayerKind::SelfAttention => "Self-Attention Layer",
            LayerKind::Mlp => "MLP Layer",
            LayerKind::RmsNorm => "RMSNorm Layer",
            LayerKind::Residual => "Residual/Element.wise",
            LayerKind::LmHead => "LM-Head Layer",
        };
        f.write_str(s)
    }
}

/// Options for the usage simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalMemOptions {
    /// Attention-score tile length (FlashAttention-style softmax
    /// decomposition, paper §V-B); `None` materializes the full score row.
    pub score_tile: Option<usize>,
    /// LM-head vocabulary tile; `None` materializes all logits at once.
    pub vocab_tile: Option<usize>,
}

impl Default for LocalMemOptions {
    /// Flash-style 512-token score tiles, untiled LM head (to expose the
    /// Fig. 12 spike).
    fn default() -> Self {
        Self {
            score_tile: Some(512),
            vocab_tile: None,
        }
    }
}

/// Peak local-memory bytes needed by each layer type for a decode step of
/// `batch` requests at `context_len` (Fig. 12 uses batch 32).
///
/// # Examples
///
/// ```
/// use ador_perf::local_mem::{peak_usage, LayerKind, LocalMemOptions};
/// use ador_model::presets;
///
/// let usage = peak_usage(&presets::llama3_8b(), 32, 1024, LocalMemOptions::default());
/// let lm_head = usage.iter().find(|(k, _)| *k == LayerKind::LmHead).unwrap().1;
/// // The LM head dominates every other layer type (Fig. 12).
/// for (kind, bytes) in &usage {
///     if *kind != LayerKind::LmHead {
///         assert!(*bytes < lm_head);
///     }
/// }
/// ```
pub fn peak_usage(
    model: &ModelConfig,
    batch: usize,
    context_len: usize,
    opts: LocalMemOptions,
) -> Vec<(LayerKind, Bytes)> {
    let dt = model.dtype.bytes();
    let b = batch as u64;
    let h = model.hidden as u64;
    let act = |elems: u64| Bytes::new(elems * dt);

    let span = opts
        .score_tile
        .map_or(context_len as u64, |t| (t as u64).min(context_len as u64));
    // Staging for Q/K/V of the current token plus one score tile per head.
    let attn = act(b * (model.q_dim() as u64 + 2 * model.kv_dim() as u64))
        + act(b * model.heads as u64 * span);

    // Gated MLPs hold gate and up simultaneously for the elementwise product.
    let mlp_buffers = if model.gated_mlp { 2 } else { 1 };
    let mlp = act(b * model.intermediate as u64 * mlp_buffers);

    let vocab = opts
        .vocab_tile
        .map_or(model.vocab as u64, |t| (t as u64).min(model.vocab as u64));
    let lm_head = act(b * vocab) + act(b * h);

    vec![
        (LayerKind::TokenEmbedding, act(b * h)),
        (LayerKind::SelfAttention, attn),
        (LayerKind::Mlp, mlp),
        (LayerKind::RmsNorm, act(2 * b * h)),
        (LayerKind::Residual, act(2 * b * h)),
        (LayerKind::LmHead, lm_head),
    ]
}

/// The local-memory size the search step picks: the peak across layer
/// types, with the LM head vocab-tiled down to practicality (paper §V-B
/// sizes local memory from the non-LM-head peak and tiles the head).
pub fn required_local_memory(model: &ModelConfig, batch: usize, context_len: usize) -> Bytes {
    let opts = LocalMemOptions {
        score_tile: Some(512),
        vocab_tile: Some(8192),
    };
    peak_usage(model, batch, context_len, opts)
        .into_iter()
        .map(|(_, bytes)| bytes)
        .max()
        .unwrap_or(Bytes::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_model::presets;
    use proptest::prelude::*;

    #[test]
    fn fig12_all_but_lm_head_stay_small() {
        // Paper: "Except for the LM-Head, the usage does not exceed 1.5 MB"
        // at batch 32 (our strict accounting of the gated MLP's two live
        // buffers lands at 1.75 MiB — same regime).
        let usage = peak_usage(&presets::llama3_8b(), 32, 1024, LocalMemOptions::default());
        for (kind, bytes) in &usage {
            if *kind != LayerKind::LmHead {
                assert!(bytes.as_mib() < 2.0, "{kind}: {bytes}");
            }
        }
    }

    #[test]
    fn fig12_lm_head_dominates() {
        let usage = peak_usage(&presets::llama3_8b(), 32, 1024, LocalMemOptions::default());
        let lm = usage
            .iter()
            .find(|(k, _)| *k == LayerKind::LmHead)
            .unwrap()
            .1;
        // batch 32 × vocab 128256 × 2 B ≈ 7.8 MiB.
        assert!(lm.as_mib() > 7.0, "{lm}");
    }

    #[test]
    fn flash_tiling_caps_attention_usage() {
        let m = presets::llama2_7b(); // MHA: widest scores
        let flash = LocalMemOptions {
            score_tile: Some(512),
            vocab_tile: None,
        };
        let full = LocalMemOptions {
            score_tile: None,
            vocab_tile: None,
        };
        let tiled = peak_usage(&m, 32, 8192, flash);
        let naive = peak_usage(&m, 32, 8192, full);
        let pick = |u: &[(LayerKind, Bytes)]| {
            u.iter()
                .find(|(k, _)| *k == LayerKind::SelfAttention)
                .unwrap()
                .1
        };
        assert!(pick(&tiled).get() * 8 < pick(&naive).get());
    }

    #[test]
    fn required_memory_fits_table3_budget() {
        // The Table III design carries 2 MiB of local SRAM per core; the
        // sizing rule should land at or under that for the paper's
        // batch-32 LLaMA3-8B operating point.
        let need = required_local_memory(&presets::llama3_8b(), 32, 1024);
        assert!(need <= Bytes::from_kib(2048), "{need}");
    }

    proptest! {
        #[test]
        fn usage_monotone_in_batch(b in 1usize..128, ctx in 64usize..4096) {
            let m = presets::llama3_8b();
            let small = required_local_memory(&m, b, ctx);
            let large = required_local_memory(&m, b + 1, ctx);
            prop_assert!(large >= small);
        }
    }
}
