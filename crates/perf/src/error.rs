//! Error type for the performance model.

use core::fmt;

use ador_units::Bytes;

/// Why a performance evaluation could not proceed.
#[derive(Debug, Clone, PartialEq)]
pub enum PerfError {
    /// The model's per-device weight shard exceeds device memory.
    ModelTooLarge {
        /// Model name.
        model: String,
        /// Bytes needed per device (weights / TP width).
        needed: Bytes,
        /// Device memory capacity.
        capacity: Bytes,
        /// TP width that was attempted.
        devices: usize,
    },
    /// The KV cache for the requested phase does not fit next to the
    /// weights.
    KvCacheTooLarge {
        /// Bytes of KV cache per device.
        kv: Bytes,
        /// Bytes left after weights.
        available: Bytes,
    },
    /// The architecture failed validation.
    InvalidArchitecture(String),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::ModelTooLarge {
                model,
                needed,
                capacity,
                devices,
            } => write!(
                f,
                "model '{model}' needs {needed} per device across {devices} device(s) \
                 but only {capacity} is available"
            ),
            PerfError::KvCacheTooLarge { kv, available } => {
                write!(
                    f,
                    "KV cache of {kv} exceeds the {available} left after weights"
                )
            }
            PerfError::InvalidArchitecture(msg) => write!(f, "invalid architecture: {msg}"),
        }
    }
}

impl std::error::Error for PerfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = PerfError::ModelTooLarge {
            model: "LLaMA3 70B".to_string(),
            needed: Bytes::from_gib(141),
            capacity: Bytes::from_gib(80),
            devices: 1,
        };
        let s = format!("{e}");
        assert!(s.contains("LLaMA3 70B") && s.contains("141") && s.contains("80"));
        let _: &dyn std::error::Error = &e; // C-GOOD-ERR
    }
}
