//! Pipeline parallelism: whole layers per device (paper Fig. 7b — "PP
//! provides no latency benefits due to pipelining").

use core::fmt;

use ador_noc::P2pLink;
use ador_units::{Bytes, Seconds};
use serde::{Deserialize, Serialize};

/// A pipeline-parallel plan over `stages` devices, each owning a contiguous
/// slice of layers.
///
/// # Examples
///
/// ```
/// use ador_parallel::PipelineParallel;
/// use ador_noc::P2pLink;
/// use ador_units::{Bytes, Seconds};
///
/// let pp = PipelineParallel::new(4);
/// let single = Seconds::from_millis(20.0);
/// // Latency does not improve (it even gains hand-off hops)...
/// assert!(pp.token_latency(single, Bytes::from_kib(8), P2pLink::pcie4_x16()) >= single);
/// // ...but steady-state throughput scales with the stage count.
/// assert!(pp.throughput_scaling(64) > 3.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PipelineParallel {
    /// Pipeline stages (devices).
    pub stages: usize,
}

impl PipelineParallel {
    /// Creates a pipeline of `stages` devices.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    pub fn new(stages: usize) -> Self {
        assert!(stages > 0, "pipeline needs at least one stage");
        Self { stages }
    }

    /// Latency of one token through the whole pipeline: the single-device
    /// latency (the same layers still run serially) plus one activation
    /// hand-off per stage boundary.
    pub fn token_latency(
        &self,
        single_device_latency: Seconds,
        boundary_activation: Bytes,
        link: P2pLink,
    ) -> Seconds {
        let hops = (self.stages - 1) as f64;
        single_device_latency + link.transfer_time(boundary_activation) * hops
    }

    /// Steady-state throughput multiplier with `in_flight` microbatches:
    /// the classic `stages · m / (m + stages − 1)` pipeline-fill law.
    pub fn throughput_scaling(&self, in_flight: usize) -> f64 {
        assert!(in_flight > 0, "need at least one microbatch in flight");
        let s = self.stages as f64;
        let m = in_flight as f64;
        s * m / (m + s - 1.0)
    }

    /// Fraction of device-cycles lost to pipeline fill/drain bubbles.
    pub fn bubble_fraction(&self, in_flight: usize) -> f64 {
        1.0 - self.throughput_scaling(in_flight) / self.stages as f64
    }

    /// Per-device share of `layers` decoder layers (the last stage takes
    /// the remainder).
    pub fn layers_per_stage(&self, layers: usize) -> Vec<usize> {
        let base = layers / self.stages;
        let extra = layers % self.stages;
        (0..self.stages)
            .map(|i| base + usize::from(i < extra))
            .collect()
    }
}

impl fmt::Display for PipelineParallel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PP={}", self.stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn latency_never_improves() {
        // The paper's Fig. 7b point: PP gives no latency benefit.
        let single = Seconds::from_millis(10.0);
        for stages in [1, 2, 4, 8] {
            let pp = PipelineParallel::new(stages);
            let t = pp.token_latency(single, Bytes::from_kib(8), P2pLink::pcie4_x16());
            assert!(t >= single);
        }
    }

    #[test]
    fn throughput_approaches_stage_count() {
        let pp = PipelineParallel::new(8);
        assert!(pp.throughput_scaling(1) < 1.01);
        assert!(pp.throughput_scaling(1024) > 7.9);
    }

    #[test]
    fn layer_split_is_balanced() {
        let pp = PipelineParallel::new(3);
        assert_eq!(pp.layers_per_stage(32), vec![11, 11, 10]);
        let total: usize = pp.layers_per_stage(80).iter().sum();
        assert_eq!(total, 80);
    }

    #[test]
    fn bubble_shrinks_with_in_flight_work() {
        let pp = PipelineParallel::new(4);
        assert!(pp.bubble_fraction(2) > pp.bubble_fraction(16));
    }

    proptest! {
        #[test]
        fn scaling_bounded_by_stages(s in 1usize..64, m in 1usize..256) {
            let pp = PipelineParallel::new(s);
            let x = pp.throughput_scaling(m);
            prop_assert!(x >= 1.0 - 1e-9 || s == 1);
            prop_assert!(x <= s as f64 + 1e-9);
        }

        #[test]
        fn layers_conserved(s in 1usize..32, l in 1usize..200) {
            let total: usize = PipelineParallel::new(s).layers_per_stage(l).iter().sum();
            prop_assert_eq!(total, l);
        }
    }
}
