//! Tensor parallelism: split every weight matrix, synchronize activations.

use core::fmt;

use ador_noc::{OverlapModel, P2pLink, SyncStrategy};
use ador_units::{Bytes, Seconds};
use serde::{Deserialize, Serialize};

/// One tensor-parallel sub-block of work: a pair of dependent GEMMs (the
/// Megatron fusion unit) with its single-device compute time and the
/// activation message that must be synchronized afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockWorkload {
    /// Compute time of the block on one device (memory- or compute-bound,
    /// whichever governs — the caller's performance model decides).
    pub compute_1dev: Seconds,
    /// Activation bytes produced by the block (the sync message).
    pub msg: Bytes,
}

impl BlockWorkload {
    /// Creates a block workload.
    pub fn new(compute_1dev: Seconds, msg: Bytes) -> Self {
        Self { compute_1dev, msg }
    }
}

/// A tensor-parallel execution plan across `devices` devices using
/// `strategy` for synchronization.
///
/// # Examples
///
/// ```
/// use ador_parallel::{BlockWorkload, TensorParallel};
/// use ador_noc::{P2pLink, SyncStrategy};
/// use ador_units::{Bytes, Seconds};
///
/// let block = BlockWorkload::new(Seconds::from_millis(1.0), Bytes::from_mib(1));
/// let t1 = TensorParallel::single().block_time(block, P2pLink::pcie4_x16());
/// let t4 = TensorParallel::new(4, SyncStrategy::AllGather)
///     .block_time(block, P2pLink::pcie4_x16());
/// assert!(t4 < t1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorParallel {
    /// Participating devices.
    pub devices: usize,
    /// Synchronization strategy between dependent GEMMs.
    pub strategy: SyncStrategy,
}

impl TensorParallel {
    /// Creates a TP plan.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn new(devices: usize, strategy: SyncStrategy) -> Self {
        assert!(devices > 0, "tensor parallelism needs at least one device");
        Self { devices, strategy }
    }

    /// The degenerate single-device plan (no synchronization).
    pub fn single() -> Self {
        Self::new(1, SyncStrategy::AllGather)
    }

    /// The strategy the paper recommends for a given device count:
    /// Megatron at ≤2 devices, all-gather beyond (§V-C).
    pub fn recommended(devices: usize) -> Self {
        let strategy = if devices <= 2 {
            SyncStrategy::Megatron
        } else {
            SyncStrategy::AllGather
        };
        Self::new(devices, strategy)
    }

    /// The overlap model this strategy admits: all-gather pipelines final
    /// sums (Fig. 6d); partial-sum strategies serialize behind the
    /// accumulation.
    pub fn overlap(&self) -> OverlapModel {
        if self.strategy.overlappable() {
            OverlapModel::pipelined()
        } else {
            OverlapModel::serialized()
        }
    }

    /// Wall-clock time of one block: compute shrinks by the device count
    /// (each device streams 1/n of the weights with its own DRAM); wire
    /// traffic is overlapped as the strategy allows; synchronization
    /// *barriers* (one per sync point) can never be hidden.
    ///
    /// The barrier term is what makes Megatron competitive at two devices —
    /// it pays one barrier per block where all-gather pays two (paper
    /// Fig. 13a) — while its all-reduce volume sinks it at four and more.
    pub fn block_time(&self, block: BlockWorkload, link: P2pLink) -> Seconds {
        let compute = block.compute_1dev / self.devices as f64;
        if self.devices == 1 {
            return compute;
        }
        let cost = self.strategy.block_cost(self.devices, block.msg);
        let wire = cost.wire_time(link.bandwidth());
        let barriers = link.latency() * cost.sync_points as f64;
        self.overlap().step_time(compute, wire) + barriers
    }

    /// Latency speedup of this plan over one device for the same block.
    pub fn speedup(&self, block: BlockWorkload, link: P2pLink) -> f64 {
        let single = block.compute_1dev;
        let parallel = self.block_time(block, link);
        if parallel.is_zero() {
            return self.devices as f64;
        }
        single / parallel
    }

    /// Per-device share of a weight tensor of `bytes`.
    pub fn weight_shard(&self, bytes: Bytes) -> Bytes {
        bytes * (1.0 / self.devices as f64)
    }
}

impl fmt::Display for TensorParallel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TP={} ({})", self.devices, self.strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn decode_block() -> BlockWorkload {
        // LLaMA3-8B-class decode block: ~218 MB of weights at ~1.8 TB/s
        // effective → ~121 µs; batch-32 activations are 256 KiB.
        BlockWorkload::new(Seconds::from_micros(121.0), Bytes::from_kib(256))
    }

    #[test]
    fn fig13a_allgather_scales_furthest() {
        let link = P2pLink::new(ador_units::Bandwidth::from_gbps(128.0));
        let block = decode_block();
        let at16 = |s: SyncStrategy| TensorParallel::new(16, s).speedup(block, link);
        let ag = at16(SyncStrategy::AllGather);
        let mg = at16(SyncStrategy::Megatron);
        let ar = at16(SyncStrategy::AllReduce);
        assert!(ag > mg && mg > ar, "ag {ag:.1} mg {mg:.1} ar {ar:.1}");
        assert!(ag > 9.0, "all-gather should stay near-linear, got {ag:.1}");
    }

    #[test]
    fn fig13a_megatron_wins_at_two_devices() {
        // With a realistic per-sync barrier (InfiniBand-class, ~5 µs),
        // Megatron's single sync point beats all-gather's two at TP = 2.
        let link = P2pLink::new(ador_units::Bandwidth::from_gbps(128.0))
            .with_latency(Seconds::from_micros(5.0));
        let block = decode_block();
        let ag = TensorParallel::new(2, SyncStrategy::AllGather).speedup(block, link);
        let mg = TensorParallel::new(2, SyncStrategy::Megatron).speedup(block, link);
        assert!(mg > ag, "mg {mg:.2} ag {ag:.2}");
    }

    #[test]
    fn recommended_matches_paper_rule() {
        assert_eq!(
            TensorParallel::recommended(2).strategy,
            SyncStrategy::Megatron
        );
        assert_eq!(
            TensorParallel::recommended(4).strategy,
            SyncStrategy::AllGather
        );
    }

    #[test]
    fn single_device_has_no_overhead() {
        let block = decode_block();
        let t = TensorParallel::single().block_time(block, P2pLink::pcie4_x16());
        assert_eq!(t, block.compute_1dev);
    }

    #[test]
    fn weight_shard_divides() {
        let tp = TensorParallel::new(8, SyncStrategy::AllGather);
        assert_eq!(tp.weight_shard(Bytes::from_gib(16)), Bytes::from_gib(2));
    }

    proptest! {
        #[test]
        fn speedup_never_exceeds_devices(
            n in 1usize..32,
            us in 1.0f64..10_000.0,
            kib in 1u64..10_000,
            gbps in 1.0f64..900.0,
        ) {
            let block = BlockWorkload::new(Seconds::from_micros(us), Bytes::from_kib(kib));
            let tp = TensorParallel::new(n, SyncStrategy::AllGather);
            let link = P2pLink::new(ador_units::Bandwidth::from_gbps(gbps));
            prop_assert!(tp.speedup(block, link) <= n as f64 + 1e-9);
        }

        #[test]
        fn more_bandwidth_never_slower(
            n in 2usize..32, us in 1.0f64..10_000.0, kib in 1u64..10_000, gbps in 1.0f64..450.0,
        ) {
            for s in SyncStrategy::all() {
                let block = BlockWorkload::new(Seconds::from_micros(us), Bytes::from_kib(kib));
                let tp = TensorParallel::new(n, s);
                let slow = tp.block_time(block, P2pLink::new(ador_units::Bandwidth::from_gbps(gbps)));
                let fast = tp.block_time(block, P2pLink::new(ador_units::Bandwidth::from_gbps(gbps * 2.0)));
                prop_assert!(fast <= slow);
            }
        }
    }
}
