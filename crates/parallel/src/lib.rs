//! Model parallelism for multi-device LLM serving (paper §IV-D, Fig. 7,
//! Fig. 13).
//!
//! Large models exceed a single device's memory capacity and bandwidth, so
//! ADOR maps them across devices with **tensor parallelism** (TP — weight
//! matrices split across devices, activations synchronized between GEMMs)
//! or **pipeline parallelism** (PP — whole layers assigned per device).
//! The paper's conclusions, all reproduced by these models:
//!
//! * TP divides per-token latency by the device count (minus sync overhead);
//!   PP leaves latency untouched and only helps throughput;
//! * among TP sync strategies, Megatron wins at 2 devices, all-gather from
//!   4 up (Fig. 13a);
//! * ~32 GB/s of P2P bandwidth is enough to overlap communication for
//!   decode-heavy workloads (Fig. 13b).
//!
//! # Examples
//!
//! ```
//! use ador_parallel::{BlockWorkload, TensorParallel};
//! use ador_noc::{P2pLink, SyncStrategy};
//! use ador_units::{Bytes, Seconds};
//!
//! let block = BlockWorkload::new(Seconds::from_micros(120.0), Bytes::from_kib(256));
//! let tp8 = TensorParallel::new(8, SyncStrategy::AllGather);
//! let speedup = tp8.speedup(block, P2pLink::pcie5_x16());
//! assert!(speedup > 6.0); // near-linear once comm hides under compute
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mapper;
mod pp;
mod scaling;
mod tp;

pub use mapper::{ParallelPlan, PlanError};
pub use pp::PipelineParallel;
pub use scaling::{p2p_sweep, tp_sweep, ScalingPoint, WorkloadMix};
pub use tp::{BlockWorkload, TensorParallel};
