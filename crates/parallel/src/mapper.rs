//! The model-parallelism mapper (paper Fig. 7a): decide how many devices a
//! model needs and how to split it.

use core::fmt;

use ador_model::ModelConfig;
use ador_units::Bytes;
use serde::{Deserialize, Serialize};

use crate::{PipelineParallel, TensorParallel};

/// A complete parallelism assignment for one model deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelPlan {
    /// Tensor-parallel width.
    pub tp: TensorParallel,
    /// Pipeline depth.
    pub pp: PipelineParallel,
}

impl ParallelPlan {
    /// A single-device plan.
    pub fn single_device() -> Self {
        Self {
            tp: TensorParallel::single(),
            pp: PipelineParallel::new(1),
        }
    }

    /// Total devices consumed.
    pub fn devices(&self) -> usize {
        self.tp.devices * self.pp.stages
    }

    /// Plans a deployment of `model` with `kv_budget` bytes of KV cache on
    /// devices of `device_capacity` memory, preferring pure tensor
    /// parallelism (the paper's choice for serving, §IV-D) and growing the
    /// device count in powers of two.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::ExceedsDeviceBudget`] if even `max_devices`
    /// devices cannot hold the model, or [`PlanError::Unsplittable`] if the
    /// model has fewer KV heads than the TP width would require.
    pub fn for_memory(
        model: &ModelConfig,
        kv_budget: Bytes,
        device_capacity: Bytes,
        max_devices: usize,
    ) -> Result<Self, PlanError> {
        let total = model
            .weight_bytes()
            .checked_add(kv_budget)
            .ok_or(PlanError::Unsplittable {
                tp: 0,
                kv_heads: model.kv_heads,
            })?;
        let mut tp = 1usize;
        loop {
            let per_device = total * (1.0 / tp as f64);
            if per_device <= device_capacity {
                break;
            }
            tp *= 2;
            if tp > max_devices {
                return Err(PlanError::ExceedsDeviceBudget {
                    needed: tp,
                    budget: max_devices,
                    total_bytes: total,
                });
            }
        }
        // Attention heads shard across TP devices; the KV heads must divide.
        if tp > 1 && model.kv_heads % tp.min(model.kv_heads) != 0 && model.heads % tp != 0 {
            return Err(PlanError::Unsplittable {
                tp,
                kv_heads: model.kv_heads,
            });
        }
        Ok(Self {
            tp: TensorParallel::recommended(tp),
            pp: PipelineParallel::new(1),
        })
    }
}

impl fmt::Display for ParallelPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x {}", self.tp, self.pp)
    }
}

/// Why a parallel plan could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanError {
    /// The model (plus KV budget) does not fit even on the whole device
    /// budget.
    ExceedsDeviceBudget {
        /// Devices that would have been needed.
        needed: usize,
        /// Devices available.
        budget: usize,
        /// Bytes that had to be placed.
        total_bytes: Bytes,
    },
    /// The TP width does not divide the model's heads.
    Unsplittable {
        /// Attempted TP width.
        tp: usize,
        /// The model's KV head count.
        kv_heads: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ExceedsDeviceBudget {
                needed,
                budget,
                total_bytes,
            } => write!(
                f,
                "placing {total_bytes} needs {needed} devices but only {budget} are available"
            ),
            PlanError::Unsplittable { tp, kv_heads } => {
                write!(
                    f,
                    "tensor-parallel width {tp} does not divide {kv_heads} KV heads"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_model::presets;
    use ador_noc::SyncStrategy;

    const GIB80: Bytes = Bytes::new(80 * 1024 * 1024 * 1024);

    #[test]
    fn llama3_8b_fits_one_device() {
        let m = presets::llama3_8b();
        let kv = m.kv_cache_bytes(64, 2048);
        let plan = ParallelPlan::for_memory(&m, kv, GIB80, 16).unwrap();
        assert_eq!(plan.devices(), 1);
    }

    #[test]
    fn llama3_70b_needs_multiple_devices() {
        // Fig. 15b serves LLaMA3-70B on 8 devices; weights alone are
        // ~141 GB, and a healthy KV budget pushes the power-of-two TP to 4+.
        let m = presets::llama3_70b();
        let kv = m.kv_cache_bytes(128, 2048);
        let plan = ParallelPlan::for_memory(&m, kv, GIB80, 16).unwrap();
        assert!(plan.devices() >= 4, "{plan}");
        assert_eq!(plan.tp.strategy, SyncStrategy::AllGather);
    }

    #[test]
    fn two_device_plans_use_megatron() {
        let m = presets::yi_34b(); // ~69 GB of weights
        let kv = m.kv_cache_bytes(64, 2048);
        let plan = ParallelPlan::for_memory(&m, kv, GIB80, 16).unwrap();
        assert_eq!(plan.devices(), 2);
        assert_eq!(plan.tp.strategy, SyncStrategy::Megatron);
    }

    #[test]
    fn budget_violation_reported() {
        let m = presets::llama3_70b();
        let kv = m.kv_cache_bytes(256, 8192);
        let err = ParallelPlan::for_memory(&m, kv, Bytes::from_gib(8), 4).unwrap_err();
        match err {
            PlanError::ExceedsDeviceBudget { needed, budget, .. } => {
                assert!(needed > budget);
            }
            other => panic!("unexpected error {other}"),
        }
        // Error type is usable through the std Error trait (C-GOOD-ERR).
        let _: &dyn std::error::Error = &err;
    }

    #[test]
    fn display_is_compact() {
        let plan = ParallelPlan::single_device();
        assert_eq!(format!("{plan}"), "TP=1 (all-gather) x PP=1");
    }
}
