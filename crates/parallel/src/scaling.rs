//! Scalability sweeps: the data series behind Fig. 13.

use ador_noc::{P2pLink, SyncStrategy};
use ador_units::{Bandwidth, Seconds};
use serde::{Deserialize, Serialize};

use crate::{BlockWorkload, TensorParallel};

/// One point of a scalability curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Tensor-parallel width.
    pub devices: usize,
    /// Latency speedup over one device.
    pub speedup: f64,
}

/// Sweeps TP width over `device_counts` for a fixed block workload and
/// link — the Fig. 13a series (one call per strategy).
pub fn tp_sweep(
    block: BlockWorkload,
    strategy: SyncStrategy,
    link: P2pLink,
    device_counts: &[usize],
) -> Vec<ScalingPoint> {
    device_counts
        .iter()
        .map(|&n| ScalingPoint {
            devices: n,
            speedup: TensorParallel::new(n, strategy).speedup(block, link),
        })
        .collect()
}

/// The phase mixture of a serving step, for the Fig. 13b sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadMix {
    /// Pure prefill (compute-heavy blocks, large messages).
    Prefill,
    /// Pure decode (bandwidth-bound blocks, small messages).
    Decode,
    /// Continuous batching at the paper's prefill:decode = 3:1 step ratio.
    Continuous,
}

impl WorkloadMix {
    /// Blends per-phase block workloads into the mixture's effective block:
    /// a weighted sum of compute times and messages, representing the
    /// average step under this mix.
    pub fn blend(&self, prefill: BlockWorkload, decode: BlockWorkload) -> BlockWorkload {
        match self {
            WorkloadMix::Prefill => prefill,
            WorkloadMix::Decode => decode,
            WorkloadMix::Continuous => {
                // Paper Fig. 13b: "Prefill : Decoding = 3 : 1".
                let w_prefill = 0.75;
                let w_decode = 0.25;
                BlockWorkload::new(
                    Seconds::new(
                        prefill.compute_1dev.get() * w_prefill
                            + decode.compute_1dev.get() * w_decode,
                    ),
                    prefill.msg * w_prefill + decode.msg * w_decode,
                )
            }
        }
    }
}

/// Sweeps P2P bandwidth for a fixed TP width and workload mix — the
/// Fig. 13b series. Returns `(bandwidth_gbps, speedup)` pairs.
pub fn p2p_sweep(
    prefill: BlockWorkload,
    decode: BlockWorkload,
    mix: WorkloadMix,
    devices: usize,
    bandwidths_gbps: &[f64],
) -> Vec<(f64, f64)> {
    let block = mix.blend(prefill, decode);
    let tp = TensorParallel::new(devices, SyncStrategy::AllGather);
    bandwidths_gbps
        .iter()
        .map(|&gbps| {
            let link = P2pLink::new(Bandwidth::from_gbps(gbps));
            (gbps, tp.speedup(block, link))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_units::Bytes;

    fn prefill_block() -> BlockWorkload {
        // Compute-bound: ~1 ms of GEMM per block, 8 MiB activations.
        BlockWorkload::new(Seconds::from_millis(1.0), Bytes::from_mib(8))
    }

    fn decode_block() -> BlockWorkload {
        BlockWorkload::new(Seconds::from_micros(121.0), Bytes::from_kib(256))
    }

    #[test]
    fn tp_sweep_produces_requested_points() {
        let pts = tp_sweep(
            decode_block(),
            SyncStrategy::AllGather,
            P2pLink::pcie5_x16(),
            &[1, 2, 4, 8, 16],
        );
        assert_eq!(pts.len(), 5);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9);
        assert!(pts[4].speedup > pts[1].speedup);
    }

    #[test]
    fn fig13b_modest_bandwidth_suffices_for_decode() {
        // Paper: "A bandwidth of approximately 32 GB/s ... is sufficient for
        // overlapping computation and communication" — decode traffic is
        // small, so speedup saturates early in bandwidth.
        let pts = p2p_sweep(
            prefill_block(),
            decode_block(),
            WorkloadMix::Decode,
            8,
            &[16.0, 32.0, 64.0, 128.0],
        );
        let at32 = pts[1].1;
        let at128 = pts[3].1;
        assert!(
            at32 > 0.75 * at128,
            "32 GB/s {at32:.2} vs 128 GB/s {at128:.2}"
        );
    }

    #[test]
    fn prefill_needs_more_bandwidth_than_decode() {
        let sweep = |mix| p2p_sweep(prefill_block(), decode_block(), mix, 8, &[16.0, 128.0]);
        let prefill = sweep(WorkloadMix::Prefill);
        let decode = sweep(WorkloadMix::Decode);
        // Relative gain from 16 → 128 GB/s is larger for prefill's big
        // messages.
        let gain = |v: &Vec<(f64, f64)>| v[1].1 / v[0].1;
        assert!(gain(&prefill) >= gain(&decode));
    }

    #[test]
    fn continuous_mix_blends_between_phases() {
        let blend = WorkloadMix::Continuous.blend(prefill_block(), decode_block());
        assert!(blend.compute_1dev < prefill_block().compute_1dev);
        assert!(blend.compute_1dev > decode_block().compute_1dev);
    }
}
