//! Vector-unit timing: softmax, normalization and elementwise work
//! (the "versatile vector units" of the ADOR template, paper §I).

use core::fmt;

use ador_units::{Cycles, FlopRate, Frequency};
use serde::{Deserialize, Serialize};

/// A SIMD vector unit processing `lanes` elements per cycle.
///
/// # Examples
///
/// ```
/// use ador_hw::VectorUnit;
/// use ador_units::Frequency;
///
/// let vu = VectorUnit::new(64);
/// let t = vu.elementwise_cycles(1 << 20);
/// assert_eq!(t.get(), (1 << 20) / 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorUnit {
    lanes: usize,
}

impl VectorUnit {
    /// Creates a vector unit with `lanes` ALUs.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "vector unit must have at least one lane");
        Self { lanes }
    }

    /// ALU lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Peak rate (one op per lane per cycle).
    pub fn peak_flops(&self, freq: Frequency) -> FlopRate {
        FlopRate::new(self.lanes as f64 * freq.as_hz())
    }

    /// Cycles for a single-pass elementwise op over `elements` values.
    pub fn elementwise_cycles(&self, elements: u64) -> Cycles {
        Cycles::new(elements.div_ceil(self.lanes as u64))
    }

    /// Cycles for a softmax over `elements` values (≈5 passes: max,
    /// subtract, exp, sum, divide).
    pub fn softmax_cycles(&self, elements: u64) -> Cycles {
        Cycles::new((5 * elements).div_ceil(self.lanes as u64))
    }

    /// Cycles for an RMS/LayerNorm over `elements` values (≈4 passes).
    pub fn norm_cycles(&self, elements: u64) -> Cycles {
        Cycles::new((4 * elements).div_ceil(self.lanes as u64))
    }
}

impl Default for VectorUnit {
    /// A 64-lane unit — enough to keep vector work off the critical path in
    /// the ADOR template.
    fn default() -> Self {
        Self::new(64)
    }
}

impl fmt::Display for VectorUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VU x{}", self.lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_costs_five_passes() {
        let vu = VectorUnit::new(32);
        assert_eq!(vu.softmax_cycles(320).get(), 50);
        assert_eq!(vu.norm_cycles(320).get(), 40);
        assert_eq!(vu.elementwise_cycles(320).get(), 10);
    }

    #[test]
    fn rounding_up_partial_vectors() {
        let vu = VectorUnit::new(64);
        assert_eq!(vu.elementwise_cycles(1).get(), 1);
        assert_eq!(vu.elementwise_cycles(65).get(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = VectorUnit::new(0);
    }

    proptest! {
        #[test]
        fn wider_unit_never_slower(l in 1usize..512, e in 0u64..1 << 30) {
            let narrow = VectorUnit::new(l).elementwise_cycles(e);
            let wide = VectorUnit::new(l * 2).elementwise_cycles(e);
            prop_assert!(wide <= narrow);
        }
    }
}
