//! The ADOR hardware architecture template (paper §IV, Fig. 6a).
//!
//! An ADOR device is a ring of identical cores, each holding a
//! throughput-oriented **systolic array**, a latency-oriented **MAC tree**
//! and a **vector unit**, backed by per-core local SRAM, a shared global
//! SRAM, DRAM modules, and P2P interfaces. This crate provides:
//!
//! * [`SystolicArray`] — SCALE-Sim-style analytical timing for
//!   weight-stationary GEMM (and why GEMV is slow on it, Table II);
//! * [`MacTree`] — streaming dot-product engine timing, sized so one clock
//!   consumes one DRAM beat (paper §V-A formula);
//! * [`VectorUnit`] — softmax/norm/elementwise throughput;
//! * [`memory`] — DRAM specs and the Fig. 10 logarithmic
//!   effective-bandwidth law; SRAM sizing types;
//! * [`Architecture`] — the full template plus [`ArchitectureBuilder`];
//! * [`area`] — the LLMCompass-style cost model calibrated against
//!   Table III, with process-node scaling (Fig. 4a normalization).
//!
//! # Examples
//!
//! ```
//! use ador_hw::{Architecture, SystolicArray, MacTree};
//! use ador_units::{Bandwidth, Bytes, Frequency};
//!
//! // The Table III "ADOR Design" column.
//! let ador = Architecture::builder("ADOR")
//!     .cores(32)
//!     .systolic_array(SystolicArray::new(64, 64))
//!     .mac_tree(MacTree::new(16, 16))
//!     .local_memory(Bytes::from_kib(2048))
//!     .global_memory(Bytes::from_mib(16))
//!     .dram(ador_hw::memory::DramSpec::hbm2e(Bytes::from_gib(80), Bandwidth::from_tbps(2.0)))
//!     .p2p_bandwidth(Bandwidth::from_gbps(64.0))
//!     .frequency(Frequency::from_mhz(1500.0))
//!     .build();
//! assert!((ador.peak_flops().as_tflops() - 417.0).abs() < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod area;
mod mac_tree;
pub mod memory;
pub mod power;
mod process;
mod profile;
pub mod roofline;
mod systolic;
mod vector;

pub use arch::{Architecture, ArchitectureBuilder};
pub use area::{AreaBreakdown, AreaModel};
pub use mac_tree::{GemvTiming, MacTree};
pub use memory::{DramKind, DramSpec, EffectiveBandwidthModel};
pub use power::{OperatingPoint, PowerBreakdown, PowerModel};
pub use process::ProcessNode;
pub use profile::{PerfProfile, StreamLaw};
pub use roofline::{Roofline, RooflineBound};
pub use systolic::{GemmTiming, SystolicArray};
pub use vector::VectorUnit;
