//! Per-architecture execution-efficiency profiles.
//!
//! The performance model is shared by every design we evaluate; what
//! differs between an ADOR device, a GPU and a TPU is *how much of the spec*
//! each one achieves on each traffic class. A [`PerfProfile`] captures those
//! calibrated efficiencies (see `DESIGN.md` §2.4 for where each number comes
//! from in the paper).

use ador_units::{Bandwidth, FlopCount, Seconds, Utilization};
use serde::{Deserialize, Serialize};

use crate::memory::EffectiveBandwidthModel;

/// How an architecture's achieved DRAM bandwidth relates to the spec when
/// streaming a given traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StreamLaw {
    /// The Fig. 10 measured law: utilization grows logarithmically with the
    /// per-device op count (ADOR's MAC tree streaming directly from DRAM).
    Measured(EffectiveBandwidthModel),
    /// A fixed utilization (e.g. the paper's "<60 %" for GPUs whose SMT
    /// control path can't keep HBM busy, §III-A).
    Fixed(Utilization),
}

impl StreamLaw {
    /// The measured law with default calibration.
    pub fn measured() -> Self {
        StreamLaw::Measured(EffectiveBandwidthModel::default())
    }

    /// A fixed-utilization law.
    ///
    /// # Panics
    ///
    /// Panics if `util` is outside `[0, 1]`.
    pub fn fixed(util: f64) -> Self {
        StreamLaw::Fixed(Utilization::new(util))
    }

    /// Utilization for a step of `ops` operations per device.
    pub fn utilization(&self, ops: FlopCount) -> Utilization {
        match self {
            StreamLaw::Measured(model) => model.utilization(ops),
            StreamLaw::Fixed(util) => *util,
        }
    }

    /// Effective bandwidth for a step of `ops` operations per device.
    pub fn effective(&self, spec: Bandwidth, ops: FlopCount) -> Bandwidth {
        spec.derated(self.utilization(ops))
    }
}

/// Calibrated execution efficiencies for one architecture.
///
/// # Examples
///
/// ```
/// use ador_hw::PerfProfile;
///
/// let ador = PerfProfile::ador_template();
/// let gpu = PerfProfile::gpu();
/// // The template streams weights through the measured Fig. 10 law; the
/// // GPU is pinned at the paper's sub-60 % utilization.
/// let big = ador_units::FlopCount::new(1e12);
/// assert!(ador.weight_stream.utilization(big) > gpu.weight_stream.utilization(big));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfProfile {
    /// DRAM utilization when streaming model weights sequentially.
    pub weight_stream: StreamLaw,
    /// DRAM utilization when reading KV-cache pages (scattered at high
    /// batch, which is what hurts GPUs most).
    pub attention_stream: StreamLaw,
    /// Fraction of peak FLOPS achieved on large GEMMs, on top of the cycle
    /// model (control, memory stalls, wave quantization).
    pub gemm_efficiency: Utilization,
    /// Fixed per-operator overhead (kernel launch / instruction dispatch /
    /// core synchronization).
    pub op_overhead: Seconds,
}

impl PerfProfile {
    /// The ADOR template profile: measured streaming law on both classes,
    /// near-ideal GEMM issue, sub-microsecond dispatch (dedicated
    /// instruction streams, no kernel launches).
    pub fn ador_template() -> Self {
        Self {
            weight_stream: StreamLaw::measured(),
            attention_stream: StreamLaw::measured(),
            gemm_efficiency: Utilization::new(0.95),
            op_overhead: Seconds::from_micros(0.5),
        }
    }

    /// GPU profile (paper §III-A): sub-60 % HBM utilization on weight
    /// streams, worse on scattered KV pages at batch, ~62 % of peak on
    /// GEMMs, and per-kernel launch overhead.
    pub fn gpu() -> Self {
        Self {
            weight_stream: StreamLaw::fixed(0.55),
            attention_stream: StreamLaw::fixed(0.40),
            gemm_efficiency: Utilization::new(0.62),
            op_overhead: Seconds::from_micros(4.0),
        }
    }

    /// Systolic-NPU profile (TPU-like, paper Fig. 4b: "TPU's memory
    /// bandwidth utilization is worse compared to the GPU").
    pub fn systolic_npu() -> Self {
        Self {
            weight_stream: StreamLaw::fixed(0.50),
            attention_stream: StreamLaw::fixed(0.45),
            gemm_efficiency: Utilization::new(0.90),
            op_overhead: Seconds::from_micros(1.0),
        }
    }

    /// Streaming all-SRAM profile (Groq-TSP-like): deterministic dataflow
    /// keeps the on-chip stream near spec.
    pub fn streaming_sram() -> Self {
        Self {
            weight_stream: StreamLaw::fixed(0.95),
            attention_stream: StreamLaw::fixed(0.95),
            gemm_efficiency: Utilization::new(0.80),
            op_overhead: Seconds::from_micros(0.2),
        }
    }

    /// Looks up a calibrated profile by (case-insensitive) name —
    /// `"ador"`, `"gpu"`, `"systolic-npu"` or `"streaming-sram"` — so
    /// fleet specs and search configs can name profiles instead of
    /// hard-wiring constructors.
    ///
    /// # Examples
    ///
    /// ```
    /// use ador_hw::PerfProfile;
    ///
    /// assert_eq!(PerfProfile::by_name("GPU"), Some(PerfProfile::gpu()));
    /// assert!(PerfProfile::by_name("unknown").is_none());
    /// ```
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "ador" | "ador-template" => Some(Self::ador_template()),
            "gpu" => Some(Self::gpu()),
            "systolic-npu" => Some(Self::systolic_npu()),
            "streaming-sram" => Some(Self::streaming_sram()),
            _ => None,
        }
    }
}

impl Default for PerfProfile {
    fn default() -> Self {
        Self::ador_template()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_law_ignores_ops() {
        let law = StreamLaw::fixed(0.55);
        assert_eq!(law.utilization(FlopCount::new(1.0)).get(), 0.55);
        assert_eq!(law.utilization(FlopCount::new(1e13)).get(), 0.55);
    }

    #[test]
    fn measured_law_grows() {
        let law = StreamLaw::measured();
        assert!(law.utilization(FlopCount::new(1e12)) > law.utilization(FlopCount::new(1e9)));
    }

    #[test]
    fn gpu_attention_is_the_weak_spot() {
        let gpu = PerfProfile::gpu();
        let ops = FlopCount::new(1e11);
        assert!(gpu.attention_stream.utilization(ops) < gpu.weight_stream.utilization(ops));
    }

    #[test]
    fn template_dispatch_beats_kernel_launch() {
        assert!(PerfProfile::ador_template().op_overhead < PerfProfile::gpu().op_overhead);
    }
}
