//! Off-chip memory specifications and the effective-bandwidth law.
//!
//! The paper's key empirical input (Fig. 10) is that a MAC tree streaming
//! weights from HBM achieves a *logarithmically increasing* fraction of the
//! spec bandwidth as the per-device workload grows — about 70 % around 10⁹
//! operations, rising to a 90 % ceiling past 10¹¹. The authors measured this
//! on an Alveo U55C FPGA; we encode the calibrated law directly (see
//! `DESIGN.md` §2.3 for the substitution note).

use core::fmt;

use ador_units::{Bandwidth, Bytes, FlopCount, Utilization};
use serde::{Deserialize, Serialize};

/// Off-chip (or on-chip, for Groq-style designs) memory technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramKind {
    /// HBM2 (e.g. TPUv4, Alveo U55C).
    Hbm2,
    /// HBM2e (e.g. A100 80 GB).
    Hbm2e,
    /// HBM3 (e.g. H100 SXM).
    Hbm3,
    /// HBM3e.
    Hbm3e,
    /// LPDDR/DDR-class capacity memory.
    Lpddr,
    /// All-SRAM "memory" (Groq TSP keeps weights entirely on chip).
    OnChipSram,
}

impl fmt::Display for DramKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DramKind::Hbm2 => "HBM2",
            DramKind::Hbm2e => "HBM2e",
            DramKind::Hbm3 => "HBM3",
            DramKind::Hbm3e => "HBM3e",
            DramKind::Lpddr => "LPDDR",
            DramKind::OnChipSram => "SRAM",
        };
        f.write_str(s)
    }
}

/// A device's weight/KV memory: technology, capacity and spec bandwidth.
///
/// # Examples
///
/// ```
/// use ador_hw::memory::DramSpec;
/// use ador_units::{Bandwidth, Bytes};
///
/// let a100 = DramSpec::hbm2e(Bytes::from_gib(80), Bandwidth::from_tbps(2.0));
/// assert_eq!(a100.capacity, Bytes::from_gib(80));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramSpec {
    /// Memory technology.
    pub kind: DramKind,
    /// Total capacity.
    pub capacity: Bytes,
    /// Datasheet peak bandwidth.
    pub bandwidth: Bandwidth,
}

impl DramSpec {
    /// Creates a memory spec.
    pub fn new(kind: DramKind, capacity: Bytes, bandwidth: Bandwidth) -> Self {
        Self {
            kind,
            capacity,
            bandwidth,
        }
    }

    /// HBM2 convenience constructor.
    pub fn hbm2(capacity: Bytes, bandwidth: Bandwidth) -> Self {
        Self::new(DramKind::Hbm2, capacity, bandwidth)
    }

    /// HBM2e convenience constructor.
    pub fn hbm2e(capacity: Bytes, bandwidth: Bandwidth) -> Self {
        Self::new(DramKind::Hbm2e, capacity, bandwidth)
    }

    /// HBM3 convenience constructor.
    pub fn hbm3(capacity: Bytes, bandwidth: Bandwidth) -> Self {
        Self::new(DramKind::Hbm3, capacity, bandwidth)
    }

    /// HBM3e convenience constructor.
    pub fn hbm3e(capacity: Bytes, bandwidth: Bandwidth) -> Self {
        Self::new(DramKind::Hbm3e, capacity, bandwidth)
    }

    /// Whether `bytes` of model + KV state fit in this memory.
    pub fn fits(&self, bytes: Bytes) -> bool {
        bytes <= self.capacity
    }
}

impl fmt::Display for DramSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} @ {}", self.kind, self.capacity, self.bandwidth)
    }
}

/// The Fig. 10 logarithmic effective-bandwidth law:
///
/// ```text
/// util(ops) = clamp(base + per_decade · (log10(ops) − 9), floor, ceiling)
/// ```
///
/// With the default calibration, utilization is 70 % at 10⁹ ops/device,
/// 80 % at 10¹⁰ and saturates at the paper's "up to 90 %" ceiling from
/// 10¹¹ — matching the trend line and the 70–80 % / 80–90 % regions the
/// paper draws through its OPT-family FPGA measurements.
///
/// # Examples
///
/// ```
/// use ador_hw::EffectiveBandwidthModel;
/// use ador_units::FlopCount;
///
/// let law = EffectiveBandwidthModel::default();
/// assert!((law.utilization(FlopCount::new(1e9)).get() - 0.70).abs() < 1e-9);
/// assert!((law.utilization(FlopCount::new(1e11)).get() - 0.90).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EffectiveBandwidthModel {
    /// Utilization at the 10⁹-op reference point.
    pub base: f64,
    /// Utilization gained per decade of operations.
    pub per_decade: f64,
    /// Lower clamp.
    pub floor: f64,
    /// Upper clamp (the paper's "up to 90 %").
    pub ceiling: f64,
}

impl Default for EffectiveBandwidthModel {
    fn default() -> Self {
        Self {
            base: 0.70,
            per_decade: 0.10,
            floor: 0.50,
            ceiling: 0.90,
        }
    }
}

impl EffectiveBandwidthModel {
    /// Utilization achieved at `ops` operations per device.
    pub fn utilization(&self, ops: FlopCount) -> Utilization {
        let ops = ops.get().max(1.0);
        let u = self.base + self.per_decade * (ops.log10() - 9.0);
        Utilization::new_clamped(u.clamp(self.floor, self.ceiling))
    }

    /// Effective bandwidth: the spec derated by [`Self::utilization`].
    pub fn effective(&self, spec: Bandwidth, ops: FlopCount) -> Bandwidth {
        spec.derated(self.utilization(ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fig10_reference_points() {
        let law = EffectiveBandwidthModel::default();
        assert!((law.utilization(FlopCount::new(1e9)).get() - 0.70).abs() < 1e-9);
        assert!((law.utilization(FlopCount::new(1e10)).get() - 0.80).abs() < 1e-9);
        assert!((law.utilization(FlopCount::new(1e11)).get() - 0.90).abs() < 1e-9);
        // Ceiling holds beyond 1e11.
        assert!((law.utilization(FlopCount::new(1e13)).get() - 0.90).abs() < 1e-9);
    }

    #[test]
    fn fig10_u55c_absolute_bandwidth() {
        // The U55C has 460 GB/s of HBM2; at OPT-30B-scale workloads the
        // paper's measured points sit in the 80–90 % band (368–414 GB/s).
        let law = EffectiveBandwidthModel::default();
        let eff = law.effective(Bandwidth::from_gbps(460.0), FlopCount::new(6e10));
        assert!(
            (368.0..=414.0).contains(&eff.as_gbps()),
            "{}",
            eff.as_gbps()
        );
    }

    #[test]
    fn tiny_workloads_hit_floor() {
        let law = EffectiveBandwidthModel::default();
        assert_eq!(law.utilization(FlopCount::new(10.0)).get(), 0.50);
        assert_eq!(law.utilization(FlopCount::ZERO).get(), 0.50);
    }

    #[test]
    fn dram_fits() {
        let spec = DramSpec::hbm2e(Bytes::from_gib(80), Bandwidth::from_tbps(2.0));
        assert!(spec.fits(Bytes::from_gib(80)));
        assert!(!spec.fits(Bytes::from_gib(81)));
    }

    #[test]
    fn display_formats() {
        let spec = DramSpec::hbm3(Bytes::from_gib(80), Bandwidth::from_tbps(3.35));
        assert_eq!(format!("{spec}"), "HBM3 80.00 GiB @ 3.35 TB/s");
    }

    proptest! {
        #[test]
        fn utilization_monotone_and_bounded(a in 1.0f64..1e14, b in 1.0f64..1e14) {
            let law = EffectiveBandwidthModel::default();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let ulo = law.utilization(FlopCount::new(lo));
            let uhi = law.utilization(FlopCount::new(hi));
            prop_assert!(uhi >= ulo);
            prop_assert!(ulo.get() >= law.floor && uhi.get() <= law.ceiling);
        }

        #[test]
        fn effective_never_exceeds_spec(gbps in 1.0f64..5000.0, ops in 1.0f64..1e14) {
            let law = EffectiveBandwidthModel::default();
            let spec = Bandwidth::from_gbps(gbps);
            prop_assert!(law.effective(spec, FlopCount::new(ops)) <= spec);
        }
    }
}
