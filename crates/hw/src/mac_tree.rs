//! MAC-tree timing: the latency-oriented engine of the ADOR template
//! (paper §III-B, §IV-A).
//!
//! A MAC tree is a row of `size` multipliers feeding a binary adder tree;
//! `lanes` independent trees operate side by side. Weights stream from DRAM
//! *directly* into the multipliers — no SRAM staging — so a GEMV finishes as
//! soon as its weights have streamed past, which is why the paper sizes the
//! tree to exactly consume one DRAM beat per cycle:
//!
//! ```text
//! data_size_per_cycle = memory_bandwidth / core_frequency
//! adder_tree_length   = data_size_per_cycle / 2B × parallel_size
//! ```

use core::fmt;

use ador_units::{Bandwidth, Cycles, FlopRate, Frequency, Utilization};
use serde::{Deserialize, Serialize};

/// A bank of `lanes` MAC trees, each `size` multipliers wide.
///
/// # Examples
///
/// ```
/// use ador_hw::MacTree;
/// use ador_units::{Bandwidth, Frequency};
///
/// // Paper §VI-A: "a MAC tree with a size of 16 ... and 16 lanes".
/// let mt = MacTree::new(16, 16);
/// assert_eq!(mt.macs(), 256);
///
/// // Per-core slice of 2 TB/s across 32 cores at 1.5 GHz needs ~21 fp16
/// // elements per cycle; a single 32-wide tree covers the beat.
/// let matched = MacTree::sized_for(Bandwidth::from_gbps(62.5), Frequency::from_ghz(1.5), 2, 1);
/// assert_eq!(matched.size(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacTree {
    size: usize,
    lanes: usize,
}

/// Timing result for a matmul on a [`MacTree`] bank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemvTiming {
    /// Total busy cycles.
    pub cycles: Cycles,
    /// Achieved-MAC fraction of peak.
    pub utilization: Utilization,
}

impl MacTree {
    /// Creates a bank of `lanes` trees of `size` multipliers.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `lanes` is zero.
    pub fn new(size: usize, lanes: usize) -> Self {
        assert!(
            size > 0 && lanes > 0,
            "MAC tree size and lanes must be positive"
        );
        Self { size, lanes }
    }

    /// Sizes a tree that consumes `bandwidth` at clock `freq` per the
    /// paper's §V-A formula, with `lanes` parallel trees sharing the
    /// stream. The width is rounded up to a power of two (adder trees are
    /// binary); the bank as a whole consumes at least the requested beat.
    pub fn sized_for(
        bandwidth: Bandwidth,
        freq: Frequency,
        dtype_bytes: u64,
        lanes: usize,
    ) -> Self {
        let elems_per_cycle = bandwidth.bytes_per_cycle(freq) / dtype_bytes as f64;
        let per_lane = (elems_per_cycle / lanes as f64).max(1.0);
        Self::new((per_lane.ceil() as usize).next_power_of_two(), lanes)
    }

    /// Multipliers per tree.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Parallel trees.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Total MAC cells in the bank.
    pub fn macs(&self) -> usize {
        self.size * self.lanes
    }

    /// Adder-tree depth in pipeline stages (`log2(size)` adds plus the
    /// multiply stage).
    pub fn depth(&self) -> usize {
        (usize::BITS - (self.size - 1).leading_zeros()) as usize + 1
    }

    /// Peak compute rate at clock `freq`.
    pub fn peak_flops(&self, freq: Frequency) -> FlopRate {
        FlopRate::new(self.macs() as f64 * 2.0 * freq.as_hz())
    }

    /// DRAM bandwidth this bank consumes when streaming weights at full
    /// rate (one element per multiplier per cycle).
    pub fn matched_bandwidth(&self, freq: Frequency, dtype_bytes: u64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.macs() as f64 * dtype_bytes as f64 * freq.as_hz())
    }

    /// Cycle count for `count` independent `M×K · K×N` products.
    ///
    /// The tree computes dot products directly, so there is no fill/drain
    /// penalty beyond the pipeline [`depth`](Self::depth); utilization only
    /// drops on ragged `K` (partial final beat per dot product).
    pub fn matmul_timing(&self, m: usize, k: usize, n: usize, count: usize) -> GemvTiming {
        assert!(
            m > 0 && k > 0 && n > 0 && count > 0,
            "matmul dimensions must be positive"
        );
        // Each dot product needs ceil(k / size) beats on one lane; lanes
        // process independent output elements in parallel.
        let beats_per_dot = k.div_ceil(self.size) as u64;
        let dots = (m * n * count) as u64;
        let rounds = dots.div_ceil(self.lanes as u64);
        let cycles = rounds * beats_per_dot + self.depth() as u64;
        let ideal = (m * k * n * count) as u64;
        let offered = cycles * self.macs() as u64;
        GemvTiming {
            cycles: Cycles::new(cycles),
            utilization: Utilization::new_clamped(ideal as f64 / offered as f64),
        }
    }
}

impl fmt::Display for MacTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MT {}x{}", self.size, self.lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gemv_runs_near_peak() {
        // Table II: the MAC tree is latency-oriented — a GEMV with aligned K
        // keeps every multiplier busy.
        let mt = MacTree::new(16, 16);
        let t = mt.matmul_timing(1, 4096, 4096, 1);
        assert!(t.utilization.get() > 0.95, "{:?}", t);
    }

    #[test]
    fn contrast_with_systolic_array_on_gemv() {
        // The same 256 MACs as a 16×16 SA, on the same GEMV.
        let mt = MacTree::new(16, 16).matmul_timing(1, 4096, 4096, 1);
        let sa = crate::SystolicArray::new(16, 16).gemm_timing(1, 4096, 4096);
        assert!(
            mt.cycles.get() * 10 < sa.cycles.get(),
            "mt {mt:?} sa {sa:?}"
        );
    }

    #[test]
    fn ragged_k_wastes_the_last_beat() {
        let mt = MacTree::new(16, 1);
        let aligned = mt.matmul_timing(1, 64, 1, 1);
        let ragged = mt.matmul_timing(1, 65, 1, 1);
        assert_eq!(ragged.cycles.get(), aligned.cycles.get() + 1);
        assert!(ragged.utilization < aligned.utilization);
    }

    #[test]
    fn sized_for_matches_paper_formula() {
        // 2 TB/s at 1.5 GHz = 1333 B/cycle = 667 fp16 elements/cycle.
        // With 16 lanes: 41.7 per lane → next pow2 = 64... the paper instead
        // fixes size 16 and raises lanes; both satisfy the beat.
        let mt = MacTree::sized_for(Bandwidth::from_tbps(2.0), Frequency::from_ghz(1.5), 2, 16);
        let consumed = mt.matched_bandwidth(Frequency::from_ghz(1.5), 2);
        assert!(
            consumed.as_tbps() >= 2.0,
            "bank must at least consume the beat"
        );
    }

    #[test]
    fn depth_is_log2_plus_multiply() {
        assert_eq!(MacTree::new(16, 1).depth(), 5);
        assert_eq!(MacTree::new(64, 1).depth(), 7);
    }

    #[test]
    fn peak_flops_matches_table3_mt_share() {
        // 16×16 MT × 32 cores at 1.5 GHz ≈ 24.6 TFLOPS (417 − 393 of Table III).
        let per_core = MacTree::new(16, 16).peak_flops(Frequency::from_ghz(1.5));
        assert!((per_core.as_tflops() * 32.0 - 24.6).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lanes_rejected() {
        let _ = MacTree::new(16, 0);
    }

    proptest! {
        #[test]
        fn utilization_bounded(
            s in 1usize..128, l in 1usize..64,
            m in 1usize..64, k in 1usize..4096, n in 1usize..512,
        ) {
            let t = MacTree::new(s, l).matmul_timing(m, k, n, 1);
            prop_assert!(t.utilization.get() > 0.0 && t.utilization.get() <= 1.0);
        }

        #[test]
        fn more_lanes_never_slower(s in 1usize..64, l in 1usize..32, k in 1usize..2048, n in 1usize..256) {
            let few = MacTree::new(s, l).matmul_timing(1, k, n, 1);
            let many = MacTree::new(s, l * 2).matmul_timing(1, k, n, 1);
            prop_assert!(many.cycles <= few.cycles);
        }

        #[test]
        fn sized_for_consumes_beat(gbps in 1.0f64..4000.0, lanes in 1usize..32) {
            let f = Frequency::from_ghz(1.5);
            let mt = MacTree::sized_for(Bandwidth::from_gbps(gbps), f, 2, lanes);
            prop_assert!(mt.matched_bandwidth(f, 2).as_gbps() >= gbps * 0.999);
        }
    }
}
