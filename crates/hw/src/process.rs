//! Silicon process nodes and area scaling.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A manufacturing process node.
///
/// Used to normalize die areas across designs built on different nodes
/// (paper Fig. 4a reports both absolute and 4 nm-normalized area
/// efficiency; Table I lists 4 nm / 7 nm / 14 nm devices).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessNode {
    /// 4 nm-class (e.g. NVIDIA H100).
    N4,
    /// 5 nm-class.
    N5,
    /// 7 nm-class (e.g. NVIDIA A100, Google TPUv4) — the cost model's
    /// reference node.
    #[default]
    N7,
    /// 12 nm-class.
    N12,
    /// 14 nm-class (e.g. Groq TSP).
    N14,
    /// 16 nm-class.
    N16,
}

impl ProcessNode {
    /// Logic/SRAM area of this node relative to the 7 nm reference.
    ///
    /// Factors follow published density ratios (TSMC N7→N5 ≈ 1.8×,
    /// N5→N4 ≈ 1.06×, N16/N14 ≈ 2.5–2.8× N7).
    pub fn area_scale_vs_7nm(self) -> f64 {
        match self {
            ProcessNode::N4 => 0.58,
            ProcessNode::N5 => 0.70,
            ProcessNode::N7 => 1.00,
            ProcessNode::N12 => 2.00,
            ProcessNode::N14 => 2.50,
            ProcessNode::N16 => 2.80,
        }
    }

    /// Rescales an area measured on this node to what it would occupy on
    /// `target` (only logic/SRAM scales; analog PHYs are handled separately
    /// by the [`crate::AreaModel`]).
    pub fn rescale_area(self, area_mm2: f64, target: ProcessNode) -> f64 {
        area_mm2 * target.area_scale_vs_7nm() / self.area_scale_vs_7nm()
    }

    /// All nodes, densest first.
    pub fn all() -> [ProcessNode; 6] {
        [
            ProcessNode::N4,
            ProcessNode::N5,
            ProcessNode::N7,
            ProcessNode::N12,
            ProcessNode::N14,
            ProcessNode::N16,
        ]
    }
}

impl fmt::Display for ProcessNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcessNode::N4 => "4nm",
            ProcessNode::N5 => "5nm",
            ProcessNode::N7 => "7nm",
            ProcessNode::N12 => "12nm",
            ProcessNode::N14 => "14nm",
            ProcessNode::N16 => "16nm",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_node_is_identity() {
        assert_eq!(ProcessNode::N7.area_scale_vs_7nm(), 1.0);
        assert_eq!(ProcessNode::N7.rescale_area(100.0, ProcessNode::N7), 100.0);
    }

    #[test]
    fn scales_are_monotone_in_node_size() {
        let scales: Vec<f64> = ProcessNode::all()
            .iter()
            .map(|n| n.area_scale_vs_7nm())
            .collect();
        assert!(scales.windows(2).all(|w| w[0] < w[1]), "{scales:?}");
    }

    #[test]
    fn rescale_roundtrips() {
        let there = ProcessNode::N14.rescale_area(725.0, ProcessNode::N4);
        let back = ProcessNode::N4.rescale_area(there, ProcessNode::N14);
        assert!((back - 725.0).abs() < 1e-9);
        // A 14 nm die shrinks dramatically at 4 nm.
        assert!(there < 725.0 * 0.3);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", ProcessNode::N4), "4nm");
        assert_eq!(format!("{}", ProcessNode::N14), "14nm");
    }
}
