//! Weight-stationary systolic array timing (paper §III-B, Table II).
//!
//! The model is the closed-form weight-stationary analysis SCALE-Sim [25]
//! uses: weights for an `rows × cols` tile are pre-loaded, then `M`
//! activation rows stream through with skewed (diagonal) wavefronts, costing
//! a pipeline fill/drain of `rows + cols − 2` on top of the `M` streaming
//! beats per fold.
//!
//! The asymmetry the paper builds ADOR around falls straight out of the
//! formula: for GEMM (`M` large) the fill is amortized and utilization is
//! high; for GEMV (`M = 1`) every fold pays the full fill, so utilization
//! collapses to roughly `1 / (rows + cols)`.

use core::fmt;

use ador_units::{Bandwidth, Bytes, Cycles, FlopRate, Frequency, Utilization};
use serde::{Deserialize, Serialize};

/// A weight-stationary systolic array of `rows × cols` MAC cells.
///
/// `rows` maps the GEMM contraction dimension (K), `cols` the output
/// dimension (N).
///
/// # Examples
///
/// ```
/// use ador_hw::SystolicArray;
///
/// let sa = SystolicArray::new(64, 64);
/// let gemm = sa.gemm_timing(1024, 4096, 4096);
/// let gemv = sa.gemm_timing(1, 4096, 4096);
/// assert!(gemm.utilization.get() > 0.85);
/// assert!(gemv.utilization.get() < 0.02); // why ADOR adds MAC trees
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
}

/// Timing result of a (possibly repeated) GEMM on a [`SystolicArray`]
/// (intermediate values exposed per C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemmTiming {
    /// Total busy cycles.
    pub cycles: Cycles,
    /// Number of weight folds (tiles) executed.
    pub folds: u64,
    /// Achieved-MAC fraction of peak over the busy window.
    pub utilization: Utilization,
}

impl SystolicArray {
    /// Creates an array of `rows × cols` processing elements.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "systolic array dimensions must be positive"
        );
        Self { rows, cols }
    }

    /// Creates a square `dim × dim` array.
    pub fn square(dim: usize) -> Self {
        Self::new(dim, dim)
    }

    /// Array height (contraction dimension).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array width (output dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// MAC cells in the array.
    pub fn macs(&self) -> usize {
        self.rows * self.cols
    }

    /// Peak compute rate at clock `freq` (2 FLOPs per MAC per cycle).
    pub fn peak_flops(&self, freq: Frequency) -> FlopRate {
        FlopRate::new(self.macs() as f64 * 2.0 * freq.as_hz())
    }

    /// Cycle count and utilization for one `M×K · K×N` GEMM.
    ///
    /// Weight double buffering hides tile pre-loads behind the previous
    /// tile's compute (the "throughput-oriented" dataflow of Fig. 6b); only
    /// the very first fill of `rows` cycles is exposed.
    pub fn gemm_timing(&self, m: usize, k: usize, n: usize) -> GemmTiming {
        self.batched_gemm_timing(m, k, n, 1)
    }

    /// Timing for `count` independent GEMMs of the same shape executed
    /// back-to-back (e.g. one per attention head). Successive GEMMs reuse
    /// the pipeline, so the first-fill penalty is paid once.
    pub fn batched_gemm_timing(&self, m: usize, k: usize, n: usize, count: usize) -> GemmTiming {
        assert!(
            m > 0 && k > 0 && n > 0 && count > 0,
            "GEMM dimensions must be positive"
        );
        let folds_per_gemm = k.div_ceil(self.rows) as u64 * n.div_ceil(self.cols) as u64;
        let folds = folds_per_gemm * count as u64;
        let per_fold = (m + self.rows + self.cols - 2) as u64;
        let cycles = folds * per_fold + self.rows as u64;
        let ideal_macs = (m * k * n * count) as u64;
        let offered = cycles * self.macs() as u64;
        GemmTiming {
            cycles: Cycles::new(cycles),
            folds,
            utilization: Utilization::new_clamped(ideal_macs as f64 / offered as f64),
        }
    }

    /// The DRAM/NoC bandwidth needed to keep double buffering effective:
    /// each fold's `rows·cols` weights must arrive within one fold's compute
    /// window (paper §V-C — this requirement grows with array size and sets
    /// the NoC spec).
    pub fn weight_prefetch_bandwidth(
        &self,
        m: usize,
        dtype_bytes: u64,
        freq: Frequency,
    ) -> Bandwidth {
        let window_cycles = (m + self.rows + self.cols - 2) as f64;
        let bytes_per_fold = (self.macs() as u64 * dtype_bytes) as f64;
        Bandwidth::from_bytes_per_sec(bytes_per_fold / window_cycles * freq.as_hz())
    }

    /// Local-memory bytes needed to hold one fold's activation panel
    /// (`m × rows` inputs) for reuse across the `n / cols` output tiles.
    pub fn activation_panel_bytes(&self, m: usize, dtype_bytes: u64) -> Bytes {
        Bytes::new((m * self.rows) as u64 * dtype_bytes)
    }
}

impl fmt::Display for SystolicArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SA {}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_tile_reaches_high_utilization() {
        // M large, K and N exact multiples of the array: utilization → 1.
        let sa = SystolicArray::new(32, 32);
        let t = sa.gemm_timing(4096, 128, 128);
        assert!(t.utilization.get() > 0.95, "{:?}", t);
        assert_eq!(t.folds, 4 * 4);
    }

    #[test]
    fn gemv_utilization_collapses() {
        let sa = SystolicArray::new(128, 128);
        let t = sa.gemm_timing(1, 4096, 4096);
        // 1 / (rows + cols - 1) ≈ 0.004.
        assert!(t.utilization.get() < 0.005, "{:?}", t);
    }

    #[test]
    fn bigger_array_hurts_gemv_more() {
        // Table II: "As the size of the SA increases, the latency also
        // increases due to the diagonal distribution of input data".
        let small = SystolicArray::square(32).gemm_timing(1, 4096, 4096);
        let large = SystolicArray::square(128).gemm_timing(1, 4096, 4096);
        assert!(large.utilization < small.utilization);
    }

    #[test]
    fn partial_tiles_waste_cells() {
        let sa = SystolicArray::new(64, 64);
        let aligned = sa.gemm_timing(1024, 64, 64);
        let ragged = sa.gemm_timing(1024, 65, 65); // spills into 4 folds
        assert!(ragged.cycles.get() > 3 * aligned.cycles.get());
    }

    #[test]
    fn batched_pays_fill_once() {
        let sa = SystolicArray::new(64, 64);
        let one = sa.gemm_timing(128, 64, 64).cycles.get();
        let four = sa.batched_gemm_timing(128, 64, 64, 4).cycles.get();
        assert_eq!(four, 4 * (one - 64) + 64);
    }

    #[test]
    fn prefetch_bandwidth_grows_with_array() {
        let f = Frequency::from_ghz(1.5);
        let small = SystolicArray::square(32).weight_prefetch_bandwidth(256, 2, f);
        let large = SystolicArray::square(128).weight_prefetch_bandwidth(256, 2, f);
        assert!(large > small);
    }

    #[test]
    fn peak_flops_matches_table3() {
        // 64×64 SA × 32 cores at 1.5 GHz ≈ 393 TFLOPS of the 417 total.
        let sa = SystolicArray::square(64);
        let per_core = sa.peak_flops(Frequency::from_ghz(1.5));
        assert!((per_core.as_tflops() * 32.0 - 393.2).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = SystolicArray::new(0, 64);
    }

    proptest! {
        #[test]
        fn utilization_bounded(
            r in 1usize..256, c in 1usize..256,
            m in 1usize..2048, k in 1usize..2048, n in 1usize..2048,
        ) {
            let t = SystolicArray::new(r, c).gemm_timing(m, k, n);
            prop_assert!(t.utilization.get() > 0.0);
            prop_assert!(t.utilization.get() <= 1.0);
        }

        #[test]
        fn cycles_monotone_in_m(r in 1usize..128, c in 1usize..128, m in 1usize..1024, k in 1usize..512, n in 1usize..512) {
            let sa = SystolicArray::new(r, c);
            prop_assert!(sa.gemm_timing(m + 1, k, n).cycles >= sa.gemm_timing(m, k, n).cycles);
        }

        #[test]
        fn cycles_at_least_ideal(r in 1usize..128, c in 1usize..128, m in 1usize..512, k in 1usize..512, n in 1usize..512) {
            let sa = SystolicArray::new(r, c);
            let t = sa.gemm_timing(m, k, n);
            let ideal = (m * k * n) as f64 / sa.macs() as f64;
            prop_assert!(t.cycles.get() as f64 >= ideal);
        }
    }
}
